// gos_comparison — pclust versus the GOS baseline on the same sample.
//
// Reproduces the paper's central argument (§II/§III): the GOS methodology
// visits Θ(n²) sequence pairs, while pclust's maximal-match filter plus
// transitive-closure clustering aligns only a sliver of them — with
// comparable precision against the ground truth.
//
//   ./gos_comparison --n 600
#include <cstdio>
#include <exception>

#include "pclust/gos/gos_pipeline.hpp"
#include "pclust/pipeline/pipeline.hpp"
#include "pclust/quality/metrics.hpp"
#include "pclust/synth/generator.hpp"
#include "pclust/util/options.hpp"
#include "pclust/util/strings.hpp"
#include "pclust/util/table.hpp"

int main(int argc, char** argv) {
  using namespace pclust;
  util::Options options;
  options.define("n", "500", "sample size");
  options.define("seed", "42", "workload seed");
  try {
    options.parse(argc, argv);
    if (options.help_requested()) {
      std::fputs(options
                     .usage("gos_comparison",
                            "Work and quality comparison: pclust pipeline "
                            "vs the GOS all-versus-all baseline.")
                     .c_str(),
                 stdout);
      return 0;
    }

    synth::DatasetSpec spec;
    spec.seed = static_cast<std::uint64_t>(options.get_int("seed"));
    spec.num_sequences = static_cast<std::uint32_t>(options.get_int("n"));
    spec.num_families = 5;
    spec.mean_length = 100;
    spec.redundant_fraction = 0.12;
    spec.noise_fraction = 0.2;
    spec.max_divergence = 0.15;
    const synth::Dataset data = synth::generate(spec);
    const auto truth = data.truth.benchmark_clusters(5);

    // --- pclust ------------------------------------------------------------
    pipeline::PipelineConfig config;
    config.shingle.s1 = 3;
    config.shingle.c1 = 100;
    config.shingle.s2 = 2;
    config.shingle.tau = 0.4;
    const auto ours = pipeline::run(data.sequences, config);
    const std::uint64_t our_aligned = ours.rr.counters.aligned_pairs +
                                      ours.ccd.counters.aligned_pairs;
    const auto our_quality =
        quality::compare_clusterings(ours.family_clustering(), truth);

    // --- GOS baseline --------------------------------------------------------
    gos::GosParams gparams;
    gparams.shared_neighbors_k = 5;  // scaled analog of the paper's k = 10
    const auto gos_result = gos::run_gos(data.sequences, gparams);
    const auto gos_quality =
        quality::compare_clusterings(gos_result.clusters, truth);

    const std::uint64_t n = data.sequences.size();
    util::Table table({"method", "pair visits", "alignments", "families",
                       "PR", "SE", "OQ", "CC"});
    table.set_title(util::format("n = %llu sequences",
                                 static_cast<unsigned long long>(n)));
    table.add_row(
        {"pclust",
         util::with_commas(static_cast<long long>(
             ours.ccd.counters.promising_pairs +
             ours.rr.counters.promising_pairs)),
         util::with_commas(static_cast<long long>(our_aligned)),
         std::to_string(ours.families.size()),
         util::format("%.1f%%", our_quality.precision * 100),
         util::format("%.1f%%", our_quality.sensitivity * 100),
         util::format("%.1f%%", our_quality.overlap_quality * 100),
         util::format("%.1f%%", our_quality.correlation * 100)});
    table.add_row(
        {"GOS (all-vs-all)",
         util::with_commas(static_cast<long long>(gos_result.alignments)),
         util::with_commas(static_cast<long long>(gos_result.alignments)),
         std::to_string(gos_result.clusters.size()),
         util::format("%.1f%%", gos_quality.precision * 100),
         util::format("%.1f%%", gos_quality.sensitivity * 100),
         util::format("%.1f%%", gos_quality.overlap_quality * 100),
         util::format("%.1f%%", gos_quality.correlation * 100)});
    table.add_footnote(util::format(
        "all-vs-all baseline: C(n,2) = %s pair visits; pclust aligned %.1f%% "
        "of that.",
        util::with_commas(static_cast<long long>(n * (n - 1) / 2)).c_str(),
        100.0 * static_cast<double>(our_aligned) /
            (static_cast<double>(n) * (static_cast<double>(n) - 1) / 2)));
    std::fputs(table.to_string().c_str(), stdout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gos_comparison: %s\n", e.what());
    return 1;
  }
}
