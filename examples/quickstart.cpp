// quickstart — the smallest useful pclust program.
//
// Reads peptide sequences from a FASTA file (or generates a small synthetic
// metagenome when no file is given), runs the four-phase pipeline, and
// prints the protein families it finds.
//
//   ./quickstart                 # synthetic demo data
//   ./quickstart proteins.fa     # your own FASTA file
#include <algorithm>
#include <cstdio>
#include <exception>

#include "pclust/pipeline/pipeline.hpp"
#include "pclust/seq/fasta.hpp"
#include "pclust/synth/presets.hpp"
#include "pclust/util/options.hpp"

int main(int argc, char** argv) {
  using namespace pclust;
  util::Options options;
  options.define("min-family", "5", "minimum reported family size");
  options.define("psi", "10", "minimum exact-match length for candidate pairs");
  options.define("seed", "42", "seed for the synthetic demo data");
  try {
    options.parse(argc, argv);
    if (options.help_requested()) {
      std::fputs(options
                     .usage("quickstart",
                            "Identify protein families in a peptide FASTA "
                            "file (pclust pipeline).")
                     .c_str(),
                 stdout);
      return 0;
    }

    seq::SequenceSet sequences;
    if (!options.positionals().empty()) {
      seq::read_fasta_file(options.positionals()[0], sequences);
      std::printf("Loaded %zu sequences from %s\n", sequences.size(),
                  options.positionals()[0].c_str());
    } else {
      auto spec = synth::tiny(
          static_cast<std::uint64_t>(options.get_int("seed")));
      sequences = synth::generate(spec).sequences;
      std::printf(
          "No FASTA given; generated %zu synthetic metagenomic ORFs "
          "(use --help for options)\n",
          sequences.size());
    }

    pipeline::PipelineConfig config;
    config.pace.psi = static_cast<std::uint32_t>(options.get_int("psi"));
    config.shingle.min_size =
        static_cast<std::uint32_t>(options.get_int("min-family"));
    config.min_component = config.shingle.min_size;
    // Small-input-friendly shingle settings; the library defaults target
    // the paper's 20K+ component sizes.
    config.shingle.s1 = 3;
    config.shingle.c1 = 100;
    config.shingle.s2 = 2;
    config.shingle.tau = 0.4;

    const pipeline::PipelineResult result = pipeline::run(sequences, config);

    std::printf("\n%zu input -> %zu non-redundant -> %zu components (>=%u) "
                "-> %zu families\n\n",
                result.input_sequences, result.non_redundant_sequences,
                result.components_min_size, config.min_component,
                result.families.size());
    for (std::size_t f = 0; f < result.families.size(); ++f) {
      const auto& family = result.families[f];
      std::printf("family %zu  (%zu members, density %.0f%%):", f + 1,
                  family.members.size(), family.density * 100.0);
      const std::size_t shown = std::min<std::size_t>(family.members.size(), 8);
      for (std::size_t i = 0; i < shown; ++i) {
        std::printf(" %s", sequences.name(family.members[i]).c_str());
      }
      if (family.members.size() > 8) {
        std::printf(" ... (+%zu more)", family.members.size() - 8);
      }
      std::printf("\n");
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "quickstart: %s\n", e.what());
    return 1;
  }
}
