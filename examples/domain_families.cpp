// domain_families — the paper's domain-based (B_m) family detection.
//
// Families sharing conserved domains exhibit long exact word matches even
// when their global similarity is modest (paper Fig. 1 shows the CRAL/TRIO
// domain family). This example runs the pipeline with the match-based
// bipartite reduction (V_m = shared w-mers), prints the families it finds,
// and renders a Fig.-1-style stacked alignment of one family around its
// most conserved shared word.
//
//   ./domain_families --w 8
#include <algorithm>
#include <cstdio>
#include <exception>

#include "pclust/align/msa.hpp"
#include "pclust/pipeline/pipeline.hpp"
#include "pclust/seq/alphabet.hpp"
#include "pclust/suffix/kmer_index.hpp"
#include "pclust/synth/generator.hpp"
#include "pclust/util/options.hpp"

namespace {

using namespace pclust;

/// Print a Figure-1-style partial alignment of a family: a center-star MSA
/// window around the most conserved region, plus the shared domain word the
/// B_m reduction grouped the family by.
void print_domain_alignment(const seq::SequenceSet& set,
                            const std::vector<seq::SeqId>& family,
                            std::uint32_t w) {
  suffix::KmerIndex index(set, family, suffix::KmerIndex::Params{.w = w});
  if (index.word_count() > 0) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < index.word_count(); ++i) {
      if (index.sequences_of(i).size() > index.sequences_of(best).size()) {
        best = i;
      }
    }
    std::printf("  most shared %u-mer: %s (in %zu of %zu members)\n", w,
                index.decode_word(best).c_str(),
                index.sequences_of(best).size(), family.size());
  }

  // Align up to 10 members (the paper's Fig. 1 shows a partial alignment).
  std::vector<seq::SeqId> shown(
      family.begin(),
      family.begin() + std::min<std::size_t>(family.size(), 10));
  const align::Msa msa =
      align::center_star_msa(set, shown, align::blosum62());

  // Find the window with the highest average conservation.
  const auto conservation = msa.column_conservation();
  constexpr std::size_t kWindow = 60;
  std::size_t best_start = 0;
  double best_sum = -1.0;
  const std::size_t limit =
      msa.columns() > kWindow ? msa.columns() - kWindow : 0;
  for (std::size_t start = 0; start <= limit; start += 5) {
    double sum = 0.0;
    for (std::size_t c = start;
         c < std::min(start + kWindow, msa.columns()); ++c) {
      sum += conservation[c];
    }
    if (sum > best_sum) {
      best_sum = sum;
      best_start = start;
    }
  }
  const std::size_t window_end =
      std::min(best_start + kWindow, msa.columns());

  for (std::size_t r = 0; r < msa.rows.size(); ++r) {
    std::printf("  %-12s %s%s\n", set.name(msa.members[r]).c_str(),
                msa.rows[r].substr(best_start, window_end - best_start)
                    .c_str(),
                r == msa.center ? "  (center)" : "");
  }
  const std::string consensus = msa.consensus();
  std::printf("  %-12s %s\n", "consensus",
              consensus.substr(best_start, window_end - best_start).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  util::Options options;
  options.define("w", "8", "domain word length (paper: ~10)");
  options.define("n", "400", "synthetic sample size");
  options.define("seed", "7", "workload seed");
  try {
    options.parse(argc, argv);
    if (options.help_requested()) {
      std::fputs(options
                     .usage("domain_families",
                            "Domain-based (B_m) protein family detection "
                            "with a Fig.-1-style alignment view.")
                     .c_str(),
                 stdout);
      return 0;
    }

    synth::DatasetSpec spec;
    spec.seed = static_cast<std::uint64_t>(options.get_int("seed"));
    spec.num_sequences = static_cast<std::uint32_t>(options.get_int("n"));
    spec.num_families = 5;
    spec.mean_length = 120;
    spec.noise_fraction = 0.2;
    spec.redundant_fraction = 0.1;
    const synth::Dataset data = synth::generate(spec);

    pipeline::PipelineConfig config;
    config.reduction = bigraph::Reduction::kMatchBased;
    config.bm.w = static_cast<std::uint32_t>(options.get_int("w"));
    config.shingle.s1 = 3;
    config.shingle.c1 = 100;
    config.shingle.s2 = 2;
    const pipeline::PipelineResult result =
        pipeline::run(data.sequences, config);

    std::printf("%zu sequences -> %zu domain-based families\n\n",
                data.sequences.size(), result.families.size());
    for (std::size_t f = 0; f < std::min<std::size_t>(result.families.size(), 3);
         ++f) {
      std::printf("family %zu: %zu members\n", f + 1,
                  result.families[f].members.size());
      print_domain_alignment(data.sequences, result.families[f].members,
                             config.bm.w);
      std::printf("\n");
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "domain_families: %s\n", e.what());
    return 1;
  }
}
