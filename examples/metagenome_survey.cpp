// metagenome_survey — a scaled analog of the paper's CAMERA survey.
//
// Generates a metagenomic sample with the statistics of the paper's 160 K
// data set (221 families, mean length 163, ~13 % redundancy, background
// singletons), runs the pipeline on a simulated BlueGene/L partition, and
// prints a Table-I-style qualitative report plus the PR/SE/OQ/CC quality
// measures against the generator's ground-truth families.
//
//   ./metagenome_survey --scale 0.01 --processors 32
#include <cstdio>
#include <exception>

#include "pclust/pipeline/pipeline.hpp"
#include "pclust/quality/metrics.hpp"
#include "pclust/synth/presets.hpp"
#include "pclust/util/options.hpp"
#include "pclust/util/strings.hpp"
#include "pclust/util/table.hpp"

int main(int argc, char** argv) {
  using namespace pclust;
  util::Options options;
  options.define("scale", "0.005", "fraction of the paper's 160K input size");
  options.define("processors", "0",
                 "simulated BlueGene/L ranks for RR+CCD (0 = serial)");
  options.define("seed", "42", "workload seed");
  options.define("band", "32", "alignment band half-width (0 = full DP)");
  try {
    options.parse(argc, argv);
    if (options.help_requested()) {
      std::fputs(options
                     .usage("metagenome_survey",
                            "Scaled reproduction of the paper's CAMERA "
                            "survey with quality metrics.")
                     .c_str(),
                 stdout);
      return 0;
    }

    const auto spec = synth::paper_160k(
        options.get_double("scale"),
        static_cast<std::uint64_t>(options.get_int("seed")));
    const synth::Dataset data = synth::generate(spec);
    std::printf("Generated %zu ORFs (%u families, mean length %.0f)\n",
                data.sequences.size(), spec.num_families,
                data.sequences.mean_length());

    pipeline::PipelineConfig config;
    config.processors = static_cast<int>(options.get_int("processors"));
    config.pace.band = static_cast<std::uint32_t>(options.get_int("band"));
    config.shingle.s1 = 4;
    config.shingle.c1 = 150;
    config.shingle.s2 = 2;
    config.shingle.tau = 0.4;
    const pipeline::PipelineResult result =
        pipeline::run(data.sequences, config);

    util::Table table({"#Input seq.", "#NR seq.", "#CC", "#DS", "#Seq in DS",
                       "Mean degree", "Mean density", "Largest DS"});
    table.set_title(
        "Qualitative summary (components with >= 5 sequences), after the "
        "paper's Table I:");
    table.add_row(util::split(pipeline::table1_row(result), '|'));
    std::fputs(table.to_string().c_str(), stdout);

    std::printf("\nPhase times%s: RR %s, CCD %s, BGG+DSD %s\n",
                config.processors >= 2 ? " (simulated BlueGene/L)"
                                       : " (measured, serial)",
                util::format_duration(result.rr_seconds).c_str(),
                util::format_duration(result.ccd_seconds).c_str(),
                util::format_duration(result.bgg_dsd_seconds).c_str());

    const auto metrics = quality::compare_clusterings(
        result.family_clustering(), data.truth.benchmark_clusters(5));
    std::printf(
        "\nQuality vs ground-truth families (paper eqs. 1-4):\n"
        "  PR=%.2f%%  SE=%.2f%%  OQ=%.2f%%  CC=%.2f%%   (%zu common seqs)\n",
        metrics.precision * 100.0, metrics.sensitivity * 100.0,
        metrics.overlap_quality * 100.0, metrics.correlation * 100.0,
        metrics.common_sequences);
    std::printf(
        "Expected shape (paper: PR=95.75%%, SE=56.89%%): precision high, "
        "sensitivity lower — dense subgraphs fragment families.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "metagenome_survey: %s\n", e.what());
    return 1;
  }
}
