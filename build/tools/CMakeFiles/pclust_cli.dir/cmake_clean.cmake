file(REMOVE_RECURSE
  "CMakeFiles/pclust_cli.dir/cmd_compare.cpp.o"
  "CMakeFiles/pclust_cli.dir/cmd_compare.cpp.o.d"
  "CMakeFiles/pclust_cli.dir/cmd_families.cpp.o"
  "CMakeFiles/pclust_cli.dir/cmd_families.cpp.o.d"
  "CMakeFiles/pclust_cli.dir/cmd_generate.cpp.o"
  "CMakeFiles/pclust_cli.dir/cmd_generate.cpp.o.d"
  "CMakeFiles/pclust_cli.dir/cmd_simulate.cpp.o"
  "CMakeFiles/pclust_cli.dir/cmd_simulate.cpp.o.d"
  "CMakeFiles/pclust_cli.dir/pclust_cli.cpp.o"
  "CMakeFiles/pclust_cli.dir/pclust_cli.cpp.o.d"
  "pclust"
  "pclust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pclust_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
