# Empty compiler generated dependencies file for pclust_cli.
# This may be replaced when dependencies are built.
