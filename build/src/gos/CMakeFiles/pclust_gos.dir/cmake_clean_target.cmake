file(REMOVE_RECURSE
  "libpclust_gos.a"
)
