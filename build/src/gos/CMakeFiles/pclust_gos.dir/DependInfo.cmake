
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gos/src/gos_pipeline.cpp" "src/gos/CMakeFiles/pclust_gos.dir/src/gos_pipeline.cpp.o" "gcc" "src/gos/CMakeFiles/pclust_gos.dir/src/gos_pipeline.cpp.o.d"
  "/root/repo/src/gos/src/seeded_aligner.cpp" "src/gos/CMakeFiles/pclust_gos.dir/src/seeded_aligner.cpp.o" "gcc" "src/gos/CMakeFiles/pclust_gos.dir/src/seeded_aligner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/seq/CMakeFiles/pclust_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/pclust_align.dir/DependInfo.cmake"
  "/root/repo/build/src/dsu/CMakeFiles/pclust_dsu.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pclust_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
