# Empty compiler generated dependencies file for pclust_gos.
# This may be replaced when dependencies are built.
