file(REMOVE_RECURSE
  "CMakeFiles/pclust_gos.dir/src/gos_pipeline.cpp.o"
  "CMakeFiles/pclust_gos.dir/src/gos_pipeline.cpp.o.d"
  "CMakeFiles/pclust_gos.dir/src/seeded_aligner.cpp.o"
  "CMakeFiles/pclust_gos.dir/src/seeded_aligner.cpp.o.d"
  "libpclust_gos.a"
  "libpclust_gos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pclust_gos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
