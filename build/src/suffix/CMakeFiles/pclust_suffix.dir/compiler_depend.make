# Empty compiler generated dependencies file for pclust_suffix.
# This may be replaced when dependencies are built.
