
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/suffix/src/concat_text.cpp" "src/suffix/CMakeFiles/pclust_suffix.dir/src/concat_text.cpp.o" "gcc" "src/suffix/CMakeFiles/pclust_suffix.dir/src/concat_text.cpp.o.d"
  "/root/repo/src/suffix/src/kmer_index.cpp" "src/suffix/CMakeFiles/pclust_suffix.dir/src/kmer_index.cpp.o" "gcc" "src/suffix/CMakeFiles/pclust_suffix.dir/src/kmer_index.cpp.o.d"
  "/root/repo/src/suffix/src/lcp.cpp" "src/suffix/CMakeFiles/pclust_suffix.dir/src/lcp.cpp.o" "gcc" "src/suffix/CMakeFiles/pclust_suffix.dir/src/lcp.cpp.o.d"
  "/root/repo/src/suffix/src/maximal_match.cpp" "src/suffix/CMakeFiles/pclust_suffix.dir/src/maximal_match.cpp.o" "gcc" "src/suffix/CMakeFiles/pclust_suffix.dir/src/maximal_match.cpp.o.d"
  "/root/repo/src/suffix/src/suffix_array.cpp" "src/suffix/CMakeFiles/pclust_suffix.dir/src/suffix_array.cpp.o" "gcc" "src/suffix/CMakeFiles/pclust_suffix.dir/src/suffix_array.cpp.o.d"
  "/root/repo/src/suffix/src/suffix_tree.cpp" "src/suffix/CMakeFiles/pclust_suffix.dir/src/suffix_tree.cpp.o" "gcc" "src/suffix/CMakeFiles/pclust_suffix.dir/src/suffix_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/seq/CMakeFiles/pclust_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pclust_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
