file(REMOVE_RECURSE
  "libpclust_suffix.a"
)
