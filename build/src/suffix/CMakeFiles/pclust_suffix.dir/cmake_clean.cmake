file(REMOVE_RECURSE
  "CMakeFiles/pclust_suffix.dir/src/concat_text.cpp.o"
  "CMakeFiles/pclust_suffix.dir/src/concat_text.cpp.o.d"
  "CMakeFiles/pclust_suffix.dir/src/kmer_index.cpp.o"
  "CMakeFiles/pclust_suffix.dir/src/kmer_index.cpp.o.d"
  "CMakeFiles/pclust_suffix.dir/src/lcp.cpp.o"
  "CMakeFiles/pclust_suffix.dir/src/lcp.cpp.o.d"
  "CMakeFiles/pclust_suffix.dir/src/maximal_match.cpp.o"
  "CMakeFiles/pclust_suffix.dir/src/maximal_match.cpp.o.d"
  "CMakeFiles/pclust_suffix.dir/src/suffix_array.cpp.o"
  "CMakeFiles/pclust_suffix.dir/src/suffix_array.cpp.o.d"
  "CMakeFiles/pclust_suffix.dir/src/suffix_tree.cpp.o"
  "CMakeFiles/pclust_suffix.dir/src/suffix_tree.cpp.o.d"
  "libpclust_suffix.a"
  "libpclust_suffix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pclust_suffix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
