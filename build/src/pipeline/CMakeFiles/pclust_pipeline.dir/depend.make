# Empty dependencies file for pclust_pipeline.
# This may be replaced when dependencies are built.
