file(REMOVE_RECURSE
  "libpclust_pipeline.a"
)
