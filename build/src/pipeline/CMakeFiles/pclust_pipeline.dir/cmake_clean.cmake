file(REMOVE_RECURSE
  "CMakeFiles/pclust_pipeline.dir/src/pipeline.cpp.o"
  "CMakeFiles/pclust_pipeline.dir/src/pipeline.cpp.o.d"
  "libpclust_pipeline.a"
  "libpclust_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pclust_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
