file(REMOVE_RECURSE
  "libpclust_bigraph.a"
)
