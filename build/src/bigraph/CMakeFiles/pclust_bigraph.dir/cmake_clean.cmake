file(REMOVE_RECURSE
  "CMakeFiles/pclust_bigraph.dir/src/bipartite_graph.cpp.o"
  "CMakeFiles/pclust_bigraph.dir/src/bipartite_graph.cpp.o.d"
  "CMakeFiles/pclust_bigraph.dir/src/builders.cpp.o"
  "CMakeFiles/pclust_bigraph.dir/src/builders.cpp.o.d"
  "libpclust_bigraph.a"
  "libpclust_bigraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pclust_bigraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
