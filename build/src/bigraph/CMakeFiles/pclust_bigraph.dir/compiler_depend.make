# Empty compiler generated dependencies file for pclust_bigraph.
# This may be replaced when dependencies are built.
