# Empty dependencies file for pclust_pace.
# This may be replaced when dependencies are built.
