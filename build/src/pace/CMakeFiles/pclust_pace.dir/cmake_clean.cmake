file(REMOVE_RECURSE
  "CMakeFiles/pclust_pace.dir/src/components.cpp.o"
  "CMakeFiles/pclust_pace.dir/src/components.cpp.o.d"
  "CMakeFiles/pclust_pace.dir/src/engine.cpp.o"
  "CMakeFiles/pclust_pace.dir/src/engine.cpp.o.d"
  "CMakeFiles/pclust_pace.dir/src/redundancy.cpp.o"
  "CMakeFiles/pclust_pace.dir/src/redundancy.cpp.o.d"
  "CMakeFiles/pclust_pace.dir/src/reference.cpp.o"
  "CMakeFiles/pclust_pace.dir/src/reference.cpp.o.d"
  "libpclust_pace.a"
  "libpclust_pace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pclust_pace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
