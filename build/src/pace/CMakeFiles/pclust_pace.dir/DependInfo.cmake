
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pace/src/components.cpp" "src/pace/CMakeFiles/pclust_pace.dir/src/components.cpp.o" "gcc" "src/pace/CMakeFiles/pclust_pace.dir/src/components.cpp.o.d"
  "/root/repo/src/pace/src/engine.cpp" "src/pace/CMakeFiles/pclust_pace.dir/src/engine.cpp.o" "gcc" "src/pace/CMakeFiles/pclust_pace.dir/src/engine.cpp.o.d"
  "/root/repo/src/pace/src/redundancy.cpp" "src/pace/CMakeFiles/pclust_pace.dir/src/redundancy.cpp.o" "gcc" "src/pace/CMakeFiles/pclust_pace.dir/src/redundancy.cpp.o.d"
  "/root/repo/src/pace/src/reference.cpp" "src/pace/CMakeFiles/pclust_pace.dir/src/reference.cpp.o" "gcc" "src/pace/CMakeFiles/pclust_pace.dir/src/reference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/seq/CMakeFiles/pclust_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/pclust_align.dir/DependInfo.cmake"
  "/root/repo/build/src/suffix/CMakeFiles/pclust_suffix.dir/DependInfo.cmake"
  "/root/repo/build/src/dsu/CMakeFiles/pclust_dsu.dir/DependInfo.cmake"
  "/root/repo/build/src/mpsim/CMakeFiles/pclust_mpsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pclust_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
