file(REMOVE_RECURSE
  "libpclust_pace.a"
)
