# Empty dependencies file for pclust_mpsim.
# This may be replaced when dependencies are built.
