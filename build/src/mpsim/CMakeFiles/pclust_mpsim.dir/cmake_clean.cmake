file(REMOVE_RECURSE
  "CMakeFiles/pclust_mpsim.dir/src/communicator.cpp.o"
  "CMakeFiles/pclust_mpsim.dir/src/communicator.cpp.o.d"
  "CMakeFiles/pclust_mpsim.dir/src/machine_model.cpp.o"
  "CMakeFiles/pclust_mpsim.dir/src/machine_model.cpp.o.d"
  "CMakeFiles/pclust_mpsim.dir/src/runtime.cpp.o"
  "CMakeFiles/pclust_mpsim.dir/src/runtime.cpp.o.d"
  "libpclust_mpsim.a"
  "libpclust_mpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pclust_mpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
