
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpsim/src/communicator.cpp" "src/mpsim/CMakeFiles/pclust_mpsim.dir/src/communicator.cpp.o" "gcc" "src/mpsim/CMakeFiles/pclust_mpsim.dir/src/communicator.cpp.o.d"
  "/root/repo/src/mpsim/src/machine_model.cpp" "src/mpsim/CMakeFiles/pclust_mpsim.dir/src/machine_model.cpp.o" "gcc" "src/mpsim/CMakeFiles/pclust_mpsim.dir/src/machine_model.cpp.o.d"
  "/root/repo/src/mpsim/src/runtime.cpp" "src/mpsim/CMakeFiles/pclust_mpsim.dir/src/runtime.cpp.o" "gcc" "src/mpsim/CMakeFiles/pclust_mpsim.dir/src/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pclust_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
