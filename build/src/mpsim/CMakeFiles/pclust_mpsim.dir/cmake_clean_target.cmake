file(REMOVE_RECURSE
  "libpclust_mpsim.a"
)
