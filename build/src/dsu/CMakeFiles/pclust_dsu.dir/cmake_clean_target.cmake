file(REMOVE_RECURSE
  "libpclust_dsu.a"
)
