file(REMOVE_RECURSE
  "CMakeFiles/pclust_dsu.dir/src/union_find.cpp.o"
  "CMakeFiles/pclust_dsu.dir/src/union_find.cpp.o.d"
  "libpclust_dsu.a"
  "libpclust_dsu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pclust_dsu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
