# Empty compiler generated dependencies file for pclust_dsu.
# This may be replaced when dependencies are built.
