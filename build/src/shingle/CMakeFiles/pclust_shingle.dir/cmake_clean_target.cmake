file(REMOVE_RECURSE
  "libpclust_shingle.a"
)
