file(REMOVE_RECURSE
  "CMakeFiles/pclust_shingle.dir/src/minwise.cpp.o"
  "CMakeFiles/pclust_shingle.dir/src/minwise.cpp.o.d"
  "CMakeFiles/pclust_shingle.dir/src/shingle.cpp.o"
  "CMakeFiles/pclust_shingle.dir/src/shingle.cpp.o.d"
  "libpclust_shingle.a"
  "libpclust_shingle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pclust_shingle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
