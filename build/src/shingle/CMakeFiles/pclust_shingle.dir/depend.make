# Empty dependencies file for pclust_shingle.
# This may be replaced when dependencies are built.
