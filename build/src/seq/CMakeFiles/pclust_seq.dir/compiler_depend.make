# Empty compiler generated dependencies file for pclust_seq.
# This may be replaced when dependencies are built.
