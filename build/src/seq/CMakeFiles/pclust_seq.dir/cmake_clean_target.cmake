file(REMOVE_RECURSE
  "libpclust_seq.a"
)
