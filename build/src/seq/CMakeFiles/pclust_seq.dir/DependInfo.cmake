
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seq/src/alphabet.cpp" "src/seq/CMakeFiles/pclust_seq.dir/src/alphabet.cpp.o" "gcc" "src/seq/CMakeFiles/pclust_seq.dir/src/alphabet.cpp.o.d"
  "/root/repo/src/seq/src/complexity.cpp" "src/seq/CMakeFiles/pclust_seq.dir/src/complexity.cpp.o" "gcc" "src/seq/CMakeFiles/pclust_seq.dir/src/complexity.cpp.o.d"
  "/root/repo/src/seq/src/fasta.cpp" "src/seq/CMakeFiles/pclust_seq.dir/src/fasta.cpp.o" "gcc" "src/seq/CMakeFiles/pclust_seq.dir/src/fasta.cpp.o.d"
  "/root/repo/src/seq/src/sequence_set.cpp" "src/seq/CMakeFiles/pclust_seq.dir/src/sequence_set.cpp.o" "gcc" "src/seq/CMakeFiles/pclust_seq.dir/src/sequence_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pclust_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
