file(REMOVE_RECURSE
  "CMakeFiles/pclust_seq.dir/src/alphabet.cpp.o"
  "CMakeFiles/pclust_seq.dir/src/alphabet.cpp.o.d"
  "CMakeFiles/pclust_seq.dir/src/complexity.cpp.o"
  "CMakeFiles/pclust_seq.dir/src/complexity.cpp.o.d"
  "CMakeFiles/pclust_seq.dir/src/fasta.cpp.o"
  "CMakeFiles/pclust_seq.dir/src/fasta.cpp.o.d"
  "CMakeFiles/pclust_seq.dir/src/sequence_set.cpp.o"
  "CMakeFiles/pclust_seq.dir/src/sequence_set.cpp.o.d"
  "libpclust_seq.a"
  "libpclust_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pclust_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
