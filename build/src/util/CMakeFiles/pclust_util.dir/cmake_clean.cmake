file(REMOVE_RECURSE
  "CMakeFiles/pclust_util.dir/src/histogram.cpp.o"
  "CMakeFiles/pclust_util.dir/src/histogram.cpp.o.d"
  "CMakeFiles/pclust_util.dir/src/log.cpp.o"
  "CMakeFiles/pclust_util.dir/src/log.cpp.o.d"
  "CMakeFiles/pclust_util.dir/src/options.cpp.o"
  "CMakeFiles/pclust_util.dir/src/options.cpp.o.d"
  "CMakeFiles/pclust_util.dir/src/stats.cpp.o"
  "CMakeFiles/pclust_util.dir/src/stats.cpp.o.d"
  "CMakeFiles/pclust_util.dir/src/strings.cpp.o"
  "CMakeFiles/pclust_util.dir/src/strings.cpp.o.d"
  "CMakeFiles/pclust_util.dir/src/table.cpp.o"
  "CMakeFiles/pclust_util.dir/src/table.cpp.o.d"
  "libpclust_util.a"
  "libpclust_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pclust_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
