file(REMOVE_RECURSE
  "libpclust_util.a"
)
