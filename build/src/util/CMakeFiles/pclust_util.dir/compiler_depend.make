# Empty compiler generated dependencies file for pclust_util.
# This may be replaced when dependencies are built.
