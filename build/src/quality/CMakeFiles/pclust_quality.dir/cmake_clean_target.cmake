file(REMOVE_RECURSE
  "libpclust_quality.a"
)
