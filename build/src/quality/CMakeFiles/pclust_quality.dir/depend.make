# Empty dependencies file for pclust_quality.
# This may be replaced when dependencies are built.
