file(REMOVE_RECURSE
  "CMakeFiles/pclust_quality.dir/src/cluster_io.cpp.o"
  "CMakeFiles/pclust_quality.dir/src/cluster_io.cpp.o.d"
  "CMakeFiles/pclust_quality.dir/src/metrics.cpp.o"
  "CMakeFiles/pclust_quality.dir/src/metrics.cpp.o.d"
  "libpclust_quality.a"
  "libpclust_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pclust_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
