# Empty dependencies file for pclust_synth.
# This may be replaced when dependencies are built.
