
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/src/generator.cpp" "src/synth/CMakeFiles/pclust_synth.dir/src/generator.cpp.o" "gcc" "src/synth/CMakeFiles/pclust_synth.dir/src/generator.cpp.o.d"
  "/root/repo/src/synth/src/presets.cpp" "src/synth/CMakeFiles/pclust_synth.dir/src/presets.cpp.o" "gcc" "src/synth/CMakeFiles/pclust_synth.dir/src/presets.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/seq/CMakeFiles/pclust_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pclust_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
