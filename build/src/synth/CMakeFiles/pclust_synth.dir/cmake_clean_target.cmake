file(REMOVE_RECURSE
  "libpclust_synth.a"
)
