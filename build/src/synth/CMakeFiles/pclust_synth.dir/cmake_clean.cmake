file(REMOVE_RECURSE
  "CMakeFiles/pclust_synth.dir/src/generator.cpp.o"
  "CMakeFiles/pclust_synth.dir/src/generator.cpp.o.d"
  "CMakeFiles/pclust_synth.dir/src/presets.cpp.o"
  "CMakeFiles/pclust_synth.dir/src/presets.cpp.o.d"
  "libpclust_synth.a"
  "libpclust_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pclust_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
