# Empty dependencies file for pclust_align.
# This may be replaced when dependencies are built.
