file(REMOVE_RECURSE
  "CMakeFiles/pclust_align.dir/src/msa.cpp.o"
  "CMakeFiles/pclust_align.dir/src/msa.cpp.o.d"
  "CMakeFiles/pclust_align.dir/src/pairwise.cpp.o"
  "CMakeFiles/pclust_align.dir/src/pairwise.cpp.o.d"
  "CMakeFiles/pclust_align.dir/src/predicates.cpp.o"
  "CMakeFiles/pclust_align.dir/src/predicates.cpp.o.d"
  "CMakeFiles/pclust_align.dir/src/scoring.cpp.o"
  "CMakeFiles/pclust_align.dir/src/scoring.cpp.o.d"
  "libpclust_align.a"
  "libpclust_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pclust_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
