file(REMOVE_RECURSE
  "libpclust_align.a"
)
