
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/align/src/msa.cpp" "src/align/CMakeFiles/pclust_align.dir/src/msa.cpp.o" "gcc" "src/align/CMakeFiles/pclust_align.dir/src/msa.cpp.o.d"
  "/root/repo/src/align/src/pairwise.cpp" "src/align/CMakeFiles/pclust_align.dir/src/pairwise.cpp.o" "gcc" "src/align/CMakeFiles/pclust_align.dir/src/pairwise.cpp.o.d"
  "/root/repo/src/align/src/predicates.cpp" "src/align/CMakeFiles/pclust_align.dir/src/predicates.cpp.o" "gcc" "src/align/CMakeFiles/pclust_align.dir/src/predicates.cpp.o.d"
  "/root/repo/src/align/src/scoring.cpp" "src/align/CMakeFiles/pclust_align.dir/src/scoring.cpp.o" "gcc" "src/align/CMakeFiles/pclust_align.dir/src/scoring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/seq/CMakeFiles/pclust_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pclust_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
