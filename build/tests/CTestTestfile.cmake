# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_seq[1]_include.cmake")
include("/root/repo/build/tests/test_dsu[1]_include.cmake")
include("/root/repo/build/tests/test_align[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_mpsim[1]_include.cmake")
include("/root/repo/build/tests/test_pace[1]_include.cmake")
include("/root/repo/build/tests/test_bigraph[1]_include.cmake")
include("/root/repo/build/tests/test_shingle[1]_include.cmake")
include("/root/repo/build/tests/test_quality[1]_include.cmake")
include("/root/repo/build/tests/test_gos[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_suffix[1]_include.cmake")
