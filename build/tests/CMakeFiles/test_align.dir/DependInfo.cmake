
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/align/test_align_properties.cpp" "tests/CMakeFiles/test_align.dir/align/test_align_properties.cpp.o" "gcc" "tests/CMakeFiles/test_align.dir/align/test_align_properties.cpp.o.d"
  "/root/repo/tests/align/test_msa.cpp" "tests/CMakeFiles/test_align.dir/align/test_msa.cpp.o" "gcc" "tests/CMakeFiles/test_align.dir/align/test_msa.cpp.o.d"
  "/root/repo/tests/align/test_pairwise.cpp" "tests/CMakeFiles/test_align.dir/align/test_pairwise.cpp.o" "gcc" "tests/CMakeFiles/test_align.dir/align/test_pairwise.cpp.o.d"
  "/root/repo/tests/align/test_predicates.cpp" "tests/CMakeFiles/test_align.dir/align/test_predicates.cpp.o" "gcc" "tests/CMakeFiles/test_align.dir/align/test_predicates.cpp.o.d"
  "/root/repo/tests/align/test_scoring.cpp" "tests/CMakeFiles/test_align.dir/align/test_scoring.cpp.o" "gcc" "tests/CMakeFiles/test_align.dir/align/test_scoring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/align/CMakeFiles/pclust_align.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/pclust_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/pclust_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pclust_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
