# Empty dependencies file for test_gos.
# This may be replaced when dependencies are built.
