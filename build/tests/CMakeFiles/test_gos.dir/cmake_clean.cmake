file(REMOVE_RECURSE
  "CMakeFiles/test_gos.dir/gos/test_gos.cpp.o"
  "CMakeFiles/test_gos.dir/gos/test_gos.cpp.o.d"
  "test_gos"
  "test_gos.pdb"
  "test_gos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
