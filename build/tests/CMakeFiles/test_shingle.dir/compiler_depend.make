# Empty compiler generated dependencies file for test_shingle.
# This may be replaced when dependencies are built.
