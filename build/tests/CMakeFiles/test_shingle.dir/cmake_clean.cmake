file(REMOVE_RECURSE
  "CMakeFiles/test_shingle.dir/shingle/test_minwise.cpp.o"
  "CMakeFiles/test_shingle.dir/shingle/test_minwise.cpp.o.d"
  "CMakeFiles/test_shingle.dir/shingle/test_shingle.cpp.o"
  "CMakeFiles/test_shingle.dir/shingle/test_shingle.cpp.o.d"
  "CMakeFiles/test_shingle.dir/shingle/test_shingle_properties.cpp.o"
  "CMakeFiles/test_shingle.dir/shingle/test_shingle_properties.cpp.o.d"
  "test_shingle"
  "test_shingle.pdb"
  "test_shingle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shingle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
