file(REMOVE_RECURSE
  "CMakeFiles/test_pace.dir/pace/test_components.cpp.o"
  "CMakeFiles/test_pace.dir/pace/test_components.cpp.o.d"
  "CMakeFiles/test_pace.dir/pace/test_engine_edges.cpp.o"
  "CMakeFiles/test_pace.dir/pace/test_engine_edges.cpp.o.d"
  "CMakeFiles/test_pace.dir/pace/test_redundancy.cpp.o"
  "CMakeFiles/test_pace.dir/pace/test_redundancy.cpp.o.d"
  "test_pace"
  "test_pace.pdb"
  "test_pace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
