# Empty compiler generated dependencies file for test_pace.
# This may be replaced when dependencies are built.
