file(REMOVE_RECURSE
  "CMakeFiles/test_bigraph.dir/bigraph/test_bipartite_graph.cpp.o"
  "CMakeFiles/test_bigraph.dir/bigraph/test_bipartite_graph.cpp.o.d"
  "CMakeFiles/test_bigraph.dir/bigraph/test_builders.cpp.o"
  "CMakeFiles/test_bigraph.dir/bigraph/test_builders.cpp.o.d"
  "test_bigraph"
  "test_bigraph.pdb"
  "test_bigraph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bigraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
