# Empty compiler generated dependencies file for test_bigraph.
# This may be replaced when dependencies are built.
