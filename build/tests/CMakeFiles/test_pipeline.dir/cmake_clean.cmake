file(REMOVE_RECURSE
  "CMakeFiles/test_pipeline.dir/pipeline/test_end_to_end.cpp.o"
  "CMakeFiles/test_pipeline.dir/pipeline/test_end_to_end.cpp.o.d"
  "CMakeFiles/test_pipeline.dir/pipeline/test_parallel_dsd.cpp.o"
  "CMakeFiles/test_pipeline.dir/pipeline/test_parallel_dsd.cpp.o.d"
  "CMakeFiles/test_pipeline.dir/pipeline/test_pipeline.cpp.o"
  "CMakeFiles/test_pipeline.dir/pipeline/test_pipeline.cpp.o.d"
  "test_pipeline"
  "test_pipeline.pdb"
  "test_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
