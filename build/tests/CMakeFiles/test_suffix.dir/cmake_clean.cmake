file(REMOVE_RECURSE
  "CMakeFiles/test_suffix.dir/suffix/test_concat_text.cpp.o"
  "CMakeFiles/test_suffix.dir/suffix/test_concat_text.cpp.o.d"
  "CMakeFiles/test_suffix.dir/suffix/test_kmer_index.cpp.o"
  "CMakeFiles/test_suffix.dir/suffix/test_kmer_index.cpp.o.d"
  "CMakeFiles/test_suffix.dir/suffix/test_maximal_match.cpp.o"
  "CMakeFiles/test_suffix.dir/suffix/test_maximal_match.cpp.o.d"
  "CMakeFiles/test_suffix.dir/suffix/test_suffix_array.cpp.o"
  "CMakeFiles/test_suffix.dir/suffix/test_suffix_array.cpp.o.d"
  "CMakeFiles/test_suffix.dir/suffix/test_suffix_tree.cpp.o"
  "CMakeFiles/test_suffix.dir/suffix/test_suffix_tree.cpp.o.d"
  "test_suffix"
  "test_suffix.pdb"
  "test_suffix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_suffix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
