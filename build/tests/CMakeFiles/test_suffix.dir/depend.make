# Empty dependencies file for test_suffix.
# This may be replaced when dependencies are built.
