
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/suffix/test_concat_text.cpp" "tests/CMakeFiles/test_suffix.dir/suffix/test_concat_text.cpp.o" "gcc" "tests/CMakeFiles/test_suffix.dir/suffix/test_concat_text.cpp.o.d"
  "/root/repo/tests/suffix/test_kmer_index.cpp" "tests/CMakeFiles/test_suffix.dir/suffix/test_kmer_index.cpp.o" "gcc" "tests/CMakeFiles/test_suffix.dir/suffix/test_kmer_index.cpp.o.d"
  "/root/repo/tests/suffix/test_maximal_match.cpp" "tests/CMakeFiles/test_suffix.dir/suffix/test_maximal_match.cpp.o" "gcc" "tests/CMakeFiles/test_suffix.dir/suffix/test_maximal_match.cpp.o.d"
  "/root/repo/tests/suffix/test_suffix_array.cpp" "tests/CMakeFiles/test_suffix.dir/suffix/test_suffix_array.cpp.o" "gcc" "tests/CMakeFiles/test_suffix.dir/suffix/test_suffix_array.cpp.o.d"
  "/root/repo/tests/suffix/test_suffix_tree.cpp" "tests/CMakeFiles/test_suffix.dir/suffix/test_suffix_tree.cpp.o" "gcc" "tests/CMakeFiles/test_suffix.dir/suffix/test_suffix_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/suffix/CMakeFiles/pclust_suffix.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/pclust_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/pclust_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pclust_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
