
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/seq/test_alphabet.cpp" "tests/CMakeFiles/test_seq.dir/seq/test_alphabet.cpp.o" "gcc" "tests/CMakeFiles/test_seq.dir/seq/test_alphabet.cpp.o.d"
  "/root/repo/tests/seq/test_complexity.cpp" "tests/CMakeFiles/test_seq.dir/seq/test_complexity.cpp.o" "gcc" "tests/CMakeFiles/test_seq.dir/seq/test_complexity.cpp.o.d"
  "/root/repo/tests/seq/test_fasta.cpp" "tests/CMakeFiles/test_seq.dir/seq/test_fasta.cpp.o" "gcc" "tests/CMakeFiles/test_seq.dir/seq/test_fasta.cpp.o.d"
  "/root/repo/tests/seq/test_sequence_set.cpp" "tests/CMakeFiles/test_seq.dir/seq/test_sequence_set.cpp.o" "gcc" "tests/CMakeFiles/test_seq.dir/seq/test_sequence_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/seq/CMakeFiles/pclust_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pclust_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
