file(REMOVE_RECURSE
  "CMakeFiles/test_seq.dir/seq/test_alphabet.cpp.o"
  "CMakeFiles/test_seq.dir/seq/test_alphabet.cpp.o.d"
  "CMakeFiles/test_seq.dir/seq/test_complexity.cpp.o"
  "CMakeFiles/test_seq.dir/seq/test_complexity.cpp.o.d"
  "CMakeFiles/test_seq.dir/seq/test_fasta.cpp.o"
  "CMakeFiles/test_seq.dir/seq/test_fasta.cpp.o.d"
  "CMakeFiles/test_seq.dir/seq/test_sequence_set.cpp.o"
  "CMakeFiles/test_seq.dir/seq/test_sequence_set.cpp.o.d"
  "test_seq"
  "test_seq.pdb"
  "test_seq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
