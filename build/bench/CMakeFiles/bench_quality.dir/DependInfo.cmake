
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_quality.cpp" "bench/CMakeFiles/bench_quality.dir/bench_quality.cpp.o" "gcc" "bench/CMakeFiles/bench_quality.dir/bench_quality.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/pclust_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/shingle/CMakeFiles/pclust_shingle.dir/DependInfo.cmake"
  "/root/repo/build/src/bigraph/CMakeFiles/pclust_bigraph.dir/DependInfo.cmake"
  "/root/repo/build/src/pace/CMakeFiles/pclust_pace.dir/DependInfo.cmake"
  "/root/repo/build/src/suffix/CMakeFiles/pclust_suffix.dir/DependInfo.cmake"
  "/root/repo/build/src/mpsim/CMakeFiles/pclust_mpsim.dir/DependInfo.cmake"
  "/root/repo/build/src/gos/CMakeFiles/pclust_gos.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/pclust_align.dir/DependInfo.cmake"
  "/root/repo/build/src/dsu/CMakeFiles/pclust_dsu.dir/DependInfo.cmake"
  "/root/repo/build/src/quality/CMakeFiles/pclust_quality.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/pclust_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/pclust_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pclust_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
