# Empty dependencies file for bench_ablation_shingle.
# This may be replaced when dependencies are built.
