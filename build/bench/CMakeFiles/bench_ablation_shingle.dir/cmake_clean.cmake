file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_shingle.dir/bench_ablation_shingle.cpp.o"
  "CMakeFiles/bench_ablation_shingle.dir/bench_ablation_shingle.cpp.o.d"
  "bench_ablation_shingle"
  "bench_ablation_shingle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_shingle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
