# Empty compiler generated dependencies file for metagenome_survey.
# This may be replaced when dependencies are built.
