file(REMOVE_RECURSE
  "CMakeFiles/metagenome_survey.dir/metagenome_survey.cpp.o"
  "CMakeFiles/metagenome_survey.dir/metagenome_survey.cpp.o.d"
  "metagenome_survey"
  "metagenome_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metagenome_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
