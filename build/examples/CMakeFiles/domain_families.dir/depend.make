# Empty dependencies file for domain_families.
# This may be replaced when dependencies are built.
