file(REMOVE_RECURSE
  "CMakeFiles/domain_families.dir/domain_families.cpp.o"
  "CMakeFiles/domain_families.dir/domain_families.cpp.o.d"
  "domain_families"
  "domain_families.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domain_families.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
