# Empty dependencies file for gos_comparison.
# This may be replaced when dependencies are built.
