file(REMOVE_RECURSE
  "CMakeFiles/gos_comparison.dir/gos_comparison.cpp.o"
  "CMakeFiles/gos_comparison.dir/gos_comparison.cpp.o.d"
  "gos_comparison"
  "gos_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gos_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
