#include "pclust/prov/ledger.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "pclust/util/io.hpp"
#include "pclust/util/json.hpp"

namespace pclust::prov {

namespace {

constexpr std::string_view kPhaseNames[] = {"rr", "ccd", "dsd"};
constexpr std::string_view kRuleNames[] = {"containment", "overlap", "B_d",
                                           "B_m"};

[[noreturn]] void bad_line(std::size_t line_no, const std::string& why) {
  throw std::runtime_error("provenance ledger line " +
                           std::to_string(line_no) + ": " + why);
}

std::uint32_t member_u32(const util::JsonValue& v, std::string_view name) {
  const util::JsonValue* m = v.find(name);
  if (!m || !m->is_number()) {
    throw std::runtime_error("missing numeric field '" + std::string(name) +
                             "'");
  }
  return static_cast<std::uint32_t>(m->as_u64());
}

/// Decode one edge object; throws std::runtime_error (no line context —
/// parse_ledger adds it).
Edge edge_from_json(const util::JsonValue& v) {
  Edge e;
  const util::JsonValue* phase = v.find("phase");
  const util::JsonValue* rule = v.find("rule");
  if (!phase || !phase->is_string() || !rule || !rule->is_string()) {
    throw std::runtime_error("missing phase/rule");
  }
  try {
    e.phase = phase_from_name(phase->as_string());
    e.rule = rule_from_name(rule->as_string());
  } catch (const std::invalid_argument& err) {
    throw std::runtime_error(err.what());
  }
  e.a = member_u32(v, "a");
  e.b = member_u32(v, "b");
  const util::JsonValue* score = v.find("score");
  if (!score || !score->is_number()) {
    throw std::runtime_error("missing numeric field 'score'");
  }
  e.score = static_cast<std::int32_t>(score->as_number());
  e.matches = member_u32(v, "matches");
  e.columns = member_u32(v, "columns");
  e.a_span = member_u32(v, "a_span");
  e.b_span = member_u32(v, "b_span");
  return e;
}

}  // namespace

std::string_view phase_name(Phase phase) {
  return kPhaseNames[static_cast<std::size_t>(phase)];
}

std::string_view rule_name(Rule rule) {
  return kRuleNames[static_cast<std::size_t>(rule)];
}

Phase phase_from_name(std::string_view name) {
  for (std::size_t i = 0; i < 3; ++i) {
    if (kPhaseNames[i] == name) return static_cast<Phase>(i);
  }
  throw std::invalid_argument("unknown provenance phase '" +
                              std::string(name) + "' (use rr, ccd, or dsd)");
}

Rule rule_from_name(std::string_view name) {
  for (std::size_t i = 0; i < 4; ++i) {
    if (kRuleNames[i] == name) return static_cast<Rule>(i);
  }
  throw std::invalid_argument("unknown provenance rule '" +
                              std::string(name) +
                              "' (use containment, overlap, B_d, or B_m)");
}

void Ledger::recount() {
  counts.rr_edges = counts.ccd_edges = counts.dsd_edges = 0;
  counts.rule_containment = counts.rule_overlap = 0;
  counts.rule_bd = counts.rule_bm = 0;
  for (const Edge& e : edges) {
    switch (e.phase) {
      case Phase::kRr: ++counts.rr_edges; break;
      case Phase::kCcd: ++counts.ccd_edges; break;
      case Phase::kDsd: ++counts.dsd_edges; break;
    }
    switch (e.rule) {
      case Rule::kContainment: ++counts.rule_containment; break;
      case Rule::kOverlap: ++counts.rule_overlap; break;
      case Rule::kBd: ++counts.rule_bd; break;
      case Rule::kBm: ++counts.rule_bm; break;
    }
  }
}

std::string render_edge(const Edge& e) {
  util::JsonWriter w;
  w.begin_object()
      .key("phase").value(phase_name(e.phase))
      .key("rule").value(rule_name(e.rule))
      .key("a").value(static_cast<std::uint64_t>(e.a))
      .key("b").value(static_cast<std::uint64_t>(e.b))
      .key("score").value(static_cast<std::int64_t>(e.score))
      .key("matches").value(static_cast<std::uint64_t>(e.matches))
      .key("columns").value(static_cast<std::uint64_t>(e.columns))
      .key("a_span").value(static_cast<std::uint64_t>(e.a_span))
      .key("b_span").value(static_cast<std::uint64_t>(e.b_span))
      .end_object();
  return w.str();
}

Edge parse_edge(std::string_view line) {
  util::JsonValue v;
  try {
    v = util::parse_json(line);
  } catch (const util::JsonError& err) {
    throw std::runtime_error(std::string("provenance edge: ") + err.what());
  }
  if (!v.is_object()) {
    throw std::runtime_error("provenance edge: not a JSON object");
  }
  try {
    return edge_from_json(v);
  } catch (const std::runtime_error& err) {
    throw std::runtime_error(std::string("provenance edge: ") + err.what());
  }
}

std::string render_ledger(const Ledger& ledger) {
  std::string out;
  {
    util::JsonWriter w;
    w.begin_object()
        .key("schema").value(kLedgerSchema)
        .key("version").value(kLedgerVersion)
        .key("sequences").value(ledger.sequences)
        .key("edges").value(static_cast<std::uint64_t>(ledger.edges.size()))
        .end_object();
    out += w.str();
    out += '\n';
  }
  for (const Edge& e : ledger.edges) {
    out += render_edge(e);
    out += '\n';
  }
  {
    const LedgerCounts& c = ledger.counts;
    util::JsonWriter w;
    w.begin_object().key("summary").begin_object();
    w.key("edges").begin_object()
        .key("rr").value(c.rr_edges)
        .key("ccd").value(c.ccd_edges)
        .key("dsd").value(c.dsd_edges)
        .key("total").value(c.total_edges())
        .end_object();
    w.key("rules").begin_object()
        .key("containment").value(c.rule_containment)
        .key("overlap").value(c.rule_overlap)
        .key("B_d").value(c.rule_bd)
        .key("B_m").value(c.rule_bm)
        .end_object();
    w.key("merges").begin_object()
        .key("rr").value(c.rr_merges)
        .key("ccd").value(c.ccd_merges)
        .key("dsd").value(c.dsd_merges)
        .end_object();
    w.key("complete").value(c.identity_holds());
    w.end_object().end_object();
    out += w.str();
    out += '\n';
  }
  return out;
}

void write_ledger(const std::string& path, const Ledger& ledger) {
  util::io::io().commit_file(util::io::ArtifactClass::kProvenance, path,
                            render_ledger(ledger));
}

Ledger parse_ledger(std::string_view bytes) {
  Ledger ledger;
  bool have_meta = false;
  bool have_summary = false;
  std::uint64_t declared_edges = 0;
  LedgerCounts declared;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    const std::size_t nl = bytes.find('\n', pos);
    const std::string_view line =
        bytes.substr(pos, nl == std::string_view::npos ? nl : nl - pos);
    pos = nl == std::string_view::npos ? bytes.size() : nl + 1;
    ++line_no;
    if (line.empty()) continue;
    util::JsonValue v;
    try {
      v = util::parse_json(line);
    } catch (const util::JsonError& err) {
      bad_line(line_no, err.what());
    }
    if (!v.is_object()) bad_line(line_no, "not a JSON object");
    if (!have_meta) {
      const util::JsonValue* schema = v.find("schema");
      if (!schema || !schema->is_string() ||
          schema->as_string() != kLedgerSchema) {
        bad_line(line_no, "missing or wrong schema (expected '" +
                              std::string(kLedgerSchema) + "')");
      }
      const util::JsonValue* version = v.find("version");
      if (!version || !version->is_number() ||
          static_cast<int>(version->as_number()) != kLedgerVersion) {
        bad_line(line_no, "unsupported ledger version");
      }
      ledger.sequences = v.at("sequences").as_u64();
      declared_edges = v.at("edges").as_u64();
      have_meta = true;
      continue;
    }
    if (const util::JsonValue* summary = v.find("summary")) {
      if (have_summary) bad_line(line_no, "duplicate summary line");
      const util::JsonValue& edges = summary->at("edges");
      const util::JsonValue& rules = summary->at("rules");
      const util::JsonValue& merges = summary->at("merges");
      declared.rr_edges = edges.at("rr").as_u64();
      declared.ccd_edges = edges.at("ccd").as_u64();
      declared.dsd_edges = edges.at("dsd").as_u64();
      declared.rule_containment = rules.at("containment").as_u64();
      declared.rule_overlap = rules.at("overlap").as_u64();
      declared.rule_bd = rules.at("B_d").as_u64();
      declared.rule_bm = rules.at("B_m").as_u64();
      declared.rr_merges = merges.at("rr").as_u64();
      declared.ccd_merges = merges.at("ccd").as_u64();
      declared.dsd_merges = merges.at("dsd").as_u64();
      have_summary = true;
      continue;
    }
    if (have_summary) bad_line(line_no, "edge after the summary line");
    try {
      ledger.edges.push_back(edge_from_json(v));
    } catch (const std::runtime_error& err) {
      bad_line(line_no, err.what());
    }
  }
  if (!have_meta) throw std::runtime_error("provenance ledger: empty file");
  if (!have_summary) {
    throw std::runtime_error("provenance ledger: missing summary line");
  }
  if (ledger.edges.size() != declared_edges) {
    throw std::runtime_error(
        "provenance ledger: meta declares " + std::to_string(declared_edges) +
        " edges, found " + std::to_string(ledger.edges.size()));
  }
  ledger.counts = declared;
  Ledger check = ledger;
  check.recount();
  if (check.counts.rr_edges != declared.rr_edges ||
      check.counts.ccd_edges != declared.ccd_edges ||
      check.counts.dsd_edges != declared.dsd_edges ||
      check.counts.rule_containment != declared.rule_containment ||
      check.counts.rule_overlap != declared.rule_overlap ||
      check.counts.rule_bd != declared.rule_bd ||
      check.counts.rule_bm != declared.rule_bm) {
    throw std::runtime_error(
        "provenance ledger: summary tallies do not match the edge list");
  }
  return ledger;
}

Ledger read_ledger(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot read provenance ledger: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_ledger(buf.str());
}

}  // namespace pclust::prov
