#include "pclust/prov/explain.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "pclust/dsu/union_find.hpp"

namespace pclust::prov {

namespace {

constexpr std::uint32_t kUnset = 0xFFFFFFFFu;

}  // namespace

EvidenceForest::EvidenceForest(const Ledger& ledger)
    : sequences_(ledger.sequences) {
  for (const Edge& e : ledger.edges) {
    if (e.phase == Phase::kDsd) continue;
    if (e.a >= sequences_ || e.b >= sequences_) {
      throw std::invalid_argument(
          "evidence forest: edge endpoint exceeds the ledger's sequence "
          "universe");
    }
    if (e.a == e.b) {
      throw std::invalid_argument(
          "evidence forest: self-edge (a merge cannot join a sequence to "
          "itself)");
    }
    edges_.push_back(e);
  }

  // Forest check: every RR/CCD edge must join two previously disconnected
  // vertices (each is one surviving union-find merge).
  dsu::UnionFind uf(sequences_);
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> adj(
      sequences_);
  for (std::uint32_t i = 0; i < edges_.size(); ++i) {
    const Edge& e = edges_[i];
    if (!uf.merge(e.a, e.b)) {
      throw std::invalid_argument(
          "evidence forest: cycle — a merge is covered by more than one "
          "evidence edge");
    }
    adj[e.a].emplace_back(e.b, i);
    adj[e.b].emplace_back(e.a, i);
  }
  for (auto& neighbors : adj) {
    std::sort(neighbors.begin(), neighbors.end());
  }

  // Root every tree at its smallest vertex; BFS assigns parent pointers,
  // depths, and canonical roots deterministically.
  parent_.assign(sequences_, kUnset);
  parent_edge_.assign(sequences_, kUnset);
  root_.assign(sequences_, kUnset);
  depth_.assign(sequences_, 0);
  std::vector<std::uint32_t> queue;
  for (std::uint32_t v = 0; v < sequences_; ++v) {
    if (root_[v] != kUnset) continue;
    root_[v] = v;
    parent_[v] = v;
    queue.assign(1, v);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const std::uint32_t u = queue[head];
      for (const auto& [w, edge_idx] : adj[u]) {
        if (root_[w] != kUnset) continue;
        root_[w] = v;
        parent_[w] = u;
        parent_edge_[w] = edge_idx;
        depth_[w] = depth_[u] + 1;
        queue.push_back(w);
      }
    }
  }
}

bool EvidenceForest::connected(std::uint32_t a, std::uint32_t b) const {
  if (a >= sequences_ || b >= sequences_) {
    throw std::invalid_argument(
        "evidence forest: sequence id out of range");
  }
  return root_[a] == root_[b];
}

std::vector<std::uint32_t> EvidenceForest::path(std::uint32_t a,
                                                std::uint32_t b) const {
  if (!connected(a, b) || a == b) return {};
  // Lift the deeper endpoint to the common depth, then lift both until
  // they meet; the meeting point is the unique path's apex.
  std::vector<std::uint32_t> down;  // edges a -> apex, in walk order
  std::vector<std::uint32_t> up;    // edges b -> apex, in walk order
  std::uint32_t x = a;
  std::uint32_t y = b;
  while (depth_[x] > depth_[y]) {
    down.push_back(parent_edge_[x]);
    x = parent_[x];
  }
  while (depth_[y] > depth_[x]) {
    up.push_back(parent_edge_[y]);
    y = parent_[y];
  }
  while (x != y) {
    down.push_back(parent_edge_[x]);
    up.push_back(parent_edge_[y]);
    x = parent_[x];
    y = parent_[y];
  }
  down.insert(down.end(), up.rbegin(), up.rend());
  return down;
}

FamilyAudit audit_family(const EvidenceForest& forest, const Ledger& ledger,
                         std::vector<std::uint32_t> members) {
  if (members.empty()) {
    throw std::invalid_argument("audit_family: empty member list");
  }
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());

  FamilyAudit audit;
  audit.members = members;

  // Steiner subtree = union of the forest paths member -> members[0]
  // (every vertex on such a path lies on a member-to-member path).
  const std::uint32_t anchor = members[0];
  std::unordered_set<std::uint32_t> tree_edges;
  std::unordered_set<std::uint32_t> tree_vertices;
  tree_vertices.insert(anchor);
  for (const std::uint32_t m : members) {
    if (m == anchor) continue;
    if (!forest.connected(anchor, m)) {
      audit.connected = false;
      continue;
    }
    for (const std::uint32_t e : forest.path(anchor, m)) {
      if (tree_edges.insert(e).second) {
        tree_vertices.insert(forest.edge(e).a);
        tree_vertices.insert(forest.edge(e).b);
      }
    }
  }

  // Weak links: ascending score (the likeliest spurious bridges first),
  // ties on ascending (min id, max id).
  audit.weak_links.assign(tree_edges.begin(), tree_edges.end());
  std::sort(audit.weak_links.begin(), audit.weak_links.end(),
            [&](std::uint32_t x, std::uint32_t y) {
              const Edge& ex = forest.edge(x);
              const Edge& ey = forest.edge(y);
              if (ex.score != ey.score) return ex.score < ey.score;
              const auto kx = std::minmax(ex.a, ex.b);
              const auto ky = std::minmax(ey.a, ey.b);
              if (kx.first != ky.first) return kx.first < ky.first;
              return kx.second < ky.second;
            });

  const std::unordered_set<std::uint32_t> member_set(members.begin(),
                                                     members.end());
  for (const std::uint32_t v : tree_vertices) {
    if (!member_set.count(v)) audit.steiner_vertices.push_back(v);
  }
  std::sort(audit.steiner_vertices.begin(), audit.steiner_vertices.end());

  // Hub detection on the Steiner tree: a vertex whose removal leaves the
  // members in >= 2 disconnected member-bearing groups. Root the tree at
  // the anchor, count members per subtree, and evaluate each vertex from
  // its children's counts plus the "everything above" remainder.
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> tadj;
  for (const std::uint32_t e : tree_edges) {
    tadj[forest.edge(e).a].push_back(forest.edge(e).b);
    tadj[forest.edge(e).b].push_back(forest.edge(e).a);
  }
  for (auto& [v, neighbors] : tadj) {
    std::sort(neighbors.begin(), neighbors.end());
  }
  std::uint32_t reachable_members = 0;
  for (const std::uint32_t m : members) {
    if (m == anchor || (forest.connected(anchor, m))) ++reachable_members;
  }
  // Iterative DFS order (parents before children), then a reverse sweep
  // accumulates subtree member counts.
  std::vector<std::uint32_t> order;
  std::unordered_map<std::uint32_t, std::uint32_t> tparent;
  order.push_back(anchor);
  tparent[anchor] = anchor;
  for (std::size_t head = 0; head < order.size(); ++head) {
    const std::uint32_t u = order[head];
    for (const std::uint32_t w : tadj[u]) {
      if (tparent.count(w)) continue;
      tparent[w] = u;
      order.push_back(w);
    }
  }
  std::unordered_map<std::uint32_t, std::uint32_t> subtree_members;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const std::uint32_t v = *it;
    std::uint32_t count = member_set.count(v) ? 1u : 0u;
    count += subtree_members[v];  // children already accumulated
    subtree_members[v] = count;
    if (v != anchor) subtree_members[tparent[v]] += count;
  }
  for (const std::uint32_t v : order) {
    std::uint32_t parts = 0;
    std::uint32_t min_part = 0xFFFFFFFFu;
    for (const std::uint32_t w : tadj[v]) {
      if (tparent[w] != v) continue;  // child edges only
      const std::uint32_t count = subtree_members[w];
      if (count == 0) continue;
      ++parts;
      min_part = std::min(min_part, count);
    }
    // v's own membership belongs to no group: it is the removed vertex.
    const std::uint32_t above = reachable_members - subtree_members[v];
    if (above > 0) {
      ++parts;
      min_part = std::min(min_part, above);
    }
    if (parts >= 2) {
      audit.hubs.push_back(Hub{v, parts, min_part});
    }
  }
  std::sort(audit.hubs.begin(), audit.hubs.end(),
            [](const Hub& x, const Hub& y) {
              if (x.parts != y.parts) return x.parts > y.parts;
              if (x.min_part != y.min_part) return x.min_part > y.min_part;
              return x.seq < y.seq;
            });

  for (const Edge& e : ledger.edges) {
    if (e.phase != Phase::kDsd) continue;
    if (member_set.count(e.a) && member_set.count(e.b)) ++audit.dsd_support;
  }
  return audit;
}

}  // namespace pclust::prov
