// Explain algorithms over the evidence forest (`pclust explain`).
//
// The RR + CCD edges of a ledger form a FOREST over sequence ids: every
// removed sequence has exactly one containment edge to its (then-present)
// container — removal chains are acyclic because a container must still be
// present when cited — and the CCD edges are exactly the successful
// union-find merges over survivors (|component| - 1 edges per component).
// Hence:
//   - the merge chain between two co-family sequences is the UNIQUE forest
//     path between them (--pair);
//   - a family's spanning evidence is the Steiner subtree of the forest
//     connecting its members (--family), on which weak links (lowest
//     alignment score first — the likeliest spurious bridges) and hubs
//     (vertices whose removal disconnects the members — the fusion
//     signature plm-cluster warns about) are ranked.
// DSD edges are not part of the forest (they merge shingle nodes, not
// sequences); they corroborate a family as `dsd_support`.
#pragma once

#include <cstdint>
#include <vector>

#include "pclust/prov/ledger.hpp"

namespace pclust::prov {

/// The RR + CCD evidence forest of a ledger, indexed for path queries.
/// Construction throws std::invalid_argument if the edges do not form a
/// forest (a cycle would mean the ledger double-covers a merge).
class EvidenceForest {
 public:
  explicit EvidenceForest(const Ledger& ledger);

  [[nodiscard]] std::uint64_t sequences() const { return sequences_; }

  [[nodiscard]] bool connected(std::uint32_t a, std::uint32_t b) const;

  /// The unique forest path a -> b as ordered indices into this forest's
  /// edge list (see edge(); each consecutive edge shares a vertex with the
  /// previous one, starting at a). Empty when a == b or when the two are
  /// in different trees (check connected() to distinguish).
  [[nodiscard]] std::vector<std::uint32_t> path(std::uint32_t a,
                                                std::uint32_t b) const;

  [[nodiscard]] const Edge& edge(std::uint32_t index) const {
    return edges_[index];
  }

 private:
  std::uint64_t sequences_ = 0;
  std::vector<Edge> edges_;  // RR + CCD edges only, ledger order
  /// Rooted-forest encoding: parent vertex and the connecting edge index
  /// per vertex (parent_[v] == v at roots).
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> parent_edge_;
  std::vector<std::uint32_t> root_;   // canonical root per vertex
  std::vector<std::uint32_t> depth_;
};

/// One hub candidate: removing `seq` splits the family members into
/// `parts` member-bearing groups, the smallest holding `min_part` members.
struct Hub {
  std::uint32_t seq = 0;
  std::uint32_t parts = 0;
  std::uint32_t min_part = 0;
};

/// The spanning evidence of one family.
struct FamilyAudit {
  std::vector<std::uint32_t> members;      // as given, sorted
  /// Steiner-tree edges (indices into the forest's edge list) ranked
  /// weakest first: ascending score, then ascending (min id, max id) —
  /// the deterministic weak-link order.
  std::vector<std::uint32_t> weak_links;
  /// Steiner vertices that are NOT members (bridging intermediates).
  std::vector<std::uint32_t> steiner_vertices;
  /// Hubs ranked most-fragmenting first: descending parts, descending
  /// min_part, ascending seq.
  std::vector<Hub> hubs;
  /// DSD edges with both endpoints inside the family (corroboration).
  std::uint64_t dsd_support = 0;
  /// False when some members sit in different evidence trees (a ledger /
  /// clustering mismatch — should not happen for a matching pair).
  bool connected = true;
};

/// Audit @p members (one family) against @p ledger via @p forest. Throws
/// std::invalid_argument when members is empty.
[[nodiscard]] FamilyAudit audit_family(const EvidenceForest& forest,
                                       const Ledger& ledger,
                                       std::vector<std::uint32_t> members);

}  // namespace pclust::prov
