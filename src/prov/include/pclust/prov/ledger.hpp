// The provenance ledger: compact JSONL serialization of evidence edges.
//
// Layout (one JSON document per line):
//   line 1   {"schema":"pclust-provenance","version":1,
//             "sequences":N,"edges":M}
//   lines 2..M+1   one edge each, in canonical derivation order (the line
//             number is the implicit merge ordinal; no schedule-dependent
//             field appears on an edge)
//   last line {"summary":{...}} — per-phase/per-rule edge counts, the
//             expected union-find merge counts, and the merge-identity
//             flag `complete` (edges == merges for every phase).
//
// Files are committed atomically through the process IoEnv under the
// `provenance` artifact class (throw-on-failure policy: a requested audit
// artifact that cannot be persisted is an error, like a report). The
// rendered bytes are a pure function of the Ledger, so byte comparison of
// two ledger files is a complete determinism check.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pclust/prov/edge.hpp"

namespace pclust::prov {

inline constexpr std::string_view kLedgerSchema = "pclust-provenance";
inline constexpr int kLedgerVersion = 1;

/// Per-phase and per-rule tallies plus the merge-identity counts the
/// summary line (and the run report's `provenance` section) carry.
struct LedgerCounts {
  std::uint64_t rr_edges = 0;
  std::uint64_t ccd_edges = 0;
  std::uint64_t dsd_edges = 0;
  std::uint64_t rule_containment = 0;
  std::uint64_t rule_overlap = 0;
  std::uint64_t rule_bd = 0;
  std::uint64_t rule_bm = 0;
  /// Expected union-find merges per phase (derivation-side identity):
  /// RR: #removed sequences; CCD: #survivors - #components;
  /// DSD: sum over graphs of (S1 nodes - raw components).
  std::uint64_t rr_merges = 0;
  std::uint64_t ccd_merges = 0;
  std::uint64_t dsd_merges = 0;

  [[nodiscard]] std::uint64_t total_edges() const {
    return rr_edges + ccd_edges + dsd_edges;
  }
  /// Every final-partition merge covered by exactly one evidence edge?
  [[nodiscard]] bool identity_holds() const {
    return rr_edges == rr_merges && ccd_edges == ccd_merges &&
           dsd_edges == dsd_merges;
  }
};

struct Ledger {
  std::uint64_t sequences = 0;      // input-set size (id universe)
  std::vector<Edge> edges;          // canonical derivation order
  LedgerCounts counts;

  /// Recount the per-phase/per-rule tallies from `edges` (the expected
  /// merge counts are the caller's to fill — they come from phase results,
  /// not from the edge list, or the identity check would be vacuous).
  void recount();
};

/// Render one edge as its canonical JSONL line (no trailing newline).
[[nodiscard]] std::string render_edge(const Edge& edge);

/// Parse one render_edge() line back; throws std::runtime_error on any
/// malformed input (used by the pipeline's per-phase sidecar files, whose
/// edge lines share the ledger's format).
[[nodiscard]] Edge parse_edge(std::string_view line);

/// Render the full ledger (meta line, edges, summary line), newline
/// terminated. Byte-stable: equal ledgers render to equal bytes.
[[nodiscard]] std::string render_ledger(const Ledger& ledger);

/// Atomically commit render_ledger() bytes to @p path through the IoEnv
/// (ArtifactClass::kProvenance; persistent failure throws util::io::
/// IoError).
void write_ledger(const std::string& path, const Ledger& ledger);

/// Parse a ledger back (strict: schema/version checked, every line must
/// parse, the summary tallies must match the edge list). Throws
/// std::runtime_error with the offending line on any mismatch.
[[nodiscard]] Ledger parse_ledger(std::string_view bytes);

/// Read + parse a ledger file; throws std::runtime_error if unreadable.
[[nodiscard]] Ledger read_ledger(const std::string& path);

}  // namespace pclust::prov
