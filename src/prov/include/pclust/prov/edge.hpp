// Merge-provenance evidence edges (decision-level observability).
//
// Every union-find merge that survives into the final partition is
// representable as one evidence edge: which two sequences were joined, in
// which phase, under which rule, and with what alignment (or shingle
// overlap) evidence. The edge set is a CANONICAL DERIVATION of the final
// partition — a pure function of (input set, final phase results,
// parameters) — so the ledger is bit-identical across thread counts,
// master-tree topologies, checkpoint resume, and any healed fault plan
// (see pace/provenance.hpp for the derivation argument, DESIGN.md §16 for
// the determinism discussion). Schedule-dependent attribution (virtual
// time, owning rank) deliberately lives in the run report, NOT on edges.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace pclust::prov {

/// Pipeline phase that performed the merge.
enum class Phase : std::uint8_t {
  kRr = 0,   // redundancy removal: removed sequence -> its container
  kCcd,      // connected-component detection: overlap-accepted union
  kDsd,      // dense-subgraph detection: Shingle S1-node union
};

/// Decision rule the merge was accepted under.
enum class Rule : std::uint8_t {
  kContainment = 0,  // Definition 1 (RR)
  kOverlap,          // Definition 2 (CCD)
  kBd,               // duplicate reduction (DSD over B_d)
  kBm,               // match-based reduction (DSD over B_m)
};

[[nodiscard]] std::string_view phase_name(Phase phase);
[[nodiscard]] std::string_view rule_name(Rule rule);
/// Throw std::invalid_argument for unknown names.
[[nodiscard]] Phase phase_from_name(std::string_view name);
[[nodiscard]] Rule rule_from_name(std::string_view name);

/// One evidence edge. For RR/CCD edges the evidence is the canonical
/// alignment of (a, b): score, identical columns `matches` over alignment
/// `columns`, and the aligned span in each sequence. For DSD edges the
/// evidence is the Shingle producer-set overlap witnessed by the merged
/// S1 nodes: `matches` = |producers(a-node) ∩ producers(b-node)|,
/// `columns` = |union|, score mirrors `matches`, spans are 0; a and b are
/// the smallest producer of each merged node (a == b is legal — two
/// shingle nodes of the same vertex). Edge ORDER inside a ledger is the
/// canonical derivation order; the line number is the implicit ordinal.
struct Edge {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  Phase phase = Phase::kCcd;
  Rule rule = Rule::kOverlap;
  std::int32_t score = 0;
  std::uint32_t matches = 0;
  std::uint32_t columns = 0;
  std::uint32_t a_span = 0;
  std::uint32_t b_span = 0;

  [[nodiscard]] bool operator==(const Edge& o) const = default;
};

}  // namespace pclust::prov
