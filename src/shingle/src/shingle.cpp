#include "pclust/shingle/shingle.hpp"

#include <algorithm>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "pclust/dsu/union_find.hpp"
#include "pclust/exec/pool.hpp"
#include "pclust/shingle/minwise.hpp"
#include "pclust/util/io.hpp"
#include "pclust/util/log.hpp"
#include "pclust/util/memgov.hpp"
#include "pclust/util/memsize.hpp"
#include "pclust/util/metrics.hpp"
#include "pclust/util/timer.hpp"

namespace pclust::shingle {

namespace {

/// Sorted-unique in place.
void canonicalize(std::vector<std::uint32_t>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

std::vector<DenseSubgraph> dense_subgraphs(const bigraph::BipartiteGraph& graph,
                                           const ShingleParams& params,
                                           DsdStats* stats, exec::Pool* pool,
                                           std::vector<ShingleMerge>* merges) {
  util::Timer timer;
  DsdStats local;
  const bool pooled = pool && pool->size() > 1;

  // ---- Pass I: (s1, c1)-shingles of every left vertex -----------------
  // Pooled: vertices are shingled concurrently (each vertex's shingle set
  // depends only on its own links), then folded in vertex order — the exact
  // append order of the serial loop.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> tuples;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> elements_of;
  if (pooled && graph.left_count() > 1) {
    auto per_vertex = exec::parallel_map<std::vector<Shingle>>(
        *pool, graph.left_count(), 16, [&](std::size_t l) {
          return shingle_set(graph.out_links(static_cast<std::uint32_t>(l)),
                             params.s1, params.c1, params.seed);
        });
    for (std::uint32_t l = 0; l < graph.left_count(); ++l) {
      for (Shingle& sh : per_vertex[l]) {
        tuples.emplace_back(sh.value, l);
        elements_of.try_emplace(sh.value, std::move(sh.elements));
      }
    }
  } else {
    for (std::uint32_t l = 0; l < graph.left_count(); ++l) {
      for (Shingle& sh :
           shingle_set(graph.out_links(l), params.s1, params.c1,
                       params.seed)) {
        tuples.emplace_back(sh.value, l);
        elements_of.try_emplace(sh.value, std::move(sh.elements));
      }
    }
  }
  local.tuples = tuples.size();
  std::sort(tuples.begin(), tuples.end());

  // Group tuples by shingle value -> first-level shingle nodes.
  struct S1Node {
    std::uint64_t value;
    std::vector<std::uint32_t> producers;  // left vertices, sorted unique
  };
  std::vector<S1Node> s1;
  for (std::size_t i = 0; i < tuples.size();) {
    std::size_t j = i;
    S1Node node;
    node.value = tuples[i].first;
    while (j < tuples.size() && tuples[j].first == node.value) {
      node.producers.push_back(tuples[j].second);
      ++j;
    }
    canonicalize(node.producers);
    s1.push_back(std::move(node));
    i = j;
  }
  local.first_level_shingles = s1.size();

  // Charge the Pass I working set as soon as it exists, so the spill
  // decision below sees the pressure this table actually creates (both
  // charges fold into the whole-stage charge once the peak breakdown is
  // taken after Pass II).
  util::MemoryCharge tuples_charge("shingle.tuples",
                                   util::vector_bytes(tuples));
  util::MemoryCharge elements_charge;
  {
    std::uint64_t bytes = util::hash_container_bytes(elements_of);
    for (const auto& [value, elems] : elements_of) {
      bytes += util::vector_bytes(elems);
    }
    elements_charge.add("shingle.elements", bytes);
  }

  // The element table is cold through all of Pass II — only Pass I fills
  // it and the report phase reads it back — so under memory pressure the
  // governor spills it through the IoEnv (ArtifactClass::kSpill) and the
  // report reloads it. A spill I/O failure just keeps the table in memory:
  // spilling is an optimization, losing spilled data would not be. The
  // reload reconstructs the same key -> elements mapping, so the reported
  // families are bit-identical either way.
  std::unique_ptr<util::io::SpillFile> spill;
  if (!elements_of.empty() && util::governor().should_spill("dsd")) {
    try {
      auto file = std::make_unique<util::io::SpillFile>("shingle-elements");
      for (const auto& [value, elems] : elements_of) {
        const std::uint64_t v = value;
        const auto n = static_cast<std::uint32_t>(elems.size());
        file->write(&v, sizeof v);
        file->write(&n, sizeof n);
        file->write(elems.data(), n * sizeof(std::uint32_t));
      }
      file->finish();
      spill = std::move(file);
      std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>().swap(
          elements_of);
      elements_charge.reset();  // the table now lives on disk
    } catch (const util::io::IoError& err) {
      PCLUST_WARN << "shingle: spill failed, keeping element table in "
                     "memory: "
                  << err.what();
    }
  }

  // ---- Pass II: (s2, c2)-shingles of each first-level shingle ----------
  // First-level shingles sharing a second-level shingle are linked; the
  // S2->S1 connected components are extracted with union-find.
  dsu::UnionFind uf(s1.size());
  std::unordered_map<std::uint64_t, std::uint32_t> s2_first_owner;
  const std::uint64_t seed2 = params.seed ^ 0xD5DEADBEEF00ULL;
  // Provenance sink: surviving merges recorded as node-index pairs at
  // decision time; resolved to ShingleMerge after the (possibly spilled)
  // element table is back in memory.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> merged_nodes;
  const auto fold = [&](std::uint32_t i, std::uint64_t value) {
    const auto [it, inserted] = s2_first_owner.try_emplace(value, i);
    if (!inserted && uf.merge(i, it->second) && merges) {
      merged_nodes.emplace_back(i, it->second);
    }
  };
  if (pooled && s1.size() > 1) {
    // Hash concurrently, merge serially in node order: union-find state
    // evolves exactly as in the serial loop.
    auto per_node = exec::parallel_map<std::vector<std::uint64_t>>(
        *pool, s1.size(), 16, [&](std::size_t i) {
          return shingle_values(s1[i].producers, params.s2, params.c2, seed2);
        });
    for (std::uint32_t i = 0; i < s1.size(); ++i) {
      for (std::uint64_t value : per_node[i]) fold(i, value);
    }
  } else {
    for (std::uint32_t i = 0; i < s1.size(); ++i) {
      for (std::uint64_t value :
           shingle_values(s1[i].producers, params.s2, params.c2, seed2)) {
        fold(i, value);
      }
    }
  }
  local.second_level_shingles = s2_first_owner.size();

  // Peak working set of the two-level shingling pass: everything (except
  // a spilled element table) is alive here. Must scale with V + E of the
  // reduction graph, not |V|^2.
  util::MemoryCharge shingle_charge;
  {
    util::MemoryBreakdown b("shingle");
    b.add("tuples", util::vector_bytes(tuples));
    std::uint64_t s1_bytes = util::vector_bytes(s1);
    for (const S1Node& n : s1) s1_bytes += util::vector_bytes(n.producers);
    b.add("s1_nodes", s1_bytes);
    std::uint64_t elem_bytes = util::hash_container_bytes(elements_of);
    for (const auto& [value, elems] : elements_of) {
      elem_bytes += util::vector_bytes(elems);
    }
    b.add("shingle_elements", elem_bytes);
    b.add("union_find", uf.memory_usage());
    b.add("s2_owners", util::hash_container_bytes(s2_first_owner));
    util::record_memory(b, "dsd");
    // Fold the Pass I charges into the whole-stage charge (b already
    // counts tuples and the — possibly spilled-to-zero — element table).
    tuples_charge.reset();
    elements_charge.reset();
    shingle_charge.add("shingle", b.total());
  }

  // Reload a spilled element table for the report phase.
  if (spill) {
    const std::vector<std::uint8_t> bytes = spill->read_all();
    std::size_t pos = 0;
    while (pos < bytes.size()) {
      std::uint64_t value = 0;
      std::uint32_t n = 0;
      std::memcpy(&value, bytes.data() + pos, sizeof value);
      pos += sizeof value;
      std::memcpy(&n, bytes.data() + pos, sizeof n);
      pos += sizeof n;
      std::vector<std::uint32_t> elems(n);
      std::memcpy(elems.data(), bytes.data() + pos,
                  n * sizeof(std::uint32_t));
      pos += n * sizeof(std::uint32_t);
      elements_of.emplace(value, std::move(elems));
    }
    spill.reset();
  }

  // Resolve the recorded merge decisions now that the element table is
  // guaranteed in memory: producer-overlap counts as evidence, each node's
  // smallest element (shingle elements are sorted) as the endpoint.
  if (merges) {
    merges->reserve(merges->size() + merged_nodes.size());
    for (const auto& [i, j] : merged_nodes) {
      const auto& pa = s1[i].producers;
      const auto& pb = s1[j].producers;
      std::uint32_t inter = 0;
      for (std::size_t x = 0, y = 0; x < pa.size() && y < pb.size();) {
        if (pa[x] < pb[y]) {
          ++x;
        } else if (pb[y] < pa[x]) {
          ++y;
        } else {
          ++inter, ++x, ++y;
        }
      }
      ShingleMerge m;
      m.a = elements_of.at(s1[i].value).front();
      m.b = elements_of.at(s1[j].value).front();
      m.matches = inter;
      m.columns =
          static_cast<std::uint32_t>(pa.size() + pb.size()) - inter;
      merges->push_back(m);
    }
  }

  // ---- Report: components -> (A, B) ------------------------------------
  std::vector<DenseSubgraph> out;
  for (auto& members : uf.extract_sets()) {
    DenseSubgraph ds;
    for (std::uint32_t node : members) {
      const S1Node& n = s1[node];
      ds.left.insert(ds.left.end(), n.producers.begin(), n.producers.end());
      const auto& elems = elements_of.at(n.value);
      ds.right.insert(ds.right.end(), elems.begin(), elems.end());
    }
    canonicalize(ds.left);
    canonicalize(ds.right);
    out.push_back(std::move(ds));
  }
  local.raw_components = out.size();
  std::sort(out.begin(), out.end(),
            [](const DenseSubgraph& a, const DenseSubgraph& b) {
              const std::size_t sa = a.left.size() + a.right.size();
              const std::size_t sb = b.left.size() + b.right.size();
              if (sa != sb) return sa > sb;
              if (a.left != b.left) return a.left < b.left;
              return a.right < b.right;
            });

  local.elapsed_seconds = timer.elapsed_seconds();
  {
    auto& m = util::metrics();
    m.counter("shingle.passes").add(1);
    m.counter("shingle.tuples").add(local.tuples);
    m.counter("shingle.first_level_shingles").add(local.first_level_shingles);
    m.counter("shingle.second_level_shingles").add(local.second_level_shingles);
    m.counter("shingle.raw_components").add(local.raw_components);
  }
  if (stats) *stats = local;
  return out;
}

std::vector<std::vector<seq::SeqId>> report_families(
    const bigraph::ComponentGraph& component, const ShingleParams& params,
    DsdStats* stats, exec::Pool* pool, std::vector<ShingleMerge>* merges) {
  const std::size_t first_merge = merges ? merges->size() : 0;
  const auto candidates =
      dense_subgraphs(component.graph, params, stats, pool, merges);
  // Lift merge endpoints from right-universe vertices to sequence ids.
  if (merges) {
    for (std::size_t k = first_merge; k < merges->size(); ++k) {
      (*merges)[k].a = component.members[(*merges)[k].a];
      (*merges)[k].b = component.members[(*merges)[k].b];
    }
  }

  std::vector<std::vector<seq::SeqId>> families;
  std::unordered_set<std::uint32_t> claimed;  // right-vertex universe
  for (const DenseSubgraph& ds : candidates) {
    std::vector<std::uint32_t> nodes;
    if (component.reduction == bigraph::Reduction::kDuplicate) {
      // A and B live in the same (duplicated) vertex universe: report
      // A ∪ B iff |A ∩ B| / |A ∪ B| >= τ.
      std::vector<std::uint32_t> uni, inter;
      std::set_union(ds.left.begin(), ds.left.end(), ds.right.begin(),
                     ds.right.end(), std::back_inserter(uni));
      std::set_intersection(ds.left.begin(), ds.left.end(), ds.right.begin(),
                            ds.right.end(), std::back_inserter(inter));
      if (uni.empty() ||
          static_cast<double>(inter.size()) / static_cast<double>(uni.size()) <
              params.tau) {
        continue;
      }
      nodes = std::move(uni);
    } else {
      // Domain-based reduction: the family is B.
      nodes = ds.right;
    }

    // Disjointness: families are claimed largest-first; vertices already
    // assigned to an earlier (larger) family drop out.
    std::vector<seq::SeqId> family;
    for (std::uint32_t v : nodes) {
      if (claimed.insert(v).second) family.push_back(component.members[v]);
    }
    if (family.size() >= params.min_size) {
      std::sort(family.begin(), family.end());
      families.push_back(std::move(family));
    }
  }
  std::sort(families.begin(), families.end(),
            [](const auto& a, const auto& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a.front() < b.front();
            });
  return families;
}

}  // namespace pclust::shingle
