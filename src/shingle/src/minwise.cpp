#include "pclust/shingle/minwise.hpp"

#include <algorithm>

#include "pclust/exec/pool.hpp"
#include "pclust/util/rng.hpp"

namespace pclust::shingle {

namespace {

/// Select the s elements of links minimal under the keyed hash; returns
/// them sorted by vertex id (canonical set order).
std::vector<std::uint32_t> min_s(std::span<const std::uint32_t> links,
                                 std::uint32_t s, std::uint64_t key) {
  // (hash, vertex) pairs; partial selection of the s smallest.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ranked;
  ranked.reserve(links.size());
  for (std::uint32_t x : links) {
    ranked.emplace_back(util::mix64((static_cast<std::uint64_t>(x) + 1) * key),
                        x);
  }
  std::partial_sort(ranked.begin(), ranked.begin() + s, ranked.end());
  std::vector<std::uint32_t> out(s);
  for (std::uint32_t i = 0; i < s; ++i) out[i] = ranked[i].second;
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t canonical_value(const std::vector<std::uint32_t>& elements) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::uint32_t e : elements) h = util::hash_combine(h, e);
  return h;
}

std::uint64_t permutation_key(std::uint64_t seed, std::uint32_t k) {
  // Odd multiplier per permutation; SplitMix expansion of (seed, k).
  util::SplitMix64 sm(seed ^ (static_cast<std::uint64_t>(k) * 0x9e3779b97f4a7c15ULL));
  return sm.next() | 1ULL;
}

}  // namespace

std::vector<Shingle> shingle_set(std::span<const std::uint32_t> links,
                                 std::uint32_t s, std::uint32_t c,
                                 std::uint64_t seed) {
  std::vector<Shingle> out;
  if (s == 0 || links.size() < s) return out;
  if (links.size() == s) {
    // Every permutation selects the whole set: a single shingle.
    std::vector<std::uint32_t> all(links.begin(), links.end());
    std::sort(all.begin(), all.end());
    out.push_back(Shingle{canonical_value(all), std::move(all)});
    return out;
  }
  out.reserve(c);
  for (std::uint32_t k = 0; k < c; ++k) {
    auto elements = min_s(links, s, permutation_key(seed, k));
    out.push_back(Shingle{canonical_value(elements), std::move(elements)});
  }
  std::sort(out.begin(), out.end(), [](const Shingle& a, const Shingle& b) {
    return a.value < b.value;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Shingle& a, const Shingle& b) {
                          return a.value == b.value;
                        }),
            out.end());
  return out;
}

std::vector<Shingle> shingle_set(std::span<const std::uint32_t> links,
                                 std::uint32_t s, std::uint32_t c,
                                 std::uint64_t seed, exec::Pool& pool) {
  if (pool.size() <= 1 || s == 0 || links.size() <= s || c < 2) {
    return shingle_set(links, s, c, seed);
  }
  auto out = exec::parallel_map<Shingle>(pool, c, 8, [&](std::size_t k) {
    auto elements =
        min_s(links, s, permutation_key(seed, static_cast<std::uint32_t>(k)));
    return Shingle{canonical_value(elements), std::move(elements)};
  });
  std::sort(out.begin(), out.end(), [](const Shingle& a, const Shingle& b) {
    return a.value < b.value;
  });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const Shingle& a, const Shingle& b) {
                          return a.value == b.value;
                        }),
            out.end());
  return out;
}

std::vector<std::uint64_t> shingle_values(std::span<const std::uint32_t> links,
                                          std::uint32_t s, std::uint32_t c,
                                          std::uint64_t seed) {
  std::vector<std::uint64_t> out;
  for (const Shingle& sh : shingle_set(links, s, c, seed)) {
    out.push_back(sh.value);
  }
  return out;
}

}  // namespace pclust::shingle
