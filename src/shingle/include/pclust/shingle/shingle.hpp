// The two-pass Shingle algorithm for dense bipartite subgraph detection
// (Gibson, Kumar & Tomkins, VLDB 2005 [12]; paper §IV-D), with the
// modifications the paper describes:
//
//   Pass I  — an (s1, c1)-shingle set is generated for every left vertex;
//             the <shingle, vertex> tuples are sorted to group vertices
//             sharing a shingle.
//   Pass II — the algorithm reverses direction: an (s2, c2)-shingle set is
//             generated for every first-level shingle over the vertices
//             that produced it, yielding second-level shingles.
//   Report  — connected components of the S2-to-S1 shingle graph (via
//             union–find [29]) are enumerated; each component yields A
//             (the Vl vertices that produced its first-level shingles) and
//             B (the Vr vertices its first-level shingles are made of).
//
// Because the pipeline needs a DISJOINT set of dense subgraphs (proteins
// map many-to-one to families), candidates are post-processed greedily,
// largest first, dropping already-claimed vertices.
//
// Reporting rules per reduction (§III): for B_d a component is emitted as
// A ∪ B when |A ∩ B| / |A ∪ B| >= τ; for B_m the emitted subgraph is B.
#pragma once

#include <cstdint>
#include <vector>

#include "pclust/bigraph/bipartite_graph.hpp"
#include "pclust/bigraph/builders.hpp"

namespace pclust::exec {
class Pool;
}

namespace pclust::shingle {

struct ShingleParams {
  /// First-level (s, c): the paper's tuned value for the ORF data is
  /// (5, 300).
  std::uint32_t s1 = 5;
  std::uint32_t c1 = 300;
  /// Second-level (s, c): grouping of first-level shingles.
  std::uint32_t s2 = 2;
  std::uint32_t c2 = 100;
  std::uint64_t seed = 0x5EEDBA5Eu;
  /// Minimum reported dense-subgraph size (paper: 5).
  std::uint32_t min_size = 5;
  /// Jaccard cutoff for the duplicate reduction's A ≈ B test
  /// ("0 << τ <= 1").
  double tau = 0.5;
};

/// A candidate dense subgraph before reduction-specific reporting.
struct DenseSubgraph {
  std::vector<std::uint32_t> left;   // A: subset of Vl, sorted
  std::vector<std::uint32_t> right;  // B: subset of Vr, sorted
};

struct DsdStats {
  std::uint64_t tuples = 0;                 // <shingle, vertex> pairs (pass I)
  std::uint64_t first_level_shingles = 0;   // distinct
  std::uint64_t second_level_shingles = 0;  // distinct
  std::uint64_t raw_components = 0;         // before disjointness/min-size
  double elapsed_seconds = 0.0;             // measured wall time (Fig. 7b)
};

/// One SURVIVING Pass II union–find merge, reported at decision time (the
/// merge-provenance sink; shingle stays free of the prov library — callers
/// convert these to evidence edges). Evidence: the two merged first-level
/// shingle nodes shared a second-level shingle, witnessed by their
/// producer-set overlap (`matches` = |∩|, `columns` = |∪| — counts, so
/// they are meaningful under both reductions even though B_m producers
/// are words). Endpoints are each node's smallest shingle ELEMENT — a
/// right vertex under both reductions, hence always mappable to a
/// sequence; a == b is legal (two shingle nodes of the same vertex).
/// From dense_subgraphs the endpoints are right-universe vertex indices;
/// report_families maps them through ComponentGraph::members to SeqIds.
/// The list is a pure function of (graph, params) — the Pass II fold is
/// serial in node order for every pool size — and its length always
/// equals first_level_shingles - raw_components.
struct ShingleMerge {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t matches = 0;
  std::uint32_t columns = 0;
};

/// Run the two-pass algorithm on a bipartite graph. Returns RAW candidates
/// (possibly overlapping), largest (|A|+|B|) first; disjointness and the
/// min-size / τ rules are applied by report_families. Deterministic in
/// params.seed. With a pool, Pass I shingles vertices and Pass II hashes
/// first-level shingles on pool threads; both folds happen serially in
/// index order, so the output is identical for every pool size.
/// @p merges (optional) receives the surviving Pass II merges in decision
/// order (appended; endpoints in the right-vertex universe).
[[nodiscard]] std::vector<DenseSubgraph> dense_subgraphs(
    const bigraph::BipartiteGraph& graph, const ShingleParams& params,
    DsdStats* stats = nullptr, exec::Pool* pool = nullptr,
    std::vector<ShingleMerge>* merges = nullptr);

/// Apply the reduction-specific reporting rule and map vertices back to
/// sequence ids: each returned vector is one protein family (sorted SeqIds).
/// @p merges (optional) receives the surviving Pass II merges in decision
/// order with endpoints mapped to sequence ids (appended).
[[nodiscard]] std::vector<std::vector<seq::SeqId>> report_families(
    const bigraph::ComponentGraph& component, const ShingleParams& params,
    DsdStats* stats = nullptr, exec::Pool* pool = nullptr,
    std::vector<ShingleMerge>* merges = nullptr);

}  // namespace pclust::shingle
