// Min-wise independent permutation shingling (Broder et al. [6], as used by
// the Shingle algorithm [12]).
//
// A "(s, c)-shingle set" of a vertex v is built by applying c pseudo-random
// permutations to Γ(v) and taking the s minimum elements under each: two
// vertices that share a substantial fraction of their out-links then share
// at least one shingle with high probability. Permutation k is realized as
// the keyed hash x -> mix64((x+1) * key_k); a shingle's value is a hash of
// its canonical (sorted) element tuple, so equal element sets produce equal
// shingle values regardless of which permutation selected them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pclust::exec {
class Pool;
}

namespace pclust::shingle {

struct Shingle {
  std::uint64_t value = 0;                 // canonical hash of the elements
  std::vector<std::uint32_t> elements;     // sorted, exactly s vertices
};

/// Compute the (s, c)-shingle set of @p links (need not be sorted; elements
/// must be distinct). Returns the DISTINCT shingles (value-deduplicated,
/// ascending by value). Empty when links.size() < s.
[[nodiscard]] std::vector<Shingle> shingle_set(
    std::span<const std::uint32_t> links, std::uint32_t s, std::uint32_t c,
    std::uint64_t seed);

/// Value-only variant used by the second pass (elements are not needed).
[[nodiscard]] std::vector<std::uint64_t> shingle_values(
    std::span<const std::uint32_t> links, std::uint32_t s, std::uint32_t c,
    std::uint64_t seed);

/// Pooled variant: the c permutations are hashed on pool threads (each
/// permutation's min-s selection is independent) and the per-permutation
/// shingles folded in permutation order, so the result is identical to the
/// serial overload. Worthwhile for large link lists; pool size 1 falls back
/// to the serial path.
[[nodiscard]] std::vector<Shingle> shingle_set(
    std::span<const std::uint32_t> links, std::uint32_t s, std::uint32_t c,
    std::uint64_t seed, exec::Pool& pool);

}  // namespace pclust::shingle
