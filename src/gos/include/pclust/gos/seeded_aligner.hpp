// "blastp-lite": a word-seeded banded Smith–Waterman comparator.
//
// Substitutes for NCBI BLASTP in the GOS baseline (§II): same
// seed-then-extend structure — a pair is aligned only if it shares at least
// one w-length word, and the dynamic programming is banded around the most
// promising diagonal — without BLAST's statistics (E-values are not needed;
// the baseline cuts on identity and coverage).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "pclust/align/pairwise.hpp"
#include "pclust/seq/sequence_set.hpp"

namespace pclust::gos {

struct SeededAlignerParams {
  std::uint32_t word_size = 4;       // BLASTP default word size ~3-4
  std::uint32_t band = 24;           // half width around the seed diagonal
  bool full_matrix_fallback = false; // true: ignore band (exact mode)
};

class SeededAligner {
 public:
  /// Pre-indexes every sequence's word set.
  SeededAligner(const seq::SequenceSet& set, SeededAlignerParams params,
                const align::ScoringScheme& scheme);

  /// Align sequences a and b if they share a seed word; nullopt otherwise
  /// (BLAST reports "no hit"). Cells spent on rejected pairs still count.
  [[nodiscard]] std::optional<align::AlignmentResult> align(
      seq::SeqId a, seq::SeqId b);

  [[nodiscard]] std::uint64_t total_cells() const { return total_cells_; }
  [[nodiscard]] std::uint64_t seeded_pairs() const { return seeded_pairs_; }
  [[nodiscard]] std::uint64_t seedless_pairs() const {
    return seedless_pairs_;
  }

 private:
  /// Best (most word hits) shared diagonal, or nullopt if no shared word.
  [[nodiscard]] std::optional<std::int64_t> best_diagonal(seq::SeqId a,
                                                          seq::SeqId b) const;

  const seq::SequenceSet& set_;
  SeededAlignerParams params_;
  const align::ScoringScheme& scheme_;
  // Per sequence: sorted (packed word, offset) list.
  std::vector<std::vector<std::pair<std::uint64_t, std::uint32_t>>> words_;
  std::uint64_t total_cells_ = 0;
  std::uint64_t seeded_pairs_ = 0;
  std::uint64_t seedless_pairs_ = 0;
};

}  // namespace pclust::gos
