// The GOS protein-family methodology (Yooseph et al. 2007 [33]), as
// outlined in the paper's §II — the baseline pclust is compared against.
//
//   1. Redundancy removal: all-versus-all BLASTP; sequences > 95 %
//      contained in another are dropped.
//   2. Graph generation: an edge connects two non-redundant sequences
//      sharing "significant" similarity (the GOS team reports a 70 %
//      similarity cutoff).
//   3. Dense subgraph detection: heuristic core-set creation of bounded
//      size, relaxed expansion, and merging of intersecting expanded sets;
//      both grouping rules are "share some k neighbors" with k = 10.
//
// Faithful at the level the paper describes it; where [33] leaves details
// open (core ordering, tie breaks) we fix deterministic choices and
// document them here: vertices are processed in descending degree order
// (ties by id), and a core absorbs neighbors while it stays under
// core_size_cap.
#pragma once

#include <cstdint>
#include <vector>

#include "pclust/gos/seeded_aligner.hpp"
#include "pclust/seq/sequence_set.hpp"

namespace pclust::gos {

struct GosParams {
  SeededAlignerParams aligner;

  // Step 1 cutoffs (redundancy).
  double containment_similarity = 0.95;
  double containment_coverage = 0.95;

  // Step 2 cutoffs (graph edges).
  double edge_similarity = 0.70;
  double edge_coverage = 0.80;  // of the longer sequence

  // Step 3 (core sets).
  std::uint32_t core_size_cap = 50;
  std::uint32_t shared_neighbors_k = 10;  // "due to computational limitations
                                          //  the value of k is restricted to
                                          //  10" (paper §II)
  std::uint32_t min_cluster = 5;
};

struct GosResult {
  std::vector<std::uint8_t> removed;               // step 1
  std::vector<seq::SeqId> non_redundant;
  std::vector<std::vector<seq::SeqId>> clusters;   // step 3, size-desc
  // Work accounting — this is the Θ(n²) the paper gets rid of.
  std::uint64_t alignments = 0;
  std::uint64_t cells = 0;
  std::uint64_t graph_edges = 0;
};

/// Run the full three-step GOS baseline.
[[nodiscard]] GosResult run_gos(const seq::SequenceSet& set,
                                const GosParams& params = {});

}  // namespace pclust::gos
