#include "pclust/gos/gos_pipeline.hpp"

#include <algorithm>
#include <numeric>

#include "pclust/dsu/union_find.hpp"

namespace pclust::gos {

namespace {

/// |a ∩ b| for sorted vectors.
std::uint32_t shared_count(const std::vector<std::uint32_t>& a,
                           const std::vector<std::uint32_t>& b) {
  std::uint32_t n = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

}  // namespace

GosResult run_gos(const seq::SequenceSet& set, const GosParams& params) {
  GosResult out;
  SeededAligner aligner(set, params.aligner, align::blosum62());

  // ---- Step 1: redundancy removal (all-versus-all containment) ---------
  out.removed.assign(set.size(), 0);
  for (seq::SeqId a = 0; a < set.size(); ++a) {
    for (seq::SeqId b = a + 1; b < set.size(); ++b) {
      if (out.removed[a] && out.removed[b]) continue;
      const auto r = aligner.align(a, b);
      ++out.alignments;
      if (!r) continue;
      const bool sim_ok =
          r->identity() >= params.containment_similarity;
      if (!sim_ok) continue;
      if (!out.removed[a] && !out.removed[b] &&
          r->a_coverage(set.length(a)) >= params.containment_coverage) {
        out.removed[a] = 1;
        continue;
      }
      if (!out.removed[a] && !out.removed[b] &&
          r->b_coverage(set.length(b)) >= params.containment_coverage) {
        out.removed[b] = 1;
      }
    }
  }
  for (seq::SeqId id = 0; id < set.size(); ++id) {
    if (!out.removed[id]) out.non_redundant.push_back(id);
  }

  // ---- Step 2: similarity graph over the non-redundant set -------------
  const auto m = static_cast<std::uint32_t>(out.non_redundant.size());
  std::vector<std::vector<std::uint32_t>> adj(m);
  for (std::uint32_t i = 0; i < m; ++i) {
    for (std::uint32_t j = i + 1; j < m; ++j) {
      const seq::SeqId a = out.non_redundant[i];
      const seq::SeqId b = out.non_redundant[j];
      const auto r = aligner.align(a, b);
      ++out.alignments;
      if (!r) continue;
      const double long_cov = set.length(a) >= set.length(b)
                                  ? r->a_coverage(set.length(a))
                                  : r->b_coverage(set.length(b));
      if (r->identity() >= params.edge_similarity &&
          long_cov >= params.edge_coverage) {
        adj[i].push_back(j);
        adj[j].push_back(i);
        ++out.graph_edges;
      }
    }
  }
  for (auto& list : adj) std::sort(list.begin(), list.end());

  // ---- Step 3: core sets, expansion, merge ------------------------------
  // Deterministic order: descending degree, then ascending index.
  std::vector<std::uint32_t> order(m);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t x, std::uint32_t y) {
    if (adj[x].size() != adj[y].size()) return adj[x].size() > adj[y].size();
    return x < y;
  });

  dsu::UnionFind uf(m);
  std::vector<std::uint8_t> in_core(m, 0);
  for (std::uint32_t v : order) {
    if (in_core[v]) continue;
    in_core[v] = 1;
    std::uint32_t core_size = 1;
    // Absorb neighbors sharing >= k neighbors with the seed, largest
    // degree first, while the core stays under the cap.
    std::vector<std::uint32_t> candidates = adj[v];
    std::sort(candidates.begin(), candidates.end(),
              [&](std::uint32_t x, std::uint32_t y) {
                if (adj[x].size() != adj[y].size()) {
                  return adj[x].size() > adj[y].size();
                }
                return x < y;
              });
    for (std::uint32_t u : candidates) {
      if (core_size >= params.core_size_cap) break;
      if (in_core[u]) continue;
      if (shared_count(adj[u], adj[v]) >= params.shared_neighbors_k) {
        in_core[u] = 1;
        uf.merge(u, v);
        ++core_size;
      }
    }
  }
  // Expansion with the same relaxed shared-neighbor rule: any vertex
  // sharing >= k neighbors with an already-grouped neighbor joins its set;
  // expanded sets that intersect merge transitively through union-find.
  for (std::uint32_t u = 0; u < m; ++u) {
    for (std::uint32_t w : adj[u]) {
      if (uf.same(u, w)) continue;
      if (shared_count(adj[u], adj[w]) >= params.shared_neighbors_k) {
        uf.merge(u, w);
      }
    }
  }

  for (auto& members : uf.extract_sets(params.min_cluster)) {
    std::vector<seq::SeqId> cluster;
    cluster.reserve(members.size());
    for (std::uint32_t dense : members) {
      cluster.push_back(out.non_redundant[dense]);
    }
    std::sort(cluster.begin(), cluster.end());
    out.clusters.push_back(std::move(cluster));
  }
  std::sort(out.clusters.begin(), out.clusters.end(),
            [](const auto& a, const auto& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a.front() < b.front();
            });

  out.cells = aligner.total_cells();
  return out;
}

}  // namespace pclust::gos
