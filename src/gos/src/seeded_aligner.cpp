#include "pclust/gos/seeded_aligner.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "pclust/seq/alphabet.hpp"

namespace pclust::gos {

SeededAligner::SeededAligner(const seq::SequenceSet& set,
                             SeededAlignerParams params,
                             const align::ScoringScheme& scheme)
    : set_(set), params_(params), scheme_(scheme) {
  if (params_.word_size < 2 || params_.word_size > 12) {
    throw std::invalid_argument("SeededAligner: word_size must be in [2,12]");
  }
  const std::uint32_t w = params_.word_size;
  const std::uint64_t mask = (w >= 12) ? ~std::uint64_t{0}
                                       : ((std::uint64_t{1} << (5 * w)) - 1);
  words_.resize(set.size());
  for (seq::SeqId id = 0; id < set.size(); ++id) {
    const auto residues = set.residues(id);
    if (residues.size() < w) continue;
    auto& list = words_[id];
    std::uint64_t packed = 0;
    std::uint32_t valid = 0;
    for (std::size_t i = 0; i < residues.size(); ++i) {
      const auto r = static_cast<std::uint8_t>(residues[i]);
      if (r >= seq::kRankX) {  // X never seeds
        packed = 0;
        valid = 0;
        continue;
      }
      packed = ((packed << 5) | r) & mask;
      if (++valid >= w) {
        list.emplace_back(packed, static_cast<std::uint32_t>(i + 1 - w));
      }
    }
    std::sort(list.begin(), list.end());
  }
}

std::optional<std::int64_t> SeededAligner::best_diagonal(seq::SeqId a,
                                                         seq::SeqId b) const {
  const auto& wa = words_[a];
  const auto& wb = words_[b];
  std::map<std::int64_t, std::uint32_t> hits;  // diagonal -> hit count
  std::size_t i = 0, j = 0;
  while (i < wa.size() && j < wb.size()) {
    if (wa[i].first < wb[j].first) {
      ++i;
    } else if (wa[i].first > wb[j].first) {
      ++j;
    } else {
      // All (i', j') occurrence combinations of this shared word.
      const std::uint64_t word = wa[i].first;
      const std::size_t i0 = i;
      while (i < wa.size() && wa[i].first == word) ++i;
      const std::size_t j0 = j;
      while (j < wb.size() && wb[j].first == word) ++j;
      for (std::size_t x = i0; x < i; ++x) {
        for (std::size_t y = j0; y < j; ++y) {
          ++hits[static_cast<std::int64_t>(wa[x].second) -
                 static_cast<std::int64_t>(wb[y].second)];
        }
      }
    }
  }
  if (hits.empty()) return std::nullopt;
  auto best = hits.begin();
  for (auto it = hits.begin(); it != hits.end(); ++it) {
    if (it->second > best->second) best = it;
  }
  return best->first;
}

std::optional<align::AlignmentResult> SeededAligner::align(seq::SeqId a,
                                                           seq::SeqId b) {
  const auto diagonal = best_diagonal(a, b);
  if (!diagonal) {
    ++seedless_pairs_;
    return std::nullopt;
  }
  ++seeded_pairs_;
  const auto res_a = set_.residues(a);
  const auto res_b = set_.residues(b);
  const align::AlignmentResult r =
      params_.full_matrix_fallback
          ? align::local_align(res_a, res_b, scheme_)
          : align::banded_local_align(res_a, res_b, scheme_, *diagonal,
                                      params_.band);
  total_cells_ += r.cells;
  return r;
}

}  // namespace pclust::gos
