#include "pclust/align/scoring.hpp"

namespace pclust::align {

namespace {

// BLOSUM62 in its conventional publication order; remapped to pclust rank
// order at initialization so a transcription slip cannot silently reorder
// rows.
constexpr const char* kBlosumOrder = "ARNDCQEGHILKMFPSTWYV";
constexpr std::int16_t kBlosum62[20][20] = {
    /*A*/ {4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0},
    /*R*/ {-1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3},
    /*N*/ {-2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3},
    /*D*/ {-2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3},
    /*C*/ {0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1},
    /*Q*/ {-1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2},
    /*E*/ {-1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2},
    /*G*/ {0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3},
    /*H*/ {-2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3},
    /*I*/ {-1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3},
    /*L*/ {-1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1},
    /*K*/ {-1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2},
    /*M*/ {-1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1},
    /*F*/ {-2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1},
    /*P*/ {-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2},
    /*S*/ {1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2},
    /*T*/ {0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0},
    /*W*/ {-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3},
    /*Y*/ {-2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -1},
    /*V*/ {0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -1, 4},
};

ScoringScheme build_blosum62() {
  ScoringScheme s;
  // Everything involving X scores -1 (BLAST convention).
  for (auto& row : s.substitution) row.fill(-1);
  for (int i = 0; i < 20; ++i) {
    const std::uint8_t ri = seq::char_to_rank(kBlosumOrder[i]);
    for (int j = 0; j < 20; ++j) {
      const std::uint8_t rj = seq::char_to_rank(kBlosumOrder[j]);
      s.substitution[ri][rj] = kBlosum62[i][j];
    }
  }
  s.gap_open = 11;
  s.gap_extend = 1;
  return s;
}

}  // namespace

const ScoringScheme& blosum62() {
  static const ScoringScheme kScheme = build_blosum62();
  return kScheme;
}

ScoringScheme identity_scoring(std::int16_t match, std::int16_t mismatch,
                               std::int16_t gap_open,
                               std::int16_t gap_extend) {
  ScoringScheme s;
  for (int i = 0; i < seq::kAlphabetSize; ++i) {
    for (int j = 0; j < seq::kAlphabetSize; ++j) {
      s.substitution[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          (i == j) ? match : mismatch;
    }
  }
  s.gap_open = gap_open;
  s.gap_extend = gap_extend;
  return s;
}

}  // namespace pclust::align
