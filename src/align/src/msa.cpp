#include "pclust/align/msa.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

#include "pclust/align/pairwise.hpp"
#include "pclust/seq/alphabet.hpp"

namespace pclust::align {

namespace {

/// Pick the center: the member with the greatest summed global score to the
/// others. For large families each candidate is scored against a fixed
/// deterministic sample to keep this O(k · sample).
std::size_t choose_center(const seq::SequenceSet& set,
                          const std::vector<seq::SeqId>& members,
                          const ScoringScheme& scheme) {
  const std::size_t k = members.size();
  if (k <= 2) return 0;
  constexpr std::size_t kSampleCap = 12;

  std::size_t best = 0;
  std::int64_t best_score = std::numeric_limits<std::int64_t>::min();
  for (std::size_t i = 0; i < k; ++i) {
    std::int64_t total = 0;
    std::size_t sampled = 0;
    // Sample others at a fixed stride so every candidate sees a spread of
    // the family, deterministically.
    const std::size_t stride = std::max<std::size_t>(1, k / kSampleCap);
    for (std::size_t j = i % stride; j < k && sampled < kSampleCap;
         j += stride) {
      if (j == i) continue;
      total += global_align(set.residues(members[i]),
                            set.residues(members[j]), scheme)
                   .score;
      ++sampled;
    }
    if (total > best_score) {
      best_score = total;
      best = i;
    }
  }
  return best;
}

}  // namespace

std::string Msa::consensus() const {
  std::string out(columns(), '-');
  for (std::size_t col = 0; col < columns(); ++col) {
    std::map<char, std::size_t> votes;
    for (const auto& row : rows) ++votes[row[col]];
    char best = '-';
    std::size_t best_count = 0;
    for (const auto& [residue, count] : votes) {
      if (count > best_count) {
        best = residue;
        best_count = count;
      }
    }
    out[col] = best;
  }
  return out;
}

std::vector<double> Msa::column_conservation() const {
  const std::string cons = consensus();
  std::vector<double> out(columns(), 0.0);
  for (std::size_t col = 0; col < columns(); ++col) {
    std::size_t residues = 0, agree = 0;
    for (const auto& row : rows) {
      if (row[col] == '-') continue;
      ++residues;
      if (row[col] == cons[col]) ++agree;
    }
    out[col] = residues ? static_cast<double>(agree) /
                              static_cast<double>(residues)
                        : 0.0;
  }
  return out;
}

Msa center_star_msa(const seq::SequenceSet& set,
                    const std::vector<seq::SeqId>& members,
                    const ScoringScheme& scheme) {
  if (members.empty()) {
    throw std::invalid_argument("center_star_msa: no members");
  }
  Msa msa;
  msa.members = members;
  msa.center = choose_center(set, members, scheme);
  const auto center_res = set.residues(members[msa.center]);
  const std::size_t center_len = center_res.size();

  // Pairwise paths member <-> center, and the merged gap structure:
  // gaps[i] = columns inserted before center residue i (i == center_len for
  // the tail block). "Once a gap, always a gap."
  std::vector<std::vector<EditOp>> paths(members.size());
  std::vector<std::size_t> gaps(center_len + 1, 0);
  for (std::size_t r = 0; r < members.size(); ++r) {
    if (r == msa.center) continue;
    (void)global_align_path(center_res, set.residues(members[r]), scheme,
                            paths[r]);
    std::size_t i = 0, run = 0;
    for (const EditOp op : paths[r]) {
      if (op == EditOp::kGapInA) {  // insertion relative to the center
        ++run;
      } else {
        gaps[i] = std::max(gaps[i], run);
        run = 0;
        ++i;
      }
    }
    gaps[center_len] = std::max(gaps[center_len], run);
  }

  // Column layout: col_of(i) = position of center residue i.
  std::vector<std::size_t> col_of(center_len + 1);
  std::size_t col = 0;
  for (std::size_t i = 0; i <= center_len; ++i) {
    col += gaps[i];
    col_of[i] = col;
    ++col;  // the residue slot itself (the i == center_len slot is virtual)
  }
  const std::size_t total_cols = col_of[center_len];

  msa.rows.assign(members.size(), std::string(total_cols, '-'));

  // Center row.
  auto& center_row = msa.rows[msa.center];
  for (std::size_t i = 0; i < center_len; ++i) {
    center_row[col_of[i]] =
        seq::rank_to_char(static_cast<std::uint8_t>(center_res[i]));
  }

  // Member rows: walk each path, placing insertions left-aligned in the
  // gap block before the current center residue.
  for (std::size_t r = 0; r < members.size(); ++r) {
    if (r == msa.center) continue;
    const auto member_res = set.residues(members[r]);
    auto& row = msa.rows[r];
    std::size_t i = 0;       // center index
    std::size_t m_idx = 0;   // member index
    std::size_t ins = 0;     // insertions placed in the current gap block
    for (const EditOp op : paths[r]) {
      switch (op) {
        case EditOp::kGapInA:
          row[col_of[i] - gaps[i] + ins] = seq::rank_to_char(
              static_cast<std::uint8_t>(member_res[m_idx]));
          ++ins;
          ++m_idx;
          break;
        case EditOp::kSubstitute:
          row[col_of[i]] = seq::rank_to_char(
              static_cast<std::uint8_t>(member_res[m_idx]));
          ++i;
          ++m_idx;
          ins = 0;
          break;
        case EditOp::kGapInB:
          ++i;  // center residue vs gap: row keeps '-'
          ins = 0;
          break;
      }
    }
  }
  return msa;
}

}  // namespace pclust::align
