#include "pclust/align/simd.hpp"

#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) || defined(_M_X64)
#if defined(_MSC_VER)
#include <intrin.h>
#else
#include <cpuid.h>
#endif
#endif

namespace pclust::align {

namespace {

#if defined(__x86_64__) || defined(_M_X64)

void cpuid(unsigned leaf, unsigned subleaf, unsigned out[4]) {
#if defined(_MSC_VER)
  int regs[4];
  __cpuidex(regs, static_cast<int>(leaf), static_cast<int>(subleaf));
  for (int i = 0; i < 4; ++i) out[i] = static_cast<unsigned>(regs[i]);
#else
  __cpuid_count(leaf, subleaf, out[0], out[1], out[2], out[3]);
#endif
}

Isa probe_host() {
  unsigned regs[4] = {0, 0, 0, 0};
  cpuid(0, 0, regs);
  const unsigned max_leaf = regs[0];
  // SSE2 is architectural on x86-64, but check anyway (leaf 1 EDX bit 26).
  if (max_leaf < 1) return Isa::kScalar;
  cpuid(1, 0, regs);
  const bool sse2 = (regs[3] >> 26) & 1u;
  const bool osxsave = (regs[2] >> 27) & 1u;
  const bool avx = (regs[2] >> 28) & 1u;
  if (!sse2) return Isa::kScalar;
  // AVX2 needs leaf 7 EBX bit 5 plus OS support for YMM state (XCR0
  // bits 1-2 via xgetbv, gated on OSXSAVE).
  if (max_leaf >= 7 && osxsave && avx) {
#if defined(_MSC_VER)
    const unsigned long long xcr0 = _xgetbv(0);
#else
    unsigned eax, edx;
    __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
    const unsigned long long xcr0 =
        (static_cast<unsigned long long>(edx) << 32) | eax;
#endif
    if ((xcr0 & 0x6) == 0x6) {
      cpuid(7, 0, regs);
      if ((regs[1] >> 5) & 1u) return Isa::kAvx2;
    }
  }
  return Isa::kSse2;
}

#else

Isa probe_host() { return Isa::kScalar; }

#endif

/// Effective ISA, encoded as (Isa value + 1); 0 means "not yet initialized".
std::atomic<int> g_isa{0};

Isa clamp_to_host(Isa isa) {
  const Isa best = detect_best_isa();
  return static_cast<int>(isa) <= static_cast<int>(best) ? isa : best;
}

Isa init_from_env() {
  Isa isa = detect_best_isa();
  if (const char* env = std::getenv("PCLUST_SIMD")) {
    if (const auto parsed = parse_isa(env)) isa = clamp_to_host(*parsed);
  }
  return isa;
}

}  // namespace

Isa detect_best_isa() {
  static const Isa best = probe_host();
  return best;
}

Isa current_isa() {
  int cur = g_isa.load(std::memory_order_relaxed);
  if (cur == 0) {
    const Isa init = init_from_env();
    // First caller wins; a concurrent set_isa() is preserved.
    int expected = 0;
    g_isa.compare_exchange_strong(expected, static_cast<int>(init) + 1,
                                  std::memory_order_relaxed);
    cur = g_isa.load(std::memory_order_relaxed);
  }
  return static_cast<Isa>(cur - 1);
}

Isa set_isa(Isa isa) {
  const Isa effective = clamp_to_host(isa);
  g_isa.store(static_cast<int>(effective) + 1, std::memory_order_relaxed);
  return effective;
}

std::optional<Isa> parse_isa(std::string_view name) {
  if (name == "auto") return detect_best_isa();
  if (name == "off" || name == "scalar") return Isa::kScalar;
  if (name == "sse2") return Isa::kSse2;
  if (name == "avx2") return Isa::kAvx2;
  return std::nullopt;
}

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kSse2: return "sse2";
    case Isa::kAvx2: return "avx2";
    case Isa::kScalar: break;
  }
  return "scalar";
}

std::size_t isa_lanes(Isa isa) {
  switch (isa) {
    case Isa::kSse2: return 8;
    case Isa::kAvx2: return 16;
    case Isa::kScalar: break;
  }
  return 1;
}

}  // namespace pclust::align
