#include "pclust/align/pairwise.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

#include "band_layout.hpp"

namespace pclust::align {

namespace {

using detail::BandLayout;
using detail::kNegInf;
using detail::kScoreCellMax;

// Traceback codes. For the M (substitution) state the predecessor is the
// best of {M, X, Y} at (i-1, j-1), or a fresh local start.
enum Tb : std::uint8_t { kFromM = 0, kFromX = 1, kFromY = 2, kStart = 3 };

// DP variants sharing one engine.
enum class Mode {
  kGlobal,      // end-to-end in both sequences
  kLocal,       // best positive region (Smith-Waterman)
  kSemiglobal,  // a end-to-end; b's flanks are free ("glocal")
};

/// Shared DP engine. When `global` is true, borders are initialized with
/// affine gap penalties and the answer is the best end state at (m, n);
/// otherwise the recurrence is clamped at zero (Smith–Waterman) and the
/// answer is the best M cell anywhere. The band restricts computation to
/// diagonals |i - j - diagonal| <= band (band >= m + n disables it); only
/// the banded window of each row is allocated.
AlignmentResult align_impl(std::string_view a, std::string_view b,
                           const ScoringScheme& scheme, Mode mode,
                           std::int64_t diagonal, std::int64_t band,
                           std::vector<EditOp>* path = nullptr) {
  if (path) path->clear();
  const bool global = mode == Mode::kGlobal;
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  const std::int32_t open =
      static_cast<std::int32_t>(scheme.gap_open) + scheme.gap_extend;
  const std::int32_t extend = scheme.gap_extend;

  const BandLayout lay(m, n, diagonal, band);
  const std::size_t W = lay.W;

  std::vector<std::int32_t> M((m + 1) * W, kNegInf);
  std::vector<std::int32_t> X((m + 1) * W, kNegInf);
  std::vector<std::int32_t> Y((m + 1) * W, kNegInf);
  std::vector<std::uint8_t> tbM((m + 1) * W, kStart);
  std::vector<std::uint8_t> tbX((m + 1) * W, kFromM);
  std::vector<std::uint8_t> tbY((m + 1) * W, kFromM);

  if (lay.in_window(0, 0)) M[lay.idx(0, 0)] = 0;
  switch (mode) {
    case Mode::kGlobal:
      for (std::size_t i = 1; i <= m; ++i) {
        if (!lay.in_window(i, 0)) continue;
        X[lay.idx(i, 0)] = -open - static_cast<std::int32_t>(i - 1) * extend;
        tbX[lay.idx(i, 0)] = (i == 1) ? kFromM : kFromX;
      }
      for (std::size_t j = 1; j <= n && lay.in_window(0, j); ++j) {
        Y[lay.idx(0, j)] = -open - static_cast<std::int32_t>(j - 1) * extend;
        tbY[lay.idx(0, j)] = (j == 1) ? kFromM : kFromY;
      }
      break;
    case Mode::kLocal:
      // Every cell can start fresh; model by M=0 on the borders (traceback
      // stops at kStart anyway).
      for (std::size_t i = 0; i <= m; ++i) {
        if (lay.in_window(i, 0)) M[lay.idx(i, 0)] = 0;
      }
      for (std::size_t j = 0; j <= n && lay.in_window(0, j); ++j) {
        M[lay.idx(0, j)] = 0;
      }
      break;
    case Mode::kSemiglobal:
      // a must be consumed entirely (X border charged as global); b may
      // start anywhere for free.
      for (std::size_t i = 1; i <= m; ++i) {
        if (!lay.in_window(i, 0)) continue;
        X[lay.idx(i, 0)] = -open - static_cast<std::int32_t>(i - 1) * extend;
        tbX[lay.idx(i, 0)] = (i == 1) ? kFromM : kFromX;
      }
      for (std::size_t j = 0; j <= n && lay.in_window(0, j); ++j) {
        M[lay.idx(0, j)] = 0;
      }
      break;
  }

  std::uint64_t cells = 0;
  std::int32_t best = global ? kNegInf : 0;
  std::size_t best_i = 0, best_j = 0;

  for (std::size_t i = 1; i <= m; ++i) {
    std::size_t j_lo, j_hi;
    lay.row_limits(i, j_lo, j_hi);
    if (j_lo > j_hi) continue;  // band misses this row entirely
    const auto ai = static_cast<std::uint8_t>(a[i - 1]);
    cells += j_hi - j_lo + 1;

    // Hot loop: raw row pointers indexed with per-row window offsets, no
    // sentinel guards. kNegInf is INT32_MIN/4, and every computed value is
    // at most (m+n)*(open+|sub|) below a neighbor, so "negative infinity"
    // degrades gracefully without ever wrapping or winning a max against a
    // real score. Window slots outside the band keep their kNegInf default
    // and behave exactly like the untouched cells of a full matrix.
    const std::size_t bi = lay.base(i);
    const std::size_t bp = lay.base(i - 1);
    std::int32_t* m_row = &M[i * W];
    std::int32_t* x_row = &X[i * W];
    std::int32_t* y_row = &Y[i * W];
    const std::int32_t* m_prev = &M[(i - 1) * W];
    const std::int32_t* x_prev = &X[(i - 1) * W];
    const std::int32_t* y_prev = &Y[(i - 1) * W];
    std::uint8_t* tbm_row = &tbM[i * W];
    std::uint8_t* tbx_row = &tbX[i * W];
    std::uint8_t* tby_row = &tbY[i * W];
    const auto& sub_row = scheme.substitution[ai];

    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      // X: gap in b (consume a[i-1]).
      const std::int32_t x_from_m = m_prev[j - bp] - open;
      const std::int32_t x_from_x = x_prev[j - bp] - extend;
      const bool x_take_m = x_from_m >= x_from_x;
      x_row[j - bi] = x_take_m ? x_from_m : x_from_x;
      tbx_row[j - bi] = x_take_m ? kFromM : kFromX;

      // Y: gap in a (consume b[j-1]).
      const std::int32_t y_from_m = m_row[j - 1 - bi] - open;
      const std::int32_t y_from_y = y_row[j - 1 - bi] - extend;
      const bool y_take_m = y_from_m >= y_from_y;
      y_row[j - bi] = y_take_m ? y_from_m : y_from_y;
      tby_row[j - bi] = y_take_m ? kFromM : kFromY;

      // M: substitute a[i-1] with b[j-1].
      std::int32_t prev = m_prev[j - 1 - bp];
      std::uint8_t tb = kFromM;
      if (x_prev[j - 1 - bp] > prev) {
        prev = x_prev[j - 1 - bp];
        tb = kFromX;
      }
      if (y_prev[j - 1 - bp] > prev) {
        prev = y_prev[j - 1 - bp];
        tb = kFromY;
      }
      if (mode == Mode::kLocal && prev < 0) {
        prev = 0;
        tb = kStart;
      }
      const std::int32_t value =
          prev + sub_row[static_cast<std::uint8_t>(b[j - 1])];
      m_row[j - bi] = value;
      tbm_row[j - bi] = tb;
      if (mode == Mode::kLocal && value > best) {
        best = value;
        best_i = i;
        best_j = j;
      }
    }
  }

  AlignmentResult result;
  result.cells = cells;

  // Defaulting accessors for the traceback (and the semiglobal end scan):
  // out-of-window cells read as the untouched full-matrix defaults.
  const auto m_at = [&](std::size_t i, std::size_t j) {
    return lay.in_window(i, j) ? M[lay.idx(i, j)] : kNegInf;
  };
  const auto x_at = [&](std::size_t i, std::size_t j) {
    return lay.in_window(i, j) ? X[lay.idx(i, j)] : kNegInf;
  };
  const auto y_at = [&](std::size_t i, std::size_t j) {
    return lay.in_window(i, j) ? Y[lay.idx(i, j)] : kNegInf;
  };
  const auto tbm_at = [&](std::size_t i, std::size_t j) {
    return lay.in_window(i, j) ? tbM[lay.idx(i, j)]
                               : static_cast<std::uint8_t>(kStart);
  };
  const auto tbx_at = [&](std::size_t i, std::size_t j) {
    return lay.in_window(i, j) ? tbX[lay.idx(i, j)]
                               : static_cast<std::uint8_t>(kFromM);
  };
  const auto tby_at = [&](std::size_t i, std::size_t j) {
    return lay.in_window(i, j) ? tbY[lay.idx(i, j)]
                               : static_cast<std::uint8_t>(kFromM);
  };

  std::uint8_t state = kFromM;
  std::size_t i = m, j = n;
  if (mode == Mode::kGlobal) {
    best = m_at(m, n);
    state = kFromM;
    if (x_at(m, n) > best) {
      best = x_at(m, n);
      state = kFromX;
    }
    if (y_at(m, n) > best) {
      best = y_at(m, n);
      state = kFromY;
    }
    result.score = best;
  } else if (mode == Mode::kSemiglobal) {
    // a fully consumed; b's trailing flank is free: best M/X over row m.
    best = kNegInf;
    for (std::size_t jj = 0; jj <= n; ++jj) {
      if (m_at(m, jj) > best) {
        best = m_at(m, jj);
        j = jj;
        state = kFromM;
      }
      if (x_at(m, jj) > best) {
        best = x_at(m, jj);
        j = jj;
        state = kFromX;
      }
    }
    result.score = best;
  } else {
    if (best <= 0) return result;  // no positive local alignment
    result.score = best;
    i = best_i;
    j = best_j;
    state = kFromM;
  }

  result.a_end = static_cast<std::uint32_t>(i);
  result.b_end = static_cast<std::uint32_t>(j);

  // Traceback. Stops at (0,0) for global; at row 0 for semiglobal (b's
  // leading flank is free); for local, at the first zero-score M cell
  // (standard Smith-Waterman semantics) or a fresh-start marker.
  while (i > 0 || j > 0) {
    if (mode == Mode::kSemiglobal && i == 0) break;
    if (mode == Mode::kLocal && state == kFromM && m_at(i, j) <= 0) break;
    if (state == kFromM) {
      const std::uint8_t tb = tbm_at(i, j);
      if (i == 0 && j == 0) break;
      if (path) path->push_back(EditOp::kSubstitute);
      assert(i > 0 && j > 0);
      const std::int16_t sub = scheme.score(static_cast<std::uint8_t>(a[i - 1]),
                                            static_cast<std::uint8_t>(b[j - 1]));
      ++result.columns;
      if (a[i - 1] == b[j - 1]) ++result.matches;
      if (sub > 0) ++result.positives;
      --i;
      --j;
      state = (tb == kStart) ? static_cast<std::uint8_t>(kFromM) : tb;
      if (i == 0 && j == 0) break;
      if (mode == Mode::kLocal && tb == kStart) break;
    } else if (state == kFromX) {
      assert(i > 0);
      if (path) path->push_back(EditOp::kGapInB);
      ++result.columns;
      ++result.gap_columns;
      const std::uint8_t tb = tbx_at(i, j);
      --i;
      state = tb;
    } else {  // kFromY
      assert(j > 0);
      if (path) path->push_back(EditOp::kGapInA);
      ++result.columns;
      ++result.gap_columns;
      const std::uint8_t tb = tby_at(i, j);
      --j;
      state = tb;
    }
  }

  result.a_begin = static_cast<std::uint32_t>(i);
  result.b_begin = static_cast<std::uint32_t>(j);
  if (path) std::reverse(path->begin(), path->end());
  return result;
}

// ---------------------------------------------------------------------------
// Score-only fast path: two rolling rows per state, no traceback storage.
//
// Alignment statistics (region begin, columns, matches, positives, gap
// columns) are propagated FORWARD along the argmax predecessor of each
// cell, using exactly the tie-breaking rules align_impl encodes in its
// traceback pointers. Because the traceback merely replays those argmax
// choices, the propagated bundle of the winning end cell is bit-identical
// to what align_impl reconstructs — including Smith-Waterman's stop at the
// first non-positive M cell on the path, modeled here as a "barrier" that
// resets the bundle. DP memory drops from O(m*n) to O(band) (O(n) when
// unbanded) and the traceback pass disappears entirely.
//
// Only five fields are actually propagated: the region begin pair and the
// substitution/match/positive column counts. The gap statistics follow at
// extraction time from the region geometry — a path from (a0, b0) to
// (a1, b1) with s substitution columns consumes R = a1 - a0 rows and
// C = b1 - b0 columns, so columns = R + C - s and gap_columns = R + C - 2s.
// That makes every gap transition a pure select (no counter updates), and
// the lone M-state update a single branchless add — the data-dependent
// matches/positives branches of a naive bundle would mispredict on real
// sequences and made this path slower than the full-matrix one it is
// meant to beat.
//
// Two storage tiers share one DP body via BundlePolicy:
//  * PackedBundle — all five fields in 11-bit lanes of ONE u64; covers
//    sequences up to 2047 residues (every metagenomic peptide), and a
//    bundle moves through the recurrence as a single register.
//  * WideBundle — begin pair in a u32 plus 16-bit count lanes in a u64;
//    covers sequences up to 32767 residues.
// Lane carries cannot happen in either tier: each count is bounded by
// min(m, n), which is below the lane capacity by construction.
// ---------------------------------------------------------------------------

// Unpacked bundle, used only at extraction and never in the hot loop.
struct BundleFields {
  std::uint32_t a_begin = 0, b_begin = 0;
  std::uint32_t subs = 0, matches = 0, positives = 0;
};

struct PackedBundle {
  static constexpr std::size_t kMaxLen = 2'047;
  using Bundle = std::uint64_t;
  // positives | matches<<11 | subs<<22 | b_begin<<33 | a_begin<<44.
  static constexpr int kMatchShift = 11;
  static constexpr int kSubShift = 22;
  static constexpr int kBBeginShift = 33;
  static constexpr int kABeginShift = 44;
  static constexpr std::uint64_t kLaneMask = 0x7FF;

  static Bundle start(std::size_t i, std::size_t j) {
    return (static_cast<std::uint64_t>(i) << kABeginShift) |
           (static_cast<std::uint64_t>(j) << kBBeginShift);
  }
  static std::uint64_t make_inc(bool match, bool positive) {
    return (std::uint64_t{1} << kSubShift) |
           (static_cast<std::uint64_t>(match) << kMatchShift) |
           static_cast<std::uint64_t>(positive);
  }
  static Bundle add_inc(Bundle b, std::uint64_t inc) { return b + inc; }
  /// start(i, j + 1) from start(i, j) — keeps the hot loop's fresh/restart
  /// start values in running registers instead of re-packing every cell.
  static void bump_j(Bundle& b) { b += std::uint64_t{1} << kBBeginShift; }
  // Mask-arithmetic select: guaranteed branchless regardless of how the
  // compiler if-converts — a data-dependent branch here would mispredict
  // on essentially every cell of real sequence pairs.
  static Bundle select(bool take_first, Bundle first, Bundle second) {
    const std::uint64_t mask =
        -static_cast<std::uint64_t>(static_cast<unsigned>(take_first));
    return (first & mask) | (second & ~mask);
  }
  static BundleFields unpack(Bundle b) {
    BundleFields f;
    f.positives = static_cast<std::uint32_t>(b & kLaneMask);
    f.matches = static_cast<std::uint32_t>((b >> kMatchShift) & kLaneMask);
    f.subs = static_cast<std::uint32_t>((b >> kSubShift) & kLaneMask);
    f.b_begin = static_cast<std::uint32_t>((b >> kBBeginShift) & kLaneMask);
    f.a_begin = static_cast<std::uint32_t>(b >> kABeginShift);
    return f;
  }
};

struct WideBundle {
  static constexpr std::size_t kMaxLen = kScoreCellMax;
  struct Bundle {
    std::uint32_t pos = 0;    // a_begin<<16 | b_begin
    std::uint64_t stats = 0;  // positives | matches<<16 | subs<<32
  };
  static constexpr int kMatchShift = 16;
  static constexpr int kSubShift = 32;

  static Bundle start(std::size_t i, std::size_t j) {
    Bundle b;
    b.pos = (static_cast<std::uint32_t>(i) << 16) |
            static_cast<std::uint32_t>(j);
    return b;
  }
  static std::uint64_t make_inc(bool match, bool positive) {
    return (std::uint64_t{1} << kSubShift) |
           (static_cast<std::uint64_t>(match) << kMatchShift) |
           static_cast<std::uint64_t>(positive);
  }
  static Bundle add_inc(Bundle b, std::uint64_t inc) {
    b.stats += inc;
    return b;
  }
  static void bump_j(Bundle& b) { b.pos += 1; }
  static Bundle select(bool take_first, Bundle first, Bundle second) {
    const std::uint64_t mask =
        -static_cast<std::uint64_t>(static_cast<unsigned>(take_first));
    Bundle out;
    out.pos = (first.pos & static_cast<std::uint32_t>(mask)) |
              (second.pos & static_cast<std::uint32_t>(~mask));
    out.stats = (first.stats & mask) | (second.stats & ~mask);
    return out;
  }
  static BundleFields unpack(Bundle b) {
    BundleFields f;
    f.a_begin = b.pos >> 16;
    f.b_begin = b.pos & 0xFFFF;
    f.positives = static_cast<std::uint32_t>(b.stats & 0xFFFF);
    f.matches = static_cast<std::uint32_t>((b.stats >> kMatchShift) & 0xFFFF);
    f.subs = static_cast<std::uint32_t>((b.stats >> kSubShift) & 0xFFFF);
    return f;
  }
};

template <typename Policy, Mode mode, bool UseProfile>
AlignmentResult score_impl_t(std::string_view a, std::string_view b,
                             const ScoringScheme& scheme,
                             std::int64_t diagonal, std::int64_t band) {
  using Bundle = typename Policy::Bundle;
  constexpr bool local = mode == Mode::kLocal;
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  const std::int32_t open =
      static_cast<std::int32_t>(scheme.gap_open) + scheme.gap_extend;
  const std::int32_t extend = scheme.gap_extend;

  const BandLayout lay(m, n, diagonal, band);
  const std::size_t W = lay.W;

  // One DP state's rolling row: parallel score / bundle arrays, so the
  // score recurrence runs on contiguous int32 and a bundle moves as one
  // cmov-selected value.
  struct Rows {
    std::vector<std::int32_t> score;
    std::vector<Bundle> bundle;
    explicit Rows(std::size_t w) : score(w, kNegInf), bundle(w) {}
  };
  Rows m_prev(W), m_cur(W);
  Rows x_prev(W), x_cur(W);
  Rows y_prev(W), y_cur(W);

  const auto clear_range = [](Rows& row, std::size_t lo, std::size_t hi) {
    std::fill(row.score.begin() + static_cast<std::ptrdiff_t>(lo),
              row.score.begin() + static_cast<std::ptrdiff_t>(hi), kNegInf);
    std::fill(row.bundle.begin() + static_cast<std::ptrdiff_t>(lo),
              row.bundle.begin() + static_cast<std::ptrdiff_t>(hi), Bundle{});
  };

  // Row 0 borders (into the prev buffers). The gap borders of the global
  // and semiglobal modes start at (0, 0) with zero substitution columns,
  // which is exactly the default bundle — only scores need setting.
  {
    const std::size_t b0 = lay.base(0);
    if (lay.in_window(0, 0)) {
      if (mode != Mode::kLocal) m_prev.score[0 - b0] = 0;
    }
    switch (mode) {
      case Mode::kGlobal:
        for (std::size_t j = std::max<std::size_t>(1, b0);
             j <= n && lay.in_window(0, j); ++j) {
          y_prev.score[j - b0] =
              -open - static_cast<std::int32_t>(j - 1) * extend;
        }
        break;
      case Mode::kLocal:
      case Mode::kSemiglobal:
        for (std::size_t j = b0; j <= n && lay.in_window(0, j); ++j) {
          m_prev.score[j - b0] = 0;
          m_prev.bundle[j - b0] = Policy::start(0, j);
        }
        break;
    }
  }

  // Lazily-built query profiles against b, one per residue symbol of a:
  // the M pass reads substitution scores and bundle increment words from
  // two contiguous arrays instead of doing a table lookup and two
  // data-dependent counter updates per cell. Amortized build cost is
  // O(alphabet * n) per pair, which only pays for itself when the window
  // is wide; narrow-window runs (UseProfile = false, chosen by score_impl)
  // compute both values inline per cell instead — the same expressions on
  // the same inputs, so the two variants are bit-identical.
  // Indexed by raw symbol byte, not seq::kAlphabetSize: callers are
  // expected to pass rank-encoded residues, but the engine has never
  // enforced that, so the cache mirrors the substitution table's tolerance
  // of any byte value. Unused entries cost one empty vector each.
  struct Profile {
    std::vector<std::int32_t> sub;
    std::vector<std::uint64_t> inc;
  };
  std::array<Profile, 256> profiles;
  const auto profile_for = [&](std::uint8_t c) -> const Profile& {
    Profile& p = profiles[c];
    if (p.sub.empty()) {
      p.sub.resize(n);
      p.inc.resize(n);
      const auto& sub_row = scheme.substitution[c];
      for (std::size_t j = 0; j < n; ++j) {
        const auto bc = static_cast<std::uint8_t>(b[j]);
        p.sub[j] = sub_row[bc];
        p.inc[j] = Policy::make_inc(c == bc, sub_row[bc] > 0);
      }
    }
    return p;
  };

  std::uint64_t cells = 0;
  std::int32_t best_score = 0;
  Bundle best_bundle{};
  std::size_t best_i = 0, best_j = 0;

  for (std::size_t i = 1; i <= m; ++i) {
    const std::size_t bi = lay.base(i);
    const std::size_t bp = lay.base(i - 1);
    std::size_t j_lo, j_hi;
    lay.row_limits(i, j_lo, j_hi);

    // Clear only the slots the loop below leaves untouched: the loop writes
    // the contiguous slots [j_lo - bi, j_hi - bi], so defaulting the head
    // and tail margins (instead of the whole row) restores the "everything
    // outside the computed band is default" invariant at a fraction of the
    // memory traffic. The column-0 border lands inside the head margin
    // (j_lo - bi >= 1 whenever the window holds column 0).
    {
      const std::size_t head = (j_lo <= j_hi) ? j_lo - bi : W;
      for (auto* row : {&m_cur, &x_cur, &y_cur}) {
        clear_range(*row, 0, head);
        if (head < W) clear_range(*row, j_hi - bi + 1, W);
      }
    }

    // Column-0 borders for this row.
    if (lay.in_window(i, 0)) {
      if (local) {
        m_cur.score[0 - bi] = 0;
        m_cur.bundle[0 - bi] = Policy::start(i, 0);
      } else {
        x_cur.score[0 - bi] =
            -open - static_cast<std::int32_t>(i - 1) * extend;
        x_cur.bundle[0 - bi] = Bundle{};  // begin (0, 0), no substitutions
      }
    }

    if (j_lo <= j_hi) {
      const auto ai = static_cast<std::uint8_t>(a[i - 1]);
      cells += j_hi - j_lo + 1;
      const std::int32_t* prof_sub = nullptr;
      const std::uint64_t* prof_inc = nullptr;
      if constexpr (UseProfile) {
        const Profile& prof = profile_for(ai);
        prof_sub = prof.sub.data();
        prof_inc = prof.inc.data();
      }
      const auto& sub_row = scheme.substitution[ai];

      const std::int32_t* mp_s = m_prev.score.data();
      const Bundle* mp_b = m_prev.bundle.data();
      const std::int32_t* xp_s = x_prev.score.data();
      const Bundle* xp_b = x_prev.bundle.data();
      const std::int32_t* yp_s = y_prev.score.data();
      const Bundle* yp_b = y_prev.bundle.data();
      std::int32_t* mc_s = m_cur.score.data();
      Bundle* mc_b = m_cur.bundle.data();
      std::int32_t* xc_s = x_cur.score.data();
      Bundle* xc_b = x_cur.bundle.data();
      std::int32_t* yc_s = y_cur.score.data();
      Bundle* yc_b = y_cur.bundle.data();

      // The row is computed in two passes. X and M depend only on the
      // previous row, so one fused chain-free pass computes both with full
      // ILP; the local best update rides along (its branch is taken on a
      // vanishing fraction of cells, so it predicts well). Only the Y pass
      // carries a serial dependency, and it runs second, kept to the bare
      // minimum of work. Threading every state's latency through Y's chain
      // (fully interleaved) and splitting into one pass per state (the
      // original form) both ran slower — the former on the exposed chain,
      // the latter on per-pass loop overhead at banded row widths.
      // Fresh/restart start values as running registers, bumped per column.
      Bundle start_prev = Policy::start(i - 1, j_lo - 1);
      Bundle start_here = Policy::start(i, j_lo);
      for (std::size_t j = j_lo; j <= j_hi; ++j) {
        const std::size_t jp = j - bp;
        const std::size_t jq = jp - 1;
        const std::size_t jc = j - bi;

        // X: gap in b (consume a[i-1]); ties prefer M, as in align_impl.
        // A pure select — gap statistics fall out of the geometry later.
        const std::int32_t vm = mp_s[jp] - open;
        const std::int32_t vx = xp_s[jp] - extend;
        const bool take_m = vm >= vx;
        xc_s[jc] = take_m ? vm : vx;
        xc_b[jc] = Policy::select(take_m, mp_b[jp], xp_b[jp]);

        // M: substitute a[i-1] with b[j-1]; predecessor ties prefer M,
        // then X, then Y (strict > to switch), as in align_impl.
        std::int32_t ps = mp_s[jq];
        Bundle pb = mp_b[jq];
        const bool x_beats = xp_s[jq] > ps;
        ps = x_beats ? xp_s[jq] : ps;
        pb = Policy::select(x_beats, xp_b[jq], pb);
        const bool y_beats = yp_s[jq] > ps;
        ps = y_beats ? yp_s[jq] : ps;
        pb = Policy::select(y_beats, yp_b[jq], pb);
        if constexpr (local) {
          // Fresh local start at (i-1, j-1).
          const bool fresh = ps < 0;
          pb = Policy::select(fresh, start_prev, pb);
          ps = fresh ? 0 : ps;
        }
        std::int32_t subv;
        std::uint64_t incv;
        if constexpr (UseProfile) {
          subv = prof_sub[j - 1];
          incv = prof_inc[j - 1];
        } else {
          const auto bc = static_cast<std::uint8_t>(b[j - 1]);
          subv = sub_row[bc];
          incv = Policy::make_inc(ai == bc, subv > 0);
        }
        const std::int32_t value = ps + subv;
        mc_s[jc] = value;
        if constexpr (local) {
          // A local traceback reaching a non-positive M cell stops there:
          // the bundle restarts empty at (i, j).
          const bool restart = value <= 0;
          mc_b[jc] = Policy::select(restart, start_here,
                                    Policy::add_inc(pb, incv));
          // Local best tracking: same scan order as the interleaved loop
          // (i ascending, then j ascending, strict > to switch), so the
          // first occurrence of the maximum wins exactly as align_impl's.
          if (value > best_score) {
            best_score = value;
            best_bundle = mc_b[jc];
            best_i = i;
            best_j = j;
          }
          Policy::bump_j(start_prev);
          Policy::bump_j(start_here);
        } else {
          mc_b[jc] = Policy::add_inc(pb, incv);
        }
      }

      // Y: gap in a (consume b[j-1]); the serial chain, carried in
      // registers. Reads M's current row, so it runs after the M pass.
      {
        std::int32_t y_s = yc_s[j_lo - 1 - bi];
        Bundle y_b = yc_b[j_lo - 1 - bi];
        for (std::size_t j = j_lo; j <= j_hi; ++j) {
          const std::size_t jc = j - bi;
          const std::int32_t vm = mc_s[jc - 1] - open;
          const std::int32_t vy = y_s - extend;
          const bool take_m = vm >= vy;
          y_s = take_m ? vm : vy;
          y_b = Policy::select(take_m, mc_b[jc - 1], y_b);
          yc_s[jc] = y_s;
          yc_b[jc] = y_b;
        }
      }
    }

    std::swap(m_prev, m_cur);
    std::swap(x_prev, x_cur);
    std::swap(y_prev, y_cur);
  }

  AlignmentResult result;
  result.cells = cells;

  const std::size_t bm = lay.base(m);
  const auto row_score = [&](const Rows& row, std::size_t j) {
    return lay.in_window(m, j) ? row.score[j - bm] : kNegInf;
  };

  std::int32_t end_score = kNegInf;
  Bundle end_bundle{};
  std::size_t end_i = m, end_j = n;
  const auto consider = [&](const Rows& row, std::size_t j) {
    if (row_score(row, j) > end_score) {
      end_score = row.score[j - bm];
      end_bundle = row.bundle[j - bm];
      end_j = j;
    }
  };
  if (mode == Mode::kGlobal) {
    consider(m_prev, n);
    consider(x_prev, n);
    consider(y_prev, n);
    if (end_score == kNegInf) end_bundle = Bundle{};
  } else if (mode == Mode::kSemiglobal) {
    for (std::size_t jj = 0; jj <= n; ++jj) {
      consider(m_prev, jj);
      consider(x_prev, jj);
    }
  } else {
    if (best_score <= 0) return result;  // no positive local alignment
    end_score = best_score;
    end_bundle = best_bundle;
    end_i = best_i;
    end_j = best_j;
  }

  const BundleFields f = Policy::unpack(end_bundle);
  const auto rows_used = static_cast<std::uint32_t>(end_i) - f.a_begin;
  const auto cols_used = static_cast<std::uint32_t>(end_j) - f.b_begin;
  result.score = end_score;
  result.a_end = static_cast<std::uint32_t>(end_i);
  result.b_end = static_cast<std::uint32_t>(end_j);
  result.a_begin = f.a_begin;
  result.b_begin = f.b_begin;
  result.columns = rows_used + cols_used - f.subs;
  result.matches = f.matches;
  result.positives = f.positives;
  result.gap_columns = result.columns - f.subs;
  return result;
}

/// Lift the runtime mode and profile choice to template arguments so the
/// hot loop specializes per mode (the local fresh/restart selects vanish
/// from the global and semiglobal instantiations) and per lookup strategy.
template <typename Policy>
AlignmentResult score_dispatch(std::string_view a, std::string_view b,
                               const ScoringScheme& scheme, Mode mode,
                               std::int64_t diagonal, std::int64_t band,
                               bool use_profile) {
  const auto run = [&]<Mode kMode>() {
    return use_profile
               ? score_impl_t<Policy, kMode, true>(a, b, scheme, diagonal,
                                                   band)
               : score_impl_t<Policy, kMode, false>(a, b, scheme, diagonal,
                                                    band);
  };
  switch (mode) {
    case Mode::kGlobal:
      return run.template operator()<Mode::kGlobal>();
    case Mode::kSemiglobal:
      return run.template operator()<Mode::kSemiglobal>();
    case Mode::kLocal:
      break;
  }
  return run.template operator()<Mode::kLocal>();
}

AlignmentResult score_impl(std::string_view a, std::string_view b,
                           const ScoringScheme& scheme, Mode mode,
                           std::int64_t diagonal, std::int64_t band) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  if (m > kScoreCellMax || n > kScoreCellMax) {
    return align_impl(a, b, scheme, mode, diagonal, band);
  }
  // Narrow windows sweep too few cells to amortize the O(alphabet * n)
  // profile build; the crossover against the per-cell inline lookup sits
  // around a window width of ~100–130 columns on current hardware.
  const bool use_profile = BandLayout(m, n, diagonal, band).W > 128;
  if (m <= PackedBundle::kMaxLen && n <= PackedBundle::kMaxLen) {
    return score_dispatch<PackedBundle>(a, b, scheme, mode, diagonal, band,
                                        use_profile);
  }
  return score_dispatch<WideBundle>(a, b, scheme, mode, diagonal, band,
                                    use_profile);
}

}  // namespace

AlignmentResult global_align(std::string_view a, std::string_view b,
                             const ScoringScheme& scheme) {
  return align_impl(a, b, scheme, Mode::kGlobal, 0,
                    static_cast<std::int64_t>(a.size() + b.size()));
}

AlignmentResult global_align_path(std::string_view a, std::string_view b,
                                  const ScoringScheme& scheme,
                                  std::vector<EditOp>& path) {
  return align_impl(a, b, scheme, Mode::kGlobal, 0,
                    static_cast<std::int64_t>(a.size() + b.size()), &path);
}

AlignmentResult semiglobal_align(std::string_view a, std::string_view b,
                                 const ScoringScheme& scheme) {
  return align_impl(a, b, scheme, Mode::kSemiglobal, 0,
                    static_cast<std::int64_t>(a.size() + b.size()));
}

AlignmentResult local_align(std::string_view a, std::string_view b,
                            const ScoringScheme& scheme) {
  return align_impl(a, b, scheme, Mode::kLocal, 0,
                    static_cast<std::int64_t>(a.size() + b.size()));
}

AlignmentResult banded_local_align(std::string_view a, std::string_view b,
                                   const ScoringScheme& scheme,
                                   std::int64_t diagonal,
                                   std::uint32_t band_halfwidth) {
  return align_impl(a, b, scheme, Mode::kLocal, diagonal,
                    static_cast<std::int64_t>(band_halfwidth));
}

AlignmentResult global_align_score(std::string_view a, std::string_view b,
                                   const ScoringScheme& scheme) {
  return score_impl(a, b, scheme, Mode::kGlobal, 0,
                    static_cast<std::int64_t>(a.size() + b.size()));
}

AlignmentResult semiglobal_align_score(std::string_view a, std::string_view b,
                                       const ScoringScheme& scheme) {
  return score_impl(a, b, scheme, Mode::kSemiglobal, 0,
                    static_cast<std::int64_t>(a.size() + b.size()));
}

AlignmentResult local_align_score(std::string_view a, std::string_view b,
                                  const ScoringScheme& scheme) {
  return score_impl(a, b, scheme, Mode::kLocal, 0,
                    static_cast<std::int64_t>(a.size() + b.size()));
}

AlignmentResult banded_local_align_score(std::string_view a,
                                         std::string_view b,
                                         const ScoringScheme& scheme,
                                         std::int64_t diagonal,
                                         std::uint32_t band_halfwidth) {
  return score_impl(a, b, scheme, Mode::kLocal, diagonal,
                    static_cast<std::int64_t>(band_halfwidth));
}

}  // namespace pclust::align
