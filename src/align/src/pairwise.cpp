#include "pclust/align/pairwise.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

namespace pclust::align {

namespace {

constexpr std::int32_t kNegInf = std::numeric_limits<std::int32_t>::min() / 4;

// Traceback codes. For the M (substitution) state the predecessor is the
// best of {M, X, Y} at (i-1, j-1), or a fresh local start.
enum Tb : std::uint8_t { kFromM = 0, kFromX = 1, kFromY = 2, kStart = 3 };

// DP variants sharing one engine.
enum class Mode {
  kGlobal,      // end-to-end in both sequences
  kLocal,       // best positive region (Smith-Waterman)
  kSemiglobal,  // a end-to-end; b's flanks are free ("glocal")
};

/// Shared DP engine. When `global` is true, borders are initialized with
/// affine gap penalties and the answer is the best end state at (m, n);
/// otherwise the recurrence is clamped at zero (Smith–Waterman) and the
/// answer is the best M cell anywhere. The band restricts computation to
/// diagonals |i - j - diagonal| <= band (band >= m + n disables it).
AlignmentResult align_impl(std::string_view a, std::string_view b,
                           const ScoringScheme& scheme, Mode mode,
                           std::int64_t diagonal, std::int64_t band,
                           std::vector<EditOp>* path = nullptr) {
  if (path) path->clear();
  const bool global = mode == Mode::kGlobal;
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  const std::int32_t open =
      static_cast<std::int32_t>(scheme.gap_open) + scheme.gap_extend;
  const std::int32_t extend = scheme.gap_extend;

  const std::size_t stride = n + 1;
  const auto at = [stride](std::size_t i, std::size_t j) {
    return i * stride + j;
  };

  std::vector<std::int32_t> M((m + 1) * stride, kNegInf);
  std::vector<std::int32_t> X((m + 1) * stride, kNegInf);
  std::vector<std::int32_t> Y((m + 1) * stride, kNegInf);
  std::vector<std::uint8_t> tbM((m + 1) * stride, kStart);
  std::vector<std::uint8_t> tbX((m + 1) * stride, kFromM);
  std::vector<std::uint8_t> tbY((m + 1) * stride, kFromM);

  M[at(0, 0)] = 0;
  switch (mode) {
    case Mode::kGlobal:
      for (std::size_t i = 1; i <= m; ++i) {
        X[at(i, 0)] = -open - static_cast<std::int32_t>(i - 1) * extend;
        tbX[at(i, 0)] = (i == 1) ? kFromM : kFromX;
      }
      for (std::size_t j = 1; j <= n; ++j) {
        Y[at(0, j)] = -open - static_cast<std::int32_t>(j - 1) * extend;
        tbY[at(0, j)] = (j == 1) ? kFromM : kFromY;
      }
      break;
    case Mode::kLocal:
      // Every cell can start fresh; model by M=0 on the borders (traceback
      // stops at kStart anyway).
      for (std::size_t i = 0; i <= m; ++i) M[at(i, 0)] = 0;
      for (std::size_t j = 0; j <= n; ++j) M[at(0, j)] = 0;
      break;
    case Mode::kSemiglobal:
      // a must be consumed entirely (X border charged as global); b may
      // start anywhere for free.
      for (std::size_t i = 1; i <= m; ++i) {
        X[at(i, 0)] = -open - static_cast<std::int32_t>(i - 1) * extend;
        tbX[at(i, 0)] = (i == 1) ? kFromM : kFromX;
      }
      for (std::size_t j = 0; j <= n; ++j) M[at(0, j)] = 0;
      break;
  }

  std::uint64_t cells = 0;
  std::int32_t best = global ? kNegInf : 0;
  std::size_t best_i = 0, best_j = 0;

  for (std::size_t i = 1; i <= m; ++i) {
    // Band limits for this row: j such that |(i - j) - diagonal| <= band.
    std::size_t j_lo = 1, j_hi = n;
    if (band < static_cast<std::int64_t>(m + n)) {
      const std::int64_t center = static_cast<std::int64_t>(i) - diagonal;
      const std::int64_t lo64 = std::max<std::int64_t>(1, center - band);
      const std::int64_t hi64 =
          std::min<std::int64_t>(static_cast<std::int64_t>(n), center + band);
      if (lo64 > hi64) continue;  // band misses this row entirely
      j_lo = static_cast<std::size_t>(lo64);
      j_hi = static_cast<std::size_t>(hi64);
    }
    const auto ai = static_cast<std::uint8_t>(a[i - 1]);
    cells += j_hi - j_lo + 1;

    // Hot loop: raw row pointers, no sentinel guards. kNegInf is
    // INT32_MIN/4, and every computed value is at most (m+n)*(open+|sub|)
    // below a neighbor, so "negative infinity" degrades gracefully without
    // ever wrapping or winning a max against a real score.
    std::int32_t* m_row = &M[at(i, 0)];
    std::int32_t* x_row = &X[at(i, 0)];
    std::int32_t* y_row = &Y[at(i, 0)];
    const std::int32_t* m_prev = &M[at(i - 1, 0)];
    const std::int32_t* x_prev = &X[at(i - 1, 0)];
    const std::int32_t* y_prev = &Y[at(i - 1, 0)];
    std::uint8_t* tbm_row = &tbM[at(i, 0)];
    std::uint8_t* tbx_row = &tbX[at(i, 0)];
    std::uint8_t* tby_row = &tbY[at(i, 0)];
    const auto& sub_row = scheme.substitution[ai];

    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      // X: gap in b (consume a[i-1]).
      const std::int32_t x_from_m = m_prev[j] - open;
      const std::int32_t x_from_x = x_prev[j] - extend;
      const bool x_take_m = x_from_m >= x_from_x;
      x_row[j] = x_take_m ? x_from_m : x_from_x;
      tbx_row[j] = x_take_m ? kFromM : kFromX;

      // Y: gap in a (consume b[j-1]).
      const std::int32_t y_from_m = m_row[j - 1] - open;
      const std::int32_t y_from_y = y_row[j - 1] - extend;
      const bool y_take_m = y_from_m >= y_from_y;
      y_row[j] = y_take_m ? y_from_m : y_from_y;
      tby_row[j] = y_take_m ? kFromM : kFromY;

      // M: substitute a[i-1] with b[j-1].
      std::int32_t prev = m_prev[j - 1];
      std::uint8_t tb = kFromM;
      if (x_prev[j - 1] > prev) {
        prev = x_prev[j - 1];
        tb = kFromX;
      }
      if (y_prev[j - 1] > prev) {
        prev = y_prev[j - 1];
        tb = kFromY;
      }
      if (mode == Mode::kLocal && prev < 0) {
        prev = 0;
        tb = kStart;
      }
      const std::int32_t value =
          prev + sub_row[static_cast<std::uint8_t>(b[j - 1])];
      m_row[j] = value;
      tbm_row[j] = tb;
      if (mode == Mode::kLocal && value > best) {
        best = value;
        best_i = i;
        best_j = j;
      }
    }
  }

  AlignmentResult result;
  result.cells = cells;

  std::uint8_t state = kFromM;
  std::size_t i = m, j = n;
  if (mode == Mode::kGlobal) {
    const std::size_t end = at(m, n);
    best = M[end];
    state = kFromM;
    if (X[end] > best) {
      best = X[end];
      state = kFromX;
    }
    if (Y[end] > best) {
      best = Y[end];
      state = kFromY;
    }
    result.score = best;
  } else if (mode == Mode::kSemiglobal) {
    // a fully consumed; b's trailing flank is free: best M/X over row m.
    best = kNegInf;
    for (std::size_t jj = 0; jj <= n; ++jj) {
      if (M[at(m, jj)] > best) {
        best = M[at(m, jj)];
        j = jj;
        state = kFromM;
      }
      if (X[at(m, jj)] > best) {
        best = X[at(m, jj)];
        j = jj;
        state = kFromX;
      }
    }
    result.score = best;
  } else {
    if (best <= 0) return result;  // no positive local alignment
    result.score = best;
    i = best_i;
    j = best_j;
    state = kFromM;
  }

  result.a_end = static_cast<std::uint32_t>(i);
  result.b_end = static_cast<std::uint32_t>(j);

  // Traceback. Stops at (0,0) for global; at row 0 for semiglobal (b's
  // leading flank is free); for local, at the first zero-score M cell
  // (standard Smith-Waterman semantics) or a fresh-start marker.
  while (i > 0 || j > 0) {
    if (mode == Mode::kSemiglobal && i == 0) break;
    if (mode == Mode::kLocal && state == kFromM && M[at(i, j)] <= 0) break;
    if (state == kFromM) {
      const std::uint8_t tb = tbM[at(i, j)];
      if (i == 0 && j == 0) break;
      if (path) path->push_back(EditOp::kSubstitute);
      assert(i > 0 && j > 0);
      const std::int16_t sub = scheme.score(static_cast<std::uint8_t>(a[i - 1]),
                                            static_cast<std::uint8_t>(b[j - 1]));
      ++result.columns;
      if (a[i - 1] == b[j - 1]) ++result.matches;
      if (sub > 0) ++result.positives;
      --i;
      --j;
      state = (tb == kStart) ? static_cast<std::uint8_t>(kFromM) : tb;
      if (i == 0 && j == 0) break;
      if (mode == Mode::kLocal && tb == kStart) break;
    } else if (state == kFromX) {
      assert(i > 0);
      if (path) path->push_back(EditOp::kGapInB);
      ++result.columns;
      ++result.gap_columns;
      const std::uint8_t tb = tbX[at(i, j)];
      --i;
      state = tb;
    } else {  // kFromY
      assert(j > 0);
      if (path) path->push_back(EditOp::kGapInA);
      ++result.columns;
      ++result.gap_columns;
      const std::uint8_t tb = tbY[at(i, j)];
      --j;
      state = tb;
    }
  }

  result.a_begin = static_cast<std::uint32_t>(i);
  result.b_begin = static_cast<std::uint32_t>(j);
  if (path) std::reverse(path->begin(), path->end());
  return result;
}

}  // namespace

AlignmentResult global_align(std::string_view a, std::string_view b,
                             const ScoringScheme& scheme) {
  return align_impl(a, b, scheme, Mode::kGlobal, 0,
                    static_cast<std::int64_t>(a.size() + b.size()));
}

AlignmentResult global_align_path(std::string_view a, std::string_view b,
                                  const ScoringScheme& scheme,
                                  std::vector<EditOp>& path) {
  return align_impl(a, b, scheme, Mode::kGlobal, 0,
                    static_cast<std::int64_t>(a.size() + b.size()), &path);
}

AlignmentResult semiglobal_align(std::string_view a, std::string_view b,
                                 const ScoringScheme& scheme) {
  return align_impl(a, b, scheme, Mode::kSemiglobal, 0,
                    static_cast<std::int64_t>(a.size() + b.size()));
}

AlignmentResult local_align(std::string_view a, std::string_view b,
                            const ScoringScheme& scheme) {
  return align_impl(a, b, scheme, Mode::kLocal, 0,
                    static_cast<std::int64_t>(a.size() + b.size()));
}

AlignmentResult banded_local_align(std::string_view a, std::string_view b,
                                   const ScoringScheme& scheme,
                                   std::int64_t diagonal,
                                   std::uint32_t band_halfwidth) {
  return align_impl(a, b, scheme, Mode::kLocal, diagonal,
                    static_cast<std::int64_t>(band_halfwidth));
}

}  // namespace pclust::align
