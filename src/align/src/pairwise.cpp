#include "pclust/align/pairwise.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <vector>

namespace pclust::align {

namespace {

constexpr std::int32_t kNegInf = std::numeric_limits<std::int32_t>::min() / 4;

// Traceback codes. For the M (substitution) state the predecessor is the
// best of {M, X, Y} at (i-1, j-1), or a fresh local start.
enum Tb : std::uint8_t { kFromM = 0, kFromX = 1, kFromY = 2, kStart = 3 };

// DP variants sharing one engine.
enum class Mode {
  kGlobal,      // end-to-end in both sequences
  kLocal,       // best positive region (Smith-Waterman)
  kSemiglobal,  // a end-to-end; b's flanks are free ("glocal")
};

/// Banded matrix geometry. When the band is narrower than the full row,
/// each row i stores only a window of W = 2*band+3 columns around the band
/// center (i - diagonal); the extra slots beyond 2*band+1 absorb the j and
/// j-1 reads into the previous row, whose window is shifted by one. Reads
/// outside a row's window must go through the defaulting accessors — those
/// cells were never computed and behave like the untouched (kNegInf/kStart)
/// cells of a full matrix.
struct BandLayout {
  std::size_t m, n, W;
  std::int64_t diagonal, band;
  bool banded;

  BandLayout(std::size_t m_, std::size_t n_, std::int64_t diagonal_,
             std::int64_t band_)
      : m(m_), n(n_), diagonal(diagonal_), band(band_) {
    assert(band >= 0 && "band half-width must be non-negative");
    banded = band < static_cast<std::int64_t>(m + n) &&
             static_cast<std::size_t>(2 * band + 3) < n + 1;
    W = banded ? static_cast<std::size_t>(2 * band + 3) : n + 1;
  }

  /// First column physically stored for row i.
  [[nodiscard]] std::size_t base(std::size_t i) const {
    if (!banded) return 0;
    const std::int64_t lo =
        static_cast<std::int64_t>(i) - diagonal - band - 1;
    const auto max_base = static_cast<std::int64_t>(n + 1 - W);
    return static_cast<std::size_t>(std::clamp<std::int64_t>(lo, 0, max_base));
  }

  [[nodiscard]] bool in_window(std::size_t i, std::size_t j) const {
    const std::size_t b = base(i);
    return j >= b && j < b + W;
  }

  /// Flat index of (i, j); caller must ensure in_window(i, j).
  [[nodiscard]] std::size_t idx(std::size_t i, std::size_t j) const {
    return i * W + (j - base(i));
  }

  /// Band limits for row i: [j_lo, j_hi], or empty (j_lo > j_hi).
  void row_limits(std::size_t i, std::size_t& j_lo, std::size_t& j_hi) const {
    j_lo = 1;
    j_hi = n;
    if (band < static_cast<std::int64_t>(m + n)) {
      const std::int64_t center = static_cast<std::int64_t>(i) - diagonal;
      const std::int64_t lo64 = std::max<std::int64_t>(1, center - band);
      const std::int64_t hi64 =
          std::min<std::int64_t>(static_cast<std::int64_t>(n), center + band);
      if (lo64 > hi64) {
        j_lo = 1;
        j_hi = 0;  // band misses this row entirely
        return;
      }
      j_lo = static_cast<std::size_t>(lo64);
      j_hi = static_cast<std::size_t>(hi64);
    }
  }
};

/// Shared DP engine. When `global` is true, borders are initialized with
/// affine gap penalties and the answer is the best end state at (m, n);
/// otherwise the recurrence is clamped at zero (Smith–Waterman) and the
/// answer is the best M cell anywhere. The band restricts computation to
/// diagonals |i - j - diagonal| <= band (band >= m + n disables it); only
/// the banded window of each row is allocated.
AlignmentResult align_impl(std::string_view a, std::string_view b,
                           const ScoringScheme& scheme, Mode mode,
                           std::int64_t diagonal, std::int64_t band,
                           std::vector<EditOp>* path = nullptr) {
  if (path) path->clear();
  const bool global = mode == Mode::kGlobal;
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  const std::int32_t open =
      static_cast<std::int32_t>(scheme.gap_open) + scheme.gap_extend;
  const std::int32_t extend = scheme.gap_extend;

  const BandLayout lay(m, n, diagonal, band);
  const std::size_t W = lay.W;

  std::vector<std::int32_t> M((m + 1) * W, kNegInf);
  std::vector<std::int32_t> X((m + 1) * W, kNegInf);
  std::vector<std::int32_t> Y((m + 1) * W, kNegInf);
  std::vector<std::uint8_t> tbM((m + 1) * W, kStart);
  std::vector<std::uint8_t> tbX((m + 1) * W, kFromM);
  std::vector<std::uint8_t> tbY((m + 1) * W, kFromM);

  if (lay.in_window(0, 0)) M[lay.idx(0, 0)] = 0;
  switch (mode) {
    case Mode::kGlobal:
      for (std::size_t i = 1; i <= m; ++i) {
        if (!lay.in_window(i, 0)) continue;
        X[lay.idx(i, 0)] = -open - static_cast<std::int32_t>(i - 1) * extend;
        tbX[lay.idx(i, 0)] = (i == 1) ? kFromM : kFromX;
      }
      for (std::size_t j = 1; j <= n && lay.in_window(0, j); ++j) {
        Y[lay.idx(0, j)] = -open - static_cast<std::int32_t>(j - 1) * extend;
        tbY[lay.idx(0, j)] = (j == 1) ? kFromM : kFromY;
      }
      break;
    case Mode::kLocal:
      // Every cell can start fresh; model by M=0 on the borders (traceback
      // stops at kStart anyway).
      for (std::size_t i = 0; i <= m; ++i) {
        if (lay.in_window(i, 0)) M[lay.idx(i, 0)] = 0;
      }
      for (std::size_t j = 0; j <= n && lay.in_window(0, j); ++j) {
        M[lay.idx(0, j)] = 0;
      }
      break;
    case Mode::kSemiglobal:
      // a must be consumed entirely (X border charged as global); b may
      // start anywhere for free.
      for (std::size_t i = 1; i <= m; ++i) {
        if (!lay.in_window(i, 0)) continue;
        X[lay.idx(i, 0)] = -open - static_cast<std::int32_t>(i - 1) * extend;
        tbX[lay.idx(i, 0)] = (i == 1) ? kFromM : kFromX;
      }
      for (std::size_t j = 0; j <= n && lay.in_window(0, j); ++j) {
        M[lay.idx(0, j)] = 0;
      }
      break;
  }

  std::uint64_t cells = 0;
  std::int32_t best = global ? kNegInf : 0;
  std::size_t best_i = 0, best_j = 0;

  for (std::size_t i = 1; i <= m; ++i) {
    std::size_t j_lo, j_hi;
    lay.row_limits(i, j_lo, j_hi);
    if (j_lo > j_hi) continue;  // band misses this row entirely
    const auto ai = static_cast<std::uint8_t>(a[i - 1]);
    cells += j_hi - j_lo + 1;

    // Hot loop: raw row pointers indexed with per-row window offsets, no
    // sentinel guards. kNegInf is INT32_MIN/4, and every computed value is
    // at most (m+n)*(open+|sub|) below a neighbor, so "negative infinity"
    // degrades gracefully without ever wrapping or winning a max against a
    // real score. Window slots outside the band keep their kNegInf default
    // and behave exactly like the untouched cells of a full matrix.
    const std::size_t bi = lay.base(i);
    const std::size_t bp = lay.base(i - 1);
    std::int32_t* m_row = &M[i * W];
    std::int32_t* x_row = &X[i * W];
    std::int32_t* y_row = &Y[i * W];
    const std::int32_t* m_prev = &M[(i - 1) * W];
    const std::int32_t* x_prev = &X[(i - 1) * W];
    const std::int32_t* y_prev = &Y[(i - 1) * W];
    std::uint8_t* tbm_row = &tbM[i * W];
    std::uint8_t* tbx_row = &tbX[i * W];
    std::uint8_t* tby_row = &tbY[i * W];
    const auto& sub_row = scheme.substitution[ai];

    for (std::size_t j = j_lo; j <= j_hi; ++j) {
      // X: gap in b (consume a[i-1]).
      const std::int32_t x_from_m = m_prev[j - bp] - open;
      const std::int32_t x_from_x = x_prev[j - bp] - extend;
      const bool x_take_m = x_from_m >= x_from_x;
      x_row[j - bi] = x_take_m ? x_from_m : x_from_x;
      tbx_row[j - bi] = x_take_m ? kFromM : kFromX;

      // Y: gap in a (consume b[j-1]).
      const std::int32_t y_from_m = m_row[j - 1 - bi] - open;
      const std::int32_t y_from_y = y_row[j - 1 - bi] - extend;
      const bool y_take_m = y_from_m >= y_from_y;
      y_row[j - bi] = y_take_m ? y_from_m : y_from_y;
      tby_row[j - bi] = y_take_m ? kFromM : kFromY;

      // M: substitute a[i-1] with b[j-1].
      std::int32_t prev = m_prev[j - 1 - bp];
      std::uint8_t tb = kFromM;
      if (x_prev[j - 1 - bp] > prev) {
        prev = x_prev[j - 1 - bp];
        tb = kFromX;
      }
      if (y_prev[j - 1 - bp] > prev) {
        prev = y_prev[j - 1 - bp];
        tb = kFromY;
      }
      if (mode == Mode::kLocal && prev < 0) {
        prev = 0;
        tb = kStart;
      }
      const std::int32_t value =
          prev + sub_row[static_cast<std::uint8_t>(b[j - 1])];
      m_row[j - bi] = value;
      tbm_row[j - bi] = tb;
      if (mode == Mode::kLocal && value > best) {
        best = value;
        best_i = i;
        best_j = j;
      }
    }
  }

  AlignmentResult result;
  result.cells = cells;

  // Defaulting accessors for the traceback (and the semiglobal end scan):
  // out-of-window cells read as the untouched full-matrix defaults.
  const auto m_at = [&](std::size_t i, std::size_t j) {
    return lay.in_window(i, j) ? M[lay.idx(i, j)] : kNegInf;
  };
  const auto x_at = [&](std::size_t i, std::size_t j) {
    return lay.in_window(i, j) ? X[lay.idx(i, j)] : kNegInf;
  };
  const auto y_at = [&](std::size_t i, std::size_t j) {
    return lay.in_window(i, j) ? Y[lay.idx(i, j)] : kNegInf;
  };
  const auto tbm_at = [&](std::size_t i, std::size_t j) {
    return lay.in_window(i, j) ? tbM[lay.idx(i, j)]
                               : static_cast<std::uint8_t>(kStart);
  };
  const auto tbx_at = [&](std::size_t i, std::size_t j) {
    return lay.in_window(i, j) ? tbX[lay.idx(i, j)]
                               : static_cast<std::uint8_t>(kFromM);
  };
  const auto tby_at = [&](std::size_t i, std::size_t j) {
    return lay.in_window(i, j) ? tbY[lay.idx(i, j)]
                               : static_cast<std::uint8_t>(kFromM);
  };

  std::uint8_t state = kFromM;
  std::size_t i = m, j = n;
  if (mode == Mode::kGlobal) {
    best = m_at(m, n);
    state = kFromM;
    if (x_at(m, n) > best) {
      best = x_at(m, n);
      state = kFromX;
    }
    if (y_at(m, n) > best) {
      best = y_at(m, n);
      state = kFromY;
    }
    result.score = best;
  } else if (mode == Mode::kSemiglobal) {
    // a fully consumed; b's trailing flank is free: best M/X over row m.
    best = kNegInf;
    for (std::size_t jj = 0; jj <= n; ++jj) {
      if (m_at(m, jj) > best) {
        best = m_at(m, jj);
        j = jj;
        state = kFromM;
      }
      if (x_at(m, jj) > best) {
        best = x_at(m, jj);
        j = jj;
        state = kFromX;
      }
    }
    result.score = best;
  } else {
    if (best <= 0) return result;  // no positive local alignment
    result.score = best;
    i = best_i;
    j = best_j;
    state = kFromM;
  }

  result.a_end = static_cast<std::uint32_t>(i);
  result.b_end = static_cast<std::uint32_t>(j);

  // Traceback. Stops at (0,0) for global; at row 0 for semiglobal (b's
  // leading flank is free); for local, at the first zero-score M cell
  // (standard Smith-Waterman semantics) or a fresh-start marker.
  while (i > 0 || j > 0) {
    if (mode == Mode::kSemiglobal && i == 0) break;
    if (mode == Mode::kLocal && state == kFromM && m_at(i, j) <= 0) break;
    if (state == kFromM) {
      const std::uint8_t tb = tbm_at(i, j);
      if (i == 0 && j == 0) break;
      if (path) path->push_back(EditOp::kSubstitute);
      assert(i > 0 && j > 0);
      const std::int16_t sub = scheme.score(static_cast<std::uint8_t>(a[i - 1]),
                                            static_cast<std::uint8_t>(b[j - 1]));
      ++result.columns;
      if (a[i - 1] == b[j - 1]) ++result.matches;
      if (sub > 0) ++result.positives;
      --i;
      --j;
      state = (tb == kStart) ? static_cast<std::uint8_t>(kFromM) : tb;
      if (i == 0 && j == 0) break;
      if (mode == Mode::kLocal && tb == kStart) break;
    } else if (state == kFromX) {
      assert(i > 0);
      if (path) path->push_back(EditOp::kGapInB);
      ++result.columns;
      ++result.gap_columns;
      const std::uint8_t tb = tbx_at(i, j);
      --i;
      state = tb;
    } else {  // kFromY
      assert(j > 0);
      if (path) path->push_back(EditOp::kGapInA);
      ++result.columns;
      ++result.gap_columns;
      const std::uint8_t tb = tby_at(i, j);
      --j;
      state = tb;
    }
  }

  result.a_begin = static_cast<std::uint32_t>(i);
  result.b_begin = static_cast<std::uint32_t>(j);
  if (path) std::reverse(path->begin(), path->end());
  return result;
}

// ---------------------------------------------------------------------------
// Score-only fast path: two rolling rows per state, no traceback storage.
//
// Alignment statistics (region begin, columns, matches, positives, gap
// columns) are propagated FORWARD along the argmax predecessor of each
// cell, using exactly the tie-breaking rules align_impl encodes in its
// traceback pointers. Because the traceback merely replays those argmax
// choices, the propagated bundle of the winning end cell is bit-identical
// to what align_impl reconstructs — including Smith-Waterman's stop at the
// first non-positive M cell on the path, modeled here as a "barrier" that
// resets the bundle. DP memory drops from O(m*n) to O(band) (O(n) when
// unbanded) and the traceback pass disappears entirely.
// ---------------------------------------------------------------------------

// 16 bytes so the three per-cell bundle copies stay cheap. The u16 stats
// bound both sequences at kScoreCellMax residues (columns <= m + n must fit);
// longer inputs take the full-matrix path instead — far beyond any peptide.
struct Cell {
  std::int32_t score = kNegInf;
  std::uint16_t a_begin = 0, b_begin = 0;
  std::uint16_t columns = 0, matches = 0, positives = 0, gap_columns = 0;
};
constexpr std::size_t kScoreCellMax = 32'767;

AlignmentResult score_impl(std::string_view a, std::string_view b,
                           const ScoringScheme& scheme, Mode mode,
                           std::int64_t diagonal, std::int64_t band) {
  const std::size_t m = a.size();
  const std::size_t n = b.size();
  if (m > kScoreCellMax || n > kScoreCellMax) {
    return align_impl(a, b, scheme, mode, diagonal, band);
  }
  const std::int32_t open =
      static_cast<std::int32_t>(scheme.gap_open) + scheme.gap_extend;
  const std::int32_t extend = scheme.gap_extend;

  const BandLayout lay(m, n, diagonal, band);
  const std::size_t W = lay.W;

  const Cell def;  // kNegInf, empty bundle
  const auto start_at = [](std::size_t i, std::size_t j, std::int32_t score) {
    Cell c;
    c.score = score;
    c.a_begin = static_cast<std::uint16_t>(i);
    c.b_begin = static_cast<std::uint16_t>(j);
    return c;
  };

  std::vector<Cell> m_prev(W, def), m_cur(W, def);
  std::vector<Cell> x_prev(W, def), x_cur(W, def);
  std::vector<Cell> y_prev(W, def), y_cur(W, def);

  // Row 0 borders (into the prev buffers).
  {
    const std::size_t b0 = lay.base(0);
    if (lay.in_window(0, 0)) {
      if (mode != Mode::kLocal) m_prev[0 - b0] = start_at(0, 0, 0);
    }
    switch (mode) {
      case Mode::kGlobal:
        for (std::size_t j = std::max<std::size_t>(1, b0);
             j <= n && lay.in_window(0, j); ++j) {
          Cell c = start_at(0, 0,
                            -open - static_cast<std::int32_t>(j - 1) * extend);
          c.columns = c.gap_columns = static_cast<std::uint16_t>(j);
          y_prev[j - b0] = c;
        }
        break;
      case Mode::kLocal:
      case Mode::kSemiglobal:
        for (std::size_t j = b0; j <= n && lay.in_window(0, j); ++j) {
          m_prev[j - b0] = start_at(0, j, 0);
        }
        break;
    }
  }

  std::uint64_t cells = 0;
  std::int32_t best_score = 0;
  Cell best_cell;
  std::size_t best_i = 0, best_j = 0;

  for (std::size_t i = 1; i <= m; ++i) {
    const std::size_t bi = lay.base(i);
    const std::size_t bp = lay.base(i - 1);
    std::size_t j_lo, j_hi;
    lay.row_limits(i, j_lo, j_hi);

    // Clear only the slots the loop below leaves untouched: the loop writes
    // the contiguous slots [j_lo - bi, j_hi - bi], so defaulting the head
    // and tail margins (instead of the whole row) restores the "everything
    // outside the computed band is def" invariant at a fraction of the
    // memory traffic. The column-0 border lands inside the head margin
    // (j_lo - bi >= 1 whenever the window holds column 0).
    {
      const std::size_t head = (j_lo <= j_hi) ? j_lo - bi : W;
      for (auto* row : {&m_cur, &x_cur, &y_cur}) {
        std::fill(row->begin(), row->begin() + static_cast<std::ptrdiff_t>(head),
                  def);
        if (head < W) {
          std::fill(
              row->begin() + static_cast<std::ptrdiff_t>(j_hi - bi) + 1,
              row->end(), def);
        }
      }
    }

    // Column-0 borders for this row.
    if (lay.in_window(i, 0)) {
      if (mode == Mode::kLocal) {
        m_cur[0 - bi] = start_at(i, 0, 0);
      } else {
        Cell c = start_at(0, 0,
                          -open - static_cast<std::int32_t>(i - 1) * extend);
        c.columns = c.gap_columns = static_cast<std::uint16_t>(i);
        x_cur[0 - bi] = c;
      }
    }

    if (j_lo <= j_hi) {
      const auto ai = static_cast<std::uint8_t>(a[i - 1]);
      cells += j_hi - j_lo + 1;
      const auto& sub_row = scheme.substitution[ai];

      for (std::size_t j = j_lo; j <= j_hi; ++j) {
        // X: gap in b (consume a[i-1]); ties prefer M, as in align_impl.
        {
          const Cell& from_m = m_prev[j - bp];
          const Cell& from_x = x_prev[j - bp];
          const std::int32_t vm = from_m.score - open;
          const std::int32_t vx = from_x.score - extend;
          Cell& out = x_cur[j - bi];
          out = (vm >= vx) ? from_m : from_x;
          out.score = (vm >= vx) ? vm : vx;
          ++out.columns;
          ++out.gap_columns;
        }

        // Y: gap in a (consume b[j-1]).
        {
          const Cell& from_m = m_cur[j - 1 - bi];
          const Cell& from_y = y_cur[j - 1 - bi];
          const std::int32_t vm = from_m.score - open;
          const std::int32_t vy = from_y.score - extend;
          Cell& out = y_cur[j - bi];
          out = (vm >= vy) ? from_m : from_y;
          out.score = (vm >= vy) ? vm : vy;
          ++out.columns;
          ++out.gap_columns;
        }

        // M: substitute a[i-1] with b[j-1]; predecessor ties prefer M,
        // then X, then Y (strict > to switch), as in align_impl.
        {
          const Cell* pred = &m_prev[j - 1 - bp];
          if (x_prev[j - 1 - bp].score > pred->score) {
            pred = &x_prev[j - 1 - bp];
          }
          if (y_prev[j - 1 - bp].score > pred->score) {
            pred = &y_prev[j - 1 - bp];
          }
          Cell start;  // fresh local start at (i-1, j-1)
          if (mode == Mode::kLocal && pred->score < 0) {
            start = start_at(i - 1, j - 1, 0);
            pred = &start;
          }
          const std::int32_t value =
              pred->score + sub_row[static_cast<std::uint8_t>(b[j - 1])];
          Cell& out = m_cur[j - bi];
          if (mode == Mode::kLocal && value <= 0) {
            // A traceback reaching this cell in state M stops here: the
            // bundle restarts empty at (i, j).
            out = start_at(i, j, value);
          } else {
            out = *pred;
            out.score = value;
            ++out.columns;
            if (a[i - 1] == b[j - 1]) ++out.matches;
            if (sub_row[static_cast<std::uint8_t>(b[j - 1])] > 0) {
              ++out.positives;
            }
          }
          if (mode == Mode::kLocal && value > best_score) {
            best_score = value;
            best_cell = out;
            best_i = i;
            best_j = j;
          }
        }
      }
    }

    m_prev.swap(m_cur);
    x_prev.swap(x_cur);
    y_prev.swap(y_cur);
  }

  AlignmentResult result;
  result.cells = cells;

  const std::size_t bm = lay.base(m);
  const auto row_cell = [&](const std::vector<Cell>& row,
                            std::size_t j) -> const Cell& {
    static const Cell fallback;
    return lay.in_window(m, j) ? row[j - bm] : fallback;
  };

  const Cell* end = nullptr;
  std::size_t end_i = m, end_j = n;
  if (mode == Mode::kGlobal) {
    end = &row_cell(m_prev, n);
    if (row_cell(x_prev, n).score > end->score) end = &row_cell(x_prev, n);
    if (row_cell(y_prev, n).score > end->score) end = &row_cell(y_prev, n);
  } else if (mode == Mode::kSemiglobal) {
    std::int32_t best = kNegInf;
    for (std::size_t jj = 0; jj <= n; ++jj) {
      if (row_cell(m_prev, jj).score > best) {
        best = row_cell(m_prev, jj).score;
        end = &row_cell(m_prev, jj);
        end_j = jj;
      }
      if (row_cell(x_prev, jj).score > best) {
        best = row_cell(x_prev, jj).score;
        end = &row_cell(x_prev, jj);
        end_j = jj;
      }
    }
  } else {
    if (best_score <= 0) return result;  // no positive local alignment
    end = &best_cell;
    end_i = best_i;
    end_j = best_j;
  }

  result.score = end->score;
  result.a_end = static_cast<std::uint32_t>(end_i);
  result.b_end = static_cast<std::uint32_t>(end_j);
  result.a_begin = end->a_begin;
  result.b_begin = end->b_begin;
  result.columns = end->columns;
  result.matches = end->matches;
  result.positives = end->positives;
  result.gap_columns = end->gap_columns;
  return result;
}

}  // namespace

AlignmentResult global_align(std::string_view a, std::string_view b,
                             const ScoringScheme& scheme) {
  return align_impl(a, b, scheme, Mode::kGlobal, 0,
                    static_cast<std::int64_t>(a.size() + b.size()));
}

AlignmentResult global_align_path(std::string_view a, std::string_view b,
                                  const ScoringScheme& scheme,
                                  std::vector<EditOp>& path) {
  return align_impl(a, b, scheme, Mode::kGlobal, 0,
                    static_cast<std::int64_t>(a.size() + b.size()), &path);
}

AlignmentResult semiglobal_align(std::string_view a, std::string_view b,
                                 const ScoringScheme& scheme) {
  return align_impl(a, b, scheme, Mode::kSemiglobal, 0,
                    static_cast<std::int64_t>(a.size() + b.size()));
}

AlignmentResult local_align(std::string_view a, std::string_view b,
                            const ScoringScheme& scheme) {
  return align_impl(a, b, scheme, Mode::kLocal, 0,
                    static_cast<std::int64_t>(a.size() + b.size()));
}

AlignmentResult banded_local_align(std::string_view a, std::string_view b,
                                   const ScoringScheme& scheme,
                                   std::int64_t diagonal,
                                   std::uint32_t band_halfwidth) {
  return align_impl(a, b, scheme, Mode::kLocal, diagonal,
                    static_cast<std::int64_t>(band_halfwidth));
}

AlignmentResult global_align_score(std::string_view a, std::string_view b,
                                   const ScoringScheme& scheme) {
  return score_impl(a, b, scheme, Mode::kGlobal, 0,
                    static_cast<std::int64_t>(a.size() + b.size()));
}

AlignmentResult semiglobal_align_score(std::string_view a, std::string_view b,
                                       const ScoringScheme& scheme) {
  return score_impl(a, b, scheme, Mode::kSemiglobal, 0,
                    static_cast<std::int64_t>(a.size() + b.size()));
}

AlignmentResult local_align_score(std::string_view a, std::string_view b,
                                  const ScoringScheme& scheme) {
  return score_impl(a, b, scheme, Mode::kLocal, 0,
                    static_cast<std::int64_t>(a.size() + b.size()));
}

AlignmentResult banded_local_align_score(std::string_view a,
                                         std::string_view b,
                                         const ScoringScheme& scheme,
                                         std::int64_t diagonal,
                                         std::uint32_t band_halfwidth) {
  return score_impl(a, b, scheme, Mode::kLocal, diagonal,
                    static_cast<std::int64_t>(band_halfwidth));
}

}  // namespace pclust::align
