#include "pclust/align/batch.hpp"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <utility>
#include <vector>

#include "band_layout.hpp"
#include "batch_detail.hpp"
#include "pclust/align/simd.hpp"
#include "pclust/util/metrics.hpp"

namespace pclust::align {

namespace {

using detail::BandLayout;
using detail::LaneJob;
using detail::LaneOut;

/// The scalar reference for one job — also the fallback for every pair the
/// 16-bit lanes cannot represent exactly.
AlignmentResult scalar_score(const PairJob& job, const ScoringScheme& scheme) {
  if (job.band < 0) return local_align_score(job.a, job.b, scheme);
  return banded_local_align_score(job.a, job.b, scheme, job.diagonal,
                                  static_cast<std::uint32_t>(job.band));
}

/// Cell count exactly as the scalar engine charges it: the sum of
/// row_limits widths over non-empty rows.
std::uint64_t cells_for(const PairJob& job) {
  const std::size_t m = job.a.size();
  const std::size_t n = job.b.size();
  const std::int64_t band =
      job.band < 0 ? static_cast<std::int64_t>(m + n) : job.band;
  const std::int64_t diagonal = job.band < 0 ? 0 : job.diagonal;
  const BandLayout lay(m, n, diagonal, band);
  std::uint64_t cells = 0;
  for (std::size_t i = 1; i <= m; ++i) {
    std::size_t j_lo, j_hi;
    lay.row_limits(i, j_lo, j_hi);
    if (j_lo <= j_hi) cells += j_hi - j_lo + 1;
  }
  return cells;
}

/// One chunk of lane-compatible jobs, already capped at the lane width.
struct Chunk {
  const std::size_t* idx;
  std::size_t count;
  bool banded;        // diagonal-window storage, uniform band
  std::int64_t band;  // the uniform half-width when banded
};

void run_chunk(const Chunk& chunk, const PairJob* jobs,
               const ScoringScheme& scheme, Isa isa, AlignmentResult* out) {
  LaneJob lanes[16];
  LaneOut louts[16];
  for (std::size_t l = 0; l < chunk.count; ++l) {
    const PairJob& job = jobs[chunk.idx[l]];
    LaneJob& lane = lanes[l];
    lane.a = job.a.data();
    lane.b = job.b.data();
    lane.m = static_cast<std::int32_t>(job.a.size());
    lane.n = static_cast<std::int32_t>(job.b.size());
    const std::int64_t mn = lane.m + lane.n;
    const std::int64_t band = job.band < 0 ? mn : std::min(job.band, mn);
    lane.band_eff = static_cast<std::int32_t>(band);
    lane.diagonal =
        band < mn ? static_cast<std::int32_t>(job.diagonal) : 0;
  }
  switch (isa) {
    case Isa::kAvx2:
      detail::avx2::run_batch(lanes, chunk.count, chunk.banded, chunk.band,
                              scheme, louts);
      break;
    case Isa::kSse2:
      detail::sse2::run_batch(lanes, chunk.count, chunk.banded, chunk.band,
                              scheme, louts);
      break;
    case Isa::kScalar:
      std::abort();  // scalar calls never reach chunk dispatch
  }
  util::metrics().counter("align.batches").add(1);
  util::metrics().histogram("align.batch_fill").add(chunk.count);

  for (std::size_t l = 0; l < chunk.count; ++l) {
    const PairJob& job = jobs[chunk.idx[l]];
    const LaneOut& lane = louts[l];
    AlignmentResult& r = out[chunk.idx[l]];
    if (lane.overflow) {
      r = scalar_score(job, scheme);
      continue;
    }
    r = AlignmentResult{};
    r.cells = cells_for(job);
    if (lane.score <= 0) continue;  // no positive local alignment
    r.score = lane.score;
    r.a_end = static_cast<std::uint32_t>(lane.best_i);
    r.b_end = static_cast<std::uint32_t>(lane.best_j);
    r.a_begin = static_cast<std::uint32_t>(lane.a_begin);
    r.b_begin = static_cast<std::uint32_t>(lane.b_begin);
    const std::uint32_t rows_used = r.a_end - r.a_begin;
    const std::uint32_t cols_used = r.b_end - r.b_begin;
    const auto subs = static_cast<std::uint32_t>(lane.subs);
    r.columns = rows_used + cols_used - subs;
    r.matches = static_cast<std::uint32_t>(lane.matches);
    r.positives = static_cast<std::uint32_t>(lane.positives);
    r.gap_columns = r.columns - subs;
  }
}

bool lane_representable(const PairJob& job) {
  const auto m = static_cast<std::int64_t>(job.a.size());
  const auto n = static_cast<std::int64_t>(job.b.size());
  if (m > detail::kBatchMaxLen || n > detail::kBatchMaxLen) return false;
  // The diagonal only enters row clamping, which only happens when the
  // band is narrower than m + n.
  if (job.band >= 0 && job.band < m + n &&
      (job.diagonal > detail::kBatchMaxDiag ||
       job.diagonal < -detail::kBatchMaxDiag)) {
    return false;
  }
  return true;
}

/// Sort a banded run's indices longest-first so lanes of one chunk sweep
/// similar row counts (short lanes idle only at the tail; the slot span is
/// the shared band width, so only the row count matters).
void sort_by_size(std::vector<std::size_t>& idx, const PairJob* jobs) {
  std::sort(idx.begin(), idx.end(), [&](std::size_t x, std::size_t y) {
    const std::size_t mx = jobs[x].a.size(), my = jobs[y].a.size();
    if (mx != my) return mx > my;
    const std::size_t nx = jobs[x].b.size(), ny = jobs[y].b.size();
    if (nx != ny) return nx > ny;
    return x < y;
  });
}

/// Group full-width jobs so both dimensions are similar within a chunk: a
/// chunk's cost is its row maximum times its span maximum, and m and n of
/// one pair are uncorrelated, so a single-key sort still mixes long and
/// short spans into one chunk. Two levels — sort by m, then re-sort each
/// block of a few chunks by n — keeps rows uniform at the block scale and
/// spans uniform at the chunk scale. Scheduling only: results are
/// per-pair and land at their original indices regardless of order.
void sort_by_extent(std::vector<std::size_t>& idx, const PairJob* jobs) {
  constexpr std::size_t kBlock = 64;
  std::sort(idx.begin(), idx.end(), [&](std::size_t x, std::size_t y) {
    const std::size_t mx = jobs[x].a.size(), my = jobs[y].a.size();
    if (mx != my) return mx > my;
    return x < y;
  });
  for (std::size_t k = 0; k < idx.size(); k += kBlock) {
    const auto end = idx.begin() + static_cast<std::ptrdiff_t>(
                                       std::min(idx.size(), k + kBlock));
    std::sort(idx.begin() + static_cast<std::ptrdiff_t>(k), end,
              [&](std::size_t x, std::size_t y) {
                const std::size_t nx = jobs[x].b.size(),
                                  ny = jobs[y].b.size();
                if (nx != ny) return nx > ny;
                return x < y;
              });
  }
}

}  // namespace

void align_score_batch(const PairJob* jobs, std::size_t count,
                       const ScoringScheme& scheme, AlignmentResult* out) {
  const Isa isa = current_isa();
  const std::size_t lanes = isa_lanes(isa);
  const bool scheme_ok = scheme.gap_open >= 0 && scheme.gap_extend >= 0;
  if (isa == Isa::kScalar || !scheme_ok) {
    for (std::size_t k = 0; k < count; ++k) {
      out[k] = scalar_score(jobs[k], scheme);
    }
    return;
  }

  // Group by kernel geometry: banded-window chunks keyed by the (shared)
  // half-width, full-width chunks for everything else; pairs the 16-bit
  // lanes cannot represent go straight to the scalar engine.
  std::vector<std::size_t> full;
  std::vector<std::pair<std::int64_t, std::size_t>> banded;  // (band, idx)
  for (std::size_t k = 0; k < count; ++k) {
    const PairJob& job = jobs[k];
    if (!lane_representable(job)) {
      out[k] = scalar_score(job, scheme);
      continue;
    }
    if (job.band >= 0) {
      const BandLayout lay(job.a.size(), job.b.size(), job.diagonal,
                           job.band);
      if (lay.banded) {
        banded.emplace_back(job.band, k);
        continue;
      }
    }
    full.push_back(k);
  }

  sort_by_extent(full, jobs);
  for (std::size_t k = 0; k < full.size(); k += lanes) {
    Chunk chunk{full.data() + k, std::min(lanes, full.size() - k), false, 0};
    run_chunk(chunk, jobs, scheme, isa, out);
  }

  // Stable partition of the banded list into per-band runs, each run
  // chunked lane-width at a time.
  std::stable_sort(
      banded.begin(), banded.end(),
      [](const auto& x, const auto& y) { return x.first < y.first; });
  std::vector<std::size_t> run;
  for (std::size_t k = 0; k < banded.size();) {
    const std::int64_t band = banded[k].first;
    run.clear();
    while (k < banded.size() && banded[k].first == band) {
      run.push_back(banded[k].second);
      ++k;
    }
    sort_by_size(run, jobs);
    for (std::size_t r = 0; r < run.size(); r += lanes) {
      Chunk chunk{run.data() + r, std::min(lanes, run.size() - r), true,
                  band};
      run_chunk(chunk, jobs, scheme, isa, out);
    }
  }
}

}  // namespace pclust::align
