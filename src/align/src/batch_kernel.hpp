// Lane-parallel score-only local alignment: the DP body shared by the SSE2
// and AVX2 translation units, templated over a Traits type that wraps the
// ISA's 16-bit integer operations. Include only from batch_*.cpp.
//
// One independent pair per lane, all lanes sweeping the same slot index s
// in lockstep. Banded storage maps slot s of row i to column
// j = s + i - band - 1 - diagonal[lane] (the window slides one column per
// row, so the diagonal predecessor of slot s is slot s of the previous row
// and the vertical predecessor is slot s + 1); full storage maps s to
// column j = s directly (predecessors s - 1 and s). Row validity masks
// reproduce BandLayout::row_limits per lane, and every slot outside a
// lane's valid range stores kNegInf16 in the score planes — exactly the
// "everything outside the computed band is default" invariant of the
// scalar engine.
//
// Storage is slot-major ([slot][state][field] x lanes) and SINGLE
// buffered: each slot's previous-row states are loaded exactly once, at
// the vertical-predecessor index up = s + kShift, and carried in registers
// to the next iteration (where they are the diagonal predecessors), so
// row i's stores at slot s can overwrite row i - 1 in place — every
// previous-row read of slot s happens at iteration s - kShift, before the
// store. The slot-major layout turns the 18 per-field streams into one
// sequential read stream and one sequential write stream per row, and the
// cache-line-aligned scratch keeps every lane vector inside one line.
//
// Bit-identity with the scalar score-only engine holds cell for cell on
// every score that can influence the result:
//  - All tie-breaks are the scalar ones (X/Y gap selects prefer M on ties;
//    M predecessor ties prefer M, then X, then Y; best tracking takes the
//    first maximum in (i asc, j asc) order, which is the lockstep sweep
//    order per lane).
//  - Local-mode border cells (M = 0 on row 0 / column 0) are deliberately
//    NOT materialized: a predecessor read of a missing border sees
//    kNegInf16, triggers the fresh-start clamp (ps < 0 -> ps = 0, bundle =
//    start at that border cell), and yields the same value and the same
//    bundle as reading the border directly. Gap-state values fed by a
//    border (e.g. Y(i, 1) from M(i, 0)) can differ, but only below zero,
//    where they influence nothing: a negative gap score can only be
//    selected as an M predecessor that the fresh-start clamp then
//    discards, and can never reach the (strictly positive) best tracking.
//  - Defaulted slots hold kNegInf16 scores but arbitrary bundle fields;
//    a bundle picked up through a kNegInf16 score can never survive into
//    a non-negative M value (the fresh-start clamp replaces it), so any
//    placeholder works — register seeds use zeros.
//  - Saturating arithmetic clamps "negative infinity" values instead of
//    wrapping; clamped values stay below every reachable real score, and
//    real scores are exact unless they exceed kOverflowGuard, which sets
//    the lane's sticky overflow flag and routes it to a scalar recompute.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "batch_detail.hpp"

namespace pclust::align::detail {

// Per-state bundle fields alongside the score; they mirror the scalar
// engine's forward bundle (gap statistics are geometry-derived at
// extraction, so gap transitions are pure selects here too).
enum Field : int {
  kScore = 0,
  kABeg = 1,
  kBBeg = 2,
  kSubs = 3,
  kMatch = 4,
  kPos = 5,
};
inline constexpr int kFields = 6;
enum State : int { kM = 0, kX = 1, kY = 2 };

template <typename T>
struct LaneRegs {
  typename T::V s, ab, bb, su, ma, po;
};

/// Scratch buffer aligned to a cache line so every lane vector load/store
/// stays within one line (std::vector's default 16-byte alignment would
/// split half of the 32-byte AVX2 accesses across two lines).
class AlignedScratch {
 public:
  void resize(std::size_t n, std::int16_t fill) {
    raw_.assign(n + kPad, fill);
    const auto addr = reinterpret_cast<std::uintptr_t>(raw_.data());
    const std::uintptr_t aligned = (addr + 63u) & ~std::uintptr_t{63};
    p_ = reinterpret_cast<std::int16_t*>(aligned);
  }
  [[nodiscard]] std::int16_t* data() { return p_; }

 private:
  static constexpr std::size_t kPad = 32;  // 64 bytes of int16 headroom
  std::vector<std::int16_t> raw_;
  std::int16_t* p_ = nullptr;
};

template <typename T, bool Banded>
void batch_kernel(const LaneJob* jobs, std::size_t count, std::int64_t band,
                  const ScoringScheme& scheme, LaneOut* out) {
  using V = typename T::V;
  constexpr int L = T::kLanes;

  std::int32_t max_m = 0, max_n = 0;
  for (std::size_t l = 0; l < count; ++l) {
    max_m = std::max(max_m, jobs[l].m);
    max_n = std::max(max_n, jobs[l].n);
  }
  // Computed slots are [1, S]; slots 0 and S + 1 are permanent kNegInf16
  // margins absorbing the diagonal/vertical predecessor reads at the ends.
  const std::int32_t S =
      Banded ? static_cast<std::int32_t>(2 * band + 1) : max_n;
  const std::int32_t SA = S + 2;
  constexpr int kShift = Banded ? 1 : 0;

  // Slot-major single-buffer storage: slot s holds 3 states x kFields
  // contiguous lane vectors.
  constexpr int kSlotVecs = 3 * kFields;
  AlignedScratch planes;
  planes.resize(static_cast<std::size_t>(SA) * kSlotVecs * L, 0);
  const auto at = [&planes](std::int32_t s, int state,
                            int field) -> std::int16_t* {
    return planes.data() +
           (static_cast<std::size_t>(s) * kSlotVecs + state * kFields +
            field) *
               L;
  };
  const auto default_scores = [&](std::int32_t s_from, std::int32_t s_to) {
    for (std::int32_t s = s_from; s < s_to; ++s) {
      for (int state = 0; state < 3; ++state) {
        std::int16_t* p = at(s, state, kScore);
        std::fill(p, p + L, kNegInf16);
      }
    }
  };
  default_scores(0, SA);

  // Per-lane geometry. Padding lanes replicate the first job rather than
  // going in dead: a dead lane would disable the all-valid interior span
  // for every row of the chunk, while a duplicate costs nothing (its slots
  // are swept either way) and its results are simply never extracted.
  std::int16_t d16[L], n16[L], m16[L], band16[L];
  const char* as[L];
  const char* bs[L];
  for (int l = 0; l < L; ++l) {
    const bool live = static_cast<std::size_t>(l) < count;
    const LaneJob j = live ? jobs[static_cast<std::size_t>(l)] : jobs[0];
    d16[l] = static_cast<std::int16_t>(j.diagonal);
    n16[l] = static_cast<std::int16_t>(j.n);
    m16[l] = static_cast<std::int16_t>(j.m);
    band16[l] = static_cast<std::int16_t>(j.band_eff);
    as[l] = j.a;
    bs[l] = j.b;
  }
  const V d_v = T::loadu(d16);

  // b residues in slot-major SoA form, built once. Full storage: slot s
  // holds b[s - 1]. Banded storage: row i's slot s reads index s + i, so
  // one table over g = s + i serves every row via a shifted pointer.
  const std::int32_t G = Banded ? (S + max_m + 2) : (S + 2);
  AlignedScratch vb_table;
  vb_table.resize(static_cast<std::size_t>(G) * L, 0);
  for (int l = 0; l < L; ++l) {
    if (!bs[l]) continue;
    for (std::int32_t g = 0; g < G; ++g) {
      const std::int64_t j0 =
          Banded ? (static_cast<std::int64_t>(g) - band - 2 - d16[l])
                 : (g - 1);
      if (j0 >= 0 && j0 < n16[l]) {
        vb_table.data()[static_cast<std::size_t>(g) * L + l] =
            static_cast<std::int16_t>(static_cast<std::uint8_t>(bs[l][j0]));
      }
    }
  }

  // Substitution scores per row: ISAs with a hardware gather pull them
  // in-register from a widened copy of the substitution matrix (index =
  // row_base[lane] + b_residue[slot][lane], always in bounds); the rest
  // fill a per-row profile array.
  AlignedScratch rp;
  std::vector<std::int32_t> sub32;
  if constexpr (T::kHasGather) {
    sub32.resize(static_cast<std::size_t>(seq::kAlphabetSize) *
                 seq::kAlphabetSize);
    for (int r = 0; r < seq::kAlphabetSize; ++r) {
      for (int c = 0; c < seq::kAlphabetSize; ++c) {
        sub32[static_cast<std::size_t>(r) * seq::kAlphabetSize + c] =
            scheme.substitution[static_cast<std::size_t>(r)]
                               [static_cast<std::size_t>(c)];
      }
    }
  } else {
    rp.resize(static_cast<std::size_t>(SA) * L, 0);
  }
  std::int16_t jlo16[L], jhi16[L], va16[L], base16[L];

  const V zero = T::zero();
  const V one = T::set1(1);
  const V neginf_v = T::set1(kNegInf16);
  const V guard_v = T::set1(kOverflowGuard);
  const V open_v = T::set1(static_cast<std::int16_t>(
      static_cast<std::int32_t>(scheme.gap_open) + scheme.gap_extend));
  const V ext_v = T::set1(static_cast<std::int16_t>(scheme.gap_extend));
  const LaneRegs<T> defaults{neginf_v, zero, zero, zero, zero, zero};

  // Best-cell accumulator, updated strictly-greater in sweep order so it
  // holds the first maximum in (i asc, j asc) order per lane.
  struct Best {
    V s, i, j;
    LaneRegs<T> b;
  };
  Best best0{zero, zero, zero, {zero, zero, zero, zero, zero, zero}};
  V osat = zero;

  // Row geometry in vector form (BandLayout::row_limits per lane, with
  // band_eff = min(band, m + n) so one formula covers the unclamped case).
  // [s_lo, s_hi] is the union of the lanes' valid slot spans; [a_lo, a_hi]
  // is their intersection (empty if any lane is dead), where every lane is
  // valid and the sweep can skip masking entirely.
  struct Geom {
    V va_v, base_v, jlom1, jhip1, i_v, im1_v;
    std::int32_t s_lo, s_hi, a_lo, a_hi;
    const std::int16_t* vb_row;
  };
  const auto compute_geom = [&](std::int32_t i, Geom& g) {
    g.s_lo = S + 1;
    g.s_hi = 0;
    g.a_lo = 1;
    g.a_hi = S;
    for (int l = 0; l < L; ++l) {
      std::int32_t jlo = 1, jhi = -1;
      if (i <= m16[l]) {
        const std::int32_t center = i - d16[l];
        jlo = std::max<std::int32_t>(1, center - band16[l]);
        jhi = std::min<std::int32_t>(n16[l], center + band16[l]);
        if (jlo > jhi) jhi = jlo - 1;
      }
      jlo16[l] = static_cast<std::int16_t>(jlo);
      jhi16[l] = static_cast<std::int16_t>(jhi);
      if (jlo <= jhi) {
        const std::int32_t off =
            Banded ? (i - static_cast<std::int32_t>(band) - 1 - d16[l]) : 0;
        g.s_lo = std::min(g.s_lo, jlo - off);
        g.s_hi = std::max(g.s_hi, jhi - off);
        g.a_lo = std::max(g.a_lo, jlo - off);
        g.a_hi = std::min(g.a_hi, jhi - off);
      } else {
        g.a_hi = 0;  // a dead lane leaves no all-valid span
      }
      va16[l] = (i <= m16[l])
                    ? static_cast<std::int16_t>(
                          static_cast<std::uint8_t>(as[l][i - 1]))
                    : std::int16_t{-1};
      base16[l] = static_cast<std::int16_t>(
          va16[l] < 0 ? 0 : va16[l] * seq::kAlphabetSize);
    }
    g.va_v = T::loadu(va16);
    g.base_v = T::loadu(base16);
    g.jlom1 = T::sub(T::loadu(jlo16), one);
    g.jhip1 = T::add(T::loadu(jhi16), one);
    g.i_v = T::set1(static_cast<std::int16_t>(i));
    g.im1_v = T::set1(static_cast<std::int16_t>(i - 1));
    g.vb_row =
        vb_table.data() + (Banded ? static_cast<std::size_t>(i) * L : 0);
  };

  const auto load_regs = [&](std::int32_t s, int state) -> LaneRegs<T> {
    return {T::loadu(at(s, state, kScore)), T::loadu(at(s, state, kABeg)),
            T::loadu(at(s, state, kBBeg)), T::loadu(at(s, state, kSubs)),
            T::loadu(at(s, state, kMatch)), T::loadu(at(s, state, kPos))};
  };
  const auto store_regs = [&](std::int32_t s, int state,
                              const LaneRegs<T>& r) {
    T::storeu(at(s, state, kScore), r.s);
    T::storeu(at(s, state, kABeg), r.ab);
    T::storeu(at(s, state, kBBeg), r.bb);
    T::storeu(at(s, state, kSubs), r.su);
    T::storeu(at(s, state, kMatch), r.ma);
    T::storeu(at(s, state, kPos), r.po);
  };

  struct Cells {
    LaneRegs<T> m, x, y;
  };
  // One cell per lane of one row: diag states dm/dx/dy (updated to the
  // up states for the next slot), up states um/ux/uy, the running Y chain
  // and M-left register, and the row's best stream. Returns the three
  // states in STORED format (scores defaulted outside the valid mask).
  // AllValid instantiations run inside the lanes' intersection span, where
  // the mask is all-ones and every blend against it folds away.
  const auto cell_step = [&]<bool AllValid>(
                             const Geom& g, V jv, V valid, V vb_v, V rp_v,
                             LaneRegs<T>& dm, LaneRegs<T>& dx,
                             LaneRegs<T>& dy, const LaneRegs<T>& um,
                             const LaneRegs<T>& ux, const LaneRegs<T>& uy,
                             LaneRegs<T>& yrun, LaneRegs<T>& mleft,
                             Best& best, V& osat_acc) -> Cells {
    Cells cur;

    // X: gap in b; ties prefer M, exactly as the scalar select.
    const V x_vm = T::subs(um.s, open_v);
    const V x_vx = T::subs(ux.s, ext_v);
    const V xm = T::cmpgt(x_vx, x_vm);  // strict: ties keep M
    const V x_max = T::max(x_vm, x_vx);
    cur.x.s = AllValid ? x_max : T::blend(valid, x_max, neginf_v);
    cur.x.ab = T::blend(xm, ux.ab, um.ab);
    cur.x.bb = T::blend(xm, ux.bb, um.bb);
    cur.x.su = T::blend(xm, ux.su, um.su);
    cur.x.ma = T::blend(xm, ux.ma, um.ma);
    cur.x.po = T::blend(xm, ux.po, um.po);

    // M predecessor: best of {M, X, Y} at the diagonal, ties in that
    // order (strict compares to switch), then the fresh-start clamp.
    V ps = dm.s;
    V p_ab = dm.ab;
    V p_bb = dm.bb;
    V p_su = dm.su;
    V p_ma = dm.ma;
    V p_po = dm.po;
    const V xbeats = T::cmpgt(dx.s, ps);
    ps = T::max(ps, dx.s);
    p_ab = T::blend(xbeats, dx.ab, p_ab);
    p_bb = T::blend(xbeats, dx.bb, p_bb);
    p_su = T::blend(xbeats, dx.su, p_su);
    p_ma = T::blend(xbeats, dx.ma, p_ma);
    p_po = T::blend(xbeats, dx.po, p_po);
    const V ybeats = T::cmpgt(dy.s, ps);
    ps = T::max(ps, dy.s);
    p_ab = T::blend(ybeats, dy.ab, p_ab);
    p_bb = T::blend(ybeats, dy.bb, p_bb);
    p_su = T::blend(ybeats, dy.su, p_su);
    p_ma = T::blend(ybeats, dy.ma, p_ma);
    p_po = T::blend(ybeats, dy.po, p_po);
    dm = um;
    dx = ux;
    dy = uy;

    // Fresh local start at (i - 1, j - 1).
    const V fresh = T::cmpgt(zero, ps);
    ps = T::max(ps, zero);
    p_ab = T::blend(fresh, g.im1_v, p_ab);
    p_bb = T::blend(fresh, T::sub(jv, one), p_bb);
    p_su = T::andnot(fresh, p_su);
    p_ma = T::andnot(fresh, p_ma);
    p_po = T::andnot(fresh, p_po);

    const V value = T::adds(ps, rp_v);
    osat_acc = T::or_(osat_acc, T::cmpgt(value, guard_v));

    // Non-positive cells restart the bundle at (i, j); the score is
    // stored unclamped either way.
    const V alive = T::cmpgt(value, zero);
    cur.m.s = AllValid ? value : T::blend(valid, value, neginf_v);
    cur.m.ab = T::blend(alive, p_ab, g.i_v);
    cur.m.bb = T::blend(alive, p_bb, jv);
    cur.m.su = T::and_(alive, T::add(p_su, one));
    cur.m.ma = T::and_(alive, T::sub(p_ma, T::cmpeq(g.va_v, vb_v)));
    cur.m.po = T::and_(alive, T::sub(p_po, T::cmpgt(rp_v, zero)));

    // Best tracking: strictly-greater in sweep order = first maximum in
    // (i asc, j asc) order per lane within this stream. Invalid slots
    // cannot win: the defaulted profile keeps their values below zero.
    const V bm = T::cmpgt(value, best.s);
    if (T::any(bm)) {
      best.s = T::max(best.s, value);
      best.i = T::blend(bm, g.i_v, best.i);
      best.j = T::blend(bm, jv, best.j);
      best.b.ab = T::blend(bm, cur.m.ab, best.b.ab);
      best.b.bb = T::blend(bm, cur.m.bb, best.b.bb);
      best.b.su = T::blend(bm, cur.m.su, best.b.su);
      best.b.ma = T::blend(bm, cur.m.ma, best.b.ma);
      best.b.po = T::blend(bm, cur.m.po, best.b.po);
    }

    // Y: gap in a; the serial chain carried in registers, reading the M
    // of the previous slot of this row. Ties prefer M.
    const V y_vm = T::subs(mleft.s, open_v);
    const V y_vy = T::subs(yrun.s, ext_v);
    const V ym = T::cmpgt(y_vy, y_vm);
    const V y_max = T::max(y_vm, y_vy);
    cur.y.s = AllValid ? y_max : T::blend(valid, y_max, neginf_v);
    cur.y.ab = T::blend(ym, yrun.ab, mleft.ab);
    cur.y.bb = T::blend(ym, yrun.bb, mleft.bb);
    cur.y.su = T::blend(ym, yrun.su, mleft.su);
    cur.y.ma = T::blend(ym, yrun.ma, mleft.ma);
    cur.y.po = T::blend(ym, yrun.po, mleft.po);
    yrun = cur.y;
    mleft = cur.m;
    return cur;
  };

  // Column vector of slot s in row i (shared by row i + 1 at slot
  // s - kShift: the pair skew lines both rows up on the same column).
  const auto col_of = [&](std::int32_t i, std::int32_t s) -> V {
    if constexpr (Banded) {
      return T::sub(
          T::set1(static_cast<std::int16_t>(
              s + i - static_cast<std::int32_t>(band) - 1)),
          d_v);
    } else {
      (void)i;
      return T::set1(static_cast<std::int16_t>(s));
    }
  };
  const auto profile_of = [&]<bool AllValid>(const Geom& g, V valid, V vb_v,
                                             std::int32_t s) -> V {
    if constexpr (T::kHasGather) {
      // blend(valid, ., neginf) reproduces the profile array bit for bit:
      // the array holds the substitution score on each lane's active span
      // and kNegInf16 everywhere else in the union range. Inside the
      // all-valid span the blend folds to the gather itself.
      const V gathered = T::gather16(sub32.data(), T::add(g.base_v, vb_v));
      return AllValid ? gathered : T::blend(valid, gathered, neginf_v);
    } else {
      (void)g;
      (void)valid;
      (void)vb_v;
      return T::loadu(rp.data() + static_cast<std::size_t>(s) * L);
    }
  };

  Geom g0;

  // Single-row sweep: loads the previous row at up = s + kShift, stores
  // this row at s (safe in the single buffer: the up read of a slot always
  // precedes its overwrite).
  const auto sweep_one = [&](std::int32_t i) {
    compute_geom(i, g0);
    const std::int32_t s_lo = g0.s_lo, s_hi = g0.s_hi;

    // Head slots this row leaves untouched become defaults up front (no
    // predecessor read looks below s_lo - 1 + kShift); the tail margin is
    // deferred — in banded mode the pass still reads slot s_hi + 1 of the
    // previous row.
    default_scores(1, std::min(s_lo, S + 1));
    if (s_lo > s_hi) return;

    if constexpr (!T::kHasGather) {
      std::fill(rp.data() + static_cast<std::ptrdiff_t>(s_lo) * L,
                rp.data() + static_cast<std::ptrdiff_t>(s_hi + 1) * L,
                kNegInf16);
      for (int l = 0; l < L; ++l) {
        if (jlo16[l] > jhi16[l]) continue;
        const auto& subrow =
            scheme.substitution[static_cast<std::uint8_t>(as[l][i - 1])];
        const std::int32_t off =
            Banded ? (i - static_cast<std::int32_t>(band) - 1 - d16[l]) : 0;
        for (std::int32_t j = jlo16[l]; j <= jhi16[l]; ++j) {
          rp.data()[static_cast<std::size_t>(j - off) * L + l] =
              subrow[static_cast<std::uint8_t>(bs[l][j - 1])];
        }
      }
    }

    // Chain seeds: the slot before the span is defaulted (head clear or
    // permanent margin), so constant seeds are exact; the diagonal seed
    // in banded mode reads the previous row's genuine slot s_lo.
    LaneRegs<T> yrun = defaults, mleft = defaults;
    LaneRegs<T> dm = defaults, dx = defaults, dy = defaults;
    if constexpr (Banded) {
      dm = load_regs(s_lo, kM);
      dx = load_regs(s_lo, kX);
      dy = load_regs(s_lo, kY);
    }

    // Local copies of the accumulators for the hot loop; merged back after
    // so the captured-by-reference originals never pin a stack slot inside
    // the sweep.
    Best best = best0;
    V ov = osat;
    // The sweep runs as up to three consecutive segments: a masked head,
    // the all-valid interior [a_lo, a_hi] (every lane inside its span, so
    // the mask folds away at compile time), and a masked tail. Masked
    // segments compute per-lane validity from both bounds — both matter
    // even in full storage: a narrow-band job whose window is wider than
    // the row stores full-width but still clamps its rows per
    // BandLayout::row_limits. Each segment keeps its own induction
    // variables so the chain state never round-trips through memory.
#define PCLUST_BATCH_SEGMENT(ALLVALID, LO, HI)                               \
  {                                                                          \
    V jv = col_of(i, (LO));                                                  \
    for (std::int32_t s = (LO); s <= (HI); ++s, jv = T::add(jv, one)) {      \
      const V valid = (ALLVALID) ? zero                                      \
                                 : T::and_(T::cmpgt(jv, g0.jlom1),           \
                                           T::cmpgt(g0.jhip1, jv));          \
      const LaneRegs<T> um = load_regs(s + kShift, kM);                      \
      const LaneRegs<T> ux = load_regs(s + kShift, kX);                      \
      const LaneRegs<T> uy = load_regs(s + kShift, kY);                      \
      const V vb_v = T::loadu(g0.vb_row + static_cast<std::size_t>(s) * L);  \
      const V rp_v =                                                         \
          profile_of.template operator()<(ALLVALID)>(g0, valid, vb_v, s);    \
      const Cells cur = cell_step.template operator()<(ALLVALID)>(           \
          g0, jv, valid, vb_v, rp_v, dm, dx, dy, um, ux, uy, yrun, mleft,    \
          best, ov);                                                         \
      store_regs(s, kM, cur.m);                                              \
      store_regs(s, kX, cur.x);                                              \
      store_regs(s, kY, cur.y);                                              \
    }                                                                        \
  }
    const std::int32_t a_lo = std::max(g0.a_lo, s_lo);
    const std::int32_t a_hi = std::min(g0.a_hi, s_hi);
    if (a_lo <= a_hi) {
      PCLUST_BATCH_SEGMENT(false, s_lo, a_lo - 1)
      PCLUST_BATCH_SEGMENT(true, a_lo, a_hi)
      PCLUST_BATCH_SEGMENT(false, a_hi + 1, s_hi)
    } else {
      PCLUST_BATCH_SEGMENT(false, s_lo, s_hi)
    }
#undef PCLUST_BATCH_SEGMENT
    best0 = best;
    osat = ov;
    default_scores(s_hi + 1, S + 1);
  };

  for (std::int32_t i = 1; i <= max_m; ++i) sweep_one(i);

  std::int16_t sc[L], bi[L], bj[L], ab[L], bb[L], su[L], ma[L], po[L], ov[L];
  T::storeu(sc, best0.s);
  T::storeu(bi, best0.i);
  T::storeu(bj, best0.j);
  T::storeu(ab, best0.b.ab);
  T::storeu(bb, best0.b.bb);
  T::storeu(su, best0.b.su);
  T::storeu(ma, best0.b.ma);
  T::storeu(po, best0.b.po);
  T::storeu(ov, osat);
  for (std::size_t l = 0; l < count; ++l) {
    LaneOut& o = out[l];
    o.score = sc[l];
    o.best_i = bi[l];
    o.best_j = bj[l];
    o.a_begin = ab[l];
    o.b_begin = bb[l];
    o.subs = su[l];
    o.matches = ma[l];
    o.positives = po[l];
    o.overflow = ov[l] != 0;
  }
}

template <typename T>
void run_batch_impl(const LaneJob* jobs, std::size_t count, bool banded,
                    std::int64_t band, const ScoringScheme& scheme,
                    LaneOut* out) {
  if (banded) {
    batch_kernel<T, true>(jobs, count, band, scheme, out);
  } else {
    batch_kernel<T, false>(jobs, count, band, scheme, out);
  }
}

}  // namespace pclust::align::detail
