// Banded DP geometry shared by the scalar engines (pairwise.cpp) and the
// batched SIMD kernels (batch*.cpp). Internal to the align library.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace pclust::align::detail {

inline constexpr std::int32_t kNegInf =
    std::numeric_limits<std::int32_t>::min() / 4;

// Beyond this the u16-based wide lanes of the score-only bundles could
// overflow; such inputs take the full-matrix path instead — far beyond any
// peptide.
inline constexpr std::size_t kScoreCellMax = 32'767;

/// Banded matrix geometry. When the band is narrower than the full row,
/// each row i stores only a window of W = 2*band+3 columns around the band
/// center (i - diagonal); the extra slots beyond 2*band+1 absorb the j and
/// j-1 reads into the previous row, whose window is shifted by one. Reads
/// outside a row's window must go through the defaulting accessors — those
/// cells were never computed and behave like the untouched (kNegInf/kStart)
/// cells of a full matrix.
struct BandLayout {
  std::size_t m, n, W;
  std::int64_t diagonal, band;
  bool banded;

  BandLayout(std::size_t m_, std::size_t n_, std::int64_t diagonal_,
             std::int64_t band_)
      : m(m_), n(n_), diagonal(diagonal_), band(band_) {
    assert(band >= 0 && "band half-width must be non-negative");
    banded = band < static_cast<std::int64_t>(m + n) &&
             static_cast<std::size_t>(2 * band + 3) < n + 1;
    W = banded ? static_cast<std::size_t>(2 * band + 3) : n + 1;
  }

  /// First column physically stored for row i.
  [[nodiscard]] std::size_t base(std::size_t i) const {
    if (!banded) return 0;
    const std::int64_t lo =
        static_cast<std::int64_t>(i) - diagonal - band - 1;
    const auto max_base = static_cast<std::int64_t>(n + 1 - W);
    return static_cast<std::size_t>(std::clamp<std::int64_t>(lo, 0, max_base));
  }

  [[nodiscard]] bool in_window(std::size_t i, std::size_t j) const {
    const std::size_t b = base(i);
    return j >= b && j < b + W;
  }

  /// Flat index of (i, j); caller must ensure in_window(i, j).
  [[nodiscard]] std::size_t idx(std::size_t i, std::size_t j) const {
    return i * W + (j - base(i));
  }

  /// Band limits for row i: [j_lo, j_hi], or empty (j_lo > j_hi).
  void row_limits(std::size_t i, std::size_t& j_lo, std::size_t& j_hi) const {
    j_lo = 1;
    j_hi = n;
    if (band < static_cast<std::int64_t>(m + n)) {
      const std::int64_t center = static_cast<std::int64_t>(i) - diagonal;
      const std::int64_t lo64 = std::max<std::int64_t>(1, center - band);
      const std::int64_t hi64 =
          std::min<std::int64_t>(static_cast<std::int64_t>(n), center + band);
      if (lo64 > hi64) {
        j_lo = 1;
        j_hi = 0;  // band misses this row entirely
        return;
      }
      j_lo = static_cast<std::size_t>(lo64);
      j_hi = static_cast<std::size_t>(hi64);
    }
  }
};

}  // namespace pclust::align::detail
