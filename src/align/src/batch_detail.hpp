// Internal interface between the batch driver (batch.cpp) and the per-ISA
// kernel translation units (batch_sse2.cpp, batch_avx2.cpp). The driver
// groups jobs into lane-width chunks of compatible geometry; the kernels
// run one chunk in SIMD lockstep, one pair per 16-bit lane.
#pragma once

#include <cstddef>
#include <cstdint>

#include "pclust/align/scoring.hpp"

namespace pclust::align::detail {

/// Hard per-sequence length cap for the 16-bit lanes: indices, begin
/// coordinates and column counters all stay comfortably inside int16_t.
/// Longer sequences take the scalar engine (they are far beyond any
/// metagenomic peptide anyway).
inline constexpr std::int64_t kBatchMaxLen = 2'047;

/// |diagonal| cap so banded row limits (i - diagonal +- band) stay inside
/// int16_t together with kBatchMaxLen-sized bands.
inline constexpr std::int64_t kBatchMaxDiag = 4'095;

/// Sticky lane-overflow guard: any M-state score above this flags the lane
/// for exact scalar recompute. Every unflagged lane's scores are exact
/// (int16 saturating arithmetic can only have clamped values that are
/// already above the guard).
inline constexpr std::int16_t kOverflowGuard = 29'000;

/// "Never computed" score: far below any reachable value yet with headroom
/// so saturating subtractions keep it from wrapping.
inline constexpr std::int16_t kNegInf16 = -30'000;

/// One SIMD lane's job, geometry pre-clamped by the driver:
///  - m, n in [0, kBatchMaxLen]
///  - band_eff = min(band, m + n): band_eff == m + n means "no row
///    clamping" (and diagonal is then 0); otherwise |diagonal| <=
///    kBatchMaxDiag and the row limits follow BandLayout::row_limits.
struct LaneJob {
  const char* a = nullptr;
  const char* b = nullptr;
  std::int32_t m = 0, n = 0;
  std::int32_t diagonal = 0;
  std::int32_t band_eff = 0;
};

/// Raw per-lane outcome; the driver turns this into an AlignmentResult
/// (columns/gap_columns follow from the region geometry).
struct LaneOut {
  std::int32_t score = 0;
  std::int32_t best_i = 0, best_j = 0;
  std::int32_t a_begin = 0, b_begin = 0;
  std::int32_t subs = 0, matches = 0, positives = 0;
  bool overflow = false;
};

// Per-ISA kernel entry points. @p banded selects the diagonal-window
// storage layout (every lane then shares @p band as its half-width and has
// band_eff == band); otherwise rows are stored full-width and band_eff /
// diagonal clamp rows per lane. @p count <= the ISA's lane width; unused
// lanes are idle. Only compiled with real bodies on x86-64.
namespace sse2 {
void run_batch(const LaneJob* jobs, std::size_t count, bool banded,
               std::int64_t band, const ScoringScheme& scheme, LaneOut* out);
}
namespace avx2 {
void run_batch(const LaneJob* jobs, std::size_t count, bool banded,
               std::int64_t band, const ScoringScheme& scheme, LaneOut* out);
}

}  // namespace pclust::align::detail
