#include "pclust/align/predicates.hpp"

#include <algorithm>

namespace pclust::align {

PredicateOutcome containment_outcome(const AlignmentResult& r,
                                     std::size_t inner_len,
                                     const ContainmentParams& params) {
  PredicateOutcome out;
  out.alignment = r;
  out.accepted = r.columns > 0 &&
                 r.identity() >= params.min_similarity &&
                 r.a_coverage(inner_len) >= params.min_coverage;
  return out;
}

PredicateOutcome overlap_outcome(const AlignmentResult& r, std::size_t a_len,
                                 std::size_t b_len,
                                 const OverlapParams& params) {
  PredicateOutcome out;
  out.alignment = r;
  const double long_cov =
      (a_len >= b_len) ? r.a_coverage(a_len) : r.b_coverage(b_len);
  out.accepted = r.columns > 0 &&
                 r.identity() >= params.min_similarity &&
                 long_cov >= params.min_long_coverage;
  return out;
}

PredicateOutcome test_containment(std::string_view inner,
                                  std::string_view outer,
                                  const ScoringScheme& scheme,
                                  const ContainmentParams& params) {
  // Predicates only cut on scores and region statistics, never on the
  // column path, so they always take the score-only fast path.
  const AlignmentResult r = params.semiglobal
                                ? semiglobal_align_score(inner, outer, scheme)
                                : local_align_score(inner, outer, scheme);
  return containment_outcome(r, inner.size(), params);
}

PredicateOutcome test_overlap(std::string_view a, std::string_view b,
                              const ScoringScheme& scheme,
                              const OverlapParams& params) {
  return overlap_outcome(local_align_score(a, b, scheme), a.size(), b.size(),
                      params);
}

PredicateOutcome test_containment_banded(std::string_view inner,
                                         std::string_view outer,
                                         const ScoringScheme& scheme,
                                         std::int64_t diagonal,
                                         std::uint32_t band_halfwidth,
                                         const ContainmentParams& params) {
  return containment_outcome(
      banded_local_align_score(inner, outer, scheme, diagonal, band_halfwidth),
      inner.size(), params);
}

PredicateOutcome test_overlap_banded(std::string_view a, std::string_view b,
                                     const ScoringScheme& scheme,
                                     std::int64_t diagonal,
                                     std::uint32_t band_halfwidth,
                                     const OverlapParams& params) {
  return overlap_outcome(
      banded_local_align_score(a, b, scheme, diagonal, band_halfwidth),
      a.size(), b.size(), params);
}

}  // namespace pclust::align
