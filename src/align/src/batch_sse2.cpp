// SSE2 instantiation of the batched kernel: 8 pairs per batch, one per
// 16-bit lane. Compiled with -msse2 (a no-op on x86-64, where SSE2 is
// architectural, but explicit so the CMake target documents the contract).
#if defined(__x86_64__) || defined(_M_X64)

#include <emmintrin.h>

#include "batch_kernel.hpp"

namespace pclust::align::detail {

namespace {

struct Sse2Traits {
  using V = __m128i;
  static constexpr int kLanes = 8;

  static V zero() { return _mm_setzero_si128(); }
  static V set1(std::int16_t v) { return _mm_set1_epi16(v); }
  static V loadu(const std::int16_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void storeu(std::int16_t* p, V v) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  static V add(V a, V b) { return _mm_add_epi16(a, b); }
  static V sub(V a, V b) { return _mm_sub_epi16(a, b); }
  static V adds(V a, V b) { return _mm_adds_epi16(a, b); }
  static V subs(V a, V b) { return _mm_subs_epi16(a, b); }
  static V max(V a, V b) { return _mm_max_epi16(a, b); }
  static V cmpgt(V a, V b) { return _mm_cmpgt_epi16(a, b); }
  static V cmpeq(V a, V b) { return _mm_cmpeq_epi16(a, b); }
  static V and_(V a, V b) { return _mm_and_si128(a, b); }
  static V or_(V a, V b) { return _mm_or_si128(a, b); }
  static V andnot(V mask, V v) { return _mm_andnot_si128(mask, v); }
  /// a where mask (per-bit; masks here are full-lane -1/0), else b.
  static V blend(V mask, V a, V b) {
    return _mm_or_si128(_mm_and_si128(mask, a), _mm_andnot_si128(mask, b));
  }
  static bool any(V mask) { return _mm_movemask_epi8(mask) != 0; }

  /// SSE2 has no gather; the kernel fills the rp profile array instead.
  static constexpr bool kHasGather = false;
};

}  // namespace

namespace sse2 {
void run_batch(const LaneJob* jobs, std::size_t count, bool banded,
               std::int64_t band, const ScoringScheme& scheme, LaneOut* out) {
  run_batch_impl<Sse2Traits>(jobs, count, banded, band, scheme, out);
}
}  // namespace sse2

}  // namespace pclust::align::detail

#else  // non-x86: never dispatched (detect_best_isa() reports scalar).

#include <cstdlib>

#include "batch_detail.hpp"

namespace pclust::align::detail::sse2 {
void run_batch(const LaneJob*, std::size_t, bool, std::int64_t,
               const ScoringScheme&, LaneOut*) {
  std::abort();
}
}  // namespace pclust::align::detail::sse2

#endif
