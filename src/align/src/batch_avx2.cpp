// AVX2 instantiation of the batched kernel: 16 pairs per batch, one per
// 16-bit lane. This TU (and only this TU) is compiled with -mavx2; it is
// reached solely through runtime dispatch after cpuid confirms support.
#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "batch_kernel.hpp"

namespace pclust::align::detail {

namespace {

struct Avx2Traits {
  using V = __m256i;
  static constexpr int kLanes = 16;

  static V zero() { return _mm256_setzero_si256(); }
  static V set1(std::int16_t v) { return _mm256_set1_epi16(v); }
  static V loadu(const std::int16_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void storeu(std::int16_t* p, V v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static V add(V a, V b) { return _mm256_add_epi16(a, b); }
  static V sub(V a, V b) { return _mm256_sub_epi16(a, b); }
  static V adds(V a, V b) { return _mm256_adds_epi16(a, b); }
  static V subs(V a, V b) { return _mm256_subs_epi16(a, b); }
  static V max(V a, V b) { return _mm256_max_epi16(a, b); }
  static V cmpgt(V a, V b) { return _mm256_cmpgt_epi16(a, b); }
  static V cmpeq(V a, V b) { return _mm256_cmpeq_epi16(a, b); }
  static V and_(V a, V b) { return _mm256_and_si256(a, b); }
  static V or_(V a, V b) { return _mm256_or_si256(a, b); }
  static V andnot(V mask, V v) { return _mm256_andnot_si256(mask, v); }
  /// a where mask (full-lane -1/0 masks, so byte-blend is exact), else b.
  static V blend(V mask, V a, V b) {
    return _mm256_blendv_epi8(b, a, mask);
  }
  static bool any(V mask) {
    return _mm256_testz_si256(mask, mask) == 0;
  }

  /// Hardware-gather substitution lookup: out[l] = table[idx16[l]], with
  /// every index already in bounds. Two dword gathers, packed back to i16
  /// (values fit, so the signed pack never saturates) with the cross-lane
  /// order restored.
  static constexpr bool kHasGather = true;
  static V gather16(const std::int32_t* table, V idx16) {
    const __m256i lo = _mm256_cvtepi16_epi32(_mm256_castsi256_si128(idx16));
    const __m256i hi = _mm256_cvtepi16_epi32(_mm256_extracti128_si256(idx16, 1));
    const __m256i g0 = _mm256_i32gather_epi32(table, lo, 4);
    const __m256i g1 = _mm256_i32gather_epi32(table, hi, 4);
    return _mm256_permute4x64_epi64(_mm256_packs_epi32(g0, g1),
                                    _MM_SHUFFLE(3, 1, 2, 0));
  }
};

}  // namespace

namespace avx2 {
void run_batch(const LaneJob* jobs, std::size_t count, bool banded,
               std::int64_t band, const ScoringScheme& scheme, LaneOut* out) {
  run_batch_impl<Avx2Traits>(jobs, count, banded, band, scheme, out);
}
}  // namespace avx2

}  // namespace pclust::align::detail

#else  // non-x86: never dispatched (detect_best_isa() reports scalar).

#include <cstdlib>

#include "batch_detail.hpp"

namespace pclust::align::detail::avx2 {
void run_batch(const LaneJob*, std::size_t, bool, std::int64_t,
               const ScoringScheme&, LaneOut*) {
  std::abort();
}
}  // namespace pclust::align::detail::avx2

#endif
