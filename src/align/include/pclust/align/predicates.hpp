// The two alignment predicates the paper's pipeline cuts on.
//
// Definition 1 (containment, used by redundancy removal): sequence s_i is
// "contained" in s_j if an optimal alignment has (i) >= 95 % similarity over
// the overlapping (aligned) region and (ii) >= 95 % of s_i included in the
// overlapping region.
//
// Definition 2 (overlap, used by connected-component detection): two
// sequences "overlap" if they share a local alignment with >= 30 %
// similarity that includes >= 80 % of the LONGER sequence.
//
// All cutoffs are user-tunable software parameters (paper, footnote 3); the
// defaults below are the paper's defaults.
#pragma once

#include <cstdint>
#include <string_view>

#include "pclust/align/pairwise.hpp"

namespace pclust::align {

struct ContainmentParams {
  double min_similarity = 0.95;  // identity over the aligned region
  double min_coverage = 0.95;    // fraction of the contained sequence aligned
  /// Use the semiglobal ("glocal") formulation instead of local alignment:
  /// the inner sequence is consumed end-to-end (coverage is 1 by
  /// construction) and only the similarity cutoff decides. Stricter on
  /// inner sequences with noisy flanks; never accepts what local rejects
  /// on similarity.
  bool semiglobal = false;
};

struct OverlapParams {
  double min_similarity = 0.30;     // identity over the aligned region
  double min_long_coverage = 0.80;  // fraction of the longer sequence aligned
};

struct PredicateOutcome {
  bool accepted = false;
  AlignmentResult alignment;  // the alignment the decision was based on
};

/// Decision layer of Definition 1 over a precomputed score-only local
/// alignment of (inner, outer) — shared by test_containment* and callers
/// that score pairs through the batched SIMD engine.
[[nodiscard]] PredicateOutcome containment_outcome(
    const AlignmentResult& r, std::size_t inner_len,
    const ContainmentParams& params = {});

/// Decision layer of Definition 2 over a precomputed score-only local
/// alignment of (a, b).
[[nodiscard]] PredicateOutcome overlap_outcome(const AlignmentResult& r,
                                               std::size_t a_len,
                                               std::size_t b_len,
                                               const OverlapParams& params = {});

/// Is @p inner contained in @p outer per Definition 1?
[[nodiscard]] PredicateOutcome test_containment(
    std::string_view inner, std::string_view outer,
    const ScoringScheme& scheme, const ContainmentParams& params = {});

/// Do @p a and @p b overlap per Definition 2?
[[nodiscard]] PredicateOutcome test_overlap(std::string_view a,
                                            std::string_view b,
                                            const ScoringScheme& scheme,
                                            const OverlapParams& params = {});

/// Banded variants seeded on the diagonal of a shared maximal match
/// (diagonal = position-in-first - position-in-second).
[[nodiscard]] PredicateOutcome test_containment_banded(
    std::string_view inner, std::string_view outer,
    const ScoringScheme& scheme, std::int64_t diagonal,
    std::uint32_t band_halfwidth, const ContainmentParams& params = {});

[[nodiscard]] PredicateOutcome test_overlap_banded(
    std::string_view a, std::string_view b, const ScoringScheme& scheme,
    std::int64_t diagonal, std::uint32_t band_halfwidth,
    const OverlapParams& params = {});

}  // namespace pclust::align
