// Runtime SIMD instruction-set dispatch for the batched alignment kernels.
//
// The selected ISA is a process-global knob: `detect_best_isa()` probes the
// host CPU once (cpuid on x86-64; scalar everywhere else), and
// `current_isa()` caches the effective choice. The `PCLUST_SIMD` environment
// variable or `set_isa()` (driven by the CLI's `--simd` flag) can narrow the
// choice, but never widen it past what the host supports — requesting AVX2
// on an SSE2-only host silently clamps to SSE2, so test matrices can iterate
// over every name without crashing.
#pragma once

#include <optional>
#include <string_view>

namespace pclust::align {

enum class Isa {
  kScalar = 0,  // no batching: every pair takes the scalar scorer
  kSse2 = 1,    // 8 pairs per batch, one per 16-bit SSE2 lane
  kAvx2 = 2,    // 16 pairs per batch, one per 16-bit AVX2 lane
};

/// Widest ISA the host CPU supports (probed once, then cached).
Isa detect_best_isa();

/// The ISA the batch engine will actually use. Initialized on first call
/// from PCLUST_SIMD (auto|off|scalar|sse2|avx2) clamped to the host,
/// defaulting to detect_best_isa().
Isa current_isa();

/// Overrides the dispatched ISA; clamped to detect_best_isa(). Returns the
/// effective ISA after clamping.
Isa set_isa(Isa isa);

/// Parses a --simd flag value: auto|off|scalar|sse2|avx2 (case-sensitive).
/// "auto" maps to detect_best_isa(), "off"/"scalar" to Isa::kScalar.
/// Returns nullopt on an unrecognized name.
std::optional<Isa> parse_isa(std::string_view name);

/// Lower-case display name: "scalar", "sse2", or "avx2".
const char* isa_name(Isa isa);

/// Pairs per batch at @p isa (1 for scalar, 8 for SSE2, 16 for AVX2).
std::size_t isa_lanes(Isa isa);

}  // namespace pclust::align
