// Scoring schemes for pairwise peptide alignment.
//
// The paper relies on Smith–Waterman [27] / Needleman–Wunsch [23] style
// alignment with similarity cutoffs; we provide BLOSUM62 (the de-facto
// default for protein search, and what BLASTP uses) plus a simple identity
// matrix for unit tests and exact reasoning.
#pragma once

#include <array>
#include <cstdint>

#include "pclust/seq/alphabet.hpp"

namespace pclust::align {

/// Substitution matrix over the 21-symbol rank alphabet plus affine gap
/// penalties (penalties are non-negative magnitudes).
struct ScoringScheme {
  std::array<std::array<std::int16_t, seq::kAlphabetSize>,
             seq::kAlphabetSize>
      substitution{};
  std::int16_t gap_open = 10;    // cost of opening a gap
  std::int16_t gap_extend = 1;   // cost per gap column (including the first)

  [[nodiscard]] std::int16_t score(std::uint8_t a, std::uint8_t b) const {
    return substitution[a][b];
  }
};

/// The standard BLOSUM62 matrix (Henikoff & Henikoff 1992), with 'X'
/// scoring as BLAST does (X vs anything = -1, X vs X = -1).
[[nodiscard]] const ScoringScheme& blosum62();

/// +match / -mismatch matrix, used by tests and by the domain-based w-mer
/// machinery's verification paths.
[[nodiscard]] ScoringScheme identity_scoring(std::int16_t match = 2,
                                             std::int16_t mismatch = -1,
                                             std::int16_t gap_open = 3,
                                             std::int16_t gap_extend = 1);

}  // namespace pclust::align
