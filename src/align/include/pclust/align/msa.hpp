// Center-star multiple sequence alignment and family consensus.
//
// Used to render and annotate reported families (the paper's Figure 1 shows
// a domain family as a stacked alignment). The classic center-star method:
// pick the member with the greatest summed pairwise score to all others,
// align every member to it globally, and merge the pairwise alignments
// column-wise ("once a gap, always a gap"). 2-approximation of the optimal
// SP-score MSA (Gusfield 1993) — exactly right for displaying and
// consensus-calling family alignments, not for phylogenetics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pclust/align/scoring.hpp"
#include "pclust/seq/sequence_set.hpp"

namespace pclust::align {

struct Msa {
  /// Ids of the aligned sequences, in input order.
  std::vector<seq::SeqId> members;
  /// Index into members of the chosen center sequence.
  std::size_t center = 0;
  /// Aligned rows (ASCII residues and '-' gaps), all the same length.
  std::vector<std::string> rows;

  [[nodiscard]] std::size_t columns() const {
    return rows.empty() ? 0 : rows[0].size();
  }

  /// Majority-residue consensus; columns where gaps dominate yield '-',
  /// ties break toward the lexicographically smaller residue.
  [[nodiscard]] std::string consensus() const;

  /// Fraction of non-gap residues matching the consensus, per column.
  [[nodiscard]] std::vector<double> column_conservation() const;
};

/// Align @p members of @p set by the center-star method. Throws
/// std::invalid_argument on an empty member list.
[[nodiscard]] Msa center_star_msa(const seq::SequenceSet& set,
                                  const std::vector<seq::SeqId>& members,
                                  const ScoringScheme& scheme);

}  // namespace pclust::align
