// Inter-sequence batched score-only alignment: N independent candidate
// pairs, one pair per 16-bit SIMD lane (8 lanes under SSE2, 16 under AVX2),
// all advancing through the same banded Smith-Waterman recurrence in
// lockstep. Results are bit-identical to the scalar score-only engine —
// same scores, same region statistics, same tie-breaks — so callers can
// batch opportunistically without changing any downstream decision.
//
// The ISA is chosen at runtime (pclust/align/simd.hpp); under Isa::kScalar,
// or for pairs the 16-bit lanes cannot represent (length > 2047, or scores
// that would saturate), the engine transparently falls back to the scalar
// scorer for exactly those pairs. Every batch records `align.batches` /
// `align.batch_fill` metrics so run reports distinguish SIMD from scalar
// work.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "pclust/align/pairwise.hpp"
#include "pclust/align/scoring.hpp"

namespace pclust::align {

/// One independent score-only local alignment job.
struct PairJob {
  std::string_view a;
  std::string_view b;
  /// Band seed diagonal (position-in-a minus position-in-b); ignored when
  /// the job is unbanded.
  std::int64_t diagonal = 0;
  /// Band half-width; negative means unbanded (full local alignment,
  /// equivalent to local_align_score).
  std::int64_t band = -1;
};

/// Scores @p count independent jobs, writing out[k] for jobs[k]. Each
/// result is bit-identical to banded_local_align_score(a, b, scheme,
/// diagonal, band) for banded jobs, or local_align_score(a, b, scheme) for
/// unbanded ones — whichever ISA is dispatched.
void align_score_batch(const PairJob* jobs, std::size_t count,
                       const ScoringScheme& scheme, AlignmentResult* out);

}  // namespace pclust::align
