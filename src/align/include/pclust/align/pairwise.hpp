// Pairwise peptide alignment: Needleman–Wunsch global [23], Smith–Waterman
// local [27], both with affine gaps (Gotoh), plus a banded local variant
// seeded on a known match diagonal (the classic maximal-match acceleration
// used by PaCE-style pipelines).
//
// All aligners report the statistics the paper's predicates need (identity
// over the aligned region, per-sequence coverage) and the number of DP cells
// computed, which feeds the mpsim virtual-time cost model.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "pclust/align/scoring.hpp"

namespace pclust::align {

struct AlignmentResult {
  std::int32_t score = 0;
  // Half-open coordinates of the aligned region in each sequence.
  std::uint32_t a_begin = 0, a_end = 0;
  std::uint32_t b_begin = 0, b_end = 0;
  std::uint32_t columns = 0;      // alignment length including gap columns
  std::uint32_t matches = 0;      // identical residue columns
  std::uint32_t positives = 0;    // columns with positive substitution score
  std::uint32_t gap_columns = 0;  // columns with a gap in either sequence
  std::uint64_t cells = 0;        // DP cells computed (for cost accounting)

  /// Fraction of identical columns over the aligned region; this is the
  /// "similarity" the paper's Definitions 1 and 2 cut on.
  [[nodiscard]] double identity() const {
    return columns ? static_cast<double>(matches) / columns : 0.0;
  }
  /// Fraction of positive-scoring columns (BLAST's "positives").
  [[nodiscard]] double positive_rate() const {
    return columns ? static_cast<double>(positives) / columns : 0.0;
  }
  /// Fraction of sequence a/b covered by the aligned region.
  [[nodiscard]] double a_coverage(std::size_t a_len) const {
    return a_len ? static_cast<double>(a_end - a_begin) / a_len : 0.0;
  }
  [[nodiscard]] double b_coverage(std::size_t b_len) const {
    return b_len ? static_cast<double>(b_end - b_begin) / b_len : 0.0;
  }
};

/// Global (end-to-end) alignment of rank-encoded sequences a and b.
[[nodiscard]] AlignmentResult global_align(std::string_view a,
                                           std::string_view b,
                                           const ScoringScheme& scheme);

/// One column of an alignment path, start to end.
enum class EditOp : std::uint8_t {
  kSubstitute,  // a[i] aligned to b[j] (match or mismatch)
  kGapInB,      // a[i] aligned to a gap
  kGapInA,      // b[j] aligned to a gap
};

/// Global alignment that also returns the column-by-column path
/// (used by the center-star MSA).
[[nodiscard]] AlignmentResult global_align_path(std::string_view a,
                                                std::string_view b,
                                                const ScoringScheme& scheme,
                                                std::vector<EditOp>& path);

/// Semiglobal ("glocal") alignment: a is consumed end-to-end, b's leading
/// and trailing flanks are free. The natural exact formulation of the
/// Definition-1 containment test (a's coverage is 1 by construction; only
/// the similarity cutoff remains).
[[nodiscard]] AlignmentResult semiglobal_align(std::string_view a,
                                               std::string_view b,
                                               const ScoringScheme& scheme);

/// Local (best-region) alignment; empty result (score 0, zero-length
/// region) if no positive-scoring alignment exists.
[[nodiscard]] AlignmentResult local_align(std::string_view a,
                                          std::string_view b,
                                          const ScoringScheme& scheme);

/// Local alignment restricted to diagonals d with
/// |d - diagonal| <= band_halfwidth, where d = (position in a) - (position
/// in b). Seed with the diagonal of a shared maximal match. Falls back to
/// the full matrix when the band covers it anyway.
[[nodiscard]] AlignmentResult banded_local_align(std::string_view a,
                                                 std::string_view b,
                                                 const ScoringScheme& scheme,
                                                 std::int64_t diagonal,
                                                 std::uint32_t band_halfwidth);

// --- Score-only fast path -------------------------------------------------
//
// Same results as the aligners above — score, region coordinates, and all
// column statistics are bit-identical — but computed with two rolling DP
// rows per state instead of full matrices and a traceback pass. Alignment
// statistics are propagated forward along the argmax predecessor of each
// cell using the same tie-breaking rules the traceback replays. Use these
// wherever the column-by-column path is not needed (all of the paper's
// containment/overlap predicates): DP memory drops from O(m*n) to O(band)
// and the traceback pass disappears.

/// Score-only global alignment; equals global_align(a, b, scheme).
[[nodiscard]] AlignmentResult global_align_score(std::string_view a,
                                                 std::string_view b,
                                                 const ScoringScheme& scheme);

/// Score-only semiglobal alignment; equals semiglobal_align(a, b, scheme).
[[nodiscard]] AlignmentResult semiglobal_align_score(
    std::string_view a, std::string_view b, const ScoringScheme& scheme);

/// Score-only local alignment; equals local_align(a, b, scheme).
[[nodiscard]] AlignmentResult local_align_score(std::string_view a,
                                                std::string_view b,
                                                const ScoringScheme& scheme);

/// Score-only banded local alignment; equals banded_local_align(...).
[[nodiscard]] AlignmentResult banded_local_align_score(
    std::string_view a, std::string_view b, const ScoringScheme& scheme,
    std::int64_t diagonal, std::uint32_t band_halfwidth);

}  // namespace pclust::align
