#include "pclust/util/memsize.hpp"

#include <cstdio>
#include <cstring>

#include "pclust/util/metrics.hpp"

namespace pclust::util {

namespace {

/// Parse "<Key>:  <kB> kB" lines out of /proc/self/status. Returns 0 when
/// the file or key is missing (non-Linux hosts), which downstream treats
/// as "RSS unavailable" rather than an error.
std::uint64_t status_kb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "re");
  if (!f) return 0;
  char line[256];
  const std::size_t key_len = std::strlen(key);
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f)) {
    if (std::strncmp(line, key, key_len) != 0 || line[key_len] != ':') {
      continue;
    }
    unsigned long long value = 0;
    if (std::sscanf(line + key_len + 1, "%llu", &value) == 1) kb = value;
    break;
  }
  std::fclose(f);
  return kb;
}

}  // namespace

std::uint64_t string_bytes(const std::string& s) {
  // Short strings live in the SSO buffer inside the object; only a
  // capacity that outgrew it costs heap. sizeof(std::string) - 1 is a
  // conservative stand-in for the implementation's SSO threshold.
  return s.capacity() >= sizeof(std::string)
             ? static_cast<std::uint64_t>(s.capacity()) + 1
             : 0;
}

std::uint64_t current_rss_bytes() { return status_kb("VmRSS") * 1024; }

std::uint64_t peak_rss_bytes() { return status_kb("VmHWM") * 1024; }

void record_memory(const MemoryBreakdown& breakdown, std::string_view prefix) {
  std::string base = "mem.";
  if (!prefix.empty()) {
    base += prefix;
    base += '.';
  }
  base += breakdown.name;
  base += '.';
  for (const auto& [part, bytes] : breakdown.parts) {
    metrics().gauge(base + part).set(bytes);
  }
  metrics().gauge(base + "total").set(breakdown.total());
}

}  // namespace pclust::util
