#include "pclust/util/metrics.hpp"

#include <bit>

#include "pclust/util/json.hpp"

namespace pclust::util {

namespace metrics_detail {

unsigned shard_index() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned idx =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return idx;
}

}  // namespace metrics_detail

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const auto& slot : slots_) {
    total += slot.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() noexcept {
  for (auto& slot : slots_) slot.v.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

void Gauge::set(std::uint64_t v) noexcept {
  last_.store(v, std::memory_order_relaxed);
  std::uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < v &&
         !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

void Gauge::reset() noexcept {
  last_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// SizeHistogram
// ---------------------------------------------------------------------------

void SizeHistogram::add(std::uint64_t value) noexcept {
  const unsigned bucket = value == 0 ? 0u : std::bit_width(value);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < value && !max_.compare_exchange_weak(
                             prev, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t SizeHistogram::Snapshot::percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the target observation, 1-based, ceil semantics.
  const auto target = static_cast<std::uint64_t>(
      p / 100.0 * static_cast<double>(count) + 0.5);
  std::uint64_t seen = 0;
  for (unsigned b = 0; b < kBuckets; ++b) {
    seen += buckets[b];
    if (seen >= target && buckets[b] > 0) {
      // Upper bound of bucket b: values with bit width b are < 2^b.
      const std::uint64_t hi =
          b == 0 ? 0 : (b >= 64 ? max : (std::uint64_t{1} << b) - 1);
      return std::min(hi, max);
    }
  }
  return max;
}

SizeHistogram::Snapshot SizeHistogram::snapshot() const noexcept {
  Snapshot s;
  for (unsigned b = 0; b < kBuckets; ++b) {
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
    s.count += s.buckets[b];
  }
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

void SizeHistogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsSnapshot
// ---------------------------------------------------------------------------

MetricsSnapshot MetricsSnapshot::delta_since(const MetricsSnapshot& prev)
    const {
  const auto sub = [](std::uint64_t cur, std::uint64_t old) {
    return cur >= old ? cur - old : cur;  // reset between snapshots
  };
  MetricsSnapshot out;
  for (const auto& [name, value] : counters) {
    const auto it = prev.counters.find(name);
    out.counters[name] =
        sub(value, it == prev.counters.end() ? 0 : it->second);
  }
  out.gauges = gauges;
  for (const auto& [name, h] : histograms) {
    SizeHistogram::Snapshot d = h;
    const auto it = prev.histograms.find(name);
    if (it != prev.histograms.end() && it->second.count <= h.count) {
      d.count = h.count - it->second.count;
      d.sum = sub(h.sum, it->second.sum);
      for (unsigned b = 0; b < SizeHistogram::kBuckets; ++b) {
        d.buckets[b] = sub(h.buckets[b], it->second.buckets[b]);
      }
    }
    out.histograms[name] = d;
  }
  return out;
}

void MetricsSnapshot::to_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, value] : counters) {
    w.key(name).value(value);
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges) {
    w.key(name).begin_object();
    w.key("last").value(g.last);
    w.key("max").value(g.max);
    w.end_object();
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms) {
    w.key(name).begin_object();
    w.key("count").value(h.count);
    w.key("sum").value(h.sum);
    w.key("max").value(h.max);
    w.key("mean").value(h.mean());
    w.key("p50").value(h.percentile(50));
    w.key("p90").value(h.percentile(90));
    w.key("p95").value(h.percentile(95));
    w.key("p99").value(h.percentile(99));
    // Self-describing buckets: [lo, hi] value range plus count, non-empty
    // buckets only. Consumers (perf-diff, compare) can diff distributions
    // without knowing the power-of-two bucketing scheme.
    w.key("buckets").begin_array();
    for (unsigned b = 0; b < SizeHistogram::kBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      const std::uint64_t lo =
          b == 0 ? 0
                 : (b >= 64 ? (std::uint64_t{1} << 63)
                            : (std::uint64_t{1} << (b - 1)));
      const std::uint64_t hi =
          b == 0 ? 0
                 : (b >= 64 ? ~std::uint64_t{0}
                            : (std::uint64_t{1} << b) - 1);
      w.begin_object();
      w.key("lo").value(lo);
      w.key("hi").value(hi);
      w.key("count").value(h.buckets[b]);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

SizeHistogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<SizeHistogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) {
    s.gauges[name] = MetricsSnapshot::GaugeValue{g->last(), g->max()};
  }
  for (const auto& [name, h] : histograms_) s.histograms[name] = h->snapshot();
  return s;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) c->reset();
  for (const auto& [name, g] : gauges_) g->reset();
  for (const auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dtor'd
  return *registry;
}

}  // namespace pclust::util
