#include "pclust/util/io.hpp"

#include <cerrno>
#include <cstring>

#include "pclust/util/log.hpp"
#include "pclust/util/metrics.hpp"
#include "pclust/util/retry.hpp"
#include "pclust/util/strings.hpp"

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace pclust::util::io {

namespace {

constexpr std::string_view kClassNames[kArtifactClassCount] = {
    "families",  "checkpoint", "report", "telemetry",
    "trace",     "log",        "spill",  "provenance"};

constexpr std::string_view kKindNames[] = {"enospc", "eio", "short", "fsync"};

std::string errno_message() {
  return std::strerror(errno);
}

/// Nth-write counters index.
std::size_t idx(ArtifactClass cls) { return static_cast<std::size_t>(cls); }

/// One write attempt of the tmp file, POSIX so the fsync barrier is real.
/// @p short_bytes < bytes.size() truncates the payload (injected short
/// write); @p fail_fsync makes the durability barrier fail. Throws
/// std::runtime_error on any failure — with_retry classifies nothing, it
/// just retries.
void write_tmp(const std::filesystem::path& tmp, std::string_view bytes,
               bool fsync_on_commit, std::size_t write_bytes,
               bool fail_fsync) {
#if !defined(_WIN32)
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw std::runtime_error("cannot open " + tmp.string() + ": " +
                             errno_message());
  }
  std::size_t off = 0;
  while (off < write_bytes) {
    const ::ssize_t n = ::write(fd, bytes.data() + off, write_bytes - off);
    if (n <= 0) {
      const std::string why = errno_message();
      ::close(fd);
      throw std::runtime_error("write failed on " + tmp.string() + ": " + why);
    }
    off += static_cast<std::size_t>(n);
  }
  if (fsync_on_commit) {
    if (fail_fsync || ::fsync(fd) != 0) {
      const std::string why = fail_fsync ? "injected fsync failure"
                                         : errno_message();
      ::close(fd);
      throw std::runtime_error("fsync failed on " + tmp.string() + ": " + why);
    }
  }
  if (::close(fd) != 0) {
    throw std::runtime_error("close failed on " + tmp.string() + ": " +
                             errno_message());
  }
#else
  std::FILE* f = std::fopen(tmp.string().c_str(), "wb");
  if (!f) {
    throw std::runtime_error("cannot open " + tmp.string() + ": " +
                             errno_message());
  }
  const std::size_t n = std::fwrite(bytes.data(), 1, write_bytes, f);
  const bool flush_ok = std::fflush(f) == 0 && !fail_fsync;
  std::fclose(f);
  if (n != write_bytes || !flush_ok) {
    throw std::runtime_error("write failed on " + tmp.string());
  }
#endif
  // Short-write detection: what the filesystem holds must be what we
  // meant to commit — an injected (or real) partial write fails here.
  std::error_code ec;
  const std::uintmax_t on_disk = std::filesystem::file_size(tmp, ec);
  if (ec || on_disk != bytes.size()) {
    throw std::runtime_error(
        "short write on " + tmp.string() + ": " +
        std::to_string(ec ? 0 : static_cast<std::uint64_t>(on_disk)) + " of " +
        std::to_string(bytes.size()) + " bytes on disk");
  }
}

bool drop_on_failure(ArtifactClass cls) {
  switch (cls) {
    case ArtifactClass::kTelemetry:
    case ArtifactClass::kTrace:
    case ArtifactClass::kLog:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string_view class_name(ArtifactClass cls) {
  return kClassNames[idx(cls)];
}

ArtifactClass class_from_name(std::string_view name) {
  for (int c = 0; c < kArtifactClassCount; ++c) {
    if (kClassNames[c] == name) return static_cast<ArtifactClass>(c);
  }
  throw std::invalid_argument("unknown artifact class '" + std::string(name) +
                              "' (use families, checkpoint, report, "
                              "telemetry, trace, log, spill, or "
                              "provenance)");
}

std::string_view kind_name(FaultKind kind) {
  return kKindNames[static_cast<int>(kind)];
}

const IoFault* IoFaultPlan::fault_at(ArtifactClass cls,
                                     std::uint64_t ordinal) const {
  for (const IoFault& f : faults) {
    if (f.cls != cls) continue;
    if (f.sticky ? ordinal >= f.at_write : ordinal == f.at_write) return &f;
  }
  return nullptr;
}

IoFaultPlan IoFaultPlan::parse(const std::string& spec) {
  IoFaultPlan plan;
  for (const std::string& raw : split(spec, ',')) {
    const std::string entry(trim(raw));
    if (entry.empty()) continue;
    const auto bad = [&](const std::string& why) {
      return std::invalid_argument("--io-fault entry '" + entry + "': " + why +
                                   " (expected class:kind@N[:sticky])");
    };
    const auto c1 = entry.find(':');
    if (c1 == std::string::npos) throw bad("missing ':'");
    const auto at = entry.find('@', c1);
    if (at == std::string::npos) throw bad("missing '@N'");
    IoFault fault;
    fault.cls = class_from_name(entry.substr(0, c1));
    const std::string kind = entry.substr(c1 + 1, at - c1 - 1);
    if (kind == "enospc") {
      fault.kind = FaultKind::kEnospc;
    } else if (kind == "eio") {
      fault.kind = FaultKind::kEio;
    } else if (kind == "short") {
      fault.kind = FaultKind::kShortWrite;
    } else if (kind == "fsync") {
      fault.kind = FaultKind::kFsyncFail;
    } else {
      throw bad("unknown kind '" + kind +
                "' (use enospc, eio, short, or fsync)");
    }
    std::string count = entry.substr(at + 1);
    if (const auto c2 = count.find(':'); c2 != std::string::npos) {
      const std::string tail = count.substr(c2 + 1);
      if (tail != "sticky") throw bad("unknown suffix ':" + tail + "'");
      fault.sticky = true;
      count.resize(c2);
    }
    try {
      std::size_t pos = 0;
      fault.at_write = std::stoull(count, &pos);
      if (pos != count.size()) throw bad("'" + count + "' is not a number");
    } catch (const std::invalid_argument&) {
      throw bad("'" + count + "' is not a number");
    } catch (const std::out_of_range&) {
      throw bad("'" + count + "' is out of range");
    }
    plan.faults.push_back(fault);
  }
  return plan;
}

std::string IoFaultPlan::to_string() const {
  std::string out;
  for (const IoFault& f : faults) {
    if (!out.empty()) out += ',';
    out += std::string(class_name(f.cls)) + ":" +
           std::string(kind_name(f.kind)) + "@" + std::to_string(f.at_write) +
           (f.sticky ? ":sticky" : "");
  }
  return out;
}

IoError::IoError(ArtifactClass cls, std::filesystem::path path,
                 const std::string& message)
    : std::runtime_error("io[" + std::string(class_name(cls)) + "] " +
                         path.string() + ": " + message),
      cls_(cls),
      path_(path.string()) {}

IoEnv& IoEnv::instance() {
  static IoEnv env;
  return env;
}

IoEnv& io() { return IoEnv::instance(); }

void IoEnv::configure(IoFaultPlan plan) {
  std::lock_guard lk(mu_);
  plan_ = std::move(plan);
  for (int c = 0; c < kArtifactClassCount; ++c) {
    writes_[c].store(0, std::memory_order_relaxed);
    opens_[c].store(0, std::memory_order_relaxed);
    dropped_[c].store(0, std::memory_order_relaxed);
    warned_[c].store(false, std::memory_order_relaxed);
  }
  plan_active_.store(!plan_.empty(), std::memory_order_release);
  if (!plan_.empty()) {
    PCLUST_INFO << "io: fault plan active: " << plan_.to_string();
  }
}

const IoFault* IoEnv::injected(ArtifactClass cls, std::uint64_t ordinal,
                               std::uint32_t attempt) const {
  if (!fault_injection_enabled()) return nullptr;
  std::lock_guard lk(mu_);
  const IoFault* f = plan_.fault_at(cls, ordinal);
  if (!f) return nullptr;
  // Transient faults fail only the first attempt: the retry layer heals
  // them. Sticky storms fail every attempt.
  if (!f->sticky && attempt > 1) return nullptr;
  return f;
}

void IoEnv::count_dropped(ArtifactClass cls) {
  dropped_[idx(cls)].fetch_add(1, std::memory_order_relaxed);
  metrics().counter("io.dropped").add(1);
  metrics()
      .counter("io.dropped." + std::string(class_name(cls)))
      .add(1);
  if (!warned_[idx(cls)].exchange(true, std::memory_order_relaxed)) {
    PCLUST_WARN << "io: dropping " << class_name(cls)
                << " writes (persistent I/O failure); the "
                << class_name(cls)
                << " artifact is degraded but the run continues";
  }
}

CommitStatus IoEnv::commit_file(ArtifactClass cls,
                                const std::filesystem::path& path,
                                std::string_view bytes,
                                bool fsync_on_commit) {
  const std::uint64_t ordinal =
      writes_[idx(cls)].fetch_add(1, std::memory_order_relaxed) + 1;
  metrics().counter("io.writes").add(1);
  const std::filesystem::path tmp = path.string() + ".tmp";
  std::uint32_t attempt = 0;
  try {
    with_retry(RetryPolicy{},
               "commit " + std::string(class_name(cls)) + " " + path.string(),
               [&] {
                 ++attempt;
                 std::size_t write_bytes = bytes.size();
                 bool fail_fsync = false;
                 if (const IoFault* f = injected(cls, ordinal, attempt)) {
                   metrics().counter("io.faults_injected").add(1);
                   switch (f->kind) {
                     case FaultKind::kEnospc:
                       throw std::runtime_error(
                           "injected ENOSPC (no space left on device) on " +
                           tmp.string());
                     case FaultKind::kEio:
                       throw std::runtime_error("injected EIO on " +
                                                tmp.string());
                     case FaultKind::kShortWrite:
                       write_bytes = bytes.size() / 2;
                       break;
                     case FaultKind::kFsyncFail:
                       fail_fsync = true;
                       break;
                   }
                 }
                 write_tmp(tmp, bytes, fsync_on_commit, write_bytes,
                           fail_fsync);
                 std::error_code ec;
                 std::filesystem::rename(tmp, path, ec);
                 if (ec) {
                   throw std::runtime_error("cannot rename " + tmp.string() +
                                            " into place: " + ec.message());
                 }
               });
  } catch (const std::exception& ex) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);  // never leave a torn tmp behind
    if (drop_on_failure(cls)) {
      count_dropped(cls);
      return CommitStatus::kDropped;
    }
    throw IoError(cls, path, ex.what());
  }
  metrics().counter("io.bytes_committed").add(bytes.size());
  return CommitStatus::kCommitted;
}

bool IoEnv::admit_append(ArtifactClass cls) {
  const std::uint64_t ordinal =
      writes_[idx(cls)].fetch_add(1, std::memory_order_relaxed) + 1;
  if (const IoFault* f = injected(cls, ordinal, /*attempt=*/1)) {
    (void)f;
    metrics().counter("io.faults_injected").add(1);
    return false;
  }
  return true;
}

std::FILE* IoEnv::open_stream(ArtifactClass cls, const std::string& path,
                              const char* mode) {
  const std::uint64_t nth =
      opens_[idx(cls)].fetch_add(1, std::memory_order_relaxed) + 1;
  if (fault_injection_enabled()) {
    std::lock_guard lk(mu_);
    // at_write == 0 entries target opens: the first open for a transient
    // fault, every open for a sticky one.
    for (const IoFault& f : plan_.faults) {
      if (f.cls == cls && f.at_write == 0 && (f.sticky || nth == 1)) {
        metrics().counter("io.faults_injected").add(1);
        return nullptr;
      }
    }
  }
  return std::fopen(path.c_str(), mode);
}

std::uint64_t IoEnv::writes(ArtifactClass cls) const {
  return writes_[idx(cls)].load(std::memory_order_relaxed);
}

std::uint64_t IoEnv::dropped(ArtifactClass cls) const {
  return dropped_[idx(cls)].load(std::memory_order_relaxed);
}

std::uint64_t IoEnv::dropped_total() const {
  std::uint64_t n = 0;
  for (int c = 0; c < kArtifactClassCount; ++c) {
    n += dropped_[c].load(std::memory_order_relaxed);
  }
  return n;
}

SpillFile::SpillFile(std::string_view label) {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t id = counter.fetch_add(1, std::memory_order_relaxed);
  path_ = std::filesystem::temp_directory_path() /
          ("pclust-spill-" + std::string(label) + "-" +
           std::to_string(::getpid()) + "-" + std::to_string(id) + ".bin");
  out_ = io().open_stream(ArtifactClass::kSpill, path_.string(), "wb");
  if (!out_) {
    throw IoError(ArtifactClass::kSpill, path_,
                  "cannot open spill file for writing");
  }
}

SpillFile::~SpillFile() {
  if (out_) std::fclose(out_);
  std::error_code ec;
  std::filesystem::remove(path_, ec);
}

void SpillFile::write(const void* data, std::size_t size) {
  if (!out_) {
    throw IoError(ArtifactClass::kSpill, path_, "spill already finished");
  }
  if (!io().admit_append(ArtifactClass::kSpill)) {
    throw IoError(ArtifactClass::kSpill, path_,
                  "injected I/O fault on spill write");
  }
  if (std::fwrite(data, 1, size, out_) != size) {
    throw IoError(ArtifactClass::kSpill, path_,
                  "short write to spill file: " + errno_message());
  }
  written_ += size;
  metrics().counter("io.spill_bytes").add(size);
}

void SpillFile::finish() {
  if (!out_) return;
  const bool ok = std::fflush(out_) == 0;
  std::fclose(out_);
  out_ = nullptr;
  if (!ok) {
    throw IoError(ArtifactClass::kSpill, path_, "flush failed on spill file");
  }
}

std::vector<std::uint8_t> SpillFile::read_all() {
  finish();
  std::FILE* in = std::fopen(path_.string().c_str(), "rb");
  if (!in) {
    throw IoError(ArtifactClass::kSpill, path_,
                  "cannot reopen spill file for reading");
  }
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(written_));
  const std::size_t n = std::fread(bytes.data(), 1, bytes.size(), in);
  std::fclose(in);
  if (n != bytes.size()) {
    throw IoError(ArtifactClass::kSpill, path_,
                  "spill file truncated on read-back");
  }
  return bytes;
}

}  // namespace pclust::util::io
