#include "pclust/util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace pclust::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, std::string_view msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[pclust %s] %.*s\n", level_tag(level),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace pclust::util
