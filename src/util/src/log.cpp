#include "pclust/util/log.hpp"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

namespace pclust::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

// Optional append sink named by PCLUST_LOG_FILE; resolved once, on the
// first log line (under g_mutex). nullptr when unset or unopenable.
// Line-buffered so live consumers (`tail -f`, `pclust monitor`) see each
// record as soon as it is written — every log_line additionally flushes,
// making the per-record delivery guarantee independent of libc buffering.
std::FILE* log_file() {
  static std::FILE* file = []() -> std::FILE* {
    const char* path = std::getenv("PCLUST_LOG_FILE");
    if (!path || !*path) return nullptr;
    std::FILE* f = std::fopen(path, "a");
    if (f) std::setvbuf(f, nullptr, _IOLBF, 0);
    return f;
  }();
  return file;
}

// UTC ISO-8601 timestamp like 2026-08-06T12:34:56Z into @p buf.
void format_timestamp(char* buf, std::size_t size) {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  std::strftime(buf, size, "%Y-%m-%dT%H:%M:%SZ", &tm);
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, std::string_view msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  char ts[32];
  format_timestamp(ts, sizeof(ts));
  std::lock_guard<std::mutex> lock(g_mutex);
  // Monotonic per-process sequence after the second-resolution timestamp:
  // lines sharing one timestamp stay totally ordered for stream consumers.
  static std::uint64_t sequence = 0;
  const std::uint64_t seq = ++sequence;
  std::fprintf(stderr, "[%s#%06llu pclust %s] %.*s\n", ts,
               static_cast<unsigned long long>(seq), level_tag(level),
               static_cast<int>(msg.size()), msg.data());
  if (std::FILE* f = log_file()) {
    std::fprintf(f, "[%s#%06llu pclust %s] %.*s\n", ts,
                 static_cast<unsigned long long>(seq), level_tag(level),
                 static_cast<int>(msg.size()), msg.data());
    std::fflush(f);
  }
}

}  // namespace pclust::util
