#include "pclust/util/log.hpp"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>
#include <string>

#include "pclust/util/io.hpp"

namespace pclust::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

// Optional append sink named by PCLUST_LOG_FILE, opened through the IoEnv
// (ArtifactClass::kLog) so sink failures are injectable and observable.
// g_sink_state claims resolution BEFORE the open runs: any log line emitted
// from inside the open path (e.g. the IoEnv counting a dropped open) sees a
// resolved-null sink and goes to stderr, instead of recursing into the
// resolver while g_mutex or the claim is held.
std::atomic<int> g_sink_state{static_cast<int>(LogSinkStatus::kUnresolved)};
std::atomic<std::FILE*> g_sink{nullptr};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

LogSinkStatus resolve_log_sink() {
  int expected = static_cast<int>(LogSinkStatus::kUnresolved);
  if (!g_sink_state.compare_exchange_strong(
          expected, static_cast<int>(LogSinkStatus::kNone))) {
    // Another thread resolved (or is resolving) — stderr still gets this
    // line either way.
    return static_cast<LogSinkStatus>(expected);
  }
  const char* path = std::getenv("PCLUST_LOG_FILE");
  if (!path || !*path) return LogSinkStatus::kNone;
  std::FILE* f = io::io().open_stream(io::ArtifactClass::kLog, path, "a");
  if (!f) {
    // Satellite fix: an unwritable PCLUST_LOG_FILE used to lose the file
    // sink silently. Fall back to stderr-only with one visible warning.
    g_sink_state.store(static_cast<int>(LogSinkStatus::kFallback),
                       std::memory_order_release);
    log_line(LogLevel::kWarn,
             std::string("PCLUST_LOG_FILE is not writable, logging to "
                         "stderr only: ") +
                 path);
    return LogSinkStatus::kFallback;
  }
  // Line-buffered so live consumers (`tail -f`, `pclust monitor`) see each
  // record as soon as it is written; log_line additionally flushes.
  std::setvbuf(f, nullptr, _IOLBF, 0);
  g_sink.store(f, std::memory_order_release);
  g_sink_state.store(static_cast<int>(LogSinkStatus::kFile),
                     std::memory_order_release);
  return LogSinkStatus::kFile;
}

// UTC ISO-8601 timestamp like 2026-08-06T12:34:56Z into @p buf.
void format_timestamp(char* buf, std::size_t size) {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  std::strftime(buf, size, "%Y-%m-%dT%H:%M:%SZ", &tm);
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

LogSinkStatus log_sink_status() {
  return static_cast<LogSinkStatus>(
      g_sink_state.load(std::memory_order_acquire));
}

LogSinkStatus refresh_log_sink() {
  std::FILE* old = g_sink.exchange(nullptr, std::memory_order_acq_rel);
  if (old != nullptr) {
    std::lock_guard<std::mutex> lock(g_mutex);  // no line mid-close
    std::fclose(old);
  }
  g_sink_state.store(static_cast<int>(LogSinkStatus::kUnresolved),
                     std::memory_order_release);
  return resolve_log_sink();
}

void log_line(LogLevel level, std::string_view msg) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  if (g_sink_state.load(std::memory_order_acquire) ==
      static_cast<int>(LogSinkStatus::kUnresolved)) {
    resolve_log_sink();
  }
  char ts[32];
  format_timestamp(ts, sizeof(ts));
  std::lock_guard<std::mutex> lock(g_mutex);
  // Monotonic per-process sequence after the second-resolution timestamp:
  // lines sharing one timestamp stay totally ordered for stream consumers.
  static std::uint64_t sequence = 0;
  const std::uint64_t seq = ++sequence;
  std::fprintf(stderr, "[%s#%06llu pclust %s] %.*s\n", ts,
               static_cast<unsigned long long>(seq), level_tag(level),
               static_cast<int>(msg.size()), msg.data());
  if (std::FILE* f = g_sink.load(std::memory_order_acquire)) {
    std::fprintf(f, "[%s#%06llu pclust %s] %.*s\n", ts,
                 static_cast<unsigned long long>(seq), level_tag(level),
                 static_cast<int>(msg.size()), msg.data());
    std::fflush(f);
  }
}

}  // namespace pclust::util
