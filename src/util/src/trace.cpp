#include "pclust/util/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "pclust/util/io.hpp"

#include "pclust/util/json.hpp"

namespace pclust::util::trace {

namespace {

enum class Phase : char { kComplete = 'X', kInstant = 'i', kMetadata = 'M' };

struct Event {
  int pid = 0;
  int tid = 0;
  double ts = 0.0;   // microseconds
  double dur = 0.0;  // microseconds (complete events only)
  Phase ph = Phase::kComplete;
  std::string name;
  std::string cat;
  std::string meta_arg;  // metadata events: the process/thread name
};

struct State {
  std::mutex mutex;
  std::vector<Event> events;
  int next_pid = 1;  // 0 is reserved for "pipeline"
  std::chrono::steady_clock::time_point epoch;
};

std::atomic<bool> g_enabled{false};
std::atomic<int> g_current_pid{0};

State& state() {
  static State* s = new State();  // never destroyed: traceable at exit
  return *s;
}

void push_metadata(State& s, int pid, int tid, std::string_view name,
                   std::string_view arg) {
  Event e;
  e.pid = pid;
  e.tid = tid;
  e.ph = Phase::kMetadata;
  e.name = std::string(name);
  e.meta_arg = std::string(arg);
  s.events.push_back(std::move(e));
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void enable() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.events.clear();
  s.next_pid = 1;
  s.epoch = std::chrono::steady_clock::now();
  push_metadata(s, 0, 0, "process_name", "pipeline");
  g_current_pid.store(0, std::memory_order_relaxed);
  g_enabled.store(true, std::memory_order_relaxed);
}

void disable() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  g_enabled.store(false, std::memory_order_relaxed);
  s.events.clear();
}

double now_us() noexcept {
  if (!enabled()) return 0.0;
  State& s = state();
  const auto delta = std::chrono::steady_clock::now() - s.epoch;
  return std::chrono::duration<double, std::micro>(delta).count();
}

int begin_process(std::string_view name) {
  if (!enabled()) return 0;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  const int pid = s.next_pid++;
  push_metadata(s, pid, 0, "process_name", name);
  g_current_pid.store(pid, std::memory_order_relaxed);
  return pid;
}

int current_pid() noexcept {
  return g_current_pid.load(std::memory_order_relaxed);
}

void set_current_pid(int pid) noexcept {
  g_current_pid.store(pid, std::memory_order_relaxed);
}

void name_thread(int pid, int tid, std::string_view name) {
  if (!enabled()) return;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  push_metadata(s, pid, tid, "thread_name", name);
}

void complete(int pid, int tid, std::string_view name, std::string_view cat,
              double ts_us, double dur_us) {
  if (!enabled()) return;
  Event e;
  e.pid = pid;
  e.tid = tid;
  e.ts = ts_us;
  e.dur = dur_us;
  e.ph = Phase::kComplete;
  e.name = std::string(name);
  e.cat = std::string(cat);
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.events.push_back(std::move(e));
}

void instant(int pid, int tid, std::string_view name, std::string_view cat,
             double ts_us) {
  if (!enabled()) return;
  Event e;
  e.pid = pid;
  e.tid = tid;
  e.ts = ts_us;
  e.ph = Phase::kInstant;
  e.name = std::string(name);
  e.cat = std::string(cat);
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.events.push_back(std::move(e));
}

std::string render_json() {
  State& s = state();
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    events = s.events;
  }
  // Metadata first, then a total order independent of thread interleaving.
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     const int ma = a.ph == Phase::kMetadata ? 0 : 1;
                     const int mb = b.ph == Phase::kMetadata ? 0 : 1;
                     return std::tie(ma, a.pid, a.tid, a.ts, a.name, a.dur) <
                            std::tie(mb, b.pid, b.tid, b.ts, b.name, b.dur);
                   });
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  for (const Event& e : events) {
    w.begin_object();
    w.key("name").value(e.name);
    const char ph = static_cast<char>(e.ph);
    w.key("ph").value(std::string_view(&ph, 1));
    w.key("pid").value(e.pid);
    w.key("tid").value(e.tid);
    switch (e.ph) {
      case Phase::kMetadata:
        w.key("args").begin_object().key("name").value(e.meta_arg).end_object();
        break;
      case Phase::kComplete:
        w.key("cat").value(e.cat);
        w.key("ts").value(e.ts);
        w.key("dur").value(e.dur);
        break;
      case Phase::kInstant:
        w.key("cat").value(e.cat);
        w.key("ts").value(e.ts);
        w.key("s").value("t");  // thread-scoped instant
        break;
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void write_file(const std::filesystem::path& path) {
  // Drop-and-count class: a failed trace write loses the timeline, never
  // the run (commit_file logs the drop and bumps io.dropped.trace).
  io::io().commit_file(io::ArtifactClass::kTrace, path, render_json() + "\n");
}

WallSpan::WallSpan(std::string name, std::string cat)
    : name_(std::move(name)), cat_(std::move(cat)) {
  if (enabled()) {
    start_us_ = now_us();
    active_ = true;
  }
}

WallSpan::~WallSpan() {
  if (active_ && enabled()) {
    complete(0, 0, name_, cat_, start_us_, now_us() - start_us_);
  }
}

}  // namespace pclust::util::trace
