#include "pclust/util/strings.hpp"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace pclust::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' ||
           c == '\v';
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string with_commas(long long n) {
  const bool neg = n < 0;
  std::string digits = std::to_string(neg ? -n : n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  return {out.rbegin(), out.rend()};
}

std::string format_duration(double seconds) {
  if (seconds < 60.0) return format("%.2fs", seconds);
  const auto total = static_cast<long long>(seconds);
  const long long h = total / 3600;
  const long long m = (total % 3600) / 60;
  const long long s = total % 60;
  if (h > 0) return format("%lldh %lldm %llds", h, m, s);
  return format("%lldm %llds", m, s);
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace pclust::util
