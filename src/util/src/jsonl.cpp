#include "pclust/util/jsonl.hpp"

#include <cstdio>
#include <filesystem>
#include <system_error>

namespace pclust::util {

bool JsonlTailReader::poll(std::vector<std::string>& lines) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path_, ec);
  if (ec) return false;
  if (size < offset_) reset();  // truncated or rotated underneath us
  if (size == offset_) return true;

  std::FILE* in = std::fopen(path_.c_str(), "rb");
  if (in == nullptr) return false;
  if (offset_ > 0 &&
      std::fseek(in, static_cast<long>(offset_), SEEK_SET) != 0) {
    std::fclose(in);
    reset();
    return true;
  }

  // offset_ points at the START of any buffered partial tail, so seeking
  // there re-reads the torn bytes from the file — no in-memory carry, and
  // a writer that rewrites the torn line differently is handled too.
  std::string pending;
  char buf[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, in)) > 0) {
    std::size_t start = 0;
    for (std::size_t i = 0; i < got; ++i) {
      if (buf[i] != '\n') continue;
      pending.append(buf + start, i - start);
      start = i + 1;
      offset_ += pending.size() + 1;
      if (!pending.empty()) lines.push_back(std::move(pending));
      pending.clear();
    }
    pending.append(buf + start, got - start);
  }
  std::fclose(in);
  tail_ = std::move(pending);
  return true;
}

}  // namespace pclust::util
