#include "pclust/util/table.hpp"

#include <algorithm>
#include <sstream>

namespace pclust::util {

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto emit_row = [&](std::ostringstream& ss,
                            const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      ss << "| " << row[c] << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    ss << "|\n";
  };

  std::ostringstream ss;
  if (!title_.empty()) ss << title_ << "\n";
  emit_row(ss, header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    ss << "|" << std::string(widths[c] + 2, '-');
  }
  ss << "|\n";
  for (const auto& row : rows_) emit_row(ss, row);
  for (const auto& note : footnotes_) ss << "  " << note << "\n";
  return ss.str();
}

}  // namespace pclust::util
