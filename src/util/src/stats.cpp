#include "pclust/util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace pclust::util {

Summary summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) return s;
  s.n = values.size();
  RunningStats rs;
  for (double v : values) rs.add(v);
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t mid = sorted.size() / 2;
  s.median = (sorted.size() % 2 == 1)
                 ? sorted[mid]
                 : 0.5 * (sorted[mid - 1] + sorted[mid]);
  return s;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace pclust::util
