#include "pclust/util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pclust::util {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma_for_value() {
  if (stack_.empty()) return;
  // Inside an array every value needs a separating comma; inside an object
  // the comma was already written by key().
  if (stack_.back() == '[') {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_for_value();
  out_ += '{';
  stack_.push_back('{');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_for_value();
  out_ += '[';
  stack_.push_back('[');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (!first_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma_for_value();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma_for_value();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  comma_for_value();
  if (!std::isfinite(d)) {  // JSON has no Inf/NaN; clamp to null
    out_ += "null";
    return *this;
  }
  char buf[64];
  // %.17g round-trips doubles; trim to a cleaner %g when exact.
  std::snprintf(buf, sizeof(buf), "%.12g", d);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t n) {
  comma_for_value();
  out_ += std::to_string(n);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t n) {
  comma_for_value();
  out_ += std::to_string(n);
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_for_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view raw_json) {
  comma_for_value();
  out_ += raw_json;
  return *this;
}

// ---------------------------------------------------------------------------
// parse_json
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("json: " + what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) throw JsonError("json: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    if (depth_ > 128) fail("nesting too deep");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.string_value = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        if (consume_literal("true")) {
          v.bool_value = true;
        } else if (consume_literal("false")) {
          v.bool_value = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    ++depth_;
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string name = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      v.object.emplace_back(std::move(name), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      break;
    }
    --depth_;
    return v;
  }

  JsonValue parse_array() {
    ++depth_;
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return v;
    }
    for (;;) {
      skip_ws();
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      break;
    }
    --depth_;
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // Encode the code point as UTF-8 (surrogate pairs unsupported —
          // our emitters only escape control characters).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("bad number");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = d;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view name) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [key, value] : object) {
    if (key == name) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view name) const {
  const JsonValue* v = find(name);
  if (!v) throw JsonError("json: missing member '" + std::string(name) + "'");
  return *v;
}

double JsonValue::as_number() const {
  if (type != Type::kNumber) throw JsonError("json: value is not a number");
  return number;
}

std::uint64_t JsonValue::as_u64() const {
  const double d = as_number();
  if (d < 0) throw JsonError("json: negative value where count expected");
  return static_cast<std::uint64_t>(d);
}

const std::string& JsonValue::as_string() const {
  if (type != Type::kString) throw JsonError("json: value is not a string");
  return string_value;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace pclust::util
