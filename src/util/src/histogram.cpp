#include "pclust/util/histogram.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace pclust::util {

Histogram::Histogram(std::int64_t lo, std::int64_t width, std::int64_t cap)
    : lo_(lo), width_(width) {
  if (width <= 0) throw std::invalid_argument("Histogram: width must be > 0");
  if (cap <= lo) throw std::invalid_argument("Histogram: cap must be > lo");
  const auto buckets = (cap - lo + width - 1) / width;
  counts_.assign(static_cast<std::size_t>(buckets), 0);
}

void Histogram::add(std::int64_t value, std::int64_t count) {
  if (value < lo_) {
    underflow_ += count;
    return;
  }
  const auto idx = static_cast<std::size_t>((value - lo_) / width_);
  if (idx >= counts_.size()) {
    overflow_ += count;
    return;
  }
  counts_[idx] += count;
}

std::int64_t Histogram::bucket_lo(std::size_t i) const {
  return lo_ + static_cast<std::int64_t>(i) * width_;
}

std::int64_t Histogram::bucket_hi(std::size_t i) const {
  return bucket_lo(i) + width_ - 1;
}

std::int64_t Histogram::total() const {
  std::int64_t t = underflow_ + overflow_;
  for (auto c : counts_) t += c;
  return t;
}

std::int64_t Histogram::percentile(double p) const {
  const std::int64_t n = total();
  if (n == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // 1-based rank of the target observation, ceil semantics.
  auto target = static_cast<std::int64_t>(p / 100.0 * static_cast<double>(n) +
                                          0.5);
  if (target < 1) target = 1;
  std::int64_t seen = underflow_;
  if (seen >= target) return lo_ - 1;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= target && counts_[i] > 0) return bucket_hi(i);
  }
  // Target falls in the overflow mass: report the rounded-up cap.
  return lo_ + static_cast<std::int64_t>(counts_.size()) * width_;
}

std::string Histogram::bucket_label(std::size_t i) const {
  std::ostringstream ss;
  ss << bucket_lo(i) << "-" << bucket_hi(i);
  return ss.str();
}

std::string Histogram::to_string(int bar_width) const {
  std::int64_t max_count = 1;
  for (auto c : counts_) max_count = std::max(max_count, c);
  std::ostringstream ss;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar = static_cast<int>(counts_[i] * bar_width / max_count);
    ss << bucket_label(i) << "\t" << counts_[i] << "\t"
       << std::string(static_cast<std::size_t>(std::max(bar, 1)), '#') << "\n";
  }
  if (overflow_ > 0) ss << ">=cap\t" << overflow_ << "\n";
  return ss.str();
}

}  // namespace pclust::util
