#include "pclust/util/checkpoint.hpp"

#include <array>
#include <cstring>
#include <fstream>

#include "pclust/util/io.hpp"
#include "pclust/util/log.hpp"
#include "pclust/util/metrics.hpp"
#include "pclust/util/retry.hpp"

namespace pclust::util {

namespace {

constexpr std::array<char, 4> kMagic = {'P', 'C', 'K', 'P'};
constexpr std::uint32_t kFormatVersion = 1;

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void CheckpointWriter::u32(std::uint32_t v) { put_u32(bytes_, v); }
void CheckpointWriter::u64(std::uint64_t v) { put_u64(bytes_, v); }

void CheckpointWriter::f64(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(bytes_, bits);
}

void CheckpointWriter::str(std::string_view s) {
  put_u64(bytes_, s.size());
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void CheckpointWriter::u8_vec(const std::vector<std::uint8_t>& v) {
  put_u64(bytes_, v.size());
  bytes_.insert(bytes_.end(), v.begin(), v.end());
}

void CheckpointWriter::u32_vec(const std::vector<std::uint32_t>& v) {
  put_u64(bytes_, v.size());
  for (const std::uint32_t x : v) put_u32(bytes_, x);
}

void CheckpointWriter::u64_vec(const std::vector<std::uint64_t>& v) {
  put_u64(bytes_, v.size());
  for (const std::uint64_t x : v) put_u64(bytes_, x);
}

void CheckpointReader::need(std::size_t n) const {
  if (bytes_.size() - pos_ < n) {
    throw CheckpointError("checkpoint payload truncated");
  }
}

std::uint8_t CheckpointReader::u8() {
  need(1);
  return bytes_[pos_++];
}

std::uint32_t CheckpointReader::u32() {
  need(4);
  const std::uint32_t v = get_u32(bytes_.data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t CheckpointReader::u64() {
  need(8);
  const std::uint64_t v = get_u64(bytes_.data() + pos_);
  pos_ += 8;
  return v;
}

double CheckpointReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string CheckpointReader::str() {
  const std::uint64_t n = u64();
  need(n);
  std::string out(reinterpret_cast<const char*>(bytes_.data() + pos_),
                  static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return out;
}

std::vector<std::uint8_t> CheckpointReader::u8_vec() {
  const std::uint64_t n = u64();
  need(n);
  std::vector<std::uint8_t> out(bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                bytes_.begin() +
                                    static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += static_cast<std::size_t>(n);
  return out;
}

std::vector<std::uint32_t> CheckpointReader::u32_vec() {
  const std::uint64_t n = u64();
  // Divide instead of multiplying: n * 4 could wrap for a hostile count.
  if (n > (bytes_.size() - pos_) / 4) {
    throw CheckpointError("checkpoint payload truncated");
  }
  std::vector<std::uint32_t> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(u32());
  return out;
}

std::vector<std::uint64_t> CheckpointReader::u64_vec() {
  const std::uint64_t n = u64();
  if (n > (bytes_.size() - pos_) / 8) {
    throw CheckpointError("checkpoint payload truncated");
  }
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(u64());
  return out;
}

void write_checkpoint(const std::filesystem::path& path,
                      std::uint32_t phase_tag, std::uint32_t payload_version,
                      const CheckpointWriter& payload, bool keep_previous) {
  const std::vector<std::uint8_t>& body = payload.bytes();
  std::vector<std::uint8_t> header;
  header.insert(header.end(), kMagic.begin(), kMagic.end());
  put_u32(header, kFormatVersion);
  put_u32(header, phase_tag);
  put_u32(header, payload_version);
  put_u64(header, body.size());
  put_u32(header, crc32(body.data(), body.size()));

  if (keep_previous) {
    // Rotate the previous generation to "<path>.1" before the new file
    // replaces it. Best-effort: a failed rotation only costs the rollback
    // option, not the write.
    std::error_code rot;
    if (std::filesystem::exists(path, rot) && !rot) {
      std::filesystem::rename(path, checkpoint_backup_path(path), rot);
    }
  }

  std::string bytes;
  bytes.reserve(header.size() + body.size());
  bytes.append(reinterpret_cast<const char*>(header.data()), header.size());
  bytes.append(reinterpret_cast<const char*>(body.data()), body.size());
  try {
    io::io().commit_file(io::ArtifactClass::kCheckpoint, path, bytes);
  } catch (const io::IoError& err) {
    // Checkpointing is an optimization: a persistent write failure (disk
    // full, dead device) must not kill a run that would otherwise finish.
    // Restore the rotated previous generation so --resume still has a
    // consistent (older) state to fall back to, then carry on.
    metrics().counter("checkpoint.write_failures").add(1);
    if (keep_previous) {
      const std::filesystem::path backup = checkpoint_backup_path(path);
      std::error_code ec;
      if (std::filesystem::exists(backup, ec) && !ec &&
          !std::filesystem::exists(path, ec)) {
        std::filesystem::rename(backup, path, ec);
        if (!ec) metrics().counter("checkpoint.rollbacks").add(1);
      }
    }
    log_line(LogLevel::kWarn,
             std::string("checkpoint write failed, continuing without it: ") +
                 err.what());
    return;
  }
  metrics().counter("checkpoint.files_written").add(1);
  metrics().counter("checkpoint.bytes_written").add(header.size() +
                                                    body.size());
}

std::filesystem::path checkpoint_backup_path(
    const std::filesystem::path& path) {
  return std::filesystem::path(path.string() + ".1");
}

std::filesystem::path checkpoint_quarantine_path(
    const std::filesystem::path& path) {
  return std::filesystem::path(path.string() + ".bad");
}

std::filesystem::path quarantine_checkpoint(
    const std::filesystem::path& path) {
  const std::filesystem::path bad = checkpoint_quarantine_path(path);
  std::error_code ec;
  std::filesystem::rename(path, bad, ec);
  metrics().counter("checkpoint.quarantined").add(1);
  if (ec) {
    std::filesystem::remove(path, ec);
    return {};
  }
  return bad;
}

CheckpointRecovery recover_checkpoint(const std::filesystem::path& path,
                                      std::uint32_t phase_tag,
                                      std::uint32_t max_payload_version) {
  CheckpointRecovery out;
  std::error_code ec;
  if (std::filesystem::exists(path, ec) && !ec) {
    try {
      out.reader = read_checkpoint(path, phase_tag, max_payload_version,
                                   &out.payload_version);
      return out;
    } catch (const CheckpointError& ex) {
      const std::filesystem::path bad = quarantine_checkpoint(path);
      out.events.push_back("quarantined unreadable checkpoint " +
                           path.filename().string() +
                           (bad.empty() ? "" : " to " + bad.filename().string()) +
                           ": " + ex.what());
    }
  }
  const std::filesystem::path backup = checkpoint_backup_path(path);
  if (std::filesystem::exists(backup, ec) && !ec) {
    try {
      out.reader = read_checkpoint(backup, phase_tag, max_payload_version,
                                   &out.payload_version);
      out.from_backup = true;
      out.events.push_back("rolled back to last-good generation " +
                           backup.filename().string());
      metrics().counter("checkpoint.rollbacks").add(1);
      return out;
    } catch (const CheckpointError& ex) {
      const std::filesystem::path bad = quarantine_checkpoint(backup);
      out.events.push_back("quarantined unreadable backup " +
                           backup.filename().string() +
                           (bad.empty() ? "" : " to " + bad.filename().string()) +
                           ": " + ex.what());
    }
  }
  return out;
}

CheckpointReader read_checkpoint(const std::filesystem::path& path,
                                 std::uint32_t phase_tag,
                                 std::uint32_t max_payload_version,
                                 std::uint32_t* payload_version_out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CheckpointError("cannot open checkpoint: " + path.string());
  }
  std::array<std::uint8_t, 28> header{};  // magic..crc32, fixed layout
  in.read(reinterpret_cast<char*>(header.data()),
          static_cast<std::streamsize>(header.size()));
  if (in.gcount() != static_cast<std::streamsize>(header.size())) {
    throw CheckpointError("checkpoint header truncated: " + path.string());
  }
  if (std::memcmp(header.data(), kMagic.data(), kMagic.size()) != 0) {
    throw CheckpointError("not a checkpoint file (bad magic): " +
                          path.string());
  }
  const std::uint32_t format = get_u32(header.data() + 4);
  if (format != kFormatVersion) {
    throw CheckpointError("unsupported checkpoint format version " +
                          std::to_string(format) + ": " + path.string());
  }
  const std::uint32_t tag = get_u32(header.data() + 8);
  if (tag != phase_tag) {
    throw CheckpointError("checkpoint phase tag mismatch (have " +
                          std::to_string(tag) + ", want " +
                          std::to_string(phase_tag) + "): " + path.string());
  }
  const std::uint32_t payload_version = get_u32(header.data() + 12);
  if (payload_version > max_payload_version) {
    throw CheckpointError("checkpoint payload version " +
                          std::to_string(payload_version) +
                          " is newer than supported: " + path.string());
  }
  const std::uint64_t size = get_u64(header.data() + 16);
  const std::uint32_t crc = get_u32(header.data() + 24);

  // Validate the declared size against the actual file BEFORE allocating:
  // a corrupted size field must yield CheckpointError, not bad_alloc.
  std::error_code ec;
  const std::uintmax_t on_disk = std::filesystem::file_size(path, ec);
  if (ec || on_disk != header.size() + size) {
    throw CheckpointError("checkpoint payload size mismatch: " +
                          path.string());
  }

  std::vector<std::uint8_t> body(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(body.data()),
          static_cast<std::streamsize>(body.size()));
  if (in.gcount() != static_cast<std::streamsize>(body.size())) {
    throw CheckpointError("checkpoint payload truncated: " + path.string());
  }
  if (crc32(body.data(), body.size()) != crc) {
    throw CheckpointError("checkpoint CRC mismatch (corrupted file): " +
                          path.string());
  }
  if (payload_version_out) *payload_version_out = payload_version;
  metrics().counter("checkpoint.files_read").add(1);
  metrics().counter("checkpoint.bytes_read").add(header.size() + body.size());
  return CheckpointReader(std::move(body));
}

bool checkpoint_valid(const std::filesystem::path& path,
                      std::uint32_t phase_tag,
                      std::uint32_t max_payload_version) {
  try {
    (void)read_checkpoint(path, phase_tag, max_payload_version);
    return true;
  } catch (const CheckpointError&) {
    return false;
  }
}

}  // namespace pclust::util
