#include "pclust/util/telemetry.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <ctime>
#include <map>
#include <mutex>
#include <string_view>
#include <thread>

#include "pclust/util/io.hpp"
#include "pclust/util/json.hpp"
#include "pclust/util/memsize.hpp"
#include "pclust/util/metrics.hpp"

namespace pclust::util::telemetry {

namespace {

std::string iso_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// Summarize one latency histogram snapshot as an object (integer
/// microsecond percentiles, bucket-upper-bound resolution).
void write_histogram_summary(JsonWriter& w, const char* key,
                             const SizeHistogram::Snapshot& h) {
  w.key(key).begin_object();
  w.key("count").value(h.count);
  w.key("mean").value(h.mean());
  w.key("p50").value(h.percentile(50));
  w.key("p95").value(h.percentile(95));
  w.key("p99").value(h.percentile(99));
  w.key("max").value(h.max);
  w.end_object();
}

struct RankEntry {
  std::string level;
  double busy = 0.0, comm = 0.0, idle = 0.0;           // cumulative
  double em_busy = 0.0, em_comm = 0.0, em_idle = 0.0;  // emitted baseline
};

class State {
 public:
  static State& instance() {
    static State s;
    return s;
  }

  void enable(const TelemetryConfig& config) {
    disable();
    std::FILE* out =
        io::io().open_stream(io::ArtifactClass::kTelemetry, config.path, "w");
    if (!out) {
      throw std::runtime_error("telemetry: cannot open " + config.path +
                               " for writing");
    }
    {
      std::lock_guard lk(mu_);
      cfg_ = config;
      out_ = out;
      seq_ = 0;
      records_ = samples_ = warnings_ = stalls_ = 0;
      drop_warning_pending_ = false;
      t0_ = std::chrono::steady_clock::now();
      phase_active_ = false;
      phase_.clear();
      fatal_.store(false, std::memory_order_relaxed);
      fatal_message_.clear();
      watchdog_ = WatchdogPolicy(WatchdogLimits{
          config.wall_stall_seconds > 0.0
              ? config.wall_stall_seconds
              : std::max(10.0 * config.interval, 10.0),
          config.retry_spike_threshold, config.rss_growth_factor, 5});
      prev_metrics_ = metrics().snapshot();
      prev_wall_t_ = 0.0;
      prev_wall_done_ = 0;
      have_wall_prev_ = false;
    }
    {
      std::lock_guard lk(virtual_mu_);
      ranks_.clear();
      rt_hist_.reset();
    }
    reset_progress();
    emit("start", /*wall_fields=*/true, [&](JsonWriter& w) {
      w.key("schema").value("pclust-telemetry");
      w.key("version").value(std::int64_t{1});
      w.key("command").value(config.command);
      w.key("interval").value(config.interval);
      w.key("watchdog").begin_object();
      w.key("wall_stall_seconds")
          .value(config.wall_stall_seconds > 0.0
                     ? config.wall_stall_seconds
                     : std::max(10.0 * config.interval, 10.0));
      w.key("virtual_stall_seconds").value(config.virtual_stall_seconds);
      w.key("deadline_seconds").value(config.watchdog_deadline);
      w.end_object();
    });
    enabled_.store(true, std::memory_order_release);
    stop_.store(false, std::memory_order_relaxed);
    sampler_ = std::thread([this] { run_sampler(); });
  }

  void disable() {
    if (!enabled_.load(std::memory_order_acquire)) return;
    enabled_.store(false, std::memory_order_release);
    {
      std::lock_guard lk(cv_mu_);
      stop_.store(true, std::memory_order_relaxed);
    }
    cv_.notify_all();
    if (sampler_.joinable()) sampler_.join();
    emit("end", /*wall_fields=*/true, [&](JsonWriter& w) {
      w.key("samples").value(samples_);
      w.key("warnings").value(warnings_);
      w.key("stalls").value(stalls_);
    });
    std::lock_guard lk(mu_);
    std::fclose(out_);
    out_ = nullptr;
  }

  [[nodiscard]] bool on() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  void phase_begin(const std::string& name, bool virtual_time, int ranks,
                   int masters) {
    {
      std::lock_guard lk(virtual_mu_);
      ranks_.clear();
      rt_hist_.reset();
      next_virtual_sample_ = virtual_interval();
      prev_virtual_vt_ = 0.0;
      prev_virtual_done_ = 0;
      last_progress_vt_ = 0.0;
      max_gap_virtual_ = 0.0;
      virtual_stall_warned_ = false;
    }
    reset_progress();
    {
      std::lock_guard lk(mu_);
      phase_ = name;
      phase_active_ = true;
      phase_virtual_ = virtual_time;
      phase_started_ = now();
      last_progress_wall_.store(phase_started_, std::memory_order_relaxed);
      max_gap_wall_ = 0.0;
      watchdog_.phase_reset();
    }
    emit("phase", /*wall_fields=*/true, [&](JsonWriter& w) {
      w.key("event").value("begin");
      w.key("phase").value(name);
      w.key("mode").value(virtual_time ? "virtual" : "wall");
      w.key("ranks").value(std::int64_t{ranks});
      w.key("masters").value(std::int64_t{masters});
    });
  }

  void phase_end(const std::string& name, double seconds) {
    SizeHistogram::Snapshot rt;
    double max_gap_virtual = 0.0;
    {
      std::lock_guard lk(virtual_mu_);
      rt = rt_hist_.snapshot();
      max_gap_virtual = max_gap_virtual_;
    }
    double max_gap_wall = 0.0;
    {
      std::lock_guard lk(mu_);
      phase_active_ = false;
      const double gap =
          now() - last_progress_wall_.load(std::memory_order_relaxed);
      max_gap_wall = std::max(max_gap_wall_, gap);
      watchdog_.phase_reset();
    }
    emit("phase", /*wall_fields=*/true, [&](JsonWriter& w) {
      w.key("event").value("end");
      w.key("phase").value(name);
      w.key("seconds").value(seconds);
      write_progress(w);
      w.key("max_progress_gap").begin_object();
      w.key("wall").value(max_gap_wall);
      w.key("virtual").value(max_gap_virtual);
      w.end_object();
      if (rt.count > 0) write_histogram_summary(w, "round_trip_us", rt);
    });
  }

  void progress_enqueued(std::uint64_t n) {
    enqueued_.fetch_add(n, std::memory_order_relaxed);
  }

  void progress_done(std::uint64_t n) {
    done_.fetch_add(n, std::memory_order_relaxed);
    last_progress_wall_.store(now(), std::memory_order_relaxed);
  }

  void progress_done_virtual(std::uint64_t n, double vt) {
    done_.fetch_add(n, std::memory_order_relaxed);
    last_progress_wall_.store(now(), std::memory_order_relaxed);
    std::lock_guard lk(virtual_mu_);
    const double gap = vt - last_progress_vt_;
    if (gap > 0.0) {
      max_gap_virtual_ = std::max(max_gap_virtual_, gap);
      const double limit = cfg_.virtual_stall_seconds;
      if (limit > 0.0 && gap > limit && !virtual_stall_warned_) {
        virtual_stall_warned_ = true;
        emit("warning", /*wall_fields=*/false, [&](JsonWriter& w) {
          w.key("kind").value("stall");
          w.key("mode").value("virtual");
          w.key("phase").value(phase_);
          w.key("stalled_seconds").value(gap);
          w.key("vt").value(vt);
          w.key("message")
              .value("no progress for " + std::to_string(gap) +
                     " virtual seconds (threshold " + std::to_string(limit) +
                     "s) — a straggling or dead rank is gating the round");
        });
        std::lock_guard lk2(mu_);
        ++warnings_;
        ++stalls_;
      }
      last_progress_vt_ = vt;
    }
  }

  void progress_merges(std::uint64_t n) {
    merges_.fetch_add(n, std::memory_order_relaxed);
  }

  void record_rank(int rank, const char* level, double busy, double comm,
                   double idle) {
    std::lock_guard lk(virtual_mu_);
    RankEntry& e = ranks_[rank];
    if (e.level.empty()) e.level = level;
    e.busy = busy;
    e.comm = comm;
    e.idle = idle;
  }

  void record_round_trip(double virtual_seconds) {
    rt_hist_.add(static_cast<std::uint64_t>(virtual_seconds * 1e6));
  }

  void virtual_tick(double vt) {
    std::lock_guard lk(virtual_mu_);
    if (vt < next_virtual_sample_) return;
    while (next_virtual_sample_ <= vt) {
      next_virtual_sample_ += virtual_interval();
    }
    const std::uint64_t done = done_.load(std::memory_order_relaxed);
    const std::uint64_t enq = enqueued_.load(std::memory_order_relaxed);
    const double dt = vt - prev_virtual_vt_;
    const double rate =
        dt > 0.0 ? static_cast<double>(done - prev_virtual_done_) / dt : 0.0;
    const SizeHistogram::Snapshot rt = rt_hist_.snapshot();
    emit("sample", /*wall_fields=*/false, [&](JsonWriter& w) {
      w.key("mode").value("virtual");
      w.key("phase").value(phase_);
      w.key("vt").value(vt);
      write_progress(w);
      w.key("rate").value(rate);
      if (rate > 0.0 && enq > done) {
        w.key("eta_seconds").value(static_cast<double>(enq - done) / rate);
      }
      if (rt.count > 0) write_histogram_summary(w, "round_trip_us", rt);
      w.key("ranks").begin_array();
      for (auto& [rank, e] : ranks_) {
        w.begin_object();
        w.key("rank").value(std::int64_t{rank});
        w.key("level").value(e.level);
        w.key("busy").value(e.busy - e.em_busy);
        w.key("comm").value(e.comm - e.em_comm);
        w.key("idle").value(e.idle - e.em_idle);
        w.end_object();
        e.em_busy = e.busy;
        e.em_comm = e.comm;
        e.em_idle = e.idle;
      }
      w.end_array();
    });
    {
      std::lock_guard lk2(mu_);
      ++samples_;
    }
    prev_virtual_vt_ = vt;
    prev_virtual_done_ = done;
  }

  void poll_deadline() {
    if (!fatal_.load(std::memory_order_relaxed)) return;
    std::string message;
    {
      std::lock_guard lk(mu_);
      message = fatal_message_;
    }
    throw WatchdogDeadlineExceeded(message);
  }

  [[nodiscard]] TelemetryStatus status() {
    TelemetryStatus s;
    s.enabled = on();
    std::lock_guard lk(mu_);
    if (!s.enabled && out_ == nullptr) return s;
    s.path = cfg_.path;
    s.interval = cfg_.interval;
    s.records = records_;
    s.samples = samples_;
    s.warnings = warnings_;
    s.stalls = stalls_;
    s.fatal = fatal_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  State() = default;

  [[nodiscard]] double now() const {
    const std::chrono::duration<double> d =
        std::chrono::steady_clock::now() - t0_;
    return d.count();
  }

  [[nodiscard]] double virtual_interval() const {
    return cfg_.virtual_interval > 0.0 ? cfg_.virtual_interval
                                       : cfg_.interval;
  }

  void reset_progress() {
    enqueued_.store(0, std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
    merges_.store(0, std::memory_order_relaxed);
  }

  void write_progress(JsonWriter& w) {
    w.key("progress").begin_object();
    w.key("enqueued").value(enqueued_.load(std::memory_order_relaxed));
    w.key("done").value(done_.load(std::memory_order_relaxed));
    w.key("merges").value(merges_.load(std::memory_order_relaxed));
    w.end_object();
  }

  /// Append one record: common header (type, seq, and — for wall-domain
  /// records — t/ts) plus the caller's fields, one line, flushed.
  template <typename Fill>
  void emit(const char* type, bool wall_fields, const Fill& fill) {
    std::lock_guard lk(mu_);
    if (!out_) return;
    JsonWriter w;
    w.begin_object();
    w.key("type").value(type);
    w.key("seq").value(seq_++);
    if (wall_fields) {
      w.key("t").value(now());
      w.key("ts").value(iso_timestamp());
    }
    fill(w);
    w.end_object();
    // Every append is gated by the IoEnv: a (real or injected) telemetry
    // write failure drops this record and counts it — observability loss
    // must never abort the run or alter the family output. The drop is
    // surfaced in-band as a warning record on the next healthy append.
    if (!io::io().admit_append(io::ArtifactClass::kTelemetry)) {
      io::io().count_dropped(io::ArtifactClass::kTelemetry);
      drop_warning_pending_ = true;
      return;
    }
    if (drop_warning_pending_) {
      drop_warning_pending_ = false;
      JsonWriter warn;
      warn.begin_object();
      warn.key("type").value("warning");
      warn.key("seq").value(seq_++);
      warn.key("kind").value("io_drop");
      warn.key("dropped")
          .value(io::io().dropped(io::ArtifactClass::kTelemetry));
      warn.end_object();
      std::fprintf(out_, "%s\n", warn.str().c_str());
    }
    std::fprintf(out_, "%s\n", w.str().c_str());
    std::fflush(out_);
    ++records_;
  }

  void run_sampler() {
    std::unique_lock lk(cv_mu_);
    while (!stop_.load(std::memory_order_relaxed)) {
      cv_.wait_for(lk, std::chrono::duration<double>(cfg_.interval));
      if (stop_.load(std::memory_order_relaxed)) break;
      sample_wall();
    }
  }

  void sample_wall() {
    const MetricsSnapshot snap = metrics().snapshot();
    const double t = now();
    const std::uint64_t done = done_.load(std::memory_order_relaxed);
    const std::uint64_t enq = enqueued_.load(std::memory_order_relaxed);
    const std::uint64_t rss_kb = current_rss_bytes() / 1024;
    const std::uint64_t hwm_kb = peak_rss_bytes() / 1024;

    std::string phase;
    bool phase_active = false;
    double phase_started = 0.0;
    double prev_t = 0.0;
    std::uint64_t prev_done = 0;
    bool have_prev = false;
    MetricsSnapshot prev;
    {
      std::lock_guard g(mu_);
      phase = phase_;
      phase_active = phase_active_;
      phase_started = phase_started_;
      prev_t = prev_wall_t_;
      prev_done = prev_wall_done_;
      have_prev = have_wall_prev_;
      prev = prev_metrics_;
      prev_metrics_ = snap;
      prev_wall_t_ = t;
      prev_wall_done_ = done;
      have_wall_prev_ = true;
      if (phase_active) {
        const double gap =
            t - last_progress_wall_.load(std::memory_order_relaxed);
        max_gap_wall_ = std::max(max_gap_wall_, gap);
      }
    }

    const MetricsSnapshot delta = snap.delta_since(prev);
    const double dt = have_prev ? t - prev_t : t;
    const double rate =
        dt > 0.0 ? static_cast<double>(done - prev_done) / dt : 0.0;

    emit("sample", /*wall_fields=*/true, [&](JsonWriter& w) {
      w.key("mode").value("wall");
      if (phase_active) w.key("phase").value(phase);
      w.key("rss_kb").value(rss_kb);
      w.key("hwm_kb").value(hwm_kb);
      write_progress(w);
      if (phase_active) {
        w.key("rate").value(rate);
        if (rate > 0.0 && enq > done) {
          w.key("eta_seconds").value(static_cast<double>(enq - done) / rate);
        }
      }
      w.key("counters").begin_object();
      for (const auto& [name, value] : delta.counters) {
        if (value != 0) w.key(name).value(value);
      }
      w.end_object();
    });
    {
      std::lock_guard g(mu_);
      ++samples_;
    }

    // Watchdog: stall, heartbeat-retry spikes, RSS slope.
    std::uint64_t retries = 0;
    for (const auto& [name, value] : snap.counters) {
      constexpr std::string_view kSuffix = ".link_retries";
      if (name.size() >= kSuffix.size() &&
          name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                       kSuffix) == 0) {
        retries += value;
      }
    }
    WatchdogInputs in;
    in.t = t;
    in.phase_active = phase_active;
    in.phase_started = phase_started;
    in.done = done;
    in.last_progress = last_progress_wall_.load(std::memory_order_relaxed);
    in.link_retries = retries;
    in.rss_kb = rss_kb;

    std::vector<WatchdogWarning> warns;
    {
      std::lock_guard g(mu_);
      warns = watchdog_.observe(in);
    }
    for (const WatchdogWarning& warn : warns) {
      emit("warning", /*wall_fields=*/true, [&](JsonWriter& w) {
        w.key("kind").value(warn.kind);
        w.key("mode").value("wall");
        if (phase_active) w.key("phase").value(phase);
        w.key("stalled_seconds").value(warn.stalled_seconds);
        w.key("message").value(warn.message);
      });
      std::lock_guard g(mu_);
      ++warnings_;
      if (warn.kind == "stall") ++stalls_;
    }

    // Fatal wall stall: emit once, then make poll_deadline() throw at the
    // next cooperative point.
    if (cfg_.watchdog_deadline > 0.0 && phase_active &&
        !fatal_.load(std::memory_order_relaxed)) {
      const double stalled = t - in.last_progress;
      if (stalled > cfg_.watchdog_deadline) {
        const std::string message =
            "watchdog deadline: no progress in phase " + phase + " for " +
            std::to_string(stalled) + "s (deadline " +
            std::to_string(cfg_.watchdog_deadline) + "s)";
        emit("fatal", /*wall_fields=*/true, [&](JsonWriter& w) {
          w.key("kind").value("watchdog_deadline");
          w.key("phase").value(phase);
          w.key("stalled_seconds").value(stalled);
          w.key("message").value(message);
        });
        std::lock_guard g(mu_);
        fatal_message_ = message;
        fatal_.store(true, std::memory_order_relaxed);
      }
    }
  }

  // Emission + stream/phase bookkeeping.
  std::mutex mu_;
  TelemetryConfig cfg_;
  std::FILE* out_ = nullptr;
  std::uint64_t seq_ = 0;
  std::uint64_t records_ = 0, samples_ = 0, warnings_ = 0, stalls_ = 0;
  bool drop_warning_pending_ = false;
  std::chrono::steady_clock::time_point t0_{};
  std::string phase_;
  bool phase_active_ = false;
  bool phase_virtual_ = false;
  double phase_started_ = 0.0;
  double max_gap_wall_ = 0.0;
  WatchdogPolicy watchdog_{WatchdogLimits{}};
  MetricsSnapshot prev_metrics_;
  double prev_wall_t_ = 0.0;
  std::uint64_t prev_wall_done_ = 0;
  bool have_wall_prev_ = false;
  std::string fatal_message_;

  // Hot-path flags and counters (any thread).
  std::atomic<bool> enabled_{false};
  std::atomic<bool> fatal_{false};
  std::atomic<std::uint64_t> enqueued_{0}, done_{0}, merges_{0};
  std::atomic<double> last_progress_wall_{0.0};

  // Virtual sampling domain (clock-owning threads).
  std::mutex virtual_mu_;
  std::map<int, RankEntry> ranks_;
  SizeHistogram rt_hist_;
  double next_virtual_sample_ = 0.0;
  double prev_virtual_vt_ = 0.0;
  std::uint64_t prev_virtual_done_ = 0;
  double last_progress_vt_ = 0.0;
  double max_gap_virtual_ = 0.0;
  bool virtual_stall_warned_ = false;

  // Sampler thread.
  std::thread sampler_;
  std::mutex cv_mu_;
  std::condition_variable cv_;
  std::atomic<bool> stop_{false};
};

}  // namespace

void enable(const TelemetryConfig& config) {
  State::instance().enable(config);
}
void disable() { State::instance().disable(); }
bool enabled() { return State::instance().on(); }

void phase_begin(const std::string& name, bool virtual_time, int ranks,
                 int masters) {
  if (!enabled()) return;
  State::instance().phase_begin(name, virtual_time, ranks, masters);
}
void phase_end(const std::string& name, double seconds) {
  if (!enabled()) return;
  State::instance().phase_end(name, seconds);
}

void progress_enqueued(std::uint64_t n) {
  if (!enabled()) return;
  State::instance().progress_enqueued(n);
}
void progress_done(std::uint64_t n) {
  if (!enabled()) return;
  State::instance().progress_done(n);
}
void progress_done_virtual(std::uint64_t n, double virtual_now) {
  if (!enabled()) return;
  State::instance().progress_done_virtual(n, virtual_now);
}
void progress_merges(std::uint64_t n) {
  if (!enabled()) return;
  State::instance().progress_merges(n);
}

void record_rank(int rank, const char* level, double busy, double comm,
                 double idle) {
  if (!enabled()) return;
  State::instance().record_rank(rank, level, busy, comm, idle);
}
void record_round_trip(double virtual_seconds) {
  if (!enabled()) return;
  State::instance().record_round_trip(virtual_seconds);
}
void virtual_tick(double virtual_now) {
  if (!enabled()) return;
  State::instance().virtual_tick(virtual_now);
}

void poll_deadline() {
  if (!enabled()) return;
  State::instance().poll_deadline();
}

TelemetryStatus status() { return State::instance().status(); }

// ---------------------------------------------------------------------------

double WatchdogPolicy::stalled_seconds(const WatchdogInputs& in) const {
  if (!in.phase_active) return 0.0;
  return in.t - std::max(in.last_progress, in.phase_started);
}

void WatchdogPolicy::phase_reset() {
  stall_warned_ = false;
  rss_warned_ = false;
  rss_history_.clear();
}

std::vector<WatchdogWarning> WatchdogPolicy::observe(
    const WatchdogInputs& in) {
  std::vector<WatchdogWarning> out;

  // Stall: one warning per no-progress episode; progress re-arms it.
  const double stalled = stalled_seconds(in);
  if (in.phase_active) {
    if (stalled > limits_.stall_seconds) {
      if (!stall_warned_) {
        stall_warned_ = true;
        out.push_back(WatchdogWarning{
            "stall",
            "no progress for " + std::to_string(stalled) +
                "s (threshold " + std::to_string(limits_.stall_seconds) +
                "s)",
            stalled});
      }
    } else {
      stall_warned_ = false;
    }
  }

  // Heartbeat-retry spike: delta vs the previous observation.
  if (have_retries_ && in.link_retries >= last_retries_) {
    const std::uint64_t spike = in.link_retries - last_retries_;
    if (spike >= limits_.retry_spike) {
      out.push_back(WatchdogWarning{
          "heartbeat_retries",
          std::to_string(spike) +
              " heartbeat-retry timeouts in one sampling window "
              "(threshold " +
              std::to_string(limits_.retry_spike) +
              ") — links or ranks are struggling",
          0.0});
    }
  }
  last_retries_ = in.link_retries;
  have_retries_ = true;

  // RSS slope: rss_window monotonically increasing samples whose
  // last/first ratio exceeds the growth factor, once per phase.
  rss_history_.push_back(in.rss_kb);
  if (rss_history_.size() > limits_.rss_window) {
    rss_history_.erase(rss_history_.begin());
  }
  if (!rss_warned_ && rss_history_.size() == limits_.rss_window &&
      rss_history_.front() > 0) {
    bool monotone = true;
    for (std::size_t i = 1; i < rss_history_.size(); ++i) {
      if (rss_history_[i] < rss_history_[i - 1]) {
        monotone = false;
        break;
      }
    }
    const double ratio = static_cast<double>(rss_history_.back()) /
                         static_cast<double>(rss_history_.front());
    if (monotone && ratio > limits_.rss_growth_factor) {
      rss_warned_ = true;
      out.push_back(WatchdogWarning{
          "rss_growth",
          "RSS grew monotonically from " +
              std::to_string(rss_history_.front()) + " kB to " +
              std::to_string(rss_history_.back()) + " kB over the last " +
              std::to_string(limits_.rss_window) +
              " samples (factor " + std::to_string(ratio) + ")",
          0.0});
    }
  }
  return out;
}

}  // namespace pclust::util::telemetry
