#include "pclust/util/memgov.hpp"

#include <algorithm>

#include "pclust/util/log.hpp"
#include "pclust/util/metrics.hpp"
#include "pclust/util/strings.hpp"

namespace pclust::util {
namespace {

constexpr double kHardExceedFactor = 2.0;
constexpr double kGrainPressure = 0.70;
constexpr double kGrainQuarterPressure = 0.95;
constexpr double kStreamPressure = 0.50;
constexpr double kSpillPressure = 0.70;
constexpr std::size_t kGrainFloor = 8;

std::string format_bytes(std::uint64_t bytes) {
  if (bytes >= 1024ull * 1024ull * 1024ull) {
    return format("%.2f GiB", static_cast<double>(bytes) / (1024.0 * 1024.0 * 1024.0));
  }
  if (bytes >= 1024ull * 1024ull) {
    return format("%.2f MiB", static_cast<double>(bytes) / (1024.0 * 1024.0));
  }
  return format("%llu B", static_cast<unsigned long long>(bytes));
}

}  // namespace

MemoryGovernor& MemoryGovernor::instance() {
  static MemoryGovernor env;
  return env;
}

MemoryGovernor& governor() { return MemoryGovernor::instance(); }

void MemoryGovernor::configure(std::uint64_t budget_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_ = budget_bytes;
  ledger_ = 0;
  high_water_ = 0;
  hard_exceeded_ = false;
  phase_ = "run";
  log_.clear();
  if (budget_ > 0) {
    log_line(LogLevel::kInfo, format("memgov: budget %s", format_bytes(budget_).c_str()));
  }
}

std::uint64_t MemoryGovernor::budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_;
}

void MemoryGovernor::set_phase(std::string_view phase) {
  std::lock_guard<std::mutex> lock(mu_);
  phase_.assign(phase);
}

void MemoryGovernor::charge(std::string_view what, std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  ledger_ += bytes;
  high_water_ = std::max(high_water_, ledger_);
  metrics().gauge("memgov.high_water_bytes").set(high_water_);
  if (budget_ > 0 && !hard_exceeded_ &&
      static_cast<double>(ledger_) >
          kHardExceedFactor * static_cast<double>(budget_)) {
    hard_exceeded_ = true;
    log_line(LogLevel::kWarn, format("memgov: ledger %s exceeds 2x budget %s after "
                         "charging %s for %.*s",
                         format_bytes(ledger_).c_str(),
                         format_bytes(budget_).c_str(),
                         format_bytes(bytes).c_str(),
                         static_cast<int>(what.size()), what.data()));
  }
}

void MemoryGovernor::release(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  ledger_ = bytes > ledger_ ? 0 : ledger_ - bytes;
}

std::uint64_t MemoryGovernor::ledger() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_;
}

std::uint64_t MemoryGovernor::high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

double MemoryGovernor::pressure() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (budget_ == 0) return 0.0;
  return static_cast<double>(ledger_) / static_cast<double>(budget_);
}

std::size_t MemoryGovernor::shrink(std::size_t normal, const char* action) {
  std::lock_guard<std::mutex> lock(mu_);
  if (budget_ == 0 || normal <= kGrainFloor) return normal;
  const double p =
      static_cast<double>(ledger_) / static_cast<double>(budget_);
  std::size_t shrunk = normal;
  if (p >= kGrainQuarterPressure) {
    shrunk = std::max(kGrainFloor, normal / 4);
  } else if (p >= kGrainPressure) {
    shrunk = std::max(kGrainFloor, normal / 2);
  }
  if (shrunk != normal) {
    const std::string detail =
        format("%zu -> %zu at pressure %.2f", normal, shrunk, p);
    bool seen = false;
    for (const auto& e : log_) {
      if (e.phase == phase_ && e.action == action) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      log_.push_back({phase_, action, detail});
      metrics().counter("memgov.degradations").add(1);
      log_line(LogLevel::kInfo,
               format("memgov: %s %s (%s)", phase_.c_str(), action,
                      detail.c_str()));
    }
  }
  return shrunk;
}

std::size_t MemoryGovernor::recommend_grain(std::size_t normal) {
  return shrink(normal, "shrink-grain");
}

std::size_t MemoryGovernor::recommend_batch(std::size_t normal) {
  return shrink(normal, "shrink-batch");
}

bool MemoryGovernor::should_stream(std::string_view phase) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (budget_ == 0) return false;
    const double p =
        static_cast<double>(ledger_) / static_cast<double>(budget_);
    if (p < kStreamPressure) return false;
  }
  note_degradation(phase, "stream", "materialization replaced by streaming");
  return true;
}

bool MemoryGovernor::should_spill(std::string_view phase) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (budget_ == 0) return false;
    const double p =
        static_cast<double>(ledger_) / static_cast<double>(budget_);
    if (p < kSpillPressure) return false;
  }
  note_degradation(phase, "spill", "cold table spilled to temp file");
  return true;
}

void MemoryGovernor::note_degradation(std::string_view phase,
                                      std::string_view action,
                                      std::string_view detail) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : log_) {
    if (e.phase == phase && e.action == action) return;
  }
  DegradationEvent event;
  event.phase.assign(phase);
  event.action.assign(action);
  event.detail.assign(detail);
  log_.push_back(std::move(event));
  metrics().counter("memgov.degradations").add(1);
  log_line(LogLevel::kInfo, format("memgov: %.*s %.*s (%.*s)",
                       static_cast<int>(phase.size()), phase.data(),
                       static_cast<int>(action.size()), action.data(),
                       static_cast<int>(detail.size()), detail.data()));
}

std::vector<DegradationEvent> MemoryGovernor::degradation_log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

bool MemoryGovernor::hard_exceeded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hard_exceeded_;
}

void MemoryGovernor::check_phase_boundary(std::string_view phase,
                                          bool resumable) const {
  std::uint64_t ledger;
  std::uint64_t budget;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!hard_exceeded_) return;
    ledger = ledger_;
    budget = budget_;
  }
  const char* guidance =
      resumable ? "checkpoints are flushed; re-run with --resume and a "
                  "larger --mem-budget"
                : "re-run with a larger --mem-budget (or --checkpoint-dir "
                  "to make the run resumable)";
  throw MemoryBudgetExceeded(
      format("memory budget exceeded after phase %.*s: ledger %s > 2x "
             "budget %s despite degradation; %s",
             static_cast<int>(phase.size()), phase.data(),
             format_bytes(ledger).c_str(), format_bytes(budget).c_str(),
             guidance));
}

void MemoryCharge::add(std::string_view what, std::uint64_t bytes) {
  if (bytes == 0) return;
  governor().charge(what, bytes);
  bytes_ += bytes;
}

void MemoryCharge::reset() {
  if (bytes_ > 0) {
    governor().release(bytes_);
    bytes_ = 0;
  }
}

}  // namespace pclust::util
