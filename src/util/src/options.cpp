#include "pclust/util/options.hpp"

#include <sstream>
#include <stdexcept>

namespace pclust::util {

Options& Options::define(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  specs_[name] = Spec{default_value, help, /*is_flag=*/false};
  return *this;
}

Options& Options::define_flag(const std::string& name,
                              const std::string& help) {
  specs_[name] = Spec{"false", help, /*is_flag=*/true};
  return *this;
}

void Options::parse(int argc, const char* const* argv) {
  bool options_done = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (options_done || arg.rfind("--", 0) != 0) {
      positionals_.push_back(std::move(arg));
      continue;
    }
    if (arg == "--") {
      options_done = true;
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    if (name == "help") {
      help_requested_ = true;
      continue;
    }
    auto it = specs_.find(name);
    if (it == specs_.end()) {
      throw std::invalid_argument("unknown option --" + name);
    }
    if (it->second.is_flag) {
      values_[name] = has_value ? value : "true";
    } else if (has_value) {
      values_[name] = value;
    } else {
      if (i + 1 >= argc) {
        throw std::invalid_argument("option --" + name + " expects a value");
      }
      values_[name] = argv[++i];
    }
  }
}

std::string Options::get(const std::string& name) const {
  if (auto it = values_.find(name); it != values_.end()) return it->second;
  if (auto it = specs_.find(name); it != specs_.end()) {
    return it->second.default_value;
  }
  throw std::invalid_argument("undeclared option --" + name);
}

std::int64_t Options::get_int(const std::string& name) const {
  const std::string v = get(name);
  std::size_t pos = 0;
  const std::int64_t out = std::stoll(v, &pos);
  if (pos != v.size()) {
    throw std::invalid_argument("option --" + name + ": bad integer '" + v +
                                "'");
  }
  return out;
}

double Options::get_double(const std::string& name) const {
  const std::string v = get(name);
  std::size_t pos = 0;
  const double out = std::stod(v, &pos);
  if (pos != v.size()) {
    throw std::invalid_argument("option --" + name + ": bad number '" + v +
                                "'");
  }
  return out;
}

bool Options::get_flag(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes";
}

std::string Options::usage(const std::string& program,
                           const std::string& summary) const {
  std::ostringstream ss;
  ss << summary << "\n\nUsage: " << program << " [options]\n\nOptions:\n";
  for (const auto& [name, spec] : specs_) {
    ss << "  --" << name;
    if (!spec.is_flag) ss << " <value>";
    ss << "\n      " << spec.help;
    if (!spec.is_flag) ss << " (default: " << spec.default_value << ")";
    ss << "\n";
  }
  ss << "  --help\n      Show this message.\n";
  return ss.str();
}

}  // namespace pclust::util
