// Wall-clock timing helpers for benches and phase reports.
#pragma once

#include <chrono>
#include <cstdint>

namespace pclust::util {

/// Monotonic stopwatch. start() on construction; elapsed_* reads do not stop it.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] std::int64_t elapsed_ms() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across multiple start/stop intervals (e.g. per phase).
class IntervalTimer {
 public:
  void start() {
    running_ = true;
    begin_ = Clock::now();
  }

  void stop() {
    if (!running_) return;
    total_ += Clock::now() - begin_;
    running_ = false;
  }

  [[nodiscard]] double total_seconds() const {
    auto t = total_;
    if (running_) t += Clock::now() - begin_;
    return std::chrono::duration<double>(t).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::duration total_{};
  Clock::time_point begin_{};
  bool running_ = false;
};

}  // namespace pclust::util
