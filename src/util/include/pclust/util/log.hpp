// Minimal leveled logger.
//
// pclust is a library first; logging defaults to WARN so that embedding
// applications stay quiet, while the CLI tools and benches raise it to INFO.
//
// Each line carries a UTC ISO-8601 timestamp. If the environment variable
// PCLUST_LOG_FILE names a writable path at the time of the first log line,
// lines are appended there as well as to stderr; each sink still receives
// the line as one atomic write. An unwritable path falls back to
// stderr-only with a single warning line (never a silent loss); the sink
// is opened through the IoEnv, so log-sink failures are fault-injectable.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace pclust::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line (thread-safe; one atomic write per line).
void log_line(LogLevel level, std::string_view msg);

/// Where the PCLUST_LOG_FILE sink landed.
enum class LogSinkStatus {
  kUnresolved = 0,  // no log line emitted yet; the env var is still unread
  kNone,            // PCLUST_LOG_FILE unset — stderr only, by design
  kFile,            // appending to the named file (plus stderr)
  kFallback,        // the named path was unwritable — stderr only, warned
};

[[nodiscard]] LogSinkStatus log_sink_status();

/// Close any open sink and re-resolve PCLUST_LOG_FILE from the current
/// environment. Mainly for tests and long-lived embedders whose
/// environment changes; normal callers never need it.
LogSinkStatus refresh_log_sink();

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, ss_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream ss_;
};

}  // namespace detail

}  // namespace pclust::util

#define PCLUST_LOG(level)                                  \
  if (static_cast<int>(level) <                            \
      static_cast<int>(::pclust::util::log_level())) {     \
  } else                                                   \
    ::pclust::util::detail::LogStream(level)

#define PCLUST_DEBUG PCLUST_LOG(::pclust::util::LogLevel::kDebug)
#define PCLUST_INFO PCLUST_LOG(::pclust::util::LogLevel::kInfo)
#define PCLUST_WARN PCLUST_LOG(::pclust::util::LogLevel::kWarn)
#define PCLUST_ERROR PCLUST_LOG(::pclust::util::LogLevel::kError)
