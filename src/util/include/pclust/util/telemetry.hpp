// Streaming run telemetry: a process-wide sampler that appends JSONL
// records — metrics-registry deltas, RSS, per-phase progress/ETA, per-rank
// busy/comm/idle deltas, protocol round-trip latency percentiles — to a
// file while the pipeline runs, plus a stall/anomaly watchdog.
//
// Two time domains feed one stream:
//
//   WALL    a background sampler thread wakes every `interval` seconds and
//           emits `sample` records (mode "wall"): counter deltas since the
//           previous wall sample, VmRSS/high-water, phase progress, and an
//           ETA from the observed candidate throughput. The watchdog runs
//           here too: no-progress windows, heartbeat-retry spikes, and
//           monotone RSS growth become `warning` records.
//
//   VIRTUAL during a simulated phase the authoritative rank (flat master /
//           hierarchical root) ticks the sampler once per protocol round
//           with its virtual clock; crossing a virtual-interval boundary
//           emits a `sample` record (mode "virtual") whose content is a
//           pure function of the communication pattern — virtual time,
//           progress, per-rank busy/comm/idle deltas, round-trip
//           percentiles — and carries NO wall-clock fields, so two runs of
//           the same workload produce byte-identical virtual samples (flat
//           topology; hierarchical rank tables are updated from concurrent
//           sub-master threads, so their ordering is best-effort).
//
// The subsystem is observation-only by construction: progress counters are
// relaxed atomics, per-rank figures piggyback on protocol messages whose
// virtual wire cost is a declared constant, and nothing feeds back into
// scheduling — families output is bit-identical with telemetry on or off.
// When disabled every hook is a single relaxed atomic load.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace pclust::util::telemetry {

struct TelemetryConfig {
  /// JSONL output path (truncated at enable).
  std::string path;
  /// Provenance: the producing command, recorded in the `start` record.
  std::string command;
  /// Wall seconds between sampler wakeups (also the virtual-domain
  /// sampling interval unless `virtual_interval` is set).
  double interval = 1.0;
  /// Virtual seconds between in-phase samples; 0 = use `interval`.
  double virtual_interval = 0.0;
  /// Wall no-progress window that trips a stall warning;
  /// 0 = derived as max(10 * interval, 10s).
  double wall_stall_seconds = 0.0;
  /// Virtual no-progress window that trips a (deterministic) stall
  /// warning, checked retroactively when progress arrives; 0 = off.
  /// Calibrate against the `max_progress_gap` of a healthy run.
  double virtual_stall_seconds = 0.0;
  /// Wall stall beyond this emits a `fatal` record and makes the next
  /// poll_deadline() throw; 0 = never fatal. Cooperative: polled at phase
  /// boundaries and serial progress points — combine with the protocol's
  /// --phase-deadline to also kill hung simulated phases.
  double watchdog_deadline = 0.0;
  /// Heartbeat-retry delta within one sampler window that trips a
  /// `heartbeat_retries` warning.
  std::uint64_t retry_spike_threshold = 4;
  /// Monotone RSS growth factor across the watchdog's trailing window
  /// that trips an `rss_growth` warning.
  double rss_growth_factor = 1.5;
};

/// Thrown by poll_deadline() after the watchdog emitted a `fatal` record
/// (wall stall exceeded `watchdog_deadline`). Maps to exit code 1.
class WatchdogDeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Start streaming: truncate `config.path`, write the `start` record, and
/// launch the wall sampler thread. Throws std::runtime_error when the file
/// cannot be opened. Enabling twice restarts the stream.
void enable(const TelemetryConfig& config);

/// Write the `end` record, stop the sampler, and close the stream. Safe to
/// call when disabled (no-op). Also invoked from the process-exit path of
/// the CLI commands, so a crashed run still ends with a parseable file.
void disable();

/// Near-zero-cost check (one relaxed atomic load), safe from any thread.
[[nodiscard]] bool enabled();

/// Mark a pipeline phase. `virtual_time` phases additionally open the
/// virtual sampling domain (see file comment). Resets the per-phase
/// progress counters and round-trip histogram. Call from the orchestrating
/// thread only (no engine threads may be live).
void phase_begin(const std::string& name, bool virtual_time, int ranks,
                 int masters);
/// Close the current phase: emits the `phase`/`end` record carrying the
/// phase seconds, final progress totals, and the maximum observed
/// progress gap per domain (the empirical basis for stall thresholds).
void phase_end(const std::string& name, double seconds);

/// Progress counters for the current phase. Enqueued counts admitted
/// candidates (the ETA denominator), done counts resolved ones, merges
/// counts applied state changes (e.g. union events). Safe from any thread.
void progress_enqueued(std::uint64_t n = 1);
void progress_done(std::uint64_t n = 1);
/// Like progress_done but stamps the virtual clock, feeding the
/// deterministic virtual stall check. Call from clock-owning threads.
void progress_done_virtual(std::uint64_t n, double virtual_now);
void progress_merges(std::uint64_t n = 1);

/// Update one rank's cumulative busy/comm/idle (virtual seconds). Samples
/// emit deltas against the previous sample. Safe from any thread.
void record_rank(int rank, const char* level, double busy, double comm,
                 double idle);

/// Fold one protocol round-trip (dispatch -> matching ack, virtual
/// seconds) into the per-phase latency histogram.
void record_round_trip(double virtual_seconds);

/// Advance the virtual sampling domain; emits `sample` records at
/// virtual-interval crossings. Call once per protocol round from the
/// authoritative rank's thread only.
void virtual_tick(double virtual_now);

/// Throw WatchdogDeadlineExceeded if the watchdog flagged a fatal stall.
/// Call only from the orchestrating (main) thread.
void poll_deadline();

/// Point-in-time stream counters, e.g. for the run report's provenance
/// section. All zero when disabled.
struct TelemetryStatus {
  bool enabled = false;
  std::string path;
  double interval = 0.0;
  std::uint64_t records = 0;
  std::uint64_t samples = 0;
  std::uint64_t warnings = 0;
  std::uint64_t stalls = 0;
  bool fatal = false;
};
[[nodiscard]] TelemetryStatus status();

// ---------------------------------------------------------------------------
// Watchdog heuristics as a pure, deterministically testable policy. The
// sampler thread feeds it one observation per wakeup; it answers with the
// warnings to emit. No clocks, no IO.

struct WatchdogInputs {
  double t = 0.0;              ///< seconds since stream start
  bool phase_active = false;
  double phase_started = 0.0;  ///< t at phase begin
  std::uint64_t done = 0;      ///< cumulative phase progress
  double last_progress = 0.0;  ///< t of the latest done increment
  std::uint64_t link_retries = 0;  ///< cumulative heartbeat retries
  std::uint64_t rss_kb = 0;
};

struct WatchdogWarning {
  std::string kind;  ///< "stall" | "heartbeat_retries" | "rss_growth"
  std::string message;
  double stalled_seconds = 0.0;  ///< stall warnings only
};

struct WatchdogLimits {
  double stall_seconds = 10.0;
  std::uint64_t retry_spike = 4;
  double rss_growth_factor = 1.5;
  std::size_t rss_window = 5;  ///< trailing samples for the slope check
};

class WatchdogPolicy {
 public:
  explicit WatchdogPolicy(const WatchdogLimits& limits) : limits_(limits) {}

  /// One observation; returns the warnings this window produced. A stall
  /// episode warns once and re-arms when progress resumes; retry spikes
  /// compare against the previous observation; RSS growth warns once per
  /// phase on `rss_window` monotonically increasing samples whose
  /// last/first ratio exceeds the factor.
  std::vector<WatchdogWarning> observe(const WatchdogInputs& in);

  [[nodiscard]] bool stalled() const { return stall_warned_; }
  /// Seconds the current stall episode has lasted (0 when not stalled).
  [[nodiscard]] double stalled_seconds(const WatchdogInputs& in) const;

  /// Re-arm per-phase state (stall episode, RSS baseline) at phase edges.
  void phase_reset();

 private:
  WatchdogLimits limits_;
  bool stall_warned_ = false;
  std::uint64_t last_retries_ = 0;
  bool have_retries_ = false;
  bool rss_warned_ = false;
  std::vector<std::uint64_t> rss_history_;
};

}  // namespace pclust::util::telemetry
