// Versioned, CRC-checked binary checkpoints for phase-level resume.
//
// On-disk layout (little-endian):
//
//   [magic 'PCKP'][u32 format_version][u32 phase_tag][u32 payload_version]
//   [u64 payload_size][u32 payload_crc32][payload bytes]
//
// The phase tag identifies WHAT was checkpointed (caller-chosen constant),
// the payload version lets a phase evolve its encoding, and the CRC covers
// the payload so truncated or corrupted files are rejected instead of
// silently resumed from. Writes go to a sibling ".tmp" file first and are
// renamed into place, so a crash mid-write never clobbers the previous
// good checkpoint.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace pclust::util {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of @p data.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size);

/// A checkpoint file that cannot be read back: missing, short, bad magic,
/// unsupported version, wrong phase tag, or CRC mismatch.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only payload encoder with fixed-width little-endian primitives.
class CheckpointWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);
  /// Length-prefixed byte string.
  void str(std::string_view s);
  void u8_vec(const std::vector<std::uint8_t>& v);
  void u32_vec(const std::vector<std::uint32_t>& v);
  void u64_vec(const std::vector<std::uint64_t>& v);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Sequential payload decoder; throws CheckpointError on any overrun.
class CheckpointReader {
 public:
  explicit CheckpointReader(std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<std::uint8_t> u8_vec();
  [[nodiscard]] std::vector<std::uint32_t> u32_vec();
  [[nodiscard]] std::vector<std::uint64_t> u64_vec();

  /// True once every payload byte has been consumed.
  [[nodiscard]] bool exhausted() const { return pos_ == bytes_.size(); }

 private:
  void need(std::size_t n) const;

  std::vector<std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

/// Atomically write @p payload as a checkpoint file (tmp file + rename).
/// With @p keep_previous, an existing file at @p path is first rotated to
/// the backup generation ("<path>.1", the last-good checkpoint) so a later
/// corruption of the primary can roll back instead of recomputing. The
/// write + rename is retried with exponential backoff on transient I/O
/// failure. Throws CheckpointError once retries are exhausted.
void write_checkpoint(const std::filesystem::path& path,
                      std::uint32_t phase_tag, std::uint32_t payload_version,
                      const CheckpointWriter& payload,
                      bool keep_previous = false);

/// The backup-generation sibling of @p path ("<path>.1").
[[nodiscard]] std::filesystem::path checkpoint_backup_path(
    const std::filesystem::path& path);

/// Where quarantine_checkpoint moves a damaged @p path ("<path>.bad").
[[nodiscard]] std::filesystem::path checkpoint_quarantine_path(
    const std::filesystem::path& path);

/// Move an unreadable checkpoint aside to "<path>.bad" (overwriting any
/// earlier quarantine) so it can be inspected but never resumed from.
/// Best-effort: returns the quarantine path, or an empty path if the
/// rename failed (the file is removed instead in that case).
std::filesystem::path quarantine_checkpoint(const std::filesystem::path& path);

/// Outcome of recover_checkpoint: the payload reader (absent when neither
/// generation is readable), where it came from, and human-readable notes
/// describing any quarantine / rollback taken along the way.
struct CheckpointRecovery {
  std::optional<CheckpointReader> reader;
  std::uint32_t payload_version = 0;
  bool from_backup = false;
  std::vector<std::string> events;
};

/// Fault-tolerant checkpoint open: try the primary file; if it is corrupt,
/// truncated, or otherwise unreadable, quarantine it and roll back to the
/// last-good backup generation ("<path>.1") when one validates. Unlike
/// read_checkpoint this never throws for a damaged file — an empty
/// CheckpointRecovery::reader means "recompute".
[[nodiscard]] CheckpointRecovery recover_checkpoint(
    const std::filesystem::path& path, std::uint32_t phase_tag,
    std::uint32_t max_payload_version);

/// Read and validate a checkpoint. Throws CheckpointError if the file is
/// missing/short/corrupted, carries the wrong magic, format version, or
/// phase tag, or if payload_version exceeds @p max_payload_version.
/// On success returns a reader over the payload; @p payload_version_out
/// (optional) receives the stored payload version.
[[nodiscard]] CheckpointReader read_checkpoint(
    const std::filesystem::path& path, std::uint32_t phase_tag,
    std::uint32_t max_payload_version,
    std::uint32_t* payload_version_out = nullptr);

/// True if @p path exists and read_checkpoint would accept it.
[[nodiscard]] bool checkpoint_valid(const std::filesystem::path& path,
                                    std::uint32_t phase_tag,
                                    std::uint32_t max_payload_version);

}  // namespace pclust::util
