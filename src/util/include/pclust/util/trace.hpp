// Phase/span tracer emitting Chrome trace-event JSON (the format Perfetto
// and chrome://tracing load natively).
//
// The trace is organised as one "process" per timeline:
//   - pid 0, "pipeline": wall-clock spans of the serial phases (timestamps
//     are microseconds since enable()).
//   - one pid per simulated phase ("sim:rr", "sim:ccd", ...): spans and
//     instants stamped with mpsim VIRTUAL time (simulated microseconds),
//     tid = simulated rank. Virtual time is a pure function of the
//     communication pattern, so these events are DETERMINISTIC across runs
//     — including fault-injected ones — which the tests rely on.
//
// Events are buffered in memory (a run traces thousands of spans, not
// millions) and sorted on render, so the emitted JSON is deterministic for
// deterministic timestamps regardless of thread interleaving. All calls are
// no-ops while tracing is disabled; the enabled() gate is one relaxed
// atomic load.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>

namespace pclust::util::trace {

/// True while a trace is being collected.
[[nodiscard]] bool enabled() noexcept;

/// Start collecting (clears any previous buffer; wall epoch = now).
void enable();

/// Stop collecting and drop all buffered events.
void disable();

/// Microseconds of wall clock since enable() (0 when disabled).
[[nodiscard]] double now_us() noexcept;

/// Register a process timeline; returns its pid and emits the Perfetto
/// process_name metadata. Also makes it current (see current_pid) until the
/// next begin_process/set_current_pid. pid 0 ("pipeline") always exists.
int begin_process(std::string_view name);

/// The pid instrumented library code (e.g. the PaCE engine) should emit
/// into; set by the phase driver around each simulated phase.
[[nodiscard]] int current_pid() noexcept;
void set_current_pid(int pid) noexcept;

/// Perfetto thread_name metadata for (pid, tid).
void name_thread(int pid, int tid, std::string_view name);

/// Complete span ("ph":"X"): [ts_us, ts_us + dur_us] on (pid, tid).
void complete(int pid, int tid, std::string_view name, std::string_view cat,
              double ts_us, double dur_us);

/// Instant event ("ph":"i", thread scope) at ts_us on (pid, tid).
void instant(int pid, int tid, std::string_view name, std::string_view cat,
             double ts_us);

/// Render the buffered events as a Chrome trace-event JSON document.
/// Deterministic: events are sorted by (pid, tid, ts, name, dur).
[[nodiscard]] std::string render_json();

/// Render and write to @p path. Throws std::runtime_error on I/O failure.
void write_file(const std::filesystem::path& path);

/// RAII wall-clock span on the pipeline timeline (pid 0, tid 0). Safe to
/// construct when tracing is disabled (records nothing).
class WallSpan {
 public:
  explicit WallSpan(std::string name, std::string cat = "phase");
  WallSpan(const WallSpan&) = delete;
  WallSpan& operator=(const WallSpan&) = delete;
  ~WallSpan();

 private:
  std::string name_;
  std::string cat_;
  double start_us_ = 0.0;
  bool active_ = false;
};

}  // namespace pclust::util::trace
