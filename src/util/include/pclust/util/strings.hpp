// Tiny string helpers (no locale, ASCII-only, deterministic).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pclust::util {

std::vector<std::string> split(std::string_view text, char sep);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);

/// Format n with thousands separators ("1,234,567") for report tables.
std::string with_commas(long long n);

/// Format seconds as "1h 23m 45s" / "12m 3s" / "4.56s" like the paper's prose.
std::string format_duration(double seconds);

/// Printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace pclust::util
