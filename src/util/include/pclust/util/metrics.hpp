// Process-wide metrics registry: cheap sharded counters, gauges, and
// power-of-two histograms for the paper's quantitative claims (alignments
// skipped by the cluster filter, pair-generation volume, healing events,
// checkpoint bytes, ...).
//
// Design:
//  - Writers touch one cache-line-padded atomic slot selected by a
//    thread-local shard index (assigned round-robin on first use per
//    thread, so every exec::Pool lane lands on its own slot at the common
//    pool sizes). A write is one relaxed fetch_add — near-zero overhead
//    whether or not anyone ever reads the registry.
//  - Handles returned by counter()/gauge()/histogram() are stable for the
//    process lifetime; call sites may cache them (including in function
//    local statics). Registration takes a mutex, writes never do.
//  - Reads (value()/snapshot()) aggregate across shards; they are monotone
//    but not atomic with respect to concurrent writers, which is fine for
//    reporting.
//  - reset() zeroes every registered metric in place (handles stay valid);
//    the CLI calls it before a run so a report covers exactly that run.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace pclust::util {

class JsonWriter;

namespace metrics_detail {

inline constexpr unsigned kShards = 16;  // power of two

struct alignas(64) Slot {
  std::atomic<std::uint64_t> v{0};
};

/// Thread-local shard index in [0, kShards).
unsigned shard_index() noexcept;

}  // namespace metrics_detail

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    slots_[metrics_detail::shard_index()].v.fetch_add(
        delta, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept;
  void reset() noexcept;

 private:
  std::array<metrics_detail::Slot, metrics_detail::kShards> slots_;
};

/// Last-written value plus the high-water mark since reset (e.g. master
/// queue depth). set() is safe from any thread.
class Gauge {
 public:
  void set(std::uint64_t v) noexcept;

  [[nodiscard]] std::uint64_t last() const noexcept {
    return last_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> last_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Histogram over non-negative integer sizes with power-of-two buckets:
/// bucket b counts values whose bit width is b (bucket 0 holds the value 0).
/// Constant memory, lock-free add, exact count/sum/max.
class SizeHistogram {
 public:
  static constexpr unsigned kBuckets = 65;

  void add(std::uint64_t value) noexcept;

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    /// Upper bound of the bucket containing the p-th percentile (p in
    /// [0, 100]); 0 when empty. An order-of-magnitude answer by design.
    [[nodiscard]] std::uint64_t percentile(double p) const;
    [[nodiscard]] double mean() const {
      return count ? static_cast<double>(sum) / static_cast<double>(count)
                   : 0.0;
    }
  };

  [[nodiscard]] Snapshot snapshot() const noexcept;
  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  struct GaugeValue {
    std::uint64_t last = 0;
    std::uint64_t max = 0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeValue> gauges;
  std::map<std::string, SizeHistogram::Snapshot> histograms;

  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }

  /// What happened between @p prev and this snapshot: counters and
  /// histogram counts/sums/buckets subtract (clamped at zero, so a
  /// registry reset between the two snapshots degrades to this snapshot's
  /// absolute values rather than wrapping); gauges keep their current
  /// last/max (a gauge delta has no meaning). Metrics absent from @p prev
  /// are treated as previously zero. Feeds interval-sampling consumers
  /// (the telemetry stream's per-window counter deltas).
  [[nodiscard]] MetricsSnapshot delta_since(const MetricsSnapshot& prev) const;

  /// Serialize as {"counters":{...},"gauges":{...},"histograms":{...}}.
  void to_json(JsonWriter& w) const;
};

class MetricsRegistry {
 public:
  /// Find-or-create; the returned reference is stable forever.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  SizeHistogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every registered metric in place (handles stay valid).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<SizeHistogram>, std::less<>>
      histograms_;
};

/// The process-wide registry every pclust phase writes into.
MetricsRegistry& metrics();

}  // namespace pclust::util
