// Fixed-width bucket histogram, used for the Figure-5 dense-subgraph size
// distribution and assorted diagnostics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pclust::util {

/// Histogram over non-negative integer values with fixed bucket width.
/// Bucket i covers [lo + i*width, lo + (i+1)*width). Values outside
/// [lo, cap) are counted in underflow/overflow.
class Histogram {
 public:
  /// @param lo     inclusive lower bound of the first bucket
  /// @param width  bucket width (> 0)
  /// @param cap    exclusive upper bound; values >= cap go to overflow
  Histogram(std::int64_t lo, std::int64_t width, std::int64_t cap);

  void add(std::int64_t value, std::int64_t count = 1);

  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::int64_t bucket_lo(std::size_t i) const;
  [[nodiscard]] std::int64_t bucket_hi(std::size_t i) const;  // inclusive
  [[nodiscard]] std::int64_t count(std::size_t i) const { return counts_[i]; }
  [[nodiscard]] std::int64_t underflow() const { return underflow_; }
  [[nodiscard]] std::int64_t overflow() const { return overflow_; }
  [[nodiscard]] std::int64_t total() const;

  /// Inclusive upper bound of the bucket containing the p-th percentile
  /// (p in [0, 100], clamped; ceil-rank semantics). Underflowed values
  /// resolve to lo-1 and overflowed values to the rounded-up cap, so the
  /// answer stays monotone in p across the whole recorded range. Returns 0
  /// when the histogram is empty.
  [[nodiscard]] std::int64_t percentile(double p) const;

  /// Label like "5-9" for bucket i (matches the paper's Fig. 5 x-axis).
  [[nodiscard]] std::string bucket_label(std::size_t i) const;

  /// Render non-empty buckets as "label: count" lines with a bar chart.
  [[nodiscard]] std::string to_string(int bar_width = 40) const;

 private:
  std::int64_t lo_;
  std::int64_t width_;
  std::vector<std::int64_t> counts_;
  std::int64_t underflow_ = 0;
  std::int64_t overflow_ = 0;
};

}  // namespace pclust::util
