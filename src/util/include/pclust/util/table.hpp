// Plain-text table rendering for bench output — every bench prints the
// same rows/columns as the paper's table or figure series.
#pragma once

#include <string>
#include <vector>

namespace pclust::util {

/// Column-aligned ASCII table with a header row and optional title/footnotes.
class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void set_title(std::string title) { title_ = std::move(title); }
  void add_row(std::vector<std::string> row);
  void add_footnote(std::string note) { footnotes_.push_back(std::move(note)); }

  [[nodiscard]] std::string to_string() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> footnotes_;
};

}  // namespace pclust::util
