// MemoryGovernor — the --mem-budget enforcement layer.
//
// Built on util/memsize capacity accounting: the structures that dominate
// a run's footprint (suffix indexes, component graphs, shingle tables)
// charge their heap bytes into a process-wide ledger and release them when
// freed. The ledger is a pure function of the input and configuration
// (capacities, not RSS), so every decision the governor makes is
// host-independent and reproducible.
//
// Phases consult the governor at allocation decision points and degrade
// along OUTPUT-INVARIANT levers only — the bit-identity contract
// (chaos class 8: a budgeted run's families equal the unconstrained
// run's) restricts which knobs may move:
//
//   pressure >= 0.70  evaluation grains and serial batch sizes shrink
//                     (verdict order is batch-size independent by the
//                     batched-engine guarantee)
//   pressure >= 0.50  the BGG stage streams component graphs one at a
//                     time instead of materializing all of them
//   pressure >= 0.70  the shingle pass spills its cold element table to a
//                     temp file through the IoEnv between passes
//
// Every lever taken is recorded as a DegradationEvent; the run report's
// `degradation` section is assembled from this log. When the ledger
// exceeds TWICE the budget despite degradation, the situation is
// hopeless: the pipeline throws MemoryBudgetExceeded at the next phase
// boundary — after that phase's checkpoint is flushed — so the run exits
// structured and `--resume` can pick up where it stopped.
#pragma once

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pclust::util {

/// The ledger stayed above twice the budget through every degradation
/// lever. Thrown at a phase boundary (checkpoints already flushed), so a
/// checkpointed run is resumable. The CLI maps this to exit code 5.
class MemoryBudgetExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One degradation action taken under memory pressure.
struct DegradationEvent {
  std::string phase;
  std::string action;
  std::string detail;
};

class MemoryGovernor {
 public:
  static MemoryGovernor& instance();

  /// Install a budget (0 = unlimited) and reset the ledger, high-water,
  /// degradation log, and hard-exceeded flag. Accounting always runs —
  /// even unbudgeted, so a golden run's high_water() can calibrate a
  /// later budgeted run (chaos class 8 budgets 60 % of it).
  void configure(std::uint64_t budget_bytes);

  [[nodiscard]] std::uint64_t budget() const;
  [[nodiscard]] bool budgeted() const { return budget() > 0; }

  /// The phase label used for degradation events from callees that do not
  /// know which phase they run in (the alignment engine's grain choice).
  void set_phase(std::string_view phase);

  void charge(std::string_view what, std::uint64_t bytes);
  void release(std::uint64_t bytes);

  [[nodiscard]] std::uint64_t ledger() const;
  [[nodiscard]] std::uint64_t high_water() const;
  /// ledger / budget; 0 when unbudgeted.
  [[nodiscard]] double pressure() const;

  /// Shrunken evaluation grain / batch size under pressure (>= 0.70
  /// halves, >= 0.95 quarters, floor 8). Returns @p normal unbudgeted.
  /// Records a DegradationEvent the first time it shrinks in a phase.
  [[nodiscard]] std::size_t recommend_grain(std::size_t normal);
  [[nodiscard]] std::size_t recommend_batch(std::size_t normal);

  /// True when the BGG stage should stream component graphs one at a time
  /// (pressure >= 0.50); records a DegradationEvent when taken.
  [[nodiscard]] bool should_stream(std::string_view phase);
  /// True when a cold table should spill through the IoEnv
  /// (pressure >= 0.70); records a DegradationEvent when taken.
  [[nodiscard]] bool should_spill(std::string_view phase);

  void note_degradation(std::string_view phase, std::string_view action,
                        std::string_view detail);
  [[nodiscard]] std::vector<DegradationEvent> degradation_log() const;

  /// Set once a charge pushes the ledger above 2x the budget — past the
  /// point degradation can save the run.
  [[nodiscard]] bool hard_exceeded() const;

  /// Phase-boundary check: throws MemoryBudgetExceeded when
  /// hard_exceeded(). @p resumable selects the operator guidance in the
  /// message (resume vs. re-run with a larger budget).
  void check_phase_boundary(std::string_view phase, bool resumable) const;

 private:
  MemoryGovernor() = default;

  [[nodiscard]] std::size_t shrink(std::size_t normal, const char* action);

  mutable std::mutex mu_;
  std::uint64_t budget_ = 0;
  std::uint64_t ledger_ = 0;
  std::uint64_t high_water_ = 0;
  bool hard_exceeded_ = false;
  std::string phase_ = "run";
  std::vector<DegradationEvent> log_;
};

/// Shorthand for MemoryGovernor::instance().
[[nodiscard]] MemoryGovernor& governor();

/// RAII ledger charge: charges on construction (or via add()), releases
/// the accumulated total on destruction. Move-only.
class MemoryCharge {
 public:
  MemoryCharge() = default;
  MemoryCharge(std::string_view what, std::uint64_t bytes) { add(what, bytes); }
  MemoryCharge(MemoryCharge&& other) noexcept
      : bytes_(std::exchange(other.bytes_, 0)) {}
  MemoryCharge& operator=(MemoryCharge&& other) noexcept {
    if (this != &other) {
      reset();
      bytes_ = std::exchange(other.bytes_, 0);
    }
    return *this;
  }
  MemoryCharge(const MemoryCharge&) = delete;
  MemoryCharge& operator=(const MemoryCharge&) = delete;
  ~MemoryCharge() { reset(); }

  void add(std::string_view what, std::uint64_t bytes);
  void reset();
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }

 private:
  std::uint64_t bytes_ = 0;
};

}  // namespace pclust::util
