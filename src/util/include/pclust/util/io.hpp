// Fault-injectable I/O environment for every file artifact pclust writes.
//
// All durable outputs — family clusterings, checkpoints, run reports,
// telemetry JSONL, trace timelines, the optional log sink, and spill
// files — go through the process-wide IoEnv. It provides
//
//   * atomic commits (tmp file + rename, optional fsync-on-commit) with
//     short-write detection, retried with exponential backoff
//     (util/retry, counted under "io.retries"),
//   * a seeded, deterministic fault plan (IoFaultPlan) that injects
//     ENOSPC / EIO / short writes / fsync failures at the Nth write of an
//     artifact class — mirroring the mpsim FaultPlan idiom: a fault is a
//     pure function of the plan and the write ordinal, never wall-clock,
//   * a per-class degradation policy once retries are exhausted:
//
//       families, report, spill  -> throw IoError (class+path attributed)
//       checkpoint               -> throw IoError; write_checkpoint rolls
//                                   back to the previous generation and
//                                   the run continues (checkpointing is
//                                   an optimization, not a requirement)
//       telemetry, trace, log    -> drop-and-count ("io.dropped" metrics
//                                   plus a warning record/log line);
//                                   observability loss never alters the
//                                   family output
//
// With an empty plan the fast paths are a relaxed counter increment and a
// null-pointer test, keeping the enabled-but-fault-free overhead within
// the bench_pipeline perf gate.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace pclust::util::io {

/// Every durable artifact pclust writes belongs to exactly one class; the
/// class selects both the fault-injection stream and the degradation
/// policy.
enum class ArtifactClass : int {
  kFamilies = 0,  // clustering output — the product; losing it is fatal
  kCheckpoint,    // phase checkpoints — roll back and continue
  kReport,        // structured run reports — fatal (explicitly requested)
  kTelemetry,     // JSONL stream — drop-and-count
  kTrace,         // trace-event timeline — drop-and-count
  kLog,           // PCLUST_LOG_FILE sink — drop-and-count (stderr remains)
  kSpill,         // memory-governor spill files — throw; caller keeps RAM
  kProvenance,    // merge-provenance ledgers/sidecars — fatal (an audit
                  // artifact the operator asked for; silently losing the
                  // evidence trail would defeat its purpose)
};
inline constexpr int kArtifactClassCount = 8;

[[nodiscard]] std::string_view class_name(ArtifactClass cls);
/// Throws std::invalid_argument for an unknown name.
[[nodiscard]] ArtifactClass class_from_name(std::string_view name);

enum class FaultKind : int {
  kEnospc = 0,  // "no space left on device" on the data write
  kEio,         // generic I/O error on the data write
  kShortWrite,  // the write "succeeds" but persists only half the bytes
  kFsyncFail,   // data lands, the durability barrier fails
};

[[nodiscard]] std::string_view kind_name(FaultKind kind);

/// One scheduled fault: the @p at_write'th logical write (1-based, counted
/// per artifact class) fails with @p kind. A non-sticky fault is
/// transient — it fails only the first attempt of that write, so the
/// retry layer heals it invisibly. A sticky fault is a storm: every
/// attempt of every write from @p at_write on fails (a full disk does not
/// come back between retries). at_write == 0 targets stream OPENS of the
/// class instead of writes (the first open, or every open when sticky).
struct IoFault {
  ArtifactClass cls = ArtifactClass::kCheckpoint;
  FaultKind kind = FaultKind::kEnospc;
  std::uint64_t at_write = 1;
  bool sticky = false;
};

/// Deterministic fault schedule, the I/O analogue of mpsim::FaultPlan.
struct IoFaultPlan {
  std::vector<IoFault> faults;

  [[nodiscard]] bool empty() const { return faults.empty(); }

  /// The fault scheduled for logical write @p ordinal of @p cls (the
  /// first match wins), or nullptr. Pure: same plan + ordinal, same
  /// answer.
  [[nodiscard]] const IoFault* fault_at(ArtifactClass cls,
                                        std::uint64_t ordinal) const;

  /// Parse a CLI spec: comma-separated `class:kind@N[:sticky]` entries,
  /// e.g. "checkpoint:enospc@2:sticky,telemetry:eio@5". Classes are the
  /// class_name() strings; kinds are enospc, eio, short, fsync; N == 0
  /// targets opens. Throws std::invalid_argument with the offending entry.
  [[nodiscard]] static IoFaultPlan parse(const std::string& spec);

  [[nodiscard]] std::string to_string() const;
};

/// A persistent (retries-exhausted) artifact write failure, attributed to
/// the artifact class and path so operators know exactly what was lost.
class IoError : public std::runtime_error {
 public:
  IoError(ArtifactClass cls, std::filesystem::path path,
          const std::string& message);

  [[nodiscard]] ArtifactClass artifact_class() const { return cls_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  ArtifactClass cls_;
  std::string path_;
};

enum class CommitStatus {
  kCommitted,  // bytes are durably on disk under the final path
  kDropped,    // persistent failure on a drop-and-count class
};

/// The process-wide I/O environment. Thread-safe; the telemetry sampler,
/// the log sink, and the pipeline thread all write through it.
class IoEnv {
 public:
  static IoEnv& instance();

  /// Install a fault plan (empty plan = fault-free) and reset the
  /// per-class write/open ordinals and drop counters.
  void configure(IoFaultPlan plan);
  /// configure({}) — back to fault-free.
  void reset() { configure({}); }

  [[nodiscard]] bool fault_injection_enabled() const {
    return plan_active_.load(std::memory_order_acquire);
  }

  /// Atomically commit @p bytes to @p path: write a sibling ".tmp",
  /// verify the on-disk size (short-write detection), optionally fsync,
  /// rename into place. Retried with backoff; on persistent failure the
  /// class policy applies (throw IoError, or warn + count + kDropped).
  CommitStatus commit_file(ArtifactClass cls,
                           const std::filesystem::path& path,
                           std::string_view bytes,
                           bool fsync_on_commit = true);

  /// Gate one streaming append (telemetry record, trace flush, log line,
  /// spill block). Returns false when the fault plan says this write
  /// fails — the caller drops (drop-and-count classes) or throws (fatal
  /// classes). Appends have no retry loop, so a transient fault costs
  /// exactly one record.
  [[nodiscard]] bool admit_append(ArtifactClass cls);

  /// fopen through the environment: fault-injectable (at_write == 0
  /// entries) and drop-counted, so sink-open failures are observable.
  /// Returns nullptr on (real or injected) failure.
  std::FILE* open_stream(ArtifactClass cls, const std::string& path,
                         const char* mode);

  /// Record a dropped append for @p cls ("io.dropped" +
  /// "io.dropped.<class>" metrics, one WARN line per class per plan).
  void count_dropped(ArtifactClass cls);

  [[nodiscard]] std::uint64_t writes(ArtifactClass cls) const;
  [[nodiscard]] std::uint64_t dropped(ArtifactClass cls) const;
  [[nodiscard]] std::uint64_t dropped_total() const;

 private:
  IoEnv() = default;

  /// nullptr when no fault applies to this (ordinal, attempt) of @p cls.
  [[nodiscard]] const IoFault* injected(ArtifactClass cls,
                                        std::uint64_t ordinal,
                                        std::uint32_t attempt) const;

  mutable std::mutex mu_;
  IoFaultPlan plan_;
  std::atomic<bool> plan_active_{false};
  std::atomic<std::uint64_t> writes_[kArtifactClassCount] = {};
  std::atomic<std::uint64_t> opens_[kArtifactClassCount] = {};
  std::atomic<std::uint64_t> dropped_[kArtifactClassCount] = {};
  std::atomic<bool> warned_[kArtifactClassCount] = {};
};

/// Shorthand for IoEnv::instance().
[[nodiscard]] IoEnv& io();

/// A temporary spill file written through the IoEnv (ArtifactClass::
/// kSpill): the memory governor's pressure valve for cold in-memory
/// tables. write()/finish() stage bytes out; read_all() loads them back;
/// the destructor removes the file. A spill-write failure throws IoError —
/// the caller's contract is to catch it and keep the data in memory
/// (spilling is an optimization, losing spilled data would not be).
class SpillFile {
 public:
  explicit SpillFile(std::string_view label);
  ~SpillFile();
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  void write(const void* data, std::size_t size);
  /// Flush and close the write side; write() is invalid afterwards.
  void finish();
  /// Read the whole spill back (finish()es first if still open).
  [[nodiscard]] std::vector<std::uint8_t> read_all();

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return written_; }

 private:
  std::filesystem::path path_;
  std::FILE* out_ = nullptr;
  std::uint64_t written_ = 0;
};

}  // namespace pclust::util::io
