// Incremental JSONL tail reader for live streams (pclust monitor --follow).
//
// A telemetry writer appends one record per line and may be killed
// mid-record, leaving a torn final line with no trailing newline. Readers
// must treat such a tail as "not written yet": buffer it, surface only
// complete lines, and splice the remainder in when the writer (or a
// restarted writer) finishes the line. poll() reads from the last
// consumed offset, so following a growing file is O(new bytes), not
// O(file size) per sample.
#pragma once

#include <string>
#include <vector>

namespace pclust::util {

class JsonlTailReader {
 public:
  explicit JsonlTailReader(std::string path) : path_(std::move(path)) {}

  /// Append the complete lines written since the last poll to @p lines
  /// (blank lines are skipped). A trailing partial line is buffered, not
  /// returned. Returns false when the file cannot be opened (not an
  /// error while following — the writer may not have started yet). A
  /// file that shrank below the consumed offset (truncate/rotate) resets
  /// the reader to the start.
  bool poll(std::vector<std::string>& lines);

  /// Bytes consumed so far (start of the buffered partial tail, if any).
  [[nodiscard]] std::uint64_t offset() const { return offset_; }
  /// True when the last poll left an unterminated final line buffered.
  [[nodiscard]] bool has_partial_tail() const { return !tail_.empty(); }
  [[nodiscard]] const std::string& partial_tail() const { return tail_; }

  void reset() {
    offset_ = 0;
    tail_.clear();
  }

 private:
  std::string path_;
  std::uint64_t offset_ = 0;
  std::string tail_;
};

}  // namespace pclust::util
