#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

// Heap-footprint accounting for the core data structures. Every structure
// with a non-trivial footprint exposes
//
//   MemoryBreakdown memory_usage() const;
//
// listing its heap-allocated parts (nodes, edges, buckets, payload bytes)
// by *capacity*, i.e. what the allocator actually holds, not just what is
// in use. record_memory() publishes a breakdown as `mem.<name>.<part>`
// gauges in the metrics registry; the gauge high-water mark then gives the
// per-phase peak even when a structure is built once per component. The
// run report's `memory` section is assembled from these gauges plus the
// process peak RSS, which is what makes the paper's linear-space claim
// (bytes / n stays flat as n grows) checkable from report artifacts alone.

namespace pclust::util {

/// Itemized heap footprint of one data structure.
struct MemoryBreakdown {
  /// Structure name as it appears in gauge keys, e.g. "suffix_index".
  /// Must not contain '.'; parts must not either (the report splits gauge
  /// keys on dots to recover structure/part).
  std::string name;
  std::vector<std::pair<std::string, std::uint64_t>> parts;

  MemoryBreakdown() = default;
  explicit MemoryBreakdown(std::string structure_name)
      : name(std::move(structure_name)) {}

  MemoryBreakdown& add(std::string_view part, std::uint64_t bytes) {
    parts.emplace_back(std::string(part), bytes);
    return *this;
  }

  /// Merge another breakdown in as a single part (its total).
  MemoryBreakdown& add(std::string_view part, const MemoryBreakdown& nested) {
    return add(part, nested.total());
  }

  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const auto& [part, bytes] : parts) sum += bytes;
    return sum;
  }
};

/// Allocator-held bytes of a vector (capacity, not size).
template <typename T>
[[nodiscard]] std::uint64_t vector_bytes(const std::vector<T>& v) {
  return static_cast<std::uint64_t>(v.capacity()) * sizeof(T);
}

/// Heap bytes behind a string. Capacities at or below the SSO buffer live
/// inside the object and cost no heap.
[[nodiscard]] std::uint64_t string_bytes(const std::string& s);

/// Estimated heap bytes of a node-based hash container (unordered_map /
/// unordered_set): the bucket pointer array plus one heap node (next
/// pointer + cached hash + value) per element. An estimate — libstdc++'s
/// actual node layout — good to the word size, which is all the trend
/// analysis needs.
template <typename HashContainer>
[[nodiscard]] std::uint64_t hash_container_bytes(const HashContainer& c) {
  return static_cast<std::uint64_t>(c.bucket_count()) * sizeof(void*) +
         static_cast<std::uint64_t>(c.size()) *
             (2 * sizeof(void*) + sizeof(typename HashContainer::value_type));
}

/// Current resident set size in bytes (VmRSS); 0 where /proc is absent.
[[nodiscard]] std::uint64_t current_rss_bytes();

/// Peak resident set size in bytes (VmHWM); 0 where /proc is absent.
[[nodiscard]] std::uint64_t peak_rss_bytes();

/// Publish a breakdown to the metrics registry as gauges:
/// `mem.[<prefix>.]<name>.<part>` for each part plus `...<name>.total`.
/// Gauges keep a high-water mark, so repeated records (e.g. one index per
/// component) yield the peak footprint of the largest instance.
void record_memory(const MemoryBreakdown& breakdown,
                   std::string_view prefix = {});

}  // namespace pclust::util
