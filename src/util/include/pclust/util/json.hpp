// Minimal JSON support for run reports, trace files, and their tooling.
//
// Two halves, both dependency-free and deterministic:
//   - JsonWriter: an append-only streaming writer (objects, arrays, scalars)
//     that manages commas and escaping, used by the metrics/report/trace
//     emitters.
//   - JsonValue / parse_json(): a small recursive-descent parser used by
//     `pclust compare --reports`, `pclust report-check`, and the tests that
//     validate emitted JSON. It accepts strict JSON (RFC 8259) minus
//     surrogate-pair escapes, which none of our emitters produce.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pclust::util {

/// Malformed JSON handed to parse_json (message includes a byte offset).
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Streaming JSON writer. Usage:
///   JsonWriter w;
///   w.begin_object().key("n").value(3).key("xs").begin_array()
///    .value(1.5).end_array().end_object();
///   w.str();  // {"n":3,"xs":[1.5]}
/// The writer trusts the caller to produce a well-formed nesting; it only
/// automates commas, quoting, and number formatting.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Member name inside an object (written with escaping).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b);
  JsonWriter& value(double d);
  JsonWriter& value(std::int64_t n);
  JsonWriter& value(std::uint64_t n);
  JsonWriter& value(int n) { return value(static_cast<std::int64_t>(n)); }
  JsonWriter& value(unsigned n) {
    return value(static_cast<std::uint64_t>(n));
  }
  JsonWriter& null();

  /// Append @p raw verbatim as one value (must itself be valid JSON) —
  /// lets prerendered sub-documents nest without reparsing.
  JsonWriter& raw(std::string_view raw_json);

  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  void comma_for_value();

  std::string out_;
  std::vector<char> stack_;   // '{' or '[' per open scope
  std::vector<bool> first_;   // first element pending in that scope?
};

/// Escape @p s as the BODY of a JSON string (no surrounding quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Parsed JSON document (tree of tagged values).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  [[nodiscard]] bool is_null() const { return type == Type::kNull; }
  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }

  /// Member lookup (objects only); nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view name) const;
  /// Member lookup that throws JsonError when absent.
  [[nodiscard]] const JsonValue& at(std::string_view name) const;

  /// number (throws JsonError unless is_number()).
  [[nodiscard]] double as_number() const;
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] const std::string& as_string() const;
};

/// Parse one JSON document (leading/trailing whitespace allowed). Throws
/// JsonError on any syntax error or trailing garbage.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace pclust::util
