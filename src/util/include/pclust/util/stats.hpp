// Small descriptive-statistics helpers used in quality and bench reports.
#pragma once

#include <cstdint>
#include <vector>

namespace pclust::util {

struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// One-pass + sort summary of a sample. Empty input returns all zeros.
Summary summarize(const std::vector<double>& values);

/// Streaming mean/variance (Welford). Suitable for very long streams.
class RunningStats {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace pclust::util
