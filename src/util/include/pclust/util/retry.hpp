// Bounded retry with exponential backoff for transient failures.
//
// File I/O (checkpoints, reports, traces) and simulated-link receives can
// fail transiently; wrapping them in with_retry keeps a single hiccup from
// killing a multi-hour run while still surfacing persistent failures after
// a bounded number of attempts. Every retry is counted in the process-wide
// metrics registry under "io.retries" so healed runs stay auditable.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>

#include "pclust/util/log.hpp"
#include "pclust/util/metrics.hpp"

namespace pclust::util {

struct RetryPolicy {
  /// Total attempts, including the first one. 1 means no retries.
  std::uint32_t attempts = 3;
  /// Sleep before the first retry; doubled (times multiplier) per retry.
  std::chrono::milliseconds initial_backoff{2};
  double multiplier = 2.0;
};

/// Run @p fn, retrying on any exception up to policy.attempts times with
/// exponential backoff between attempts. The last failure is rethrown.
/// @p what names the operation in the retry log line and is free-form.
template <typename Fn>
auto with_retry(const RetryPolicy& policy, const std::string& what, Fn&& fn)
    -> decltype(fn()) {
  auto backoff = policy.initial_backoff;
  const std::uint32_t attempts = policy.attempts > 0 ? policy.attempts : 1;
  for (std::uint32_t attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const std::exception& ex) {
      if (attempt >= attempts) throw;
      metrics().counter("io.retries").add(1);
      PCLUST_WARN << "retry: " << what << " failed (attempt " << attempt
                  << " of " << attempts << "): " << ex.what();
      std::this_thread::sleep_for(backoff);
      backoff = std::chrono::milliseconds(static_cast<std::int64_t>(
          static_cast<double>(backoff.count()) * policy.multiplier));
    }
  }
}

}  // namespace pclust::util
