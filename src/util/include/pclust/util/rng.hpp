// Deterministic pseudo-random number generation for pclust.
//
// Everything in the pipeline that consumes randomness (workload synthesis,
// min-wise permutation seeds, tie-breaking) goes through these generators so
// that a (seed, config) pair reproduces a run bit-for-bit, at any simulated
// processor count.
#pragma once

#include <cstdint>
#include <limits>

namespace pclust::util {

/// SplitMix64: used to expand a single user seed into independent streams.
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, 2^256-1 period.
/// Satisfies the UniformRandomBitGenerator concept so it can be used with
/// <random> distributions if ever needed, though pclust uses the helper
/// methods below for cross-platform determinism.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method; unbiased and faster than modulo.
  std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    unsigned __int128 m =
        static_cast<unsigned __int128>(operator()()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(operator()()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Derive an independent child stream; the derivation depends only on
  /// (this stream's seed material, key), not on how many draws were made.
  Xoshiro256 fork(std::uint64_t key) const noexcept {
    SplitMix64 sm(s_[0] ^ (key * 0x9e3779b97f4a7c15ULL) ^ s_[3]);
    Xoshiro256 child(sm.next());
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

/// Stateless 64-bit mix; used as the hash in min-wise independent
/// permutation families (Broder et al.): h_seed(x) = mix(x ^ seed).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Combine two 64-bit values into one (boost::hash_combine style, 64-bit).
constexpr std::uint64_t hash_combine(std::uint64_t h,
                                     std::uint64_t v) noexcept {
  return h ^ (mix64(v) + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4));
}

}  // namespace pclust::util
