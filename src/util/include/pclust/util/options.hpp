// A tiny GNU-style command-line option parser for the example applications
// and benches. Supports --name value, --name=value, --flag, and positionals.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace pclust::util {

class Options {
 public:
  /// Declare an option with a default value (also defines its type for help).
  Options& define(const std::string& name, const std::string& default_value,
                  const std::string& help);
  Options& define_flag(const std::string& name, const std::string& help);

  /// Parse argv. Throws std::invalid_argument on unknown options or a
  /// missing value. "--" terminates option parsing.
  void parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;
  [[nodiscard]] const std::vector<std::string>& positionals() const {
    return positionals_;
  }
  [[nodiscard]] bool help_requested() const { return help_requested_; }

  [[nodiscard]] std::string usage(const std::string& program,
                                  const std::string& summary) const;

 private:
  struct Spec {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
  bool help_requested_ = false;
};

}  // namespace pclust::util
