#include "pclust/bigraph/builders.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "pclust/align/predicates.hpp"
#include "pclust/suffix/kmer_index.hpp"
#include "pclust/suffix/lcp.hpp"
#include "pclust/suffix/maximal_match.hpp"
#include "pclust/suffix/suffix_array.hpp"
#include "pclust/util/memsize.hpp"

namespace pclust::bigraph {

ComponentGraph build_bd(const seq::SequenceSet& set,
                        const std::vector<seq::SeqId>& members,
                        const BdParams& params) {
  ComponentGraph out;
  out.reduction = Reduction::kDuplicate;
  out.members = members;

  std::unordered_map<seq::SeqId, std::uint32_t> dense;
  dense.reserve(members.size());
  for (std::uint32_t i = 0; i < members.size(); ++i) dense[members[i]] = i;

  const pace::PaceParams& pp = params.pace;
  const suffix::ConcatText text(set, members);
  const auto sa =
      suffix::build_suffix_array(text.text(), seq::kIndexAlphabetSize);
  const auto lcp = suffix::build_lcp(text, sa);
  suffix::MaximalMatchParams mp;
  mp.min_length = pp.psi;
  mp.max_node_occurrences = pp.max_node_occurrences;
  const suffix::MaximalMatchEnumerator enumerator(text, sa, lcp, mp);

  // One alignment per candidate pair: keep the longest maximal match per
  // pair as the banded-alignment seed (pairs arrive longest-first).
  std::unordered_set<std::uint64_t> seen;
  std::vector<Edge> edges;
  if (!sa.empty()) {
    enumerator.enumerate(
        0, static_cast<std::int32_t>(sa.size()) - 1,
        [&](const suffix::MaximalMatch& m) {
          ++out.candidate_pairs;
          const std::uint64_t key =
              (static_cast<std::uint64_t>(m.a) << 32) | m.b;
          if (!seen.insert(key).second) return true;
          ++out.aligned_pairs;
          const auto res_a = set.residues(m.a);
          const auto res_b = set.residues(m.b);
          const align::PredicateOutcome res =
              pp.band > 0 ? align::test_overlap_banded(
                                res_a, res_b, pp.scheme(), m.diagonal(),
                                pp.band, pp.overlap)
                          : align::test_overlap(res_a, res_b, pp.scheme(),
                                                pp.overlap);
          out.alignment_cells += res.alignment.cells;
          if (res.accepted) {
            const std::uint32_t i = dense.at(m.a);
            const std::uint32_t j = dense.at(m.b);
            edges.push_back(Edge{i, j});
            edges.push_back(Edge{j, i});
          }
          return true;
        });
  }
  out.graph = BipartiteGraph(static_cast<std::uint32_t>(members.size()),
                             static_cast<std::uint32_t>(members.size()),
                             std::move(edges));
  util::record_memory(out.graph.memory_usage(), "bgg");
  return out;
}

ComponentGraph build_bm(const seq::SequenceSet& set,
                        const std::vector<seq::SeqId>& members,
                        const BmParams& params) {
  ComponentGraph out;
  out.reduction = Reduction::kMatchBased;
  out.members = members;

  std::unordered_map<seq::SeqId, std::uint32_t> dense;
  dense.reserve(members.size());
  for (std::uint32_t i = 0; i < members.size(); ++i) dense[members[i]] = i;

  suffix::KmerIndex::Params kp;
  kp.w = params.w;
  kp.max_sequences_per_word = params.max_sequences_per_word;
  const suffix::KmerIndex index(set, members, kp);
  util::record_memory(index.memory_usage(), "bgg");

  std::vector<Edge> edges;
  out.words.reserve(index.word_count());
  for (std::size_t w = 0; w < index.word_count(); ++w) {
    const auto l = static_cast<std::uint32_t>(out.words.size());
    out.words.push_back(index.packed_word(w));
    for (seq::SeqId id : index.sequences_of(w)) {
      edges.push_back(Edge{l, dense.at(id)});
      ++out.candidate_pairs;
    }
  }
  out.graph = BipartiteGraph(static_cast<std::uint32_t>(out.words.size()),
                             static_cast<std::uint32_t>(members.size()),
                             std::move(edges));
  util::record_memory(out.graph.memory_usage(), "bgg");
  return out;
}

}  // namespace pclust::bigraph
