#include "pclust/bigraph/bipartite_graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace pclust::bigraph {

BipartiteGraph::BipartiteGraph(std::uint32_t left_count,
                               std::uint32_t right_count,
                               std::vector<Edge> edges)
    : left_count_(left_count), right_count_(right_count) {
  for (const Edge& e : edges) {
    if (e.l >= left_count || e.r >= right_count) {
      throw std::out_of_range("BipartiteGraph: edge endpoint out of range");
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.l != b.l ? a.l < b.l : a.r < b.r;
  });
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  offsets_.assign(left_count_ + 1, 0);
  for (const Edge& e : edges) ++offsets_[e.l + 1];
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    offsets_[i] += offsets_[i - 1];
  }
  adjacency_.reserve(edges.size());
  for (const Edge& e : edges) adjacency_.push_back(e.r);
}

bool BipartiteGraph::has_edge(std::uint32_t l, std::uint32_t r) const {
  const auto links = out_links(l);
  return std::binary_search(links.begin(), links.end(), r);
}

double mean_subgraph_degree(const BipartiteGraph& graph,
                            const std::vector<std::uint32_t>& nodes) {
  if (nodes.empty()) return 0.0;
  const std::unordered_set<std::uint32_t> inside(nodes.begin(), nodes.end());
  std::uint64_t total = 0;
  for (std::uint32_t v : nodes) {
    for (std::uint32_t u : graph.out_links(v)) {
      if (inside.count(u)) ++total;
    }
  }
  return static_cast<double>(total) / static_cast<double>(nodes.size());
}

util::MemoryBreakdown BipartiteGraph::memory_usage() const {
  util::MemoryBreakdown b("bigraph");
  b.add("offsets", util::vector_bytes(offsets_));
  b.add("adjacency", util::vector_bytes(adjacency_));
  return b;
}

double subgraph_density(const BipartiteGraph& graph,
                        const std::vector<std::uint32_t>& nodes) {
  if (nodes.size() < 2) return 0.0;
  return mean_subgraph_degree(graph, nodes) /
         static_cast<double>(nodes.size() - 1);
}

}  // namespace pclust::bigraph
