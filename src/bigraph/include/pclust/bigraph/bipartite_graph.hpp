// Undirected bipartite graph B = (Vl, Vr, E), stored as a left-to-right
// adjacency CSR — exactly the out-link sets Γ(v) the Shingle algorithm
// consumes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pclust/util/memsize.hpp"

namespace pclust::bigraph {

/// An edge from left vertex l to right vertex r.
struct Edge {
  std::uint32_t l = 0;
  std::uint32_t r = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
};

class BipartiteGraph {
 public:
  BipartiteGraph() = default;

  /// Build from an edge list (duplicates collapsed; neighbor lists sorted).
  BipartiteGraph(std::uint32_t left_count, std::uint32_t right_count,
                 std::vector<Edge> edges);

  [[nodiscard]] std::uint32_t left_count() const { return left_count_; }
  [[nodiscard]] std::uint32_t right_count() const { return right_count_; }
  [[nodiscard]] std::uint64_t edge_count() const { return adjacency_.size(); }

  /// Out-links Γ(l) of left vertex l, sorted ascending.
  [[nodiscard]] std::span<const std::uint32_t> out_links(
      std::uint32_t l) const {
    return std::span<const std::uint32_t>(adjacency_).subspan(
        offsets_[l], offsets_[l + 1] - offsets_[l]);
  }

  [[nodiscard]] std::uint32_t degree(std::uint32_t l) const {
    return static_cast<std::uint32_t>(offsets_[l + 1] - offsets_[l]);
  }

  [[nodiscard]] bool has_edge(std::uint32_t l, std::uint32_t r) const;

  /// Heap footprint: CSR offsets + adjacency — O(V + E), the sub-quadratic
  /// storage argument of the shingle reduction.
  [[nodiscard]] util::MemoryBreakdown memory_usage() const;

 private:
  std::uint32_t left_count_ = 0;
  std::uint32_t right_count_ = 0;
  std::vector<std::size_t> offsets_;      // left_count_ + 1
  std::vector<std::uint32_t> adjacency_;  // right vertices, sorted per left
};

/// Mean within-subgraph degree of @p nodes in a DUPLICATE-reduction graph
/// (where left index i and right index i are the same vertex, so out_links
/// double as an undirected adjacency). This is the paper's Table-I
/// "mean degree" for a dense subgraph.
[[nodiscard]] double mean_subgraph_degree(const BipartiteGraph& graph,
                                          const std::vector<std::uint32_t>& nodes);

/// Observed density of a dense subgraph with m nodes: mean degree / (m-1)
/// (paper §V, "Qualitative Evaluation"). 0 when m < 2.
[[nodiscard]] double subgraph_density(const BipartiteGraph& graph,
                                      const std::vector<std::uint32_t>& nodes);

}  // namespace pclust::bigraph
