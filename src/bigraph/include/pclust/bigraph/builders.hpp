// Bipartite-graph generation (paper §IV-C): one graph per connected
// component, under either reduction of §III.
//
//  - B_d (global similarity): the duplicate-vertex bipartite version of the
//    similarity graph G restricted to the component. Edges are found with
//    the "modified PaCE" scheme: maximal-match filtering only (no
//    transitive-closure clustering — every surviving candidate pair is
//    verified by alignment, because here the individual edges matter).
//  - B_m (domain based): left vertices are the w-length words occurring in
//    >= 2 member sequences; an edge connects a word to every member
//    containing it.
#pragma once

#include <cstdint>
#include <vector>

#include "pclust/bigraph/bipartite_graph.hpp"
#include "pclust/pace/params.hpp"
#include "pclust/seq/sequence_set.hpp"

namespace pclust::bigraph {

enum class Reduction : std::uint8_t { kDuplicate, kMatchBased };

/// A component's bipartite graph plus the vertex-to-sequence mapping.
struct ComponentGraph {
  Reduction reduction = Reduction::kDuplicate;
  /// Right vertex r corresponds to sequence members[r]. For kDuplicate,
  /// left vertex l corresponds to members[l] as well.
  std::vector<seq::SeqId> members;
  /// For kMatchBased: left vertex l is the packed w-mer words[l].
  std::vector<std::uint64_t> words;
  BipartiteGraph graph;

  /// Work statistics of edge construction.
  std::uint64_t candidate_pairs = 0;
  std::uint64_t aligned_pairs = 0;
  std::uint64_t alignment_cells = 0;
};

struct BdParams {
  pace::PaceParams pace;  // psi, band, overlap cutoffs, scoring
};

struct BmParams {
  std::uint32_t w = 10;                        // word length (paper: ~10)
  std::uint32_t max_sequences_per_word = 0;    // low-complexity guard
};

/// Build the global-similarity reduction B_d for one component.
ComponentGraph build_bd(const seq::SequenceSet& set,
                        const std::vector<seq::SeqId>& members,
                        const BdParams& params = {});

/// Build the domain-based reduction B_m for one component.
ComponentGraph build_bm(const seq::SequenceSet& set,
                        const std::vector<seq::SeqId>& members,
                        const BmParams& params = {});

}  // namespace pclust::bigraph
