#include "pclust/seq/complexity.hpp"

#include <array>
#include <cmath>

#include "pclust/seq/alphabet.hpp"

namespace pclust::seq {

namespace {

double entropy_of_counts(const std::array<std::uint32_t, kAlphabetSize>& counts,
                         std::uint32_t total) {
  double h = 0.0;
  for (std::uint32_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / total;
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace

double shannon_entropy(std::string_view ranks) {
  if (ranks.empty()) return 0.0;
  std::array<std::uint32_t, kAlphabetSize> counts{};
  for (char r : ranks) ++counts[static_cast<std::uint8_t>(r)];
  return entropy_of_counts(counts, static_cast<std::uint32_t>(ranks.size()));
}

std::string mask_low_complexity(std::string_view ranks,
                                const ComplexityParams& params) {
  std::string out(ranks);
  const std::size_t w = params.window;
  if (ranks.size() < w || w == 0) return out;

  // Sliding window with incremental counts; mark every position covered by
  // a low-entropy window.
  std::array<std::uint32_t, kAlphabetSize> counts{};
  std::vector<bool> mask(ranks.size(), false);
  for (std::size_t i = 0; i < w; ++i) {
    ++counts[static_cast<std::uint8_t>(ranks[i])];
  }
  for (std::size_t start = 0;; ++start) {
    if (entropy_of_counts(counts, static_cast<std::uint32_t>(w)) <
        params.min_entropy) {
      for (std::size_t k = start; k < start + w; ++k) mask[k] = true;
    }
    if (start + w >= ranks.size()) break;
    --counts[static_cast<std::uint8_t>(ranks[start])];
    ++counts[static_cast<std::uint8_t>(ranks[start + w])];
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (mask[i]) out[i] = static_cast<char>(kRankX);
  }
  return out;
}

SequenceSet mask_low_complexity(const SequenceSet& set,
                                const ComplexityParams& params) {
  SequenceSet out;
  out.reserve(set.size(), set.total_residues());
  for (SeqId id = 0; id < set.size(); ++id) {
    out.add_encoded(set.name(id),
                    mask_low_complexity(set.residues(id), params));
  }
  return out;
}

double masked_fraction(const SequenceSet& set,
                       const ComplexityParams& params) {
  if (set.total_residues() == 0) return 0.0;
  std::uint64_t masked = 0;
  for (SeqId id = 0; id < set.size(); ++id) {
    const auto original = set.residues(id);
    const std::string after = mask_low_complexity(original, params);
    for (std::size_t i = 0; i < after.size(); ++i) {
      if (after[i] != original[i]) ++masked;
    }
  }
  return static_cast<double>(masked) /
         static_cast<double>(set.total_residues());
}

}  // namespace pclust::seq
