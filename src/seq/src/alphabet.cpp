#include "pclust/seq/alphabet.hpp"

#include <stdexcept>

namespace pclust::seq {

namespace {

constexpr std::string_view kResidueOrder = "ACDEFGHIKLMNPQRSTVWY";

constexpr std::array<std::uint8_t, 256> build_char_table() {
  std::array<std::uint8_t, 256> table{};
  for (auto& v : table) v = 0xFF;
  for (std::uint8_t r = 0; r < kNumResidues; ++r) {
    const char c = kResidueOrder[r];
    table[static_cast<unsigned char>(c)] = r;
    table[static_cast<unsigned char>(c - 'A' + 'a')] = r;
  }
  // Ambiguity / rare codes collapse to X.
  for (char c : {'X', 'B', 'Z', 'J', 'U', 'O', '*'}) {
    table[static_cast<unsigned char>(c)] = kRankX;
    if (c != '*') {
      table[static_cast<unsigned char>(c - 'A' + 'a')] = kRankX;
    }
  }
  return table;
}

constexpr auto kCharTable = build_char_table();

}  // namespace

char rank_to_char(std::uint8_t rank) {
  if (rank < kNumResidues) return kResidueOrder[rank];
  if (rank == kRankX) return 'X';
  if (rank == kRankSeparator) return '$';
  if (rank == kRankTerminator) return '#';
  return '?';
}

std::uint8_t char_to_rank(char c) {
  return kCharTable[static_cast<unsigned char>(c)];
}

bool is_valid_residue_char(char c) { return char_to_rank(c) != 0xFF; }

std::string encode(std::string_view ascii) {
  std::string out;
  out.reserve(ascii.size());
  for (char c : ascii) {
    const std::uint8_t r = char_to_rank(c);
    if (r == 0xFF) {
      throw std::invalid_argument(std::string("invalid peptide character '") +
                                  c + "'");
    }
    out.push_back(static_cast<char>(r));
  }
  return out;
}

std::string decode(std::string_view ranks) {
  std::string out;
  out.reserve(ranks.size());
  for (char r : ranks) {
    out.push_back(rank_to_char(static_cast<std::uint8_t>(r)));
  }
  return out;
}

const std::array<double, kNumResidues>& background_frequencies() {
  // Robinson & Robinson (1991) frequencies, reordered to kResidueOrder
  // (A C D E F G H I K L M N P Q R S T V W Y).
  static const std::array<double, kNumResidues> kFreq = {
      0.07805, 0.01925, 0.05364, 0.06295, 0.03856, 0.07377, 0.02199,
      0.05142, 0.05744, 0.09019, 0.02243, 0.04487, 0.05203, 0.04264,
      0.05129, 0.07120, 0.05841, 0.06441, 0.01330, 0.03216};
  return kFreq;
}

}  // namespace pclust::seq
