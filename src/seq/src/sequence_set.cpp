#include "pclust/seq/sequence_set.hpp"

#include <stdexcept>

#include "pclust/seq/alphabet.hpp"

namespace pclust::seq {

SeqId SequenceSet::add(std::string name, std::string_view ascii) {
  return add_encoded(std::move(name), encode(ascii));
}

SeqId SequenceSet::add_encoded(std::string name, std::string ranks) {
  if (ranks.empty()) {
    throw std::invalid_argument("SequenceSet::add: empty sequence '" + name +
                                "'");
  }
  for (char r : ranks) {
    if (static_cast<std::uint8_t>(r) >= kAlphabetSize) {
      throw std::invalid_argument("SequenceSet::add: bad rank in '" + name +
                                  "'");
    }
  }
  const auto id = static_cast<SeqId>(lengths_.size());
  offsets_.push_back(buffer_.size());
  lengths_.push_back(static_cast<std::uint32_t>(ranks.size()));
  names_.push_back(std::move(name));
  buffer_ += ranks;
  return id;
}

std::string_view SequenceSet::residues(SeqId id) const {
  return std::string_view(buffer_).substr(offsets_[id], lengths_[id]);
}

std::string SequenceSet::ascii(SeqId id) const { return decode(residues(id)); }

double SequenceSet::mean_length() const {
  if (empty()) return 0.0;
  return static_cast<double>(buffer_.size()) / static_cast<double>(size());
}

SequenceSet SequenceSet::subset(const std::vector<SeqId>& ids) const {
  SequenceSet out;
  std::uint64_t residues_total = 0;
  for (SeqId id : ids) residues_total += lengths_[id];
  out.reserve(ids.size(), residues_total);
  for (SeqId id : ids) {
    out.add_encoded(names_[id], std::string(residues(id)));
  }
  return out;
}

void SequenceSet::reserve(std::size_t sequences, std::uint64_t residues_hint) {
  offsets_.reserve(sequences);
  lengths_.reserve(sequences);
  names_.reserve(sequences);
  buffer_.reserve(residues_hint);
}

}  // namespace pclust::seq
