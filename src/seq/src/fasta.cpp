#include "pclust/seq/fasta.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "pclust/seq/alphabet.hpp"
#include "pclust/util/log.hpp"
#include "pclust/util/strings.hpp"

namespace pclust::seq {

namespace {

std::string header_to_name(std::string_view header) {
  header.remove_prefix(1);  // '>'
  header = util::trim(header);
  const auto ws = header.find_first_of(" \t");
  if (ws != std::string_view::npos) header = header.substr(0, ws);
  return std::string(header);
}

[[noreturn]] void fail(const FastaOptions& options, std::size_t line_no,
                       const std::string& what) {
  throw std::runtime_error("FASTA: " + options.source + ":" +
                           std::to_string(line_no) + ": " + what);
}

}  // namespace

std::size_t read_fasta(std::istream& in, SequenceSet& out,
                       const FastaOptions& options, FastaStats* stats) {
  std::string line;
  std::string name;
  std::string ranks;  // encoded as we go, so bad chars are caught per line
  bool have_record = false;
  bool skip_record = false;
  std::size_t record_line = 0;  // line of the current record's header
  std::size_t added = 0;
  std::size_t line_no = 0;
  FastaStats local;

  const auto flush = [&] {
    if (!have_record) return;
    if (skip_record) {
      ++local.skipped_records;
      skip_record = false;
      name.clear();
      ranks.clear();
      return;
    }
    if (ranks.empty()) {
      fail(options, record_line, "record '" + name + "' has no residues");
    }
    local.residues += ranks.size();
    out.add_encoded(std::move(name), std::move(ranks));
    ++added;
    ++local.records;
    name.clear();
    ranks.clear();
  };

  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view text = util::trim(line);
    if (text.empty()) continue;
    if (text.front() == '>') {
      flush();
      name = header_to_name(text);
      if (name.empty()) name = "seq" + std::to_string(line_no);
      have_record = true;
      record_line = line_no;
    } else {
      if (!have_record) {
        fail(options, line_no, "residues before first header");
      }
      if (skip_record) continue;
      for (std::size_t col = 0; col < text.size(); ++col) {
        const std::uint8_t rank = char_to_rank(text[col]);
        if (rank != 0xFF) {
          ranks.push_back(static_cast<char>(rank));
          continue;
        }
        switch (options.on_bad_residue) {
          case BadResiduePolicy::kThrow:
            fail(options, line_no,
                 "invalid residue character '" + std::string(1, text[col]) +
                     "' (column " + std::to_string(col + 1) + ") in record '" +
                     name + "'");
          case BadResiduePolicy::kMask:
            ranks.push_back(static_cast<char>(kRankX));
            ++local.masked_residues;
            break;
          case BadResiduePolicy::kSkipRecord:
            skip_record = true;
            break;
        }
        if (skip_record) break;
      }
    }
  }
  flush();

  if (options.log_summary) {
    PCLUST_INFO << "FASTA: " << options.source << ": " << local.records
                << " sequences, " << local.residues << " residues"
                << (local.masked_residues > 0
                        ? ", " + std::to_string(local.masked_residues) +
                              " residues masked as X"
                        : "")
                << (local.skipped_records > 0
                        ? ", " + std::to_string(local.skipped_records) +
                              " records skipped"
                        : "");
  }
  if (stats) *stats = local;
  return added;
}

std::size_t read_fasta_file(const std::string& path, SequenceSet& out,
                            FastaOptions options, FastaStats* stats) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open FASTA file: " + path);
  options.source = path;
  return read_fasta(in, out, options, stats);
}

void write_fasta(std::ostream& out, const SequenceSet& set,
                 std::size_t line_width) {
  for (SeqId id = 0; id < set.size(); ++id) {
    out << '>' << set.name(id) << '\n';
    const std::string ascii = set.ascii(id);
    for (std::size_t pos = 0; pos < ascii.size(); pos += line_width) {
      out << std::string_view(ascii).substr(pos, line_width) << '\n';
    }
  }
}

void write_fasta_file(const std::string& path, const SequenceSet& set,
                      std::size_t line_width) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  write_fasta(out, set, line_width);
}

}  // namespace pclust::seq
