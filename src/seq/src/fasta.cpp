#include "pclust/seq/fasta.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "pclust/util/strings.hpp"

namespace pclust::seq {

namespace {

std::string header_to_name(std::string_view header) {
  header.remove_prefix(1);  // '>'
  header = util::trim(header);
  const auto ws = header.find_first_of(" \t");
  if (ws != std::string_view::npos) header = header.substr(0, ws);
  return std::string(header);
}

}  // namespace

std::size_t read_fasta(std::istream& in, SequenceSet& out) {
  std::string line;
  std::string name;
  std::string residues;
  bool have_record = false;
  std::size_t added = 0;
  std::size_t line_no = 0;

  const auto flush = [&] {
    if (!have_record) return;
    if (residues.empty()) {
      throw std::runtime_error("FASTA: record '" + name + "' has no residues");
    }
    out.add(std::move(name), residues);
    ++added;
    name.clear();
    residues.clear();
  };

  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view text = util::trim(line);
    if (text.empty()) continue;
    if (text.front() == '>') {
      flush();
      name = header_to_name(text);
      if (name.empty()) name = "seq" + std::to_string(line_no);
      have_record = true;
    } else {
      if (!have_record) {
        throw std::runtime_error(
            "FASTA: residues before first header at line " +
            std::to_string(line_no));
      }
      residues.append(text);
    }
  }
  flush();
  return added;
}

std::size_t read_fasta_file(const std::string& path, SequenceSet& out) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open FASTA file: " + path);
  return read_fasta(in, out);
}

void write_fasta(std::ostream& out, const SequenceSet& set,
                 std::size_t line_width) {
  for (SeqId id = 0; id < set.size(); ++id) {
    out << '>' << set.name(id) << '\n';
    const std::string ascii = set.ascii(id);
    for (std::size_t pos = 0; pos < ascii.size(); pos += line_width) {
      out << std::string_view(ascii).substr(pos, line_width) << '\n';
    }
  }
}

void write_fasta_file(const std::string& path, const SequenceSet& set,
                      std::size_t line_width) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  write_fasta(out, set, line_width);
}

}  // namespace pclust::seq
