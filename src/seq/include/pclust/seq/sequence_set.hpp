// SequenceSet: the shared, immutable-after-load store of input peptides.
//
// All residues live in one contiguous rank-encoded buffer; per-sequence
// metadata (name, offset, length) is stored separately. Every downstream
// phase refers to sequences by SeqId (dense index), which keeps union-find,
// graph, and message payloads compact.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pclust::seq {

using SeqId = std::uint32_t;
inline constexpr SeqId kInvalidSeqId = 0xFFFFFFFFu;

class SequenceSet {
 public:
  SequenceSet() = default;

  /// Append a sequence given in ASCII; returns its id. Throws on invalid
  /// characters or an empty sequence.
  SeqId add(std::string name, std::string_view ascii);

  /// Append a sequence already rank-encoded.
  SeqId add_encoded(std::string name, std::string ranks);

  [[nodiscard]] std::size_t size() const { return lengths_.size(); }
  [[nodiscard]] bool empty() const { return lengths_.empty(); }

  /// Rank-encoded residues of sequence id.
  [[nodiscard]] std::string_view residues(SeqId id) const;
  [[nodiscard]] std::uint32_t length(SeqId id) const { return lengths_[id]; }
  [[nodiscard]] const std::string& name(SeqId id) const { return names_[id]; }

  /// ASCII form (decoded) — for display and FASTA output.
  [[nodiscard]] std::string ascii(SeqId id) const;

  /// Total residues across all sequences.
  [[nodiscard]] std::uint64_t total_residues() const { return buffer_.size(); }

  /// Mean sequence length (0 if empty).
  [[nodiscard]] double mean_length() const;

  /// Build a subset containing the given ids (in the given order); names and
  /// residues are copied. Useful after redundancy removal.
  [[nodiscard]] SequenceSet subset(const std::vector<SeqId>& ids) const;

  void reserve(std::size_t sequences, std::uint64_t residues);

 private:
  std::string buffer_;                 // rank-encoded residues, concatenated
  std::vector<std::uint64_t> offsets_; // start of each sequence in buffer_
  std::vector<std::uint32_t> lengths_;
  std::vector<std::string> names_;
};

}  // namespace pclust::seq
