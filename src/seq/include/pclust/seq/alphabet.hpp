// Amino-acid alphabet handling.
//
// pclust stores peptide sequences as packed ranks in [0, 20): the 20
// standard residues in a fixed order, plus the ambiguity code 'X' mapped to
// rank 20. Ranks keep the suffix-tree children arrays small and make w-mer
// packing trivial (5 bits/residue).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace pclust::seq {

/// Number of standard amino acids.
inline constexpr int kNumResidues = 20;
/// Rank of the ambiguity residue 'X' (matches anything in biology, but is
/// treated as an ordinary 21st symbol by the exact-match machinery so that
/// 'X' runs do not create spurious exact matches of unrelated sequences).
inline constexpr std::uint8_t kRankX = 20;
/// Total number of sequence symbol ranks (20 residues + X).
inline constexpr int kAlphabetSize = 21;
/// Rank used internally as a sequence separator in concatenated text.
/// Never appears inside a sequence.
inline constexpr std::uint8_t kRankSeparator = 21;
/// Rank used as the global text terminator.
inline constexpr std::uint8_t kRankTerminator = 22;
/// Number of distinct symbols the indexing structures must handle.
inline constexpr int kIndexAlphabetSize = 23;

/// The canonical residue order: "ACDEFGHIKLMNPQRSTVWY".
[[nodiscard]] char rank_to_char(std::uint8_t rank);

/// Map an ASCII character to a rank. Lower case accepted. Non-standard
/// residue codes (B, Z, J, U, O) and anything unknown map to kRankX.
/// Returns 0xFF for characters that cannot appear in a peptide at all
/// (digits, punctuation other than '*', whitespace).
[[nodiscard]] std::uint8_t char_to_rank(char c);

[[nodiscard]] bool is_valid_residue_char(char c);

/// Encode an ASCII peptide string to ranks. Throws std::invalid_argument on
/// characters rejected by char_to_rank.
[[nodiscard]] std::string encode(std::string_view ascii);

/// Decode ranks back to upper-case ASCII.
[[nodiscard]] std::string decode(std::string_view ranks);

/// Background (Robinson–Robinson) amino-acid frequencies used by the
/// synthetic workload generator; indexed by rank, sums to 1.
[[nodiscard]] const std::array<double, kNumResidues>& background_frequencies();

}  // namespace pclust::seq
