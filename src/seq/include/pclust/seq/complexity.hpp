// Low-complexity masking (SEG-style entropy filter, Wootton & Federhen).
//
// Low-complexity peptide regions (acid runs, short repeats) create spurious
// exact matches that flood the maximal-match filter — the same pathology
// the suffix machinery's max_node_occurrences guard caps. Masking replaces
// residues inside low-entropy windows with 'X', which never seeds exact
// matches (the w-mer index and shingle words skip it) and scores -1 in
// BLOSUM62, exactly how BLAST treats SEG-masked queries.
#pragma once

#include <string>
#include <string_view>

#include "pclust/seq/sequence_set.hpp"

namespace pclust::seq {

struct ComplexityParams {
  /// Sliding-window width in residues.
  std::uint32_t window = 12;
  /// Windows with Shannon entropy (bits) strictly below this are masked
  /// entirely. log2(20) ≈ 4.32 is the maximum; SEG's default trigger is
  /// ~2.2 bits.
  double min_entropy = 2.2;
};

/// Shannon entropy (bits) of the residue distribution of @p ranks.
[[nodiscard]] double shannon_entropy(std::string_view ranks);

/// Mask low-complexity windows of a rank-encoded sequence with kRankX.
[[nodiscard]] std::string mask_low_complexity(std::string_view ranks,
                                              const ComplexityParams& params = {});

/// Apply masking to every sequence; names are preserved.
[[nodiscard]] SequenceSet mask_low_complexity(const SequenceSet& set,
                                              const ComplexityParams& params = {});

/// Fraction of residues that masking would replace (diagnostics).
[[nodiscard]] double masked_fraction(const SequenceSet& set,
                                     const ComplexityParams& params = {});

}  // namespace pclust::seq
