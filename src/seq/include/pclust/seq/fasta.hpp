// FASTA reading/writing for peptide sequences.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "pclust/seq/sequence_set.hpp"

namespace pclust::seq {

/// What to do with a residue character that cannot appear in a peptide at
/// all (digits, punctuation, stray bytes). Ambiguity codes (B, Z, J, U, O)
/// are NOT errors — the alphabet maps them to 'X' in every mode.
enum class BadResiduePolicy {
  kThrow = 0,   ///< reject the input (default; errors carry file:line)
  kMask,        ///< replace the character with 'X' and keep going
  kSkipRecord,  ///< drop the whole record containing the character
};

struct FastaOptions {
  BadResiduePolicy on_bad_residue = BadResiduePolicy::kThrow;
  /// Name used in error messages (and the parse-summary log line); set to
  /// the path by read_fasta_file.
  std::string source = "<stream>";
  /// Log a one-line parse summary (records/residues plus any lenient-mode
  /// repairs) at info level after parsing.
  bool log_summary = false;
};

/// What the parser did, for callers that want to surface repairs.
struct FastaStats {
  std::size_t records = 0;          ///< sequences appended to the set
  std::size_t residues = 0;         ///< residues appended to the set
  std::size_t masked_residues = 0;  ///< bad characters replaced by 'X'
  std::size_t skipped_records = 0;  ///< records dropped by kSkipRecord
};

/// Parse FASTA records from a stream into @p out. Header text up to the
/// first whitespace becomes the sequence name. Residue lines are
/// concatenated; blank lines are ignored. Throws std::runtime_error — with
/// the source name and 1-based line number — on a record with no residues,
/// residues before the first header, or (under BadResiduePolicy::kThrow) an
/// invalid residue character. Returns the number of sequences appended.
std::size_t read_fasta(std::istream& in, SequenceSet& out,
                       const FastaOptions& options = {},
                       FastaStats* stats = nullptr);

/// Convenience: read a FASTA file from disk. Throws on I/O failure
/// (message includes the path). @p options.source is overridden with the
/// path.
std::size_t read_fasta_file(const std::string& path, SequenceSet& out,
                            FastaOptions options = {},
                            FastaStats* stats = nullptr);

/// Write all sequences as FASTA with the given line width.
void write_fasta(std::ostream& out, const SequenceSet& set,
                 std::size_t line_width = 70);

void write_fasta_file(const std::string& path, const SequenceSet& set,
                      std::size_t line_width = 70);

}  // namespace pclust::seq
