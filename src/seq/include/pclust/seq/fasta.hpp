// FASTA reading/writing for peptide sequences.
#pragma once

#include <iosfwd>
#include <string>

#include "pclust/seq/sequence_set.hpp"

namespace pclust::seq {

/// Parse FASTA records from a stream into @p out. Header text up to the
/// first whitespace becomes the sequence name. Residue lines are
/// concatenated; blank lines are ignored. Throws std::runtime_error on a
/// record with no residues or residues before the first header.
/// Returns the number of sequences appended.
std::size_t read_fasta(std::istream& in, SequenceSet& out);

/// Convenience: read a FASTA file from disk. Throws on I/O failure.
std::size_t read_fasta_file(const std::string& path, SequenceSet& out);

/// Write all sequences as FASTA with the given line width.
void write_fasta(std::ostream& out, const SequenceSet& set,
                 std::size_t line_width = 70);

void write_fasta_file(const std::string& path, const SequenceSet& set,
                      std::size_t line_width = 70);

}  // namespace pclust::seq
