// Resilient master–worker protocol over the message-passing simulator.
//
// This is the self-healing engine factored out of the PaCE phases (PR 2) so
// every simulated phase — RR, CCD, and now BGG+DSD — shares one protocol:
//
//   - Workers own deterministic GENERATION STREAMS (a pure function of a
//     shared read-only index), submit tasks in rounds, and evaluate the
//     chunks the master hands back. Submissions and work chunks carry
//     per-worker sequence numbers, so duplicated deliveries are recognized
//     and dropped on both sides (at-least-once links are safe).
//   - The master admits each task exactly once (the hook deduplicates and
//     filters), dispatches bounded chunks, and tracks the unacknowledged
//     chunk per worker. A worker death — planned crash, error, or heartbeat
//     timeout (with bounded retry + exponential backoff first) — requeues
//     its outstanding chunk ahead of the FIFO and hands each of its
//     generation streams to the least-loaded survivor, which replays the
//     stream from the master's received watermark. The seen-set in the
//     admit hook and idempotent verdict application absorb replay overlap.
//   - A wall-clock phase deadline turns a hung phase into an attributed
//     RankError instead of a silent hang.
//
// Hierarchical mode (MwOptions::masters >= 2) adds a two-level master tree
// that removes the single-master admit bottleneck AND its single point of
// failure:
//
//   rank 0            the ROOT: owns the authoritative result state and an
//                     append-only event log; folds only the events the
//                     sub-masters forward.
//   ranks 1..M        SUB-MASTERS: each runs the full resilient master
//                     engine over its worker shard, admitting/filtering
//                     locally against a local state replica, and forwards
//                     only the verdicts that CHANGED its replica — the
//                     cross-shard union events — to the root as
//                     seq-numbered idempotent records (one batch per
//                     lockstep round).
//   ranks M+1..p-1    workers, homed round-robin onto the sub-masters.
//
//   Sub-masters are FAILABLE. On sub-master death the root re-homes the
//   shard's orphaned workers onto surviving sub-masters, reroutes every
//   generation stream the shard owned for a full replay (from index 0 —
//   safe by idempotence), and replays its forwarded event log onto the
//   adopting shards through the standing sync channel, so no accepted
//   union is ever lost and the final result state is bit-identical to the
//   flat single-master run. A shard that loses every worker surrenders its
//   streams to the root and stays alive as a quiescent spare that can
//   adopt future orphans.
//
// Verdict APPLICATION order still follows message arrival, so a phase is
// bit-identical under faults exactly when its apply is confluent (CCD's
// union-find, DSD's keyed family slots) — see DESIGN.md §11/§13 for the
// per-phase guarantees. Order-dependent phases (RR) must stay flat.
#pragma once

#include <algorithm>
#include <any>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "pclust/mpsim/communicator.hpp"
#include "pclust/mpsim/fault_plan.hpp"
#include "pclust/util/metrics.hpp"
#include "pclust/util/telemetry.hpp"
#include "pclust/util/trace.hpp"

namespace pclust::mpsim {

/// Master-side triage of one submitted task.
enum class MwAdmit : std::uint8_t {
  kQueue = 0,   ///< fresh and useful: dispatch it to a worker
  kDuplicate,   ///< already seen (stream replay or duplicated delivery)
  kFiltered,    ///< skipped by the phase's cluster filter
};

/// Rank-tree shape of one protocol run. masters == 1 is the flat layout
/// (rank 0 the single master); masters >= 2 is the two-level tree (rank 0
/// the root, ranks 1..masters the sub-masters). Requires p >= masters + 2
/// in hierarchical mode so at least one worker exists.
struct MwTopology {
  int p = 0;
  int masters = 1;

  [[nodiscard]] bool hierarchical() const { return masters >= 2; }
  [[nodiscard]] int first_worker() const {
    return hierarchical() ? masters + 1 : 1;
  }
  [[nodiscard]] int worker_count() const { return p - first_worker(); }
  [[nodiscard]] bool is_submaster(int rank) const {
    return hierarchical() && rank >= 1 && rank <= masters;
  }
  [[nodiscard]] bool is_worker(int rank) const {
    return rank >= first_worker() && rank < p;
  }
  /// The master rank a worker reports to (round-robin homes in a tree).
  [[nodiscard]] int submaster_of(int worker) const {
    if (!hierarchical()) return 0;
    return 1 + (worker - first_worker()) % masters;
  }
  /// Worker ranks homed on master rank @p m, ascending.
  [[nodiscard]] std::vector<int> workers_of(int m) const {
    std::vector<int> out;
    if (!hierarchical()) {
      if (m == 0) {
        for (int w = 1; w < p; ++w) out.push_back(w);
      }
      return out;
    }
    for (int w = first_worker(); w < p; ++w) {
      if (submaster_of(w) == m) out.push_back(w);
    }
    return out;
  }
  /// Human-readable level of a rank, used by reports and RankError
  /// attribution ("master"/"worker" flat; "root"/"sub-master"/"worker").
  [[nodiscard]] const char* level_of(int rank) const {
    if (!hierarchical()) return rank == 0 ? "master" : "worker";
    if (rank == 0) return "root";
    return rank <= masters ? "sub-master" : "worker";
  }
};

struct MwOptions {
  /// Phase label for fault events and errors (e.g. "rr", "ccd", "dsd").
  std::string phase = "mw";
  /// Process-metrics key prefix (e.g. "pace" keeps the PR-2 metric names).
  std::string metrics_prefix = "mw";
  /// Master ranks: 1 = flat single master (the default, byte-identical to
  /// the pre-hierarchy protocol); >= 2 = two-level master tree (see file
  /// comment). Workers derive their home sub-master from this.
  int masters = 1;
  /// Tasks per worker->master submission and per master->worker chunk.
  std::size_t batch_size = 256;
  /// Batches a worker submits per protocol round (>= 1).
  std::uint32_t generation_batches = 1;
  /// Master-side liveness backstop, WALL-clock seconds; <= 0 waits forever.
  double heartbeat_timeout = 0.0;
  /// Extra timed-out receives (exponential backoff on the timeout) before a
  /// silent worker is declared dead. Transient scheduling stalls heal here.
  std::uint32_t heartbeat_retries = 2;
  /// Timeout multiplier per heartbeat retry.
  double heartbeat_backoff = 2.0;
  /// Ceiling on the backed-off per-retry timeout, wall seconds; 0 leaves
  /// the exponential growth uncapped (the pre-ceiling behaviour).
  double heartbeat_max_timeout = 0.0;
  /// Whole-phase WALL-clock watchdog, seconds; 0 disables. On expiry the
  /// master throws PhaseDeadlineExceeded, which surfaces as a RankError
  /// attributed to this phase. The deadline is also checked at every
  /// heartbeat-retry boundary, so a retry ladder cannot overshoot it.
  double deadline_seconds = 0.0;
  /// Wire-size estimates for the virtual clock (bytes per element).
  std::uint64_t task_bytes = 16;
  std::uint64_t verdict_bytes = 8;
  std::uint64_t event_bytes = 16;   // sub-master -> root union event
  std::uint64_t header_bytes = 25;  // seq + stream ids + flags
};

/// Thrown by the master when MwOptions::deadline_seconds expires; the
/// runtime wraps it in a RankError carrying the phase label.
class PhaseDeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Master-side protocol statistics, returned by mw_master_loop and
/// mw_submaster_loop. The caller maps them onto its phase counters (they
/// are protocol-level quantities: every submitted task is exactly one of
/// duplicate/filtered/dispatched).
struct MwMasterStats {
  std::uint64_t submitted = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t filtered = 0;
  std::uint64_t dispatched = 0;
};

/// Master hooks. `admit` triages one submitted task (and owns the phase's
/// dedup set); `apply` folds one verdict into the result state. Both are
/// called on the master rank only, in message-arrival order.
template <typename Task, typename Verdict>
struct MwMaster {
  std::function<MwAdmit(const Task&)> admit;
  std::function<void(const Verdict&)> apply;
};

/// Worker hooks. `generate(comm, origin)` (re)builds rank @p origin's task
/// stream — a pure function of the shared index, charging its own virtual
/// cost — which is what makes stream adoption possible. `evaluate` answers
/// one work chunk with one verdict per task, charging compute on @p comm.
template <typename Task, typename Verdict>
struct MwWorker {
  std::function<std::vector<Task>(Communicator&, int origin)> generate;
  std::function<void(Communicator&, const std::vector<Task>&,
                     std::vector<Verdict>&)>
      evaluate;
};

/// Sub-master hooks (hierarchical mode). `admit` triages against the LOCAL
/// shard replica; `resolve` folds a worker verdict into the replica and
/// returns true when it changed the state (the verdict is then forwarded
/// to the root as a union event); `learn` folds a root-synced event from
/// another shard into the replica. All run on the sub-master rank only.
template <typename Task, typename Verdict>
struct MwShard {
  std::function<MwAdmit(const Task&)> admit;
  std::function<bool(const Verdict&)> resolve;
  std::function<void(const Verdict&)> learn;
};

/// Root hooks (hierarchical mode): folds one forwarded union event into the
/// authoritative result state. Must be idempotent — event replay after a
/// sub-master death re-applies records.
template <typename Verdict>
struct MwRoot {
  std::function<void(const Verdict&)> apply;
};

/// Root-side hierarchy statistics, returned by mw_root_loop.
struct MwRootStats {
  std::uint64_t events_applied = 0;    ///< union events folded at the root
  std::uint64_t events_synced = 0;     ///< event-log records shipped down
  std::uint64_t submasters_failed = 0;
  std::uint64_t submasters_timed_out = 0;
  std::uint64_t workers_rehomed = 0;   ///< orphans moved to a new shard
  std::uint64_t streams_rerouted = 0;  ///< full-replay stream grants
};

namespace detail {

constexpr int kMwTagRound = 1;
constexpr int kMwTagWork = 2;
constexpr int kMwTagBatch = 3;    // sub-master -> root, one per round
constexpr int kMwTagControl = 4;  // root -> sub-master reply
constexpr int kMwTagRehome = 5;   // root -> orphaned worker

/// A generation stream a worker must (re)play after its original owner
/// died: origin's stream starting at task index @p from (the master's
/// received watermark; 0 for cross-shard reroutes, whose new shard has no
/// watermark — the full replay is absorbed by admit dedup).
struct MwStreamAssign {
  int origin = -1;
  std::uint64_t from = 0;
};

template <typename Task, typename Verdict>
struct MwRoundMsg {
  std::uint64_t seq = 0;  // per-worker submission number, 1-based
  int stream = -1;        // origin rank of `tasks` (-1: none this round)
  std::uint64_t start = 0;  // index of tasks.front() within that stream
  std::vector<Task> tasks;
  std::vector<Verdict> verdicts;  // answer the work chunk with seq ack_seq
  std::uint64_t ack_seq = 0;      // 0 = no chunk answered this round
  bool exhausted = false;         // all assigned streams fully submitted
  // Telemetry piggyback: the sender's cumulative virtual-clock
  // decomposition at send time. The declared wire bytes are unchanged, so
  // carrying these does not perturb the virtual clocks or the results.
  double busy = 0.0;
  double comm = 0.0;
  double idle = 0.0;
};

template <typename Task>
struct MwWorkMsg {
  std::uint64_t seq = 0;  // per-worker order number, 1-based
  std::vector<Task> tasks;
  std::vector<MwStreamAssign> adopt;  // dead workers' streams to replay
  bool done = false;
};

/// One lockstep round's worth of shard state, sub-master -> root.
template <typename Verdict>
struct MwBatchMsg {
  std::uint64_t seq = 0;  // per-shard batch number, 1-based
  std::vector<Verdict> events;  // verdicts that changed the shard replica
  bool quiescent = false;       // shard has no pending/outstanding work
  std::vector<int> workers_lost;  // ranks observed dead this round
  std::vector<MwStreamAssign> surrendered;  // streams with no worker left
  // Telemetry piggyback (see MwRoundMsg): the sub-master's cumulative
  // virtual-clock decomposition at send time.
  double busy = 0.0;
  double comm = 0.0;
  double idle = 0.0;
};

/// Root -> sub-master reply closing one lockstep round.
template <typename Verdict>
struct MwControlMsg {
  std::uint64_t seq = 0;  // per-shard control number, 1-based
  bool done = false;
  std::vector<int> adopt_workers;  // orphans re-homed onto this shard
  std::vector<MwStreamAssign> adopt_streams;  // streams to replay here
  std::vector<Verdict> sync;  // event-log records from other shards
};

/// Root -> orphaned worker: your sub-master died; report to new_master.
struct MwRehomeMsg {
  std::uint64_t seq = 0;  // per-worker rehome number, 1-based
  int new_master = -1;
};

/// Virtual-time trace instant on the current phase timeline (tid = rank).
inline void mw_trace_event(const Communicator& comm, std::string_view name,
                           std::string_view cat) {
  if (!util::trace::enabled()) return;
  util::trace::instant(util::trace::current_pid(), comm.rank(), name, cat,
                       comm.clock().now() * 1e6);
}

/// The resilient master engine over one set of worker ranks: receive one
/// round per live worker (heartbeat retry/backoff, death healing), admit
/// and queue tasks, apply verdicts, dispatch bounded chunks. Used directly
/// by the flat master (workers = 1..p-1, no-survivor => error) and by each
/// sub-master (its shard's workers, no-survivor => surrender the streams
/// to the root). A faithful extraction of the PR-2 flat loop: the flat
/// message pattern, charges, notes, and metrics are unchanged.
template <typename Task, typename Verdict>
class MwMasterEngine {
 public:
  using RoundMsg = MwRoundMsg<Task, Verdict>;
  using WorkMsg = MwWorkMsg<Task>;

  MwMasterEngine(Communicator& comm, const MwOptions& opt,
                 std::vector<int> workers, bool surrender,
                 std::function<MwAdmit(const Task&)> admit,
                 std::function<void(const Verdict&)> apply)
      : comm_(comm),
        opt_(opt),
        surrender_(surrender),
        admit_(std::move(admit)),
        apply_(std::move(apply)),
        ws_(static_cast<std::size_t>(comm.size())),
        received_(static_cast<std::size_t>(comm.size()), 0),
        workers_(std::move(workers)),
        metric_requeued_(
            util::metrics().counter(opt.metrics_prefix + ".pairs_requeued")),
        metric_adopted_(
            util::metrics().counter(opt.metrics_prefix + ".streams_adopted")),
        metric_surrendered_(util::metrics().counter(opt.metrics_prefix +
                                                    ".streams_surrendered")),
        metric_failed_(
            util::metrics().counter(opt.metrics_prefix + ".workers_failed")),
        metric_timed_out_(util::metrics().counter(opt.metrics_prefix +
                                                  ".workers_timed_out")),
        metric_link_retries_(
            util::metrics().counter(opt.metrics_prefix + ".link_retries")),
        queue_depth_(
            util::metrics().gauge(opt.metrics_prefix + ".master.queue_depth")),
        batch_sizes_(
            util::metrics().histogram(opt.metrics_prefix + ".work_batch_size")),
        round_trips_(
            util::metrics().histogram(opt.metrics_prefix + ".round_trip_us")),
        wall_start_(std::chrono::steady_clock::now()) {
    std::sort(workers_.begin(), workers_.end());
    for (const int w : workers_) {
      ws_[static_cast<std::size_t>(w)].streams = {w};
    }
    alive_ = static_cast<int>(workers_.size());
  }

  [[nodiscard]] const MwMasterStats& stats() const { return stats_; }
  [[nodiscard]] bool has_live_worker() const { return alive_ > 0; }

  [[nodiscard]] bool deadline_expired() const {
    if (opt_.deadline_seconds <= 0.0) return false;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - wall_start_;
    return elapsed.count() > opt_.deadline_seconds;
  }

  void check_deadline() const {
    if (!deadline_expired()) return;
    throw PhaseDeadlineExceeded(
        opt_.phase + ": phase deadline of " +
        std::to_string(opt_.deadline_seconds) +
        "s exceeded (possible hung rank); master virtual time " +
        std::to_string(comm_.clock().now()) + "s");
  }

  /// Receive and fold in this round's submissions from live workers (rank
  /// ascending). Heals observed deaths. Throws when every worker died and
  /// the engine is not in surrender mode.
  void receive_rounds() {
    for (const int w : workers_) {
      if (ws_[static_cast<std::size_t>(w)].alive) receive_one(w);
    }
    if (!surrender_ && alive_ == 0) throw all_dead_error();
    queue_depth_.set(pending_.size());
  }

  /// True when no work remains anywhere: empty FIFO, every live worker
  /// exhausted with nothing outstanding and no pending stream adoption.
  [[nodiscard]] bool quiescent() const {
    bool done = pending_.empty();
    for (std::size_t i = 0; done && i < workers_.size(); ++i) {
      const WorkerState& state =
          ws_[static_cast<std::size_t>(workers_[i])];
      if (!state.alive) continue;
      done = state.exhausted && state.outstanding_seq == 0 &&
             state.adopt.empty();
    }
    return done;
  }

  /// Hand out the next chunks (empty + done on the final round).
  void dispatch(bool done) {
    for (const int w : workers_) {
      WorkerState& state = ws_[static_cast<std::size_t>(w)];
      if (!state.alive) continue;
      WorkMsg work;
      work.seq = ++state.work_seq;
      work.done = done;
      work.adopt = std::move(state.adopt);
      state.adopt.clear();
      if (!done && state.outstanding_seq == 0) {
        while (!pending_.empty() && work.tasks.size() < opt_.batch_size) {
          work.tasks.push_back(pending_.front());
          pending_.pop_front();
        }
      }
      if (!work.tasks.empty()) {
        state.outstanding = work.tasks;
        state.outstanding_seq = work.seq;
        state.dispatch_vt = comm_.clock().now();
        batch_sizes_.add(work.tasks.size());
      }
      stats_.dispatched += work.tasks.size();
      const std::uint64_t bytes =
          work.tasks.size() * opt_.task_bytes + opt_.header_bytes;
      comm_.send(w, kMwTagWork, std::any(std::move(work)), bytes);
    }
  }

  /// Adopt a re-homed orphan worker (hierarchical failover). The orphan
  /// joins with no streams — the root reroutes the dead shard's streams
  /// separately — and fresh protocol sequence state on both sides.
  void add_worker(int w) {
    WorkerState& state = ws_[static_cast<std::size_t>(w)];
    if (state.alive &&
        std::find(workers_.begin(), workers_.end(), w) != workers_.end()) {
      return;  // duplicated grant
    }
    state = WorkerState{};
    state.streams.clear();
    const auto at =
        std::lower_bound(workers_.begin(), workers_.end(), w);
    if (at == workers_.end() || *at != w) workers_.insert(at, w);
    ++alive_;
    comm_.note(opt_.phase + ": orphan worker rank " + std::to_string(w) +
               " adopted by sub-master rank " + std::to_string(comm_.rank()) +
               " at vt=" + std::to_string(comm_.clock().now()) + "s");
    mw_trace_event(comm_, "worker_adopted", "heal");
  }

  /// Assign origin's generation stream (replay from @p from) to the
  /// least-loaded live worker; with no survivor, surrender it to the root
  /// (surrender mode) or fail the phase (flat mode).
  void assign_stream(int origin, std::uint64_t from) {
    int target = -1;
    for (const int w : workers_) {
      WorkerState& cand = ws_[static_cast<std::size_t>(w)];
      if (!cand.alive) continue;
      if (target < 0 ||
          cand.streams.size() <
              ws_[static_cast<std::size_t>(target)].streams.size()) {
        target = w;
      }
    }
    if (target < 0) {
      if (!surrender_) throw all_dead_error();
      surrendered_.push_back(MwStreamAssign{origin, 0});
      comm_.count("streams_surrendered");
      metric_surrendered_.add(1);
      comm_.note(opt_.phase + ": stream of rank " + std::to_string(origin) +
                 " surrendered to the root (no surviving worker in this "
                 "shard) at vt=" +
                 std::to_string(comm_.clock().now()) + "s");
      mw_trace_event(comm_, "stream_surrendered", "heal");
      return;
    }
    WorkerState& t = ws_[static_cast<std::size_t>(target)];
    t.streams.push_back(origin);
    t.adopt.push_back(MwStreamAssign{origin, from});
    t.exhausted = false;  // new tasks are (potentially) coming
    comm_.count("streams_adopted");
    metric_adopted_.add(1);
    comm_.note(opt_.phase + ": stream of rank " + std::to_string(origin) +
               " adopted by rank " + std::to_string(target) + " at vt=" +
               std::to_string(comm_.clock().now()) + "s");
    mw_trace_event(comm_, "stream_adopted", "heal");
  }

  /// Ranks observed dead since the last call (for MwBatchMsg reporting).
  std::vector<int> take_workers_lost() {
    return std::exchange(workers_lost_, {});
  }
  /// Streams surrendered since the last call (no surviving shard worker).
  std::vector<MwStreamAssign> take_surrendered() {
    return std::exchange(surrendered_, {});
  }

 private:
  struct WorkerState {
    bool alive = true;
    bool exhausted = false;
    std::uint64_t last_round_seq = 0;  // highest RoundMsg seq consumed
    std::uint64_t work_seq = 0;        // seq of the last WorkMsg sent
    std::uint64_t outstanding_seq = 0;  // unacked chunk's seq (0 = none)
    double dispatch_vt = 0.0;           // master vt when the chunk left
    std::vector<Task> outstanding;      // its tasks, requeued on death
    std::vector<int> streams;           // generation streams assigned here
    std::vector<MwStreamAssign> adopt;  // ship with next WorkMsg
  };

  [[nodiscard]] std::runtime_error all_dead_error() const {
    return std::runtime_error(opt_.phase +
                              ": all workers failed; cannot complete the "
                              "phase");
  }

  // Self-healing: requeue the dead worker's unacked chunk ahead of the
  // FIFO and hand each of its generation streams to the least-loaded
  // survivor, which replays it from the received watermark. The admit
  // hook's dedup and idempotent verdict application swallow any replay
  // overlap. With no survivor a surrender-mode engine hands the streams
  // (and implicitly its dropped FIFO — replay re-derives every queued
  // task) back to the root.
  void reassign(int dead) {
    WorkerState& d = ws_[static_cast<std::size_t>(dead)];
    comm_.count("pairs_requeued", d.outstanding.size());
    metric_requeued_.add(d.outstanding.size());
    for (auto it = d.outstanding.rbegin(); it != d.outstanding.rend(); ++it) {
      pending_.push_front(*it);
    }
    d.outstanding.clear();
    d.outstanding_seq = 0;
    for (const int origin : d.streams) {
      assign_stream(origin, received_[static_cast<std::size_t>(origin)]);
    }
    d.streams.clear();
    d.exhausted = true;  // nothing more expected from it
    workers_lost_.push_back(dead);
    if (surrender_ && alive_ == 0 && !pending_.empty()) {
      comm_.note(opt_.phase + ": dropping " +
                 std::to_string(pending_.size()) +
                 " queued tasks; the root re-derives them from the "
                 "surrendered streams (vt=" +
                 std::to_string(comm_.clock().now()) + "s)");
      pending_.clear();
    }
  }

  void receive_one(int w) {
    WorkerState& state = ws_[static_cast<std::size_t>(w)];
    RoundMsg round;
    bool have_round = false;
    for (;;) {
      mpsim::Message msg;
      // Bounded retry with exponential backoff (optionally capped) before a
      // silent worker is declared dead: a timeout may be a transient stall,
      // not a death.
      double timeout =
          opt_.heartbeat_timeout > 0 ? opt_.heartbeat_timeout : -1.0;
      RecvStatus st = comm_.recv_status(w, kMwTagRound, msg, timeout);
      for (std::uint32_t attempt = 0;
           st == RecvStatus::kTimeout && attempt < opt_.heartbeat_retries;
           ++attempt) {
        // A retry ladder must not silently overshoot the phase watchdog:
        // re-check the deadline at every retry boundary so the failure is
        // attributed to the deadline, not buried in another backoff.
        if (deadline_expired()) {
          throw PhaseDeadlineExceeded(
              opt_.phase + ": phase deadline of " +
              std::to_string(opt_.deadline_seconds) +
              "s exceeded at a heartbeat-retry boundary on link " +
              std::to_string(comm_.rank()) + "<-" + std::to_string(w) +
              " (after retry " + std::to_string(attempt) + " of " +
              std::to_string(opt_.heartbeat_retries) +
              "); master virtual time " +
              std::to_string(comm_.clock().now()) + "s");
        }
        comm_.count("link_timeout_retries");
        metric_link_retries_.add(1);
        comm_.note(opt_.phase + ": link " + std::to_string(comm_.rank()) +
                   "<-" + std::to_string(w) + " timed out after " +
                   std::to_string(timeout) + "s (retry " +
                   std::to_string(attempt + 1) + " of " +
                   std::to_string(opt_.heartbeat_retries) + ", vt=" +
                   std::to_string(comm_.clock().now()) + "s)");
        timeout *= opt_.heartbeat_backoff;
        if (opt_.heartbeat_max_timeout > 0.0) {
          timeout = std::min(timeout, opt_.heartbeat_max_timeout);
        }
        st = comm_.recv_status(w, kMwTagRound, msg, timeout);
      }
      if (st == RecvStatus::kOk) {
        round = msg.take<RoundMsg>();
        // A duplicated delivery replays an old seq: skip it. The fresh
        // copy (or the rank-failed mark) is guaranteed to follow.
        if (round.seq <= state.last_round_seq) continue;
        state.last_round_seq = round.seq;
        have_round = true;
      } else {
        state.alive = false;
        --alive_;
        if (st == RecvStatus::kTimeout) {
          // The rank may merely be hung; a final done message releases
          // it if it ever wakes, so the run can still terminate.
          WorkMsg bye;
          bye.seq = ++state.work_seq;
          bye.done = true;
          comm_.send(w, kMwTagWork, std::any(std::move(bye)),
                     opt_.header_bytes);
          comm_.count("workers_timed_out");
          metric_timed_out_.add(1);
          comm_.note(opt_.phase + ": worker rank " + std::to_string(w) +
                     " declared dead after heartbeat timeout on link " +
                     std::to_string(comm_.rank()) + "<-" +
                     std::to_string(w) + " (vt=" +
                     std::to_string(comm_.clock().now()) + "s)");
          mw_trace_event(comm_, "worker_timed_out", "heal");
        } else {
          comm_.count("workers_failed");
          metric_failed_.add(1);
          comm_.note(opt_.phase + ": worker rank " + std::to_string(w) +
                     " failed; requeueing " +
                     std::to_string(state.outstanding.size()) +
                     " outstanding tasks (vt=" +
                     std::to_string(comm_.clock().now()) + "s)");
          mw_trace_event(comm_, "worker_failed", "heal");
        }
        reassign(w);
      }
      break;
    }
    if (!have_round) return;

    util::telemetry::record_rank(w, "worker", round.busy, round.comm,
                                 round.idle);
    state.exhausted = round.exhausted;
    if (round.ack_seq != 0 && round.ack_seq == state.outstanding_seq) {
      // Virtual dispatch->ack latency of the acknowledged chunk, from this
      // master's clock. Always-on metric; observation only.
      const double rtt = comm_.clock().now() - state.dispatch_vt;
      round_trips_.add(static_cast<std::uint64_t>(rtt * 1e6));
      util::telemetry::record_round_trip(rtt);
      state.outstanding.clear();
      state.outstanding_seq = 0;
    }
    for (const Verdict& v : round.verdicts) {
      comm_.charge_finds(1);
      apply_(v);
    }
    if (!round.verdicts.empty()) {
      util::telemetry::progress_done_virtual(round.verdicts.size(),
                                             comm_.clock().now());
    }
    if (round.stream >= 0) {
      std::uint64_t& mark = received_[static_cast<std::size_t>(round.stream)];
      mark = std::max(mark, round.start + round.tasks.size());
    }
    std::uint64_t queued = 0;
    for (const Task& task : round.tasks) {
      ++stats_.submitted;
      comm_.charge_finds(1);
      switch (admit_(task)) {
        case MwAdmit::kDuplicate:
          ++stats_.duplicates;
          break;
        case MwAdmit::kFiltered:
          ++stats_.filtered;
          break;
        case MwAdmit::kQueue:
          pending_.push_back(task);
          ++queued;
          break;
      }
    }
    if (queued > 0) util::telemetry::progress_enqueued(queued);
  }

  Communicator& comm_;
  const MwOptions& opt_;
  bool surrender_;
  std::function<MwAdmit(const Task&)> admit_;
  std::function<void(const Verdict&)> apply_;
  std::vector<WorkerState> ws_;
  // received_[origin]: tasks [0, received_) of origin's stream have reached
  // this master; a post-crash intra-shard replay starts here.
  std::vector<std::uint64_t> received_;
  std::vector<int> workers_;  // this engine's worker ranks, ascending
  int alive_ = 0;
  std::deque<Task> pending_;
  MwMasterStats stats_;
  std::vector<int> workers_lost_;
  std::vector<MwStreamAssign> surrendered_;
  util::Counter& metric_requeued_;
  util::Counter& metric_adopted_;
  util::Counter& metric_surrendered_;
  util::Counter& metric_failed_;
  util::Counter& metric_timed_out_;
  util::Counter& metric_link_retries_;
  util::Gauge& queue_depth_;
  util::SizeHistogram& batch_sizes_;
  util::SizeHistogram& round_trips_;
  std::chrono::steady_clock::time_point wall_start_;
};

}  // namespace detail

/// Run the resilient master loop on rank 0 (flat mode, masters == 1).
/// Returns once every live worker is exhausted and every dispatched chunk
/// is acknowledged. Throws std::runtime_error when every worker died,
/// PhaseDeadlineExceeded when the watchdog fires.
template <typename Task, typename Verdict>
MwMasterStats mw_master_loop(Communicator& comm, const MwOptions& opt,
                             const MwMaster<Task, Verdict>& hooks) {
  std::vector<int> workers;
  workers.reserve(static_cast<std::size_t>(comm.size() - 1));
  for (int w = 1; w < comm.size(); ++w) workers.push_back(w);
  detail::MwMasterEngine<Task, Verdict> engine(
      comm, opt, std::move(workers), /*surrender=*/false, hooks.admit,
      hooks.apply);
  bool done = false;
  while (!done) {
    engine.check_deadline();
    engine.receive_rounds();
    util::telemetry::virtual_tick(comm.clock().now());
    done = engine.quiescent();
    engine.dispatch(done);
  }
  return engine.stats();
}

/// Run one sub-master (ranks 1..masters, hierarchical mode): the resilient
/// master engine over this shard's workers, plus one lockstep batch/control
/// exchange with the root per round. Returns this shard's protocol stats.
template <typename Task, typename Verdict>
MwMasterStats mw_submaster_loop(Communicator& comm, const MwOptions& opt,
                                const MwTopology& topo,
                                const MwShard<Task, Verdict>& hooks) {
  using BatchMsg = detail::MwBatchMsg<Verdict>;
  using ControlMsg = detail::MwControlMsg<Verdict>;
  auto& metric_forwarded =
      util::metrics().counter(opt.metrics_prefix + ".events_forwarded");
  std::vector<Verdict> outbox;
  detail::MwMasterEngine<Task, Verdict> engine(
      comm, opt, topo.workers_of(comm.rank()), /*surrender=*/true,
      hooks.admit, [&](const Verdict& v) {
        if (hooks.resolve(v)) outbox.push_back(v);
      });
  std::uint64_t batch_seq = 0;
  std::uint64_t last_control_seq = 0;
  for (;;) {
    engine.receive_rounds();

    BatchMsg batch;
    batch.seq = ++batch_seq;
    batch.events = std::move(outbox);
    outbox.clear();
    batch.quiescent = engine.quiescent();
    batch.workers_lost = engine.take_workers_lost();
    batch.surrendered = engine.take_surrendered();
    batch.busy = comm.busy_time();
    batch.comm = comm.comm_time();
    batch.idle = comm.idle_time();
    comm.count("events_forwarded", batch.events.size());
    metric_forwarded.add(batch.events.size());
    const std::uint64_t up_bytes =
        batch.events.size() * opt.event_bytes + opt.header_bytes;
    comm.send(0, detail::kMwTagBatch, std::any(std::move(batch)), up_bytes);

    ControlMsg ctl;
    do {  // skip duplicated deliveries (stale seq)
      ctl = comm.recv(0, detail::kMwTagControl).template take<ControlMsg>();
    } while (ctl.seq <= last_control_seq);
    last_control_seq = ctl.seq;

    for (const Verdict& v : ctl.sync) {
      comm.charge_finds(1);
      hooks.learn(v);
    }
    for (const int w : ctl.adopt_workers) engine.add_worker(w);
    for (const detail::MwStreamAssign& a : ctl.adopt_streams) {
      engine.assign_stream(a.origin, a.from);
    }
    engine.dispatch(ctl.done);
    if (ctl.done) break;
  }
  return engine.stats();
}

/// Run the root loop on rank 0 (hierarchical mode): receive one batch per
/// live sub-master per round (heartbeat retry/backoff like the worker
/// links), fold the forwarded union events into the authoritative state
/// and the append-only event log, heal sub-master deaths (re-home orphans,
/// reroute streams for full replay, replay the log through the standing
/// sync channel), and decide global quiescence. Throws std::runtime_error
/// when every sub-master (or every worker) died, PhaseDeadlineExceeded
/// when the watchdog fires.
template <typename Verdict>
MwRootStats mw_root_loop(Communicator& comm, const MwOptions& opt,
                         const MwTopology& topo,
                         const MwRoot<Verdict>& hooks) {
  using BatchMsg = detail::MwBatchMsg<Verdict>;
  using ControlMsg = detail::MwControlMsg<Verdict>;
  const int masters = topo.masters;

  struct Shard {
    bool alive = true;
    bool quiescent = false;
    std::uint64_t last_batch_seq = 0;  // highest BatchMsg seq consumed
    std::uint64_t control_seq = 0;     // seq of the last ControlMsg sent
    std::vector<int> members;   // believed-live worker ranks homed here
    std::vector<int> origins;   // generation-stream origins owned here
    std::vector<int> grant_workers;  // orphans to announce next control
    std::vector<detail::MwStreamAssign> grant_streams;
    std::size_t sync_mark = 0;  // log index already shipped to this shard
  };
  std::vector<Shard> shards(static_cast<std::size_t>(masters) + 1);
  for (int m = 1; m <= masters; ++m) {
    shards[static_cast<std::size_t>(m)].members = topo.workers_of(m);
    shards[static_cast<std::size_t>(m)].origins = topo.workers_of(m);
  }
  int alive_shards = masters;

  // The forwarded-event log: every union event ever applied at the root,
  // with its origin shard. Replayed (origin-filtered) down the sync
  // channel so shard replicas converge and adopters inherit the state of
  // the dead.
  struct LogEntry {
    Verdict event;
    int origin;
  };
  std::vector<LogEntry> log;
  std::vector<std::uint64_t> rehome_seq(
      static_cast<std::size_t>(comm.size()), 0);

  MwRootStats stats;
  auto& metric_applied =
      util::metrics().counter(opt.metrics_prefix + ".events_applied");
  auto& metric_synced =
      util::metrics().counter(opt.metrics_prefix + ".events_synced");
  auto& metric_sm_failed =
      util::metrics().counter(opt.metrics_prefix + ".submasters_failed");
  auto& metric_sm_timed_out =
      util::metrics().counter(opt.metrics_prefix + ".submasters_timed_out");
  auto& metric_rehomed =
      util::metrics().counter(opt.metrics_prefix + ".workers_rehomed");
  auto& metric_rerouted =
      util::metrics().counter(opt.metrics_prefix + ".streams_rerouted");
  auto& metric_link_retries =
      util::metrics().counter(opt.metrics_prefix + ".link_retries");

  const auto wall_start = std::chrono::steady_clock::now();
  const auto deadline_expired = [&] {
    if (opt.deadline_seconds <= 0.0) return false;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - wall_start;
    return elapsed.count() > opt.deadline_seconds;
  };

  // Deterministic round-robin cursors over live shards; stream reroutes
  // additionally require a shard with at least one believed-live worker
  // (granting a stream to a workerless spare would only bounce back).
  int rehome_cursor = 0;
  int reroute_cursor = 0;
  const auto next_live_shard = [&](int& cursor, bool need_members) {
    for (int i = 0; i < masters; ++i) {
      const int m = 1 + (cursor + i) % masters;
      const Shard& sh = shards[static_cast<std::size_t>(m)];
      if (!sh.alive) continue;
      if (need_members && sh.members.empty()) continue;
      cursor = m % masters;
      return m;
    }
    return -1;
  };

  const auto reroute_stream = [&](int origin) {
    const int t = next_live_shard(reroute_cursor, /*need_members=*/true);
    if (t < 0) {
      throw std::runtime_error(
          opt.phase + ": all workers failed; cannot complete the phase");
    }
    Shard& target = shards[static_cast<std::size_t>(t)];
    // Full replay from index 0: the adopting shard has no received
    // watermark for this stream; admit dedup and idempotent events absorb
    // the overlap, and the replay re-derives any task the dead shard still
    // had queued or outstanding.
    target.grant_streams.push_back(detail::MwStreamAssign{origin, 0});
    target.origins.push_back(origin);
    ++stats.streams_rerouted;
    comm.count("streams_rerouted");
    metric_rerouted.add(1);
    comm.note(opt.phase + ": stream of rank " + std::to_string(origin) +
              " rerouted to sub-master rank " + std::to_string(t) +
              " for full replay (vt=" + std::to_string(comm.clock().now()) +
              "s)");
    detail::mw_trace_event(comm, "stream_rerouted", "heal");
  };

  const auto shard_failed = [&](int s, bool timed_out) {
    Shard& sh = shards[static_cast<std::size_t>(s)];
    sh.alive = false;
    --alive_shards;
    if (timed_out) {
      // May be merely hung: release it (and, through it, its workers) with
      // a final done control if it ever wakes. Its workers are NOT
      // re-homed — they exit with their master — so only the shard's
      // streams move.
      ControlMsg bye;
      bye.seq = ++sh.control_seq;
      bye.done = true;
      comm.send(s, detail::kMwTagControl, std::any(std::move(bye)),
                opt.header_bytes);
      ++stats.submasters_timed_out;
      comm.count("submasters_timed_out");
      metric_sm_timed_out.add(1);
      comm.note(opt.phase + ": sub-master rank " + std::to_string(s) +
                " declared dead after heartbeat timeout on link 0<-" +
                std::to_string(s) + "; releasing its " +
                std::to_string(sh.members.size()) +
                " workers and rerouting " + std::to_string(sh.origins.size()) +
                " streams (vt=" + std::to_string(comm.clock().now()) + "s)");
      detail::mw_trace_event(comm, "submaster_timed_out", "heal");
    } else {
      ++stats.submasters_failed;
      comm.count("submasters_failed");
      metric_sm_failed.add(1);
      comm.note(opt.phase + ": sub-master rank " + std::to_string(s) +
                " failed; re-homing " + std::to_string(sh.members.size()) +
                " orphan workers, rerouting " +
                std::to_string(sh.origins.size()) +
                " streams, and replaying its event log (" +
                std::to_string(log.size()) + " records total) (vt=" +
                std::to_string(comm.clock().now()) + "s)");
      detail::mw_trace_event(comm, "submaster_failed", "heal");
    }
    if (alive_shards == 0) {
      throw std::runtime_error(
          opt.phase + ": all sub-masters failed; cannot complete the phase");
    }
    if (!timed_out) {
      for (const int w : sh.members) {
        const int t = next_live_shard(rehome_cursor, /*need_members=*/false);
        // t >= 1 is guaranteed: alive_shards > 0 was just checked.
        detail::MwRehomeMsg go;
        go.seq = ++rehome_seq[static_cast<std::size_t>(w)];
        go.new_master = t;
        comm.send(w, detail::kMwTagRehome, std::any(go), opt.header_bytes);
        Shard& target = shards[static_cast<std::size_t>(t)];
        target.grant_workers.push_back(w);
        target.members.push_back(w);
        ++stats.workers_rehomed;
        comm.count("workers_rehomed");
        metric_rehomed.add(1);
        comm.note(opt.phase + ": orphan worker rank " + std::to_string(w) +
                  " re-homed to sub-master rank " + std::to_string(t) +
                  " (vt=" + std::to_string(comm.clock().now()) + "s)");
        detail::mw_trace_event(comm, "worker_rehomed", "heal");
      }
    }
    sh.members.clear();
    sh.grant_workers.clear();
    sh.grant_streams.clear();
    const std::vector<int> origins = std::move(sh.origins);
    sh.origins.clear();
    for (const int origin : origins) reroute_stream(origin);
  };

  bool done = false;
  while (!done) {
    if (deadline_expired()) {
      throw PhaseDeadlineExceeded(
          opt.phase + ": phase deadline of " +
          std::to_string(opt.deadline_seconds) +
          "s exceeded (possible hung rank); master virtual time " +
          std::to_string(comm.clock().now()) + "s");
    }

    // Receive one batch per live shard, rank ascending.
    for (int s = 1; s <= masters; ++s) {
      Shard& sh = shards[static_cast<std::size_t>(s)];
      if (!sh.alive) continue;
      BatchMsg batch;
      bool have = false;
      for (;;) {
        mpsim::Message msg;
        double timeout =
            opt.heartbeat_timeout > 0 ? opt.heartbeat_timeout : -1.0;
        RecvStatus st =
            comm.recv_status(s, detail::kMwTagBatch, msg, timeout);
        for (std::uint32_t attempt = 0;
             st == RecvStatus::kTimeout && attempt < opt.heartbeat_retries;
             ++attempt) {
          if (deadline_expired()) {
            throw PhaseDeadlineExceeded(
                opt.phase + ": phase deadline of " +
                std::to_string(opt.deadline_seconds) +
                "s exceeded at a heartbeat-retry boundary on link 0<-" +
                std::to_string(s) + " (after retry " +
                std::to_string(attempt) + " of " +
                std::to_string(opt.heartbeat_retries) +
                "); master virtual time " +
                std::to_string(comm.clock().now()) + "s");
          }
          comm.count("link_timeout_retries");
          metric_link_retries.add(1);
          comm.note(opt.phase + ": link 0<-" + std::to_string(s) +
                    " timed out after " + std::to_string(timeout) +
                    "s (retry " + std::to_string(attempt + 1) + " of " +
                    std::to_string(opt.heartbeat_retries) + ", vt=" +
                    std::to_string(comm.clock().now()) + "s)");
          timeout *= opt.heartbeat_backoff;
          if (opt.heartbeat_max_timeout > 0.0) {
            timeout = std::min(timeout, opt.heartbeat_max_timeout);
          }
          st = comm.recv_status(s, detail::kMwTagBatch, msg, timeout);
        }
        if (st == RecvStatus::kOk) {
          batch = msg.take<BatchMsg>();
          if (batch.seq <= sh.last_batch_seq) continue;  // duplicate
          sh.last_batch_seq = batch.seq;
          have = true;
        } else {
          shard_failed(s, st == RecvStatus::kTimeout);
        }
        break;
      }
      if (!have) continue;

      sh.quiescent = batch.quiescent;
      util::telemetry::record_rank(s, "sub-master", batch.busy, batch.comm,
                                   batch.idle);
      for (const Verdict& v : batch.events) {
        comm.charge_finds(1);
        hooks.apply(v);
        log.push_back(LogEntry{v, s});
        ++stats.events_applied;
        comm.count("events_applied");
        metric_applied.add(1);
      }
      if (!batch.events.empty()) {
        util::telemetry::progress_merges(batch.events.size());
      }
      for (const int w : batch.workers_lost) {
        sh.members.erase(
            std::remove(sh.members.begin(), sh.members.end(), w),
            sh.members.end());
      }
      for (const detail::MwStreamAssign& a : batch.surrendered) {
        sh.origins.erase(
            std::remove(sh.origins.begin(), sh.origins.end(), a.origin),
            sh.origins.end());
        reroute_stream(a.origin);
      }
    }

    util::telemetry::virtual_tick(comm.clock().now());

    // Global quiescence: every live shard reported done AND no grant is
    // still in flight (grants issued this round are reflected in the NEXT
    // round's batches, so deciding before granting is race-free).
    done = true;
    for (int s = 1; done && s <= masters; ++s) {
      const Shard& sh = shards[static_cast<std::size_t>(s)];
      if (!sh.alive) continue;
      done = sh.quiescent && sh.grant_workers.empty() &&
             sh.grant_streams.empty();
    }

    // Close the round: one control per live shard with its grants and the
    // event-log records it has not seen (origin-filtered).
    for (int s = 1; s <= masters; ++s) {
      Shard& sh = shards[static_cast<std::size_t>(s)];
      if (!sh.alive) continue;
      ControlMsg ctl;
      ctl.seq = ++sh.control_seq;
      ctl.done = done;
      ctl.adopt_workers = std::move(sh.grant_workers);
      sh.grant_workers.clear();
      ctl.adopt_streams = std::move(sh.grant_streams);
      sh.grant_streams.clear();
      if (!done) {
        for (std::size_t i = sh.sync_mark; i < log.size(); ++i) {
          if (log[i].origin == s) continue;
          ctl.sync.push_back(log[i].event);
        }
        sh.sync_mark = log.size();
        stats.events_synced += ctl.sync.size();
        comm.count("events_synced", ctl.sync.size());
        metric_synced.add(ctl.sync.size());
      }
      const std::uint64_t down_bytes =
          ctl.sync.size() * opt.event_bytes +
          ctl.adopt_streams.size() * 12 + ctl.adopt_workers.size() * 4 +
          opt.header_bytes;
      comm.send(s, detail::kMwTagControl, std::any(std::move(ctl)),
                down_bytes);
    }
  }
  return stats;
}

/// Run the worker loop until the master says done. Flat mode (masters == 1)
/// reports to rank 0 and treats a master death as fatal (RankFailedError).
/// Hierarchical mode reports to the home sub-master; on its death the
/// worker awaits the root's re-home directive, resets its protocol state,
/// drops its local streams (the root reroutes the shard's streams for full
/// replay elsewhere), and joins the new shard fresh.
template <typename Task, typename Verdict>
void mw_worker_loop(Communicator& comm, const MwOptions& opt,
                    const MwWorker<Task, Verdict>& hooks) {
  using RoundMsg = detail::MwRoundMsg<Task, Verdict>;
  using WorkMsg = detail::MwWorkMsg<Task>;
  const MwTopology topo{comm.size(), opt.masters};
  int master = topo.hierarchical() ? topo.submaster_of(comm.rank()) : 0;

  struct Stream {
    int origin;
    std::size_t next;
    std::vector<Task> tasks;
  };
  std::vector<Stream> streams;
  auto& metric_streams =
      util::metrics().counter(opt.metrics_prefix + ".generation_streams");
  // (Re)build a rank's share of the task stream; adoption replays a dead
  // rank's share from @p from, paying the regeneration cost on THIS rank's
  // clock (the generate hook charges it).
  const auto add_stream = [&](int origin, std::uint64_t from) {
    const double t0 = comm.clock().now();
    Stream s{origin, static_cast<std::size_t>(from),
             hooks.generate(comm, origin)};
    comm.count("worker_pairs_generated",
               s.tasks.size() - std::min<std::size_t>(s.next, s.tasks.size()));
    metric_streams.add(1);
    if (util::trace::enabled()) {
      const std::string name = origin == comm.rank()
                                   ? "generate"
                                   : "generate(adopted:" +
                                         std::to_string(origin) + ")";
      util::trace::complete(util::trace::current_pid(), comm.rank(), name,
                            "generation", t0 * 1e6,
                            (comm.clock().now() - t0) * 1e6);
    }
    streams.push_back(std::move(s));
  };
  add_stream(comm.rank(), 0);

  const std::size_t submit_cap =
      opt.batch_size * std::max<std::uint32_t>(1, opt.generation_batches);

  std::uint64_t seq_out = 0;
  std::uint64_t last_work_seq = 0;
  std::uint64_t last_rehome_seq = 0;
  std::uint64_t ack = 0;
  std::vector<Verdict> verdicts;

  // Hierarchical failover: the home sub-master died. Block on the root's
  // re-home directive (skipping duplicated deliveries), then join the new
  // shard with completely fresh per-link protocol state and no streams.
  const auto rehome = [&] {
    for (;;) {
      mpsim::Message msg;
      const RecvStatus st =
          comm.recv_status(0, detail::kMwTagRehome, msg, -1.0);
      if (st != RecvStatus::kOk) throw RankFailedError(0);
      const auto go = msg.take<detail::MwRehomeMsg>();
      if (go.seq <= last_rehome_seq) continue;
      last_rehome_seq = go.seq;
      master = go.new_master;
      break;
    }
    seq_out = 0;
    last_work_seq = 0;
    ack = 0;
    verdicts.clear();
    streams.clear();
    comm.count("worker_rehomes");
    comm.note(opt.phase + ": worker rank " + std::to_string(comm.rank()) +
              " re-joined under sub-master rank " + std::to_string(master) +
              " at vt=" + std::to_string(comm.clock().now()) + "s");
    detail::mw_trace_event(comm, "rehomed", "heal");
  };

  // After a re-home the worker must NOT send an unprompted round: the new
  // sub-master dispatches its first work message (carrying any stream
  // grants) at adoption time, and an unprompted pre-adoption round would
  // report exhausted=true with no streams — a stale quiescence signal that
  // could convince the root the phase is done while the regenerated tasks
  // are still in flight. Waiting for that first work message restores the
  // flat protocol's lockstep (a round is only ever a response to work).
  bool skip_round = false;
  while (true) {
    if (!skip_round) {
      RoundMsg round;
      round.seq = ++seq_out;
      for (Stream& s : streams) {
        if (s.next >= s.tasks.size()) continue;
        const std::size_t take =
            std::min<std::size_t>(submit_cap, s.tasks.size() - s.next);
        round.stream = s.origin;
        round.start = s.next;
        round.tasks.assign(
            s.tasks.begin() + static_cast<std::ptrdiff_t>(s.next),
            s.tasks.begin() + static_cast<std::ptrdiff_t>(s.next + take));
        s.next += take;
        break;
      }
      round.exhausted =
          std::all_of(streams.begin(), streams.end(), [](const Stream& s) {
            return s.next >= s.tasks.size();
          });
      round.verdicts = std::move(verdicts);
      verdicts.clear();
      round.ack_seq = ack;
      ack = 0;
      round.busy = comm.busy_time();
      round.comm = comm.comm_time();
      round.idle = comm.idle_time();
      const std::uint64_t bytes = round.tasks.size() * opt.task_bytes +
                                  round.verdicts.size() * opt.verdict_bytes +
                                  opt.header_bytes;
      comm.send(master, detail::kMwTagRound, std::any(std::move(round)),
                bytes);
    }
    skip_round = false;

    WorkMsg work;
    if (!topo.hierarchical()) {
      do {  // skip duplicated deliveries (stale seq)
        work = comm.recv(master, detail::kMwTagWork).template take<WorkMsg>();
      } while (work.seq <= last_work_seq);
    } else {
      bool rehomed = false;
      for (;;) {
        mpsim::Message msg;
        const RecvStatus st =
            comm.recv_status(master, detail::kMwTagWork, msg, -1.0);
        if (st == RecvStatus::kOk) {
          work = msg.take<WorkMsg>();
          if (work.seq <= last_work_seq) continue;  // stale duplicate
          break;
        }
        rehome();
        rehomed = true;
        break;
      }
      if (rehomed) {
        // The new sub-master speaks first (its adoption-time dispatch);
        // answering with a round before hearing it would desync lockstep.
        skip_round = true;
        continue;
      }
    }
    last_work_seq = work.seq;
    for (const detail::MwStreamAssign& a : work.adopt) {
      add_stream(a.origin, a.from);
    }
    if (work.done) break;
    if (!work.tasks.empty()) ack = work.seq;
    hooks.evaluate(comm, work.tasks, verdicts);
  }
}

}  // namespace pclust::mpsim
