// Resilient master–worker protocol over the message-passing simulator.
//
// This is the self-healing engine factored out of the PaCE phases (PR 2) so
// every simulated phase — RR, CCD, and now BGG+DSD — shares one protocol:
//
//   - Workers own deterministic GENERATION STREAMS (a pure function of a
//     shared read-only index), submit tasks in rounds, and evaluate the
//     chunks the master hands back. Submissions and work chunks carry
//     per-worker sequence numbers, so duplicated deliveries are recognized
//     and dropped on both sides (at-least-once links are safe).
//   - The master admits each task exactly once (the hook deduplicates and
//     filters), dispatches bounded chunks, and tracks the unacknowledged
//     chunk per worker. A worker death — planned crash, error, or heartbeat
//     timeout (with bounded retry + exponential backoff first) — requeues
//     its outstanding chunk ahead of the FIFO and hands each of its
//     generation streams to the least-loaded survivor, which replays the
//     stream from the master's received watermark. The seen-set in the
//     admit hook and idempotent verdict application absorb replay overlap.
//   - A wall-clock phase deadline turns a hung phase into an attributed
//     RankError instead of a silent hang.
//
// Verdict APPLICATION order still follows message arrival, so a phase is
// bit-identical under faults exactly when its apply is confluent (CCD's
// union-find, DSD's keyed family slots) — see DESIGN.md §11 for the
// per-phase guarantees.
#pragma once

#include <algorithm>
#include <any>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "pclust/mpsim/communicator.hpp"
#include "pclust/util/metrics.hpp"
#include "pclust/util/trace.hpp"

namespace pclust::mpsim {

/// Master-side triage of one submitted task.
enum class MwAdmit : std::uint8_t {
  kQueue = 0,   ///< fresh and useful: dispatch it to a worker
  kDuplicate,   ///< already seen (stream replay or duplicated delivery)
  kFiltered,    ///< skipped by the phase's cluster filter
};

struct MwOptions {
  /// Phase label for fault events and errors (e.g. "rr", "ccd", "dsd").
  std::string phase = "mw";
  /// Process-metrics key prefix (e.g. "pace" keeps the PR-2 metric names).
  std::string metrics_prefix = "mw";
  /// Tasks per worker->master submission and per master->worker chunk.
  std::size_t batch_size = 256;
  /// Batches a worker submits per protocol round (>= 1).
  std::uint32_t generation_batches = 1;
  /// Master-side liveness backstop, WALL-clock seconds; <= 0 waits forever.
  double heartbeat_timeout = 0.0;
  /// Extra timed-out receives (exponential backoff on the timeout) before a
  /// silent worker is declared dead. Transient scheduling stalls heal here.
  std::uint32_t heartbeat_retries = 2;
  /// Timeout multiplier per heartbeat retry.
  double heartbeat_backoff = 2.0;
  /// Whole-phase WALL-clock watchdog, seconds; 0 disables. On expiry the
  /// master throws PhaseDeadlineExceeded, which surfaces as a RankError
  /// attributed to this phase.
  double deadline_seconds = 0.0;
  /// Wire-size estimates for the virtual clock (bytes per element).
  std::uint64_t task_bytes = 16;
  std::uint64_t verdict_bytes = 8;
  std::uint64_t header_bytes = 25;  // seq + stream ids + flags
};

/// Thrown by the master when MwOptions::deadline_seconds expires; the
/// runtime wraps it in a RankError carrying the phase label.
class PhaseDeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Master-side protocol statistics, returned by mw_master_loop. The caller
/// maps them onto its phase counters (they are protocol-level quantities:
/// every submitted task is exactly one of duplicate/filtered/dispatched).
struct MwMasterStats {
  std::uint64_t submitted = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t filtered = 0;
  std::uint64_t dispatched = 0;
};

/// Master hooks. `admit` triages one submitted task (and owns the phase's
/// dedup set); `apply` folds one verdict into the result state. Both are
/// called on the master rank only, in message-arrival order.
template <typename Task, typename Verdict>
struct MwMaster {
  std::function<MwAdmit(const Task&)> admit;
  std::function<void(const Verdict&)> apply;
};

/// Worker hooks. `generate(comm, origin)` (re)builds rank @p origin's task
/// stream — a pure function of the shared index, charging its own virtual
/// cost — which is what makes stream adoption possible. `evaluate` answers
/// one work chunk with one verdict per task, charging compute on @p comm.
template <typename Task, typename Verdict>
struct MwWorker {
  std::function<std::vector<Task>(Communicator&, int origin)> generate;
  std::function<void(Communicator&, const std::vector<Task>&,
                     std::vector<Verdict>&)>
      evaluate;
};

namespace detail {

constexpr int kMwTagRound = 1;
constexpr int kMwTagWork = 2;

/// A generation stream a worker must (re)play after its original owner
/// died: origin's stream starting at task index @p from (the master's
/// received watermark).
struct MwStreamAssign {
  int origin = -1;
  std::uint64_t from = 0;
};

template <typename Task, typename Verdict>
struct MwRoundMsg {
  std::uint64_t seq = 0;  // per-worker submission number, 1-based
  int stream = -1;        // origin rank of `tasks` (-1: none this round)
  std::uint64_t start = 0;  // index of tasks.front() within that stream
  std::vector<Task> tasks;
  std::vector<Verdict> verdicts;  // answer the work chunk with seq ack_seq
  std::uint64_t ack_seq = 0;      // 0 = no chunk answered this round
  bool exhausted = false;         // all assigned streams fully submitted
};

template <typename Task>
struct MwWorkMsg {
  std::uint64_t seq = 0;  // per-worker order number, 1-based
  std::vector<Task> tasks;
  std::vector<MwStreamAssign> adopt;  // dead workers' streams to replay
  bool done = false;
};

/// Virtual-time trace instant on the current phase timeline (tid = rank).
inline void mw_trace_event(const Communicator& comm, std::string_view name,
                           std::string_view cat) {
  if (!util::trace::enabled()) return;
  util::trace::instant(util::trace::current_pid(), comm.rank(), name, cat,
                       comm.clock().now() * 1e6);
}

}  // namespace detail

/// Run the resilient master loop on rank 0. Returns once every live worker
/// is exhausted and every dispatched chunk is acknowledged. Throws
/// std::runtime_error when every worker died, PhaseDeadlineExceeded when
/// the watchdog fires.
template <typename Task, typename Verdict>
MwMasterStats mw_master_loop(Communicator& comm, const MwOptions& opt,
                             const MwMaster<Task, Verdict>& hooks) {
  using RoundMsg = detail::MwRoundMsg<Task, Verdict>;
  using WorkMsg = detail::MwWorkMsg<Task>;
  const int p = comm.size();
  const auto all_dead_error = [&] {
    return std::runtime_error(opt.phase +
                              ": all workers failed; cannot complete the "
                              "phase");
  };

  struct WorkerState {
    bool alive = true;
    bool exhausted = false;
    std::uint64_t last_round_seq = 0;  // highest RoundMsg seq consumed
    std::uint64_t work_seq = 0;        // seq of the last WorkMsg sent
    std::uint64_t outstanding_seq = 0;  // unacked chunk's seq (0 = none)
    std::vector<Task> outstanding;      // its tasks, requeued on death
    std::vector<int> streams;           // generation streams assigned here
    std::vector<detail::MwStreamAssign> adopt;  // ship with next WorkMsg
  };
  std::vector<WorkerState> ws(static_cast<std::size_t>(p));
  // received[origin]: tasks [0, received) of origin's stream have reached
  // the master; a post-crash replay starts here.
  std::vector<std::uint64_t> received(static_cast<std::size_t>(p), 0);
  for (int w = 1; w < p; ++w) ws[static_cast<std::size_t>(w)].streams = {w};
  int alive_workers = p - 1;

  std::deque<Task> pending;
  MwMasterStats stats;
  auto& metric_requeued =
      util::metrics().counter(opt.metrics_prefix + ".pairs_requeued");
  auto& metric_adopted =
      util::metrics().counter(opt.metrics_prefix + ".streams_adopted");
  auto& metric_failed =
      util::metrics().counter(opt.metrics_prefix + ".workers_failed");
  auto& metric_timed_out =
      util::metrics().counter(opt.metrics_prefix + ".workers_timed_out");
  auto& metric_link_retries =
      util::metrics().counter(opt.metrics_prefix + ".link_retries");
  auto& queue_depth =
      util::metrics().gauge(opt.metrics_prefix + ".master.queue_depth");
  auto& batch_sizes =
      util::metrics().histogram(opt.metrics_prefix + ".work_batch_size");

  // Self-healing: requeue the dead worker's unacked chunk ahead of the
  // FIFO and hand each of its generation streams to the least-loaded
  // survivor, which replays it from the received watermark. The admit
  // hook's dedup and idempotent verdict application swallow any replay
  // overlap.
  const auto reassign = [&](int dead) {
    WorkerState& d = ws[static_cast<std::size_t>(dead)];
    comm.count("pairs_requeued", d.outstanding.size());
    metric_requeued.add(d.outstanding.size());
    for (auto it = d.outstanding.rbegin(); it != d.outstanding.rend(); ++it) {
      pending.push_front(*it);
    }
    d.outstanding.clear();
    d.outstanding_seq = 0;
    for (const int origin : d.streams) {
      int target = -1;
      for (int w = 1; w < p; ++w) {
        WorkerState& cand = ws[static_cast<std::size_t>(w)];
        if (!cand.alive) continue;
        if (target < 0 ||
            cand.streams.size() <
                ws[static_cast<std::size_t>(target)].streams.size()) {
          target = w;
        }
      }
      if (target < 0) throw all_dead_error();
      WorkerState& t = ws[static_cast<std::size_t>(target)];
      t.streams.push_back(origin);
      t.adopt.push_back(detail::MwStreamAssign{
          origin, received[static_cast<std::size_t>(origin)]});
      t.exhausted = false;  // new tasks are (potentially) coming
      comm.count("streams_adopted");
      metric_adopted.add(1);
      comm.note(opt.phase + ": stream of rank " + std::to_string(origin) +
                " adopted by rank " + std::to_string(target) + " at vt=" +
                std::to_string(comm.clock().now()) + "s");
      detail::mw_trace_event(comm, "stream_adopted", "heal");
    }
    d.streams.clear();
    d.exhausted = true;  // nothing more expected from it
  };

  const auto wall_start = std::chrono::steady_clock::now();
  const auto deadline_expired = [&] {
    if (opt.deadline_seconds <= 0.0) return false;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - wall_start;
    return elapsed.count() > opt.deadline_seconds;
  };

  bool done = false;
  while (!done) {
    if (deadline_expired()) {
      throw PhaseDeadlineExceeded(
          opt.phase + ": phase deadline of " +
          std::to_string(opt.deadline_seconds) +
          "s exceeded (possible hung rank); master virtual time " +
          std::to_string(comm.clock().now()) + "s");
    }

    // Receive and fold in this round's submissions from live workers.
    for (int w = 1; w < p; ++w) {
      WorkerState& state = ws[static_cast<std::size_t>(w)];
      if (!state.alive) continue;

      RoundMsg round;
      bool have_round = false;
      for (;;) {
        mpsim::Message msg;
        // Bounded retry with exponential backoff before a silent worker is
        // declared dead: a timeout may be a transient stall, not a death.
        double timeout =
            opt.heartbeat_timeout > 0 ? opt.heartbeat_timeout : -1.0;
        RecvStatus st = comm.recv_status(w, detail::kMwTagRound, msg, timeout);
        for (std::uint32_t attempt = 0;
             st == RecvStatus::kTimeout && attempt < opt.heartbeat_retries;
             ++attempt) {
          comm.count("link_timeout_retries");
          metric_link_retries.add(1);
          comm.note(opt.phase + ": link 0<-" + std::to_string(w) +
                    " timed out after " + std::to_string(timeout) +
                    "s (retry " + std::to_string(attempt + 1) + " of " +
                    std::to_string(opt.heartbeat_retries) + ", vt=" +
                    std::to_string(comm.clock().now()) + "s)");
          timeout *= opt.heartbeat_backoff;
          st = comm.recv_status(w, detail::kMwTagRound, msg, timeout);
        }
        if (st == RecvStatus::kOk) {
          round = msg.take<RoundMsg>();
          // A duplicated delivery replays an old seq: skip it. The fresh
          // copy (or the rank-failed mark) is guaranteed to follow.
          if (round.seq <= state.last_round_seq) continue;
          state.last_round_seq = round.seq;
          have_round = true;
        } else {
          state.alive = false;
          --alive_workers;
          if (st == RecvStatus::kTimeout) {
            // The rank may merely be hung; a final done message releases
            // it if it ever wakes, so the run can still terminate.
            WorkMsg bye;
            bye.seq = ++state.work_seq;
            bye.done = true;
            comm.send(w, detail::kMwTagWork, std::any(std::move(bye)),
                      opt.header_bytes);
            comm.count("workers_timed_out");
            metric_timed_out.add(1);
            comm.note(opt.phase + ": worker rank " + std::to_string(w) +
                      " declared dead after heartbeat timeout on link 0<-" +
                      std::to_string(w) + " (vt=" +
                      std::to_string(comm.clock().now()) + "s)");
            detail::mw_trace_event(comm, "worker_timed_out", "heal");
          } else {
            comm.count("workers_failed");
            metric_failed.add(1);
            comm.note(opt.phase + ": worker rank " + std::to_string(w) +
                      " failed; requeueing " +
                      std::to_string(state.outstanding.size()) +
                      " outstanding tasks (vt=" +
                      std::to_string(comm.clock().now()) + "s)");
            detail::mw_trace_event(comm, "worker_failed", "heal");
          }
          reassign(w);
        }
        break;
      }
      if (!have_round) continue;

      state.exhausted = round.exhausted;
      if (round.ack_seq != 0 && round.ack_seq == state.outstanding_seq) {
        state.outstanding.clear();
        state.outstanding_seq = 0;
      }
      for (const Verdict& v : round.verdicts) {
        comm.charge_finds(1);
        hooks.apply(v);
      }
      if (round.stream >= 0) {
        std::uint64_t& mark = received[static_cast<std::size_t>(round.stream)];
        mark = std::max(mark, round.start + round.tasks.size());
      }
      for (const Task& task : round.tasks) {
        ++stats.submitted;
        comm.charge_finds(1);
        switch (hooks.admit(task)) {
          case MwAdmit::kDuplicate:
            ++stats.duplicates;
            break;
          case MwAdmit::kFiltered:
            ++stats.filtered;
            break;
          case MwAdmit::kQueue:
            pending.push_back(task);
            break;
        }
      }
    }

    if (alive_workers == 0) throw all_dead_error();

    queue_depth.set(pending.size());

    done = pending.empty();
    for (int w = 1; done && w < p; ++w) {
      const WorkerState& state = ws[static_cast<std::size_t>(w)];
      if (!state.alive) continue;
      done = state.exhausted && state.outstanding_seq == 0 &&
             state.adopt.empty();
    }

    // Hand out the next chunks (empty + done on the final round).
    for (int w = 1; w < p; ++w) {
      WorkerState& state = ws[static_cast<std::size_t>(w)];
      if (!state.alive) continue;
      WorkMsg work;
      work.seq = ++state.work_seq;
      work.done = done;
      work.adopt = std::move(state.adopt);
      state.adopt.clear();
      if (!done && state.outstanding_seq == 0) {
        while (!pending.empty() && work.tasks.size() < opt.batch_size) {
          work.tasks.push_back(pending.front());
          pending.pop_front();
        }
      }
      if (!work.tasks.empty()) {
        state.outstanding = work.tasks;
        state.outstanding_seq = work.seq;
        batch_sizes.add(work.tasks.size());
      }
      stats.dispatched += work.tasks.size();
      const std::uint64_t bytes =
          work.tasks.size() * opt.task_bytes + opt.header_bytes;
      comm.send(w, detail::kMwTagWork, std::any(std::move(work)), bytes);
    }
  }
  return stats;
}

/// Run the worker loop on ranks 1..p-1 until the master says done.
template <typename Task, typename Verdict>
void mw_worker_loop(Communicator& comm, const MwOptions& opt,
                    const MwWorker<Task, Verdict>& hooks) {
  using RoundMsg = detail::MwRoundMsg<Task, Verdict>;
  using WorkMsg = detail::MwWorkMsg<Task>;

  struct Stream {
    int origin;
    std::size_t next;
    std::vector<Task> tasks;
  };
  std::vector<Stream> streams;
  auto& metric_streams =
      util::metrics().counter(opt.metrics_prefix + ".generation_streams");
  // (Re)build a rank's share of the task stream; adoption replays a dead
  // rank's share from @p from, paying the regeneration cost on THIS rank's
  // clock (the generate hook charges it).
  const auto add_stream = [&](int origin, std::uint64_t from) {
    const double t0 = comm.clock().now();
    Stream s{origin, static_cast<std::size_t>(from),
             hooks.generate(comm, origin)};
    comm.count("worker_pairs_generated",
               s.tasks.size() - std::min<std::size_t>(s.next, s.tasks.size()));
    metric_streams.add(1);
    if (util::trace::enabled()) {
      const std::string name = origin == comm.rank()
                                   ? "generate"
                                   : "generate(adopted:" +
                                         std::to_string(origin) + ")";
      util::trace::complete(util::trace::current_pid(), comm.rank(), name,
                            "generation", t0 * 1e6,
                            (comm.clock().now() - t0) * 1e6);
    }
    streams.push_back(std::move(s));
  };
  add_stream(comm.rank(), 0);

  const std::size_t submit_cap =
      opt.batch_size * std::max<std::uint32_t>(1, opt.generation_batches);

  std::uint64_t seq_out = 0;
  std::uint64_t last_work_seq = 0;
  std::uint64_t ack = 0;
  std::vector<Verdict> verdicts;
  while (true) {
    RoundMsg round;
    round.seq = ++seq_out;
    for (Stream& s : streams) {
      if (s.next >= s.tasks.size()) continue;
      const std::size_t take =
          std::min<std::size_t>(submit_cap, s.tasks.size() - s.next);
      round.stream = s.origin;
      round.start = s.next;
      round.tasks.assign(
          s.tasks.begin() + static_cast<std::ptrdiff_t>(s.next),
          s.tasks.begin() + static_cast<std::ptrdiff_t>(s.next + take));
      s.next += take;
      break;
    }
    round.exhausted =
        std::all_of(streams.begin(), streams.end(), [](const Stream& s) {
          return s.next >= s.tasks.size();
        });
    round.verdicts = std::move(verdicts);
    verdicts.clear();
    round.ack_seq = ack;
    ack = 0;
    const std::uint64_t bytes = round.tasks.size() * opt.task_bytes +
                                round.verdicts.size() * opt.verdict_bytes +
                                opt.header_bytes;
    comm.send(0, detail::kMwTagRound, std::any(std::move(round)), bytes);

    WorkMsg work;
    do {  // skip duplicated deliveries (stale seq)
      work = comm.recv(0, detail::kMwTagWork).template take<WorkMsg>();
    } while (work.seq <= last_work_seq);
    last_work_seq = work.seq;
    for (const detail::MwStreamAssign& a : work.adopt) {
      add_stream(a.origin, a.from);
    }
    if (work.done) break;
    if (!work.tasks.empty()) ack = work.seq;
    hooks.evaluate(comm, work.tasks, verdicts);
  }
}

}  // namespace pclust::mpsim
