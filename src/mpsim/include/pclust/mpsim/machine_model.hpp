// Machine cost models for the message-passing simulator.
//
// The paper ran the RR and CCD phases on a 512-node BlueGene/L (two 700 MHz
// PPC440 cores per node, 512 MB RAM, co-processor mode) and the DSD phase on
// a 24-node Xeon/gigabit cluster. Neither machine is available here, so
// mpsim replays the algorithms under a LogP-style analytic model: each rank
// carries a virtual clock advanced by per-operation costs, and message
// receipt synchronizes clocks (receiver >= sender + latency + bytes/bw).
// Absolute constants are calibrated so the 80 K-sequence RR phase lands in
// the paper's Table-II ballpark (~17.5 Ks at p=32); what the benches assert
// is curve SHAPE, not seconds.
#pragma once

#include <cstdint>
#include <string>

namespace pclust::mpsim {

struct MachineModel {
  std::string name;

  /// Seconds per dynamic-programming cell evaluated (alignment work).
  double cell_cost = 2e-8;
  /// Seconds per text character processed while building suffix structures.
  double index_char_cost = 1e-6;
  /// Seconds per promising pair generated/handled (enumeration + queueing).
  double pair_cost = 1e-7;
  /// Seconds per union-find operation at the master.
  double find_cost = 2e-7;
  /// Seconds per shingle hash-and-select operation (DSD phase).
  double hash_cost = 1e-8;

  /// One-way message latency, seconds.
  double latency = 5e-6;
  /// Seconds per payload byte (1 / bandwidth).
  double byte_cost = 1.0 / 150e6;

  /// The 700 MHz PPC440 BlueGene/L node (co-processor mode).
  static MachineModel bluegene_l();
  /// The 2.33 GHz Xeon / gigabit-ethernet commodity cluster.
  static MachineModel xeon_cluster();
  /// Zero-latency, zero-cost model for functional tests.
  static MachineModel free();
};

}  // namespace pclust::mpsim
