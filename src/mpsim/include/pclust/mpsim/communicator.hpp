// Communicator: the per-rank handle of the message-passing simulator.
//
// Semantics follow a small MPI subset — blocking tagged point-to-point
// send/recv (FIFO per (src, dst, tag)), barrier, broadcast, gather — with a
// virtual clock per rank:
//   - compute is charged explicitly via charge_*() (analytic op counts);
//   - send() stamps the payload with the sender's current virtual time;
//   - recv() advances the receiver to max(own, stamp + latency + bytes/bw).
// Ranks execute on real threads, so the wall-clock interleaving is
// arbitrary, but the VIRTUAL times are a function of the communication
// pattern alone, which is what the scalability benches measure.
//
// Payloads move through std::any in-process; `bytes` is the size the
// payload WOULD have on the wire and only affects the clock.
#pragma once

#include <any>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "pclust/mpsim/machine_model.hpp"

namespace pclust::mpsim {

class Transport;  // internal shared state (runtime.cpp)

/// Outcome of a status-reporting receive (see Communicator::recv_status).
enum class RecvStatus {
  kOk = 0,        ///< a matching message was received
  kRankFailed,    ///< the awaited peer failed and left no matching message
  kTimeout,       ///< the wall-clock timeout expired first
};

struct Message {
  int src = -1;
  int tag = 0;
  std::any payload;
  std::uint64_t bytes = 0;
  double send_time = 0.0;

  template <typename T>
  [[nodiscard]] T take() {
    return std::any_cast<T>(std::move(payload));
  }
};

/// Per-rank virtual clock (seconds since phase start).
class VirtualClock {
 public:
  void advance(double seconds) { now_ += seconds; }
  void advance_to(double t) {
    if (t > now_) now_ = t;
  }
  [[nodiscard]] double now() const { return now_; }

 private:
  double now_ = 0.0;
};

class Communicator {
 public:
  /// @p crash_at / @p compute_factor implement the fault plan: the rank
  /// throws RankCrashed the first time its virtual clock reaches
  /// @p crash_at, and every compute charge is scaled by @p compute_factor
  /// (straggler model). The defaults are fault-free.
  Communicator(Transport& transport, int rank, const MachineModel& model,
               double crash_at = std::numeric_limits<double>::infinity(),
               double compute_factor = 1.0);

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;
  [[nodiscard]] const MachineModel& model() const { return model_; }
  [[nodiscard]] VirtualClock& clock() { return clock_; }
  [[nodiscard]] const VirtualClock& clock() const { return clock_; }

  /// True while @p rank has neither crashed nor errored out.
  [[nodiscard]] bool peer_alive(int rank) const;

  // -- compute cost charging ------------------------------------------------
  void charge_cells(std::uint64_t n) {
    advance_busy(static_cast<double>(n) * model_.cell_cost * compute_factor_);
    check_crash();
  }
  void charge_index_chars(std::uint64_t n) {
    advance_busy(static_cast<double>(n) * model_.index_char_cost *
                 compute_factor_);
    check_crash();
  }
  void charge_pairs(std::uint64_t n) {
    advance_busy(static_cast<double>(n) * model_.pair_cost * compute_factor_);
    check_crash();
  }
  void charge_finds(std::uint64_t n) {
    advance_busy(static_cast<double>(n) * model_.find_cost * compute_factor_);
    check_crash();
  }
  void charge_hashes(std::uint64_t n) {
    advance_busy(static_cast<double>(n) * model_.hash_cost * compute_factor_);
    check_crash();
  }

  // -- virtual-time decomposition -------------------------------------------
  // Every clock advance is attributed to exactly one of three accumulators:
  //   busy — compute charged via charge_*() (straggler-scaled);
  //   comm — wire time: explicit latency/transfer advances plus, on a
  //          waiting advance_to(), at most the wire cost of the awaited
  //          message (the rest of the jump is time the peer had not sent
  //          yet, i.e. idle);
  //   idle — everything else (blocked on a peer or a barrier).
  // Invariant: busy + comm + idle == clock().now() (up to fp rounding);
  // the run report's rank_times section is checked against it.
  [[nodiscard]] double busy_time() const { return busy_; }
  [[nodiscard]] double comm_time() const { return comm_; }
  [[nodiscard]] double idle_time() const {
    const double idle = clock_.now() - busy_ - comm_;
    return idle > 0.0 ? idle : 0.0;
  }

  // -- point-to-point -------------------------------------------------------
  /// Blocking-buffered send (never waits). @p bytes is the wire size used
  /// for the receiver's clock; pass an honest estimate.
  void send(int dst, int tag, std::any payload, std::uint64_t bytes);

  /// Blocking receive of the next message from @p src with tag @p tag
  /// (FIFO per src/tag). Advances this rank's clock to the arrival time.
  /// Throws RankFailedError if @p src fails while nothing matching remains
  /// queued — so a blocked survivor observes the failure instead of
  /// deadlocking. Fault-aware protocols should prefer recv_status.
  Message recv(int src, int tag);

  /// Failure-aware receive: blocks until a matching message arrives (kOk,
  /// message stored in @p out, clock advanced), the awaited peer is marked
  /// failed with no matching message left (kRankFailed), or
  /// @p timeout_seconds of WALL-clock time pass (kTimeout; < 0 waits
  /// forever). The timeout is a liveness backstop for hung ranks: virtual
  /// time is not advanced on kRankFailed/kTimeout, so timeouts left unused
  /// preserve bit-identical virtual timing.
  RecvStatus recv_status(int src, int tag, Message& out,
                         double timeout_seconds = -1.0);

  /// True if a matching message is already queued (does not block or
  /// advance the clock).
  [[nodiscard]] bool poll(int src, int tag) const;

  // -- collectives ----------------------------------------------------------
  /// All ranks synchronize; every clock advances to the global max plus a
  /// log2(p) latency term.
  void barrier();

  /// Root's payload is delivered to every rank (binomial-tree time model).
  std::any broadcast(int root, std::any payload, std::uint64_t bytes);

  /// Every rank contributes a double; all ranks receive the max.
  double allreduce_max(double value);

  /// Every rank contributes a double; all ranks receive the sum.
  double allreduce_sum(double value);

  /// Every rank contributes a payload; the root receives them ordered by
  /// rank (others get an empty vector). Linear message count, tree-shaped
  /// completion time at the root.
  std::vector<std::any> gather(int root, std::any payload,
                               std::uint64_t bytes);

  /// The root distributes one payload per rank; each rank receives its own.
  std::any scatter(int root, std::vector<std::any> payloads,
                   std::uint64_t bytes_each);

  // -- counters -------------------------------------------------------------
  /// Free-form per-rank statistics, aggregated into RunResult.
  void count(const std::string& key, std::uint64_t delta = 1);
  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }

  /// Per-link traffic recorded by send(): one entry per destination this
  /// rank ever sent to (keys "link.SRC->DST.msgs" / ".bytes" in counters()).
  void record_link_traffic(int dst, std::uint64_t bytes);

  /// Record a human-readable fault/healing event (worker death, timeout,
  /// adoption, ...). Events are merged rank-ascending into
  /// RunResult::fault_events so healed runs stay auditable.
  void note(std::string event) { notes_.push_back(std::move(event)); }
  [[nodiscard]] const std::vector<std::string>& notes() const {
    return notes_;
  }

 private:
  /// Dies (throws RankCrashed, marks the rank failed in the transport) once
  /// the virtual clock has reached the planned crash time. Called on every
  /// charge and at the top of every communication operation.
  void check_crash();

  void advance_busy(double seconds) {
    clock_.advance(seconds);
    busy_ += seconds;
  }
  void advance_comm(double seconds) {
    clock_.advance(seconds);
    comm_ += seconds;
  }
  /// Advance to @p target attributing at most @p wire_seconds of the jump
  /// to comm; any remainder is idle (wait for a peer that was not ready).
  void advance_to_comm(double target, double wire_seconds) {
    const double jump = target - clock_.now();
    if (jump <= 0.0) return;
    comm_ += jump < wire_seconds ? jump : wire_seconds;
    clock_.advance_to(target);
  }

  Transport& transport_;
  int rank_;
  const MachineModel& model_;
  VirtualClock clock_;
  double busy_ = 0.0;
  double comm_ = 0.0;
  double crash_at_;
  double compute_factor_;
  bool crashed_ = false;
  std::map<std::string, std::uint64_t> counters_;
  std::vector<std::string> notes_;

  // Cached "link.SRC->DST.{msgs,bytes}" key strings, indexed by dst, so
  // record_link_traffic never formats on the hot path after first use.
  struct LinkKeys {
    std::string msgs;
    std::string bytes;
  };
  std::vector<LinkKeys> link_keys_;
};

}  // namespace pclust::mpsim
