// Deterministic fault injection for the message-passing simulator.
//
// A FaultPlan describes, ahead of a run, every fault the simulated machine
// will experience. All injection is a pure function of (plan, virtual time,
// per-link message ordinal), never of wall-clock thread interleaving, so a
// given (plan, workload) pair reproduces the same faulted execution — and
// the same RunResult — on every replay.
//
// Fault model (documented in DESIGN.md "Fault model & checkpoint format"):
//   - Rank crash: the rank's thread dies (throws RankCrashed, recorded in
//     RunResult::crashed_ranks) the first time its VIRTUAL clock reaches
//     `at_virtual_time`. Messages it sent before dying stay deliverable;
//     peers blocked on it observe RecvStatus::kRankFailed instead of
//     deadlocking.
//   - Message drop: the link layer is modelled as reliable-with-retransmit
//     (the paper's MPI runs on a reliable torus): a "dropped" copy costs a
//     retransmission delay added to the arrival stamp rather than silent
//     loss, so timing degrades but payloads are never destroyed. Only
//     application messages (tag >= 0) are perturbed; internal collective
//     tags ride the reliable layer untouched.
//   - Message duplication: the message is delivered twice (the classic
//     at-least-once failure); protocols on top must deduplicate (the PaCE
//     engine carries sequence numbers and applies verdicts idempotently).
//   - Straggler: a per-rank multiplier on every compute charge — the rank
//     is slow, not dead.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace pclust::mpsim {

struct FaultPlan {
  /// Seeds the per-message drop/duplication decisions.
  std::uint64_t seed = 0;

  struct Crash {
    int rank = -1;
    /// The rank dies the first time its virtual clock is >= this.
    double at_virtual_time = 0.0;
  };
  std::vector<Crash> crashes;

  /// Per-message probability that a copy is dropped in flight; each dropped
  /// copy adds `retransmit_delay` to the arrival stamp (reliable link with
  /// retransmission, see header comment). In [0, 1).
  double drop_probability = 0.0;
  /// Virtual seconds added per dropped copy.
  double retransmit_delay = 1e-3;

  /// Per-message probability of a duplicate delivery. In [0, 1).
  double duplicate_probability = 0.0;

  /// Per-rank compute slowdown multipliers; ranks beyond the vector (or
  /// with values <= 0) run at factor 1.
  std::vector<double> straggler_factor;

  [[nodiscard]] bool empty() const {
    return crashes.empty() && drop_probability <= 0.0 &&
           duplicate_probability <= 0.0 && straggler_factor.empty();
  }

  /// Earliest planned crash time for @p rank; +inf when it never crashes.
  [[nodiscard]] double crash_time(int rank) const {
    double at = std::numeric_limits<double>::infinity();
    for (const Crash& c : crashes) {
      if (c.rank == rank && c.at_virtual_time < at) at = c.at_virtual_time;
    }
    return at;
  }

  [[nodiscard]] double slowdown(int rank) const {
    const auto i = static_cast<std::size_t>(rank);
    if (rank < 0 || i >= straggler_factor.size()) return 1.0;
    return straggler_factor[i] > 0.0 ? straggler_factor[i] : 1.0;
  }

  /// Throws std::invalid_argument if the plan is malformed for @p p ranks.
  void validate(int p) const {
    for (const Crash& c : crashes) {
      if (c.rank < 0 || c.rank >= p) {
        throw std::invalid_argument(
            "FaultPlan: crash rank " + std::to_string(c.rank) +
            " out of range for p=" + std::to_string(p));
      }
    }
    if (drop_probability < 0.0 || drop_probability >= 1.0 ||
        duplicate_probability < 0.0 || duplicate_probability >= 1.0) {
      throw std::invalid_argument(
          "FaultPlan: probabilities must lie in [0, 1)");
    }
    if (retransmit_delay < 0.0) {
      throw std::invalid_argument("FaultPlan: retransmit_delay must be >= 0");
    }
  }
};

/// Thrown inside a rank when its planned crash time is reached. Interception
/// is internal: mpsim::run records the rank in RunResult::crashed_ranks and
/// does NOT propagate this to the caller.
class RankCrashed : public std::runtime_error {
 public:
  explicit RankCrashed(int rank)
      : std::runtime_error("mpsim: rank " + std::to_string(rank) +
                           " crashed (fault plan)"),
        rank_(rank) {}
  [[nodiscard]] int rank() const { return rank_; }

 private:
  int rank_;
};

/// Thrown by the plain (non-status) recv when the awaited peer has failed
/// and no matching message remains — the legacy blocking API's way of
/// observing a failure instead of deadlocking. Fault-aware protocols use
/// Communicator::recv_status and get RecvStatus::kRankFailed instead.
class RankFailedError : public std::runtime_error {
 public:
  explicit RankFailedError(int rank)
      : std::runtime_error("mpsim: peer rank " + std::to_string(rank) +
                           " failed while a message from it was awaited"),
        rank_(rank) {}
  [[nodiscard]] int rank() const { return rank_; }

 private:
  int rank_;
};

}  // namespace pclust::mpsim
