// Deterministic fault injection for the message-passing simulator.
//
// A FaultPlan describes, ahead of a run, every fault the simulated machine
// will experience. All injection is a pure function of (plan, virtual time,
// per-link message ordinal), never of wall-clock thread interleaving, so a
// given (plan, workload) pair reproduces the same faulted execution — and
// the same RunResult — on every replay.
//
// Fault model (documented in DESIGN.md "Fault model & checkpoint format"):
//   - Rank crash: the rank's thread dies (throws RankCrashed, recorded in
//     RunResult::crashed_ranks) the first time its VIRTUAL clock reaches
//     `at_virtual_time`. Messages it sent before dying stay deliverable;
//     peers blocked on it observe RecvStatus::kRankFailed instead of
//     deadlocking.
//   - Message drop: the link layer is modelled as reliable-with-retransmit
//     (the paper's MPI runs on a reliable torus): a "dropped" copy costs a
//     retransmission delay added to the arrival stamp rather than silent
//     loss, so timing degrades but payloads are never destroyed. Only
//     application messages (tag >= 0) are perturbed; internal collective
//     tags ride the reliable layer untouched.
//   - Message duplication: the message is delivered twice (the classic
//     at-least-once failure); protocols on top must deduplicate (the PaCE
//     engine carries sequence numbers and applies verdicts idempotently).
//   - Straggler: a per-rank multiplier on every compute charge — the rank
//     is slow, not dead.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace pclust::mpsim {

struct FaultPlan {
  /// Seeds the per-message drop/duplication decisions.
  std::uint64_t seed = 0;

  struct Crash {
    int rank = -1;
    /// The rank dies the first time its virtual clock is >= this.
    double at_virtual_time = 0.0;
  };
  std::vector<Crash> crashes;

  /// Per-message probability that a copy is dropped in flight; each dropped
  /// copy adds `retransmit_delay` to the arrival stamp (reliable link with
  /// retransmission, see header comment). In [0, 1).
  double drop_probability = 0.0;
  /// Virtual seconds added per dropped copy.
  double retransmit_delay = 1e-3;

  /// Per-message probability of a duplicate delivery. In [0, 1).
  double duplicate_probability = 0.0;

  /// Per-rank compute slowdown multipliers; ranks beyond the vector (or
  /// with values <= 0) run at factor 1.
  std::vector<double> straggler_factor;

  [[nodiscard]] bool empty() const {
    return crashes.empty() && drop_probability <= 0.0 &&
           duplicate_probability <= 0.0 && straggler_factor.empty();
  }

  /// Earliest planned crash time for @p rank; +inf when it never crashes.
  [[nodiscard]] double crash_time(int rank) const {
    double at = std::numeric_limits<double>::infinity();
    for (const Crash& c : crashes) {
      if (c.rank == rank && c.at_virtual_time < at) at = c.at_virtual_time;
    }
    return at;
  }

  [[nodiscard]] double slowdown(int rank) const {
    const auto i = static_cast<std::size_t>(rank);
    if (rank < 0 || i >= straggler_factor.size()) return 1.0;
    return straggler_factor[i] > 0.0 ? straggler_factor[i] : 1.0;
  }

  /// Throws std::invalid_argument if the plan is malformed for @p p ranks.
  void validate(int p) const {
    for (const Crash& c : crashes) {
      if (c.rank < 0 || c.rank >= p) {
        throw std::invalid_argument(
            "FaultPlan: crash rank " + std::to_string(c.rank) +
            " out of range for p=" + std::to_string(p));
      }
      if (c.at_virtual_time < 0.0) {
        throw std::invalid_argument(
            "FaultPlan: crash time for rank " + std::to_string(c.rank) +
            " must be >= 0 virtual seconds (got " +
            std::to_string(c.at_virtual_time) + ")");
      }
    }
    if (drop_probability < 0.0 || drop_probability >= 1.0 ||
        duplicate_probability < 0.0 || duplicate_probability >= 1.0) {
      throw std::invalid_argument(
          "FaultPlan: probabilities must lie in [0, 1)");
    }
    if (retransmit_delay < 0.0) {
      throw std::invalid_argument("FaultPlan: retransmit_delay must be >= 0");
    }
    for (std::size_t r = 0; r < straggler_factor.size(); ++r) {
      if (straggler_factor[r] < 0.0) {
        throw std::invalid_argument(
            "FaultPlan: straggler factor for rank " + std::to_string(r) +
            " must be >= 0 (got " + std::to_string(straggler_factor[r]) +
            ")");
      }
    }
  }

  /// Validate the plan against the master–worker protocol's survivability
  /// envelope for @p p ranks and @p masters master ranks (1 = flat):
  /// rejects plans no protocol run can heal — crashing the root/master
  /// (rank 0), crashing every sub-master, or crashing every worker — up
  /// front with std::invalid_argument (the CLI's exit-code-2 class)
  /// instead of letting the simulation die with an unattributable error.
  void validate_protocol(int p, int masters = 1) const {
    validate(p);
    if (masters < 1) {
      throw std::invalid_argument("FaultPlan: masters must be >= 1");
    }
    if (masters > 1 && p < masters + 2) {
      throw std::invalid_argument(
          "FaultPlan: p=" + std::to_string(p) + " is too small for " +
          std::to_string(masters) +
          " sub-masters; need p >= masters + 2 so at least one worker "
          "exists");
    }
    const int first_worker = masters > 1 ? masters + 1 : 1;
    std::vector<bool> crashed(static_cast<std::size_t>(p), false);
    for (const Crash& c : crashes) {
      if (c.rank == 0) {
        throw std::invalid_argument(
            masters > 1
                ? "FaultPlan: the root (rank 0) must not crash — only "
                  "sub-master ranks 1.." +
                      std::to_string(masters) + " and worker ranks " +
                      std::to_string(first_worker) + ".." +
                      std::to_string(p - 1) + " can appear in crashes"
                : "FaultPlan: the master (rank 0) must not crash — only "
                  "worker ranks 1.." +
                      std::to_string(p - 1) + " can appear in crashes");
      }
      crashed[static_cast<std::size_t>(c.rank)] = true;
    }
    if (masters > 1) {
      bool all_submasters = true;
      for (int m = 1; m <= masters && all_submasters; ++m) {
        all_submasters = crashed[static_cast<std::size_t>(m)];
      }
      if (all_submasters) {
        throw std::invalid_argument(
            "FaultPlan: crashing all " + std::to_string(masters) +
            " sub-masters is unsurvivable — at least one sub-master rank "
            "in 1.." +
            std::to_string(masters) + " must stay alive");
      }
    }
    bool all_workers = true;
    for (int w = first_worker; w < p && all_workers; ++w) {
      all_workers = crashed[static_cast<std::size_t>(w)];
    }
    if (all_workers) {
      throw std::invalid_argument(
          "FaultPlan: crashing all worker ranks " +
          std::to_string(first_worker) + ".." + std::to_string(p - 1) +
          " is unsurvivable — at least one worker must stay alive");
    }
  }
};

/// Thrown inside a rank when its planned crash time is reached. Interception
/// is internal: mpsim::run records the rank in RunResult::crashed_ranks and
/// does NOT propagate this to the caller.
class RankCrashed : public std::runtime_error {
 public:
  explicit RankCrashed(int rank)
      : std::runtime_error("mpsim: rank " + std::to_string(rank) +
                           " crashed (fault plan)"),
        rank_(rank) {}
  [[nodiscard]] int rank() const { return rank_; }

 private:
  int rank_;
};

/// Thrown by the plain (non-status) recv when the awaited peer has failed
/// and no matching message remains — the legacy blocking API's way of
/// observing a failure instead of deadlocking. Fault-aware protocols use
/// Communicator::recv_status and get RecvStatus::kRankFailed instead.
class RankFailedError : public std::runtime_error {
 public:
  explicit RankFailedError(int rank)
      : std::runtime_error("mpsim: peer rank " + std::to_string(rank) +
                           " failed while a message from it was awaited"),
        rank_(rank) {}
  [[nodiscard]] int rank() const { return rank_; }

 private:
  int rank_;
};

}  // namespace pclust::mpsim
