// Runtime entry point: run a rank function on p simulated processors.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "pclust/mpsim/communicator.hpp"
#include "pclust/mpsim/fault_plan.hpp"

namespace pclust::mpsim {

/// A rank function terminated with an exception. Carries the failing rank's
/// id, the phase label of the run (when one was given), and the rank's
/// virtual time at death; the original exception is nested
/// (std::rethrow_if_nested recovers it). When several ranks throw
/// concurrently, the lowest-numbered non-secondary failure wins — all
/// threads are joined either way.
class RankError : public std::runtime_error {
 public:
  RankError(int rank, const std::string& what, const std::string& phase = "",
            double virtual_time = -1.0, const std::string& level = "")
      : std::runtime_error(
            "mpsim" + (phase.empty() ? std::string() : "[" + phase + "]") +
            ": " + (level.empty() ? std::string() : level + " ") + "rank " +
            std::to_string(rank) +
            (virtual_time >= 0.0
                 ? " failed at vt=" + std::to_string(virtual_time) + "s: "
                 : " failed: ") +
            what),
        rank_(rank),
        phase_(phase),
        level_(level),
        virtual_time_(virtual_time) {}
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] const std::string& phase() const { return phase_; }
  /// Topology level of the failing rank ("root", "sub-master", "worker",
  /// "master"); "" when the run had no level attribution.
  [[nodiscard]] const std::string& level() const { return level_; }
  /// Virtual seconds since phase start, or -1 when unknown.
  [[nodiscard]] double virtual_time() const { return virtual_time_; }

 private:
  int rank_;
  std::string phase_;
  std::string level_;
  double virtual_time_;
};

/// Where one rank's virtual time went: busy (compute charges), comm (wire
/// time), idle (blocked on peers/barriers). busy + comm + idle equals the
/// rank's entry in RunResult::rank_times up to fp rounding — the analyzer
/// and report-check rely on that identity.
struct RankBreakdown {
  double busy = 0.0;
  double comm = 0.0;
  double idle = 0.0;
};

struct RunResult {
  /// Final virtual clock of each rank, seconds (crashed ranks report the
  /// clock at their death).
  std::vector<double> rank_times;
  /// Busy/comm/idle decomposition of rank_times, same indexing.
  std::vector<RankBreakdown> rank_breakdown;
  /// max(rank_times): the simulated parallel run-time of the phase.
  double makespan = 0.0;
  /// Per-rank counters summed over all ranks.
  std::map<std::string, std::uint64_t> counters;
  /// Ranks that died to a planned FaultPlan crash (ascending). Always empty
  /// for fault-free runs.
  std::vector<int> crashed_ranks;
  /// Human-readable fault/healing events (planned crashes plus every
  /// Communicator::note), ordered rank-ascending. Empty for clean runs.
  std::vector<std::string> fault_events;
  /// The phase label this result was produced under ("" when unnamed).
  std::string phase;

  [[nodiscard]] std::uint64_t counter(const std::string& key) const {
    const auto it = counters.find(key);
    return it == counters.end() ? 0 : it->second;
  }
};

/// Execute @p fn on @p p ranks (each a real thread) against @p model.
/// Returns once every rank function has returned. An exception thrown by a
/// rank is rethrown here wrapped in RankError{rank, what} (the original
/// nested inside) after ALL threads have been joined; with several
/// concurrent failures the lowest-ranked original error wins over
/// secondary Aborted unwinds.
RunResult run(int p, const MachineModel& model,
              const std::function<void(Communicator&)>& fn);

/// Fault-injected variant: runs @p fn under @p plan (seeded crashes,
/// message drop/duplication, stragglers — see fault_plan.hpp). Planned
/// crashes are recorded in RunResult::crashed_ranks, NOT rethrown; real
/// errors still surface as RankError. Throws std::invalid_argument on a
/// malformed plan.
RunResult run(int p, const MachineModel& model, const FaultPlan& plan,
              const std::function<void(Communicator&)>& fn);

/// Labelled variant: like run() but tags the result (and any RankError)
/// with @p phase so failures in multi-phase pipelines stay attributable.
/// @p plan may be null for a fault-free run.
RunResult run_phase(const std::string& phase, int p,
                    const MachineModel& model, const FaultPlan* plan,
                    const std::function<void(Communicator&)>& fn);

/// Level-attributed variant: @p level_of maps a rank to its topology level
/// ("root"/"sub-master"/"worker", or "master"/"worker" flat). Any RankError
/// and every planned-crash fault event then name the level alongside the
/// rank, so a sub-master failure reads as such in errors and reports.
RunResult run_phase(const std::string& phase, int p,
                    const MachineModel& model, const FaultPlan* plan,
                    const std::function<void(Communicator&)>& fn,
                    const std::function<std::string(int)>& level_of);

}  // namespace pclust::mpsim
