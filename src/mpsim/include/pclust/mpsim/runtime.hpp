// Runtime entry point: run a rank function on p simulated processors.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "pclust/mpsim/communicator.hpp"

namespace pclust::mpsim {

struct RunResult {
  /// Final virtual clock of each rank, seconds.
  std::vector<double> rank_times;
  /// max(rank_times): the simulated parallel run-time of the phase.
  double makespan = 0.0;
  /// Per-rank counters summed over all ranks.
  std::map<std::string, std::uint64_t> counters;

  [[nodiscard]] std::uint64_t counter(const std::string& key) const {
    const auto it = counters.find(key);
    return it == counters.end() ? 0 : it->second;
  }
};

/// Execute @p fn on @p p ranks (each a real thread) against @p model.
/// Returns once every rank function has returned. Exceptions thrown by any
/// rank are rethrown here (the first one, by rank order) after all threads
/// have been joined.
RunResult run(int p, const MachineModel& model,
              const std::function<void(Communicator&)>& fn);

}  // namespace pclust::mpsim
