#include "pclust/mpsim/runtime.hpp"

#include <algorithm>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "transport.hpp"

namespace pclust::mpsim {

namespace {

RunResult run_impl(int p, const MachineModel& model, const FaultPlan* plan,
                   const std::function<void(Communicator&)>& fn,
                   const std::string& phase = "",
                   const std::function<std::string(int)>& level_of = {}) {
  if (p < 1) throw std::invalid_argument("mpsim::run: p must be >= 1");
  if (plan) plan->validate(p);

  Transport transport(p, plan);
  std::vector<std::unique_ptr<Communicator>> comms;
  comms.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    const double crash_at =
        plan ? plan->crash_time(r) : std::numeric_limits<double>::infinity();
    const double factor = plan ? plan->slowdown(r) : 1.0;
    comms.push_back(
        std::make_unique<Communicator>(transport, r, model, crash_at, factor));
  }

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(p));
  std::vector<int> crashed;
  std::mutex crashed_mutex;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(*comms[static_cast<std::size_t>(r)]);
      } catch (const RankCrashed&) {
        // Planned fault: the Communicator already marked the rank failed in
        // the transport; survivors keep running.
        std::lock_guard<std::mutex> lock(crashed_mutex);
        crashed.push_back(r);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        transport.abort();  // release peers blocked in recv/barrier
      }
    });
  }
  // Join every thread before touching errors — even when several ranks
  // throw concurrently.
  for (auto& t : threads) t.join();

  // Prefer the lowest-ranked original failure over secondary Aborted
  // unwinds, and attach the failing rank's id, the phase label, and the
  // rank's virtual time at death to what escapes.
  const auto rank_vtime = [&](int r) {
    return comms[static_cast<std::size_t>(r)]->clock().now();
  };
  const auto rank_level = [&](int r) {
    return level_of ? level_of(r) : std::string();
  };
  int aborted_rank = -1;
  for (int r = 0; r < p; ++r) {
    const auto& e = errors[static_cast<std::size_t>(r)];
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const Aborted&) {
      if (aborted_rank < 0) aborted_rank = r;
    } catch (const std::exception& ex) {
      std::throw_with_nested(
          RankError(r, ex.what(), phase, rank_vtime(r), rank_level(r)));
    } catch (...) {
      std::throw_with_nested(RankError(r, "unknown exception", phase,
                                       rank_vtime(r), rank_level(r)));
    }
  }
  if (aborted_rank >= 0) {
    try {
      std::rethrow_exception(errors[static_cast<std::size_t>(aborted_rank)]);
    } catch (const std::exception& ex) {
      std::throw_with_nested(RankError(aborted_rank, ex.what(), phase,
                                       rank_vtime(aborted_rank),
                                       rank_level(aborted_rank)));
    }
  }

  RunResult result;
  result.phase = phase;
  std::sort(crashed.begin(), crashed.end());
  result.crashed_ranks = std::move(crashed);
  result.rank_times.reserve(static_cast<std::size_t>(p));
  result.rank_breakdown.reserve(static_cast<std::size_t>(p));
  for (const auto& comm : comms) {
    result.rank_times.push_back(comm->clock().now());
    result.rank_breakdown.push_back(RankBreakdown{
        comm->busy_time(), comm->comm_time(), comm->idle_time()});
    result.makespan = std::max(result.makespan, comm->clock().now());
    for (const auto& [key, value] : comm->counters()) {
      result.counters[key] += value;
    }
  }
  for (const int r : result.crashed_ranks) {
    const std::string level = rank_level(r);
    result.fault_events.push_back(
        (level.empty() ? std::string() : level + " ") + "rank " +
        std::to_string(r) + " crashed at vt=" +
        std::to_string(result.rank_times[static_cast<std::size_t>(r)]) +
        "s (planned fault)");
  }
  for (const auto& comm : comms) {
    for (const auto& event : comm->notes()) {
      result.fault_events.push_back(event);
    }
  }
  return result;
}

}  // namespace

RunResult run(int p, const MachineModel& model,
              const std::function<void(Communicator&)>& fn) {
  return run_impl(p, model, nullptr, fn);
}

RunResult run(int p, const MachineModel& model, const FaultPlan& plan,
              const std::function<void(Communicator&)>& fn) {
  return run_impl(p, model, &plan, fn);
}

RunResult run_phase(const std::string& phase, int p,
                    const MachineModel& model, const FaultPlan* plan,
                    const std::function<void(Communicator&)>& fn) {
  return run_impl(p, model, plan, fn, phase);
}

RunResult run_phase(const std::string& phase, int p,
                    const MachineModel& model, const FaultPlan* plan,
                    const std::function<void(Communicator&)>& fn,
                    const std::function<std::string(int)>& level_of) {
  return run_impl(p, model, plan, fn, phase, level_of);
}

}  // namespace pclust::mpsim
