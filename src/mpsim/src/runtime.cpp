#include "pclust/mpsim/runtime.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <stdexcept>
#include <thread>

#include "transport.hpp"

namespace pclust::mpsim {

RunResult run(int p, const MachineModel& model,
              const std::function<void(Communicator&)>& fn) {
  if (p < 1) throw std::invalid_argument("mpsim::run: p must be >= 1");

  Transport transport(p);
  std::vector<std::unique_ptr<Communicator>> comms;
  comms.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    comms.push_back(std::make_unique<Communicator>(transport, r, model));
  }

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(p));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      try {
        fn(*comms[static_cast<std::size_t>(r)]);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        transport.abort();  // release peers blocked in recv/barrier
      }
    });
  }
  for (auto& t : threads) t.join();

  // Prefer the original failure over secondary Aborted unwinds.
  std::exception_ptr aborted;
  for (const auto& e : errors) {
    if (!e) continue;
    try {
      std::rethrow_exception(e);
    } catch (const Aborted&) {
      if (!aborted) aborted = e;
    } catch (...) {
      std::rethrow_exception(e);
    }
  }
  if (aborted) std::rethrow_exception(aborted);

  RunResult result;
  result.rank_times.reserve(static_cast<std::size_t>(p));
  for (const auto& comm : comms) {
    result.rank_times.push_back(comm->clock().now());
    result.makespan = std::max(result.makespan, comm->clock().now());
    for (const auto& [key, value] : comm->counters()) {
      result.counters[key] += value;
    }
  }
  return result;
}

}  // namespace pclust::mpsim
