#include "pclust/mpsim/machine_model.hpp"

namespace pclust::mpsim {

MachineModel MachineModel::bluegene_l() {
  MachineModel m;
  m.name = "BlueGene/L (700 MHz PPC440, co-processor mode)";
  m.cell_cost = 5e-8;        // ~20 Mcells/s Smith–Waterman
  m.index_char_cost = 2e-6;  // suffix-structure build, cache-unfriendly
  m.pair_cost = 2e-6;        // generate + serialize one promising pair
  m.find_cost = 3e-6;        // master-side per-pair handling (recv+hash+find)
  m.hash_cost = 1.2e-7;      // shingle hash+select on the 700 MHz PPC
  m.latency = 4e-6;          // MPI eager latency on the torus
  m.byte_cost = 1.0 / 150e6;
  return m;
}

MachineModel MachineModel::xeon_cluster() {
  MachineModel m;
  m.name = "Linux cluster (2.33 GHz Xeon, gigabit ethernet)";
  m.cell_cost = 1e-8;
  m.index_char_cost = 3e-7;
  m.pair_cost = 3e-7;
  m.find_cost = 1e-7;
  m.hash_cost = 2e-8;
  m.latency = 5e-5;  // gigabit ethernet / TCP
  m.byte_cost = 1.0 / 110e6;
  return m;
}

MachineModel MachineModel::free() {
  MachineModel m;
  m.name = "free (functional testing)";
  m.cell_cost = 0;
  m.index_char_cost = 0;
  m.pair_cost = 0;
  m.find_cost = 0;
  m.hash_cost = 0;
  m.latency = 0;
  m.byte_cost = 0;
  return m;
}

}  // namespace pclust::mpsim
