#include "pclust/mpsim/communicator.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "pclust/util/metrics.hpp"
#include "transport.hpp"

namespace pclust::mpsim {

namespace {

// Internal collective tags (user tags must be >= 0).
constexpr int kBcastTag = -2;
constexpr int kReduceTag = -3;
constexpr int kGatherTag = -4;
constexpr int kScatterTag = -5;

int tree_depth(int p) {
  return p <= 1 ? 0
               : std::bit_width(static_cast<unsigned>(p - 1));  // ceil(log2 p)
}

}  // namespace

Communicator::Communicator(Transport& transport, int rank,
                           const MachineModel& model, double crash_at,
                           double compute_factor)
    : transport_(transport),
      rank_(rank),
      model_(model),
      crash_at_(crash_at),
      compute_factor_(compute_factor) {}

int Communicator::size() const { return transport_.size(); }

bool Communicator::peer_alive(int rank) const {
  return transport_.alive(rank);
}

void Communicator::check_crash() {
  if (crashed_ || clock_.now() < crash_at_) return;
  crashed_ = true;
  transport_.mark_failed(rank_);
  throw RankCrashed(rank_);
}

void Communicator::send(int dst, int tag, std::any payload,
                        std::uint64_t bytes) {
  check_crash();
  record_link_traffic(dst, bytes);
  // Sender pays the injection overhead; the receiver's clock is advanced at
  // take time from the stamp.
  advance_comm(model_.latency);
  Message msg;
  msg.src = rank_;
  msg.tag = tag;
  msg.payload = std::move(payload);
  msg.bytes = bytes;
  msg.send_time = clock_.now();
  transport_.deliver(dst, std::move(msg));
}

Message Communicator::recv(int src, int tag) {
  check_crash();
  Message msg = transport_.take(rank_, src, tag);
  const double wire =
      model_.latency + static_cast<double>(msg.bytes) * model_.byte_cost;
  advance_to_comm(msg.send_time + wire, wire);
  return msg;
}

RecvStatus Communicator::recv_status(int src, int tag, Message& out,
                                     double timeout_seconds) {
  check_crash();
  const RecvStatus status =
      transport_.take_status(rank_, src, tag, out, timeout_seconds);
  if (status == RecvStatus::kOk) {
    const double wire =
        model_.latency + static_cast<double>(out.bytes) * model_.byte_cost;
    advance_to_comm(out.send_time + wire, wire);
  }
  return status;
}

bool Communicator::poll(int src, int tag) const {
  return transport_.poll(rank_, src, tag);
}

void Communicator::barrier() {
  check_crash();
  const double released = transport_.barrier_wait(clock_.now());
  const double wire = 2.0 * model_.latency * tree_depth(size());
  advance_to_comm(released + wire, wire);
}

std::any Communicator::broadcast(int root, std::any payload,
                                 std::uint64_t bytes) {
  check_crash();
  const int depth = tree_depth(size());
  if (rank_ == root) {
    // Binomial-tree time model: every rank has the payload after `depth`
    // rounds of (latency + transfer).
    const double per_round =
        model_.latency + static_cast<double>(bytes) * model_.byte_cost;
    for (int dst = 0; dst < size(); ++dst) {
      if (dst == root) continue;
      Message msg;
      msg.src = root;
      msg.tag = kBcastTag;
      msg.payload = payload;  // copy to each rank
      msg.bytes = 0;          // timing handled via the stamp below
      msg.send_time = clock_.now() + depth * per_round;
      transport_.deliver(dst, std::move(msg));
    }
    advance_comm(depth * per_round);
    return payload;
  }
  Message msg = transport_.take(rank_, root, kBcastTag);
  // The stamp is root's send time plus the full tree; at most the tree
  // rounds themselves are wire time, the rest was waiting for the root.
  advance_to_comm(msg.send_time,
                  depth * (model_.latency +
                           static_cast<double>(bytes) * model_.byte_cost));
  return std::move(msg.payload);
}

double Communicator::allreduce_max(double value) {
  check_crash();
  // Gather to rank 0, then broadcast; O(p) messages but tree-shaped time.
  const int depth = tree_depth(size());
  const double per_round = model_.latency + 8.0 * model_.byte_cost;
  if (rank_ == 0) {
    double best = value;
    double latest = clock_.now();
    for (int src = 1; src < size(); ++src) {
      Message msg = transport_.take(rank_, src, kReduceTag);
      best = std::max(best, std::any_cast<double>(msg.payload));
      latest = std::max(latest, msg.send_time);
    }
    advance_to_comm(latest + depth * per_round, depth * per_round);
    std::any out = broadcast(0, std::any(best), 8);
    return std::any_cast<double>(out);
  }
  Message msg;
  msg.src = rank_;
  msg.tag = kReduceTag;
  msg.payload = std::any(value);
  msg.bytes = 8;
  msg.send_time = clock_.now() + depth * per_round;
  transport_.deliver(0, std::move(msg));
  std::any out = broadcast(0, {}, 8);
  return std::any_cast<double>(out);
}

double Communicator::allreduce_sum(double value) {
  check_crash();
  // Same topology as allreduce_max; only the combiner differs.
  const int depth = tree_depth(size());
  const double per_round = model_.latency + 8.0 * model_.byte_cost;
  if (rank_ == 0) {
    double total = value;
    double latest = clock_.now();
    for (int src = 1; src < size(); ++src) {
      Message msg = transport_.take(rank_, src, kReduceTag);
      total += std::any_cast<double>(msg.payload);
      latest = std::max(latest, msg.send_time);
    }
    advance_to_comm(latest + depth * per_round, depth * per_round);
    std::any out = broadcast(0, std::any(total), 8);
    return std::any_cast<double>(out);
  }
  Message msg;
  msg.src = rank_;
  msg.tag = kReduceTag;
  msg.payload = std::any(value);
  msg.bytes = 8;
  msg.send_time = clock_.now() + depth * per_round;
  transport_.deliver(0, std::move(msg));
  std::any out = broadcast(0, {}, 8);
  return std::any_cast<double>(out);
}

std::vector<std::any> Communicator::gather(int root, std::any payload,
                                           std::uint64_t bytes) {
  check_crash();
  const int depth = tree_depth(size());
  if (rank_ == root) {
    std::vector<std::any> out(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(root)] = std::move(payload);
    double latest = clock_.now();
    for (int src = 0; src < size(); ++src) {
      if (src == root) continue;
      Message msg = transport_.take(rank_, src, kGatherTag);
      latest = std::max(
          latest, msg.send_time +
                      static_cast<double>(msg.bytes) * model_.byte_cost);
      out[static_cast<std::size_t>(src)] = std::move(msg.payload);
    }
    advance_to_comm(latest + depth * model_.latency,
                    depth * model_.latency);
    return out;
  }
  Message msg;
  msg.src = rank_;
  msg.tag = kGatherTag;
  msg.payload = std::move(payload);
  msg.bytes = bytes;
  msg.send_time = clock_.now() + model_.latency;
  transport_.deliver(root, std::move(msg));
  advance_comm(model_.latency);
  return {};
}

std::any Communicator::scatter(int root, std::vector<std::any> payloads,
                               std::uint64_t bytes_each) {
  check_crash();
  if (rank_ == root) {
    if (payloads.size() != static_cast<std::size_t>(size())) {
      throw std::invalid_argument(
          "mpsim::scatter: need exactly one payload per rank");
    }
    const double per_item =
        model_.latency + static_cast<double>(bytes_each) * model_.byte_cost;
    for (int dst = 0; dst < size(); ++dst) {
      if (dst == root) continue;
      Message msg;
      msg.src = root;
      msg.tag = kScatterTag;
      msg.payload = std::move(payloads[static_cast<std::size_t>(dst)]);
      msg.bytes = 0;  // timing carried in the stamp
      msg.send_time = clock_.now() + per_item;
      transport_.deliver(dst, std::move(msg));
      advance_comm(per_item);  // root serializes the sends
    }
    return std::move(payloads[static_cast<std::size_t>(root)]);
  }
  Message msg = transport_.take(rank_, root, kScatterTag);
  // At most this rank's own message is wire time; waiting for the root to
  // serialize earlier ranks' sends is idle.
  advance_to_comm(msg.send_time,
                  model_.latency +
                      static_cast<double>(bytes_each) * model_.byte_cost);
  return std::move(msg.payload);
}

void Communicator::count(const std::string& key, std::uint64_t delta) {
  counters_[key] += delta;
}

void Communicator::record_link_traffic(int dst, std::uint64_t bytes) {
  if (dst < 0) return;
  if (static_cast<std::size_t>(dst) >= link_keys_.size()) {
    link_keys_.resize(static_cast<std::size_t>(dst) + 1);
  }
  LinkKeys& keys = link_keys_[static_cast<std::size_t>(dst)];
  if (keys.msgs.empty()) {
    const std::string link =
        "link." + std::to_string(rank_) + "->" + std::to_string(dst);
    keys.msgs = link + ".msgs";
    keys.bytes = link + ".bytes";
  }
  counters_[keys.msgs] += 1;
  counters_[keys.bytes] += bytes;
  // Process-wide totals (all phases, all ranks) for the run report.
  static util::Counter& msgs = util::metrics().counter("mpsim.messages_sent");
  static util::Counter& sent = util::metrics().counter("mpsim.bytes_sent");
  msgs.add(1);
  sent.add(bytes);
}

}  // namespace pclust::mpsim
