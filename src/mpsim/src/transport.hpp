// Internal shared state of the simulator: mailboxes, barrier, abort flag,
// per-rank failure flags, and the fault-injection hooks.
// Not installed; Communicator and runtime share it.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <list>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "pclust/mpsim/communicator.hpp"
#include "pclust/mpsim/fault_plan.hpp"
#include "pclust/util/rng.hpp"

namespace pclust::mpsim {

/// Thrown into ranks blocked on recv/barrier when another rank failed with a
/// real (unplanned) error and the whole run is being torn down.
class Aborted : public std::runtime_error {
 public:
  Aborted() : std::runtime_error("mpsim: run aborted by a peer failure") {}
};

class Transport {
 public:
  explicit Transport(int p, const FaultPlan* plan = nullptr)
      : size_(p),
        alive_(static_cast<std::size_t>(p)),
        mailboxes_(static_cast<std::size_t>(p)),
        links_(static_cast<std::size_t>(p) * static_cast<std::size_t>(p)) {
    for (auto& a : alive_) a.store(true, std::memory_order_relaxed);
    alive_count_ = p;
    if (plan) plan_ = *plan;
  }

  [[nodiscard]] int size() const { return size_; }

  [[nodiscard]] bool alive(int rank) const {
    return alive_[static_cast<std::size_t>(rank)].load(
        std::memory_order_acquire);
  }

  void deliver(int dst, Message msg) {
    // Fault injection applies only to application messages (tag >= 0);
    // internal collective tags ride the reliable layer untouched. Decisions
    // hash (seed, src, dst, per-link ordinal) so they are independent of
    // wall-clock thread interleaving: each link's stream is produced by one
    // sender thread in program order.
    bool duplicate = false;
    if (msg.tag >= 0 &&
        (plan_.drop_probability > 0.0 || plan_.duplicate_probability > 0.0)) {
      auto& box = mailboxes_[static_cast<std::size_t>(dst)];
      std::uint64_t ordinal;
      {
        std::lock_guard<std::mutex> lock(box.mutex);
        ordinal = links_[static_cast<std::size_t>(msg.src) *
                             static_cast<std::size_t>(size_) +
                         static_cast<std::size_t>(dst)]++;
      }
      util::SplitMix64 rng(plan_.seed ^
                           (static_cast<std::uint64_t>(msg.src) << 40) ^
                           (static_cast<std::uint64_t>(dst) << 20) ^ ordinal);
      const auto unit = [&rng] {
        return static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
      };
      // Reliable-with-retransmit link: every dropped copy delays arrival by
      // one retransmission round trip; the payload is never destroyed.
      while (plan_.drop_probability > 0.0 && unit() < plan_.drop_probability) {
        msg.send_time += plan_.retransmit_delay;
      }
      duplicate = plan_.duplicate_probability > 0.0 &&
                  unit() < plan_.duplicate_probability;
    }

    auto& box = mailboxes_[static_cast<std::size_t>(dst)];
    {
      std::lock_guard<std::mutex> lock(box.mutex);
      box.queue.push_back(msg);
      if (duplicate) box.queue.push_back(std::move(msg));
    }
    box.cv.notify_all();
  }

  Message take(int dst, int src, int tag) {
    Message msg;
    switch (take_status(dst, src, tag, msg, -1.0)) {
      case RecvStatus::kOk:
        return msg;
      case RecvStatus::kRankFailed:
        throw RankFailedError(src);
      case RecvStatus::kTimeout:
      default:
        throw std::logic_error("mpsim: untimed take timed out");
    }
  }

  /// Wait for a message from (src, tag). Returns kOk with the message,
  /// kRankFailed once src is marked failed and no matching message remains,
  /// or kTimeout after @p timeout_seconds of WALL-clock waiting (< 0 waits
  /// forever). Queued messages always win over a concurrent failure mark:
  /// everything a rank sent before dying stays deliverable.
  RecvStatus take_status(int dst, int src, int tag, Message& out,
                         double timeout_seconds) {
    auto& box = mailboxes_[static_cast<std::size_t>(dst)];
    std::unique_lock<std::mutex> lock(box.mutex);
    const auto deadline =
        timeout_seconds >= 0.0
            ? std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(timeout_seconds))
            : std::chrono::steady_clock::time_point::max();
    while (true) {
      if (aborted_.load(std::memory_order_acquire)) throw Aborted();
      for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
        if (it->src == src && it->tag == tag) {
          out = std::move(*it);
          box.queue.erase(it);
          return RecvStatus::kOk;
        }
      }
      if (!alive(src)) return RecvStatus::kRankFailed;
      if (timeout_seconds >= 0.0) {
        if (box.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
          return RecvStatus::kTimeout;
        }
      } else {
        box.cv.wait(lock);
      }
    }
  }

  [[nodiscard]] bool poll(int dst, int src, int tag) const {
    auto& box = mailboxes_[static_cast<std::size_t>(dst)];
    std::lock_guard<std::mutex> lock(box.mutex);
    for (const auto& m : box.queue) {
      if (m.src == src && m.tag == tag) return true;
    }
    return false;
  }

  /// Generation barrier over the ranks still alive; returns the released
  /// virtual time (max over participants' arrival times). A rank dying
  /// while peers wait releases the generation (see mark_failed).
  double barrier_wait(double arrival_time) {
    std::unique_lock<std::mutex> lock(barrier_mutex_);
    const std::uint64_t my_generation = barrier_generation_;
    barrier_max_ = std::max(barrier_max_, arrival_time);
    if (++barrier_count_ >= alive_count_) {
      release_barrier_locked();
    } else {
      barrier_cv_.wait(lock, [&] {
        return barrier_generation_ != my_generation ||
               aborted_.load(std::memory_order_acquire);
      });
      if (barrier_generation_ == my_generation) throw Aborted();
    }
    return barrier_release_;
  }

  /// Mark @p rank dead (planned crash): wake every blocked receiver so it
  /// can re-evaluate, and release a barrier generation the dead rank will
  /// never join. Survivors keep running — this is NOT abort().
  void mark_failed(int rank) {
    alive_[static_cast<std::size_t>(rank)].store(false,
                                                 std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(barrier_mutex_);
      --alive_count_;
      if (barrier_count_ > 0 && barrier_count_ >= alive_count_) {
        release_barrier_locked();
      }
    }
    for (auto& box : mailboxes_) {
      std::lock_guard<std::mutex> lock(box.mutex);
      box.cv.notify_all();
    }
    barrier_cv_.notify_all();
  }

  void abort() {
    aborted_.store(true, std::memory_order_release);
    for (auto& box : mailboxes_) {
      std::lock_guard<std::mutex> lock(box.mutex);
      box.cv.notify_all();
    }
    barrier_cv_.notify_all();
  }

  [[nodiscard]] bool is_aborted() const {
    return aborted_.load(std::memory_order_acquire);
  }

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  void release_barrier_locked() {
    barrier_count_ = 0;
    barrier_release_ = barrier_max_;
    barrier_max_ = 0.0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
  }

  struct Mailbox {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::list<Message> queue;
  };

  int size_;
  std::vector<std::atomic<bool>> alive_;
  mutable std::vector<Mailbox> mailboxes_;
  /// Per-(src, dst) message ordinals for deterministic fault decisions;
  /// guarded by the destination mailbox mutex.
  std::vector<std::uint64_t> links_;
  FaultPlan plan_;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  int alive_count_ = 0;
  std::uint64_t barrier_generation_ = 0;
  double barrier_max_ = 0.0;
  double barrier_release_ = 0.0;

  std::atomic<bool> aborted_{false};
};

}  // namespace pclust::mpsim
