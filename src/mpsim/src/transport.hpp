// Internal shared state of the simulator: mailboxes, barrier, abort flag.
// Not installed; Communicator and runtime share it.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <list>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "pclust/mpsim/communicator.hpp"

namespace pclust::mpsim {

/// Thrown into ranks blocked on recv/barrier when another rank failed.
class Aborted : public std::runtime_error {
 public:
  Aborted() : std::runtime_error("mpsim: run aborted by a peer failure") {}
};

class Transport {
 public:
  explicit Transport(int p) : size_(p), mailboxes_(static_cast<std::size_t>(p)) {}

  [[nodiscard]] int size() const { return size_; }

  void deliver(int dst, Message msg) {
    auto& box = mailboxes_[static_cast<std::size_t>(dst)];
    {
      std::lock_guard<std::mutex> lock(box.mutex);
      box.queue.push_back(std::move(msg));
    }
    box.cv.notify_all();
  }

  Message take(int dst, int src, int tag) {
    auto& box = mailboxes_[static_cast<std::size_t>(dst)];
    std::unique_lock<std::mutex> lock(box.mutex);
    while (true) {
      if (aborted_.load(std::memory_order_acquire)) throw Aborted();
      for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
        if (it->src == src && it->tag == tag) {
          Message msg = std::move(*it);
          box.queue.erase(it);
          return msg;
        }
      }
      box.cv.wait(lock);
    }
  }

  [[nodiscard]] bool poll(int dst, int src, int tag) const {
    auto& box = mailboxes_[static_cast<std::size_t>(dst)];
    std::lock_guard<std::mutex> lock(box.mutex);
    for (const auto& m : box.queue) {
      if (m.src == src && m.tag == tag) return true;
    }
    return false;
  }

  /// Generation barrier; returns the released virtual time (max over
  /// participants' arrival times).
  double barrier_wait(double arrival_time) {
    std::unique_lock<std::mutex> lock(barrier_mutex_);
    const std::uint64_t my_generation = barrier_generation_;
    barrier_max_ = std::max(barrier_max_, arrival_time);
    if (++barrier_count_ == size_) {
      barrier_count_ = 0;
      barrier_release_ = barrier_max_;
      barrier_max_ = 0.0;
      ++barrier_generation_;
      barrier_cv_.notify_all();
    } else {
      barrier_cv_.wait(lock, [&] {
        return barrier_generation_ != my_generation ||
               aborted_.load(std::memory_order_acquire);
      });
      if (barrier_generation_ == my_generation) throw Aborted();
    }
    return barrier_release_;
  }

  void abort() {
    aborted_.store(true, std::memory_order_release);
    for (auto& box : mailboxes_) box.cv.notify_all();
    barrier_cv_.notify_all();
  }

  [[nodiscard]] bool is_aborted() const {
    return aborted_.load(std::memory_order_acquire);
  }

 private:
  struct Mailbox {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::list<Message> queue;
  };

  int size_;
  mutable std::vector<Mailbox> mailboxes_;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;
  double barrier_max_ = 0.0;
  double barrier_release_ = 0.0;

  std::atomic<bool> aborted_{false};
};

}  // namespace pclust::mpsim
