// Union–find (disjoint-set union) with union by size and path halving.
//
// This is the clustering backbone of both the PaCE master (transitive-
// closure merging of overlap clusters, §IV-B of the paper) and the Shingle
// algorithm's final component-reporting step (§IV-D). find/union are
// near-constant amortized time (inverse Ackermann; Tarjan 1975, ref [29]).
#pragma once

#include <cstdint>
#include <vector>

#include "pclust/util/memsize.hpp"

namespace pclust::dsu {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n = 0);

  /// Reset to n singleton sets.
  void reset(std::size_t n);

  [[nodiscard]] std::size_t size() const { return parent_.size(); }

  /// Representative of x's set. Applies path halving (mutates for speed but
  /// never changes the partition, so it is logically const).
  [[nodiscard]] std::uint32_t find(std::uint32_t x) const;

  /// Merge the sets of a and b; returns true if they were distinct.
  bool merge(std::uint32_t a, std::uint32_t b);

  [[nodiscard]] bool same(std::uint32_t a, std::uint32_t b) const {
    return find(a) == find(b);
  }

  /// Number of elements in x's set.
  [[nodiscard]] std::uint32_t set_size(std::uint32_t x) const {
    return size_[find(x)];
  }

  /// Number of disjoint sets.
  [[nodiscard]] std::size_t set_count() const { return set_count_; }

  /// Extract all sets as vectors of members, sorted by descending size then
  /// ascending smallest member (deterministic). Sets smaller than
  /// @p min_size are omitted.
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> extract_sets(
      std::size_t min_size = 1) const;

  /// Snapshot the parent forest for serialization. The exact pointers
  /// depend on merge/find history, but the encoded PARTITION does not.
  [[nodiscard]] const std::vector<std::uint32_t>& parents() const {
    return parent_;
  }

  /// Rebuild from a parents() snapshot: recomputes set sizes and the set
  /// count from the forest. Throws std::invalid_argument if any parent
  /// index is out of range or the pointers contain a cycle.
  void restore(std::vector<std::uint32_t> parents);

  /// Canonical per-element component labels: label[x] is the SMALLEST
  /// member of x's set. Unlike find(), the result is a pure function of
  /// the partition — independent of merge/find history — so two
  /// UnionFinds encode the same partition iff their label vectors are
  /// equal. O(n), never mutates.
  [[nodiscard]] std::vector<std::uint32_t> component_labels() const;

  /// The parent chain from x up to (and including) its root, WITHOUT
  /// path compression — a read-only walk for provenance/debug tooling
  /// that must not perturb the stored forest shape.
  [[nodiscard]] std::vector<std::uint32_t> root_path(std::uint32_t x) const;

  /// Heap footprint: the parent forest and per-root set sizes — O(n), the
  /// linear-space argument for transitive-closure clustering.
  [[nodiscard]] util::MemoryBreakdown memory_usage() const;

 private:
  mutable std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t set_count_ = 0;
};

}  // namespace pclust::dsu
