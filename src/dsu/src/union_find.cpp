#include "pclust/dsu/union_find.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace pclust::dsu {

UnionFind::UnionFind(std::size_t n) { reset(n); }

void UnionFind::reset(std::size_t n) {
  parent_.resize(n);
  std::iota(parent_.begin(), parent_.end(), 0u);
  size_.assign(n, 1u);
  set_count_ = n;
}

std::uint32_t UnionFind::find(std::uint32_t x) const {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::merge(std::uint32_t a, std::uint32_t b) {
  std::uint32_t ra = find(a);
  std::uint32_t rb = find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --set_count_;
  return true;
}

void UnionFind::restore(std::vector<std::uint32_t> parents) {
  const std::size_t n = parents.size();
  for (const std::uint32_t parent : parents) {
    if (parent >= n) {
      throw std::invalid_argument(
          "UnionFind::restore: parent index out of range");
    }
  }
  // A valid forest reaches a self-parent root from every node within n
  // steps; anything longer means the snapshot encodes a cycle.
  for (std::uint32_t x = 0; x < n; ++x) {
    std::uint32_t cur = x;
    std::size_t steps = 0;
    while (parents[cur] != cur) {
      cur = parents[cur];
      if (++steps > n) {
        throw std::invalid_argument(
            "UnionFind::restore: parent pointers contain a cycle");
      }
    }
  }
  parent_ = std::move(parents);
  size_.assign(n, 0u);
  set_count_ = 0;
  for (std::uint32_t x = 0; x < n; ++x) {
    const std::uint32_t root = find(x);
    if (size_[root]++ == 0) ++set_count_;
  }
}

std::vector<std::vector<std::uint32_t>> UnionFind::extract_sets(
    std::size_t min_size) const {
  std::vector<std::vector<std::uint32_t>> by_root(parent_.size());
  for (std::uint32_t x = 0; x < parent_.size(); ++x) {
    by_root[find(x)].push_back(x);
  }
  std::vector<std::vector<std::uint32_t>> out;
  for (auto& members : by_root) {
    if (members.size() >= min_size && !members.empty()) {
      out.push_back(std::move(members));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a.front() < b.front();
            });
  return out;
}

std::vector<std::uint32_t> UnionFind::component_labels() const {
  const std::size_t n = parent_.size();
  std::vector<std::uint32_t> label(n, 0xFFFFFFFFu);
  // Ascending scan: the first element reaching each root is the set's
  // smallest member, so its id becomes the canonical label.
  for (std::uint32_t x = 0; x < n; ++x) {
    // Walk without compression; find() would mutate and this accessor
    // promises not to.
    std::uint32_t root = x;
    while (parent_[root] != root) root = parent_[root];
    if (label[root] == 0xFFFFFFFFu) label[root] = x;
    label[x] = label[root];
  }
  return label;
}

std::vector<std::uint32_t> UnionFind::root_path(std::uint32_t x) const {
  if (x >= parent_.size()) {
    throw std::invalid_argument("UnionFind::root_path: index out of range");
  }
  std::vector<std::uint32_t> path;
  path.push_back(x);
  while (parent_[x] != x) {
    x = parent_[x];
    path.push_back(x);
  }
  return path;
}

util::MemoryBreakdown UnionFind::memory_usage() const {
  util::MemoryBreakdown b("union_find");
  b.add("parents", util::vector_bytes(parent_));
  b.add("set_sizes", util::vector_bytes(size_));
  return b;
}

}  // namespace pclust::dsu
