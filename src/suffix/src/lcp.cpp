#include "pclust/suffix/lcp.hpp"

#include <algorithm>

#include "pclust/exec/pool.hpp"
#include "pclust/suffix/suffix_array.hpp"

namespace pclust::suffix {

std::vector<std::int32_t> build_lcp(const ConcatText& text,
                                    const std::vector<std::int32_t>& sa) {
  const std::size_t n = text.size();
  std::vector<std::int32_t> lcp(n, 0);
  if (n == 0) return lcp;

  const auto rank = invert_suffix_array(sa);
  // Kasai et al. 2001, with the comparison itself stopping at separators so
  // no post-truncation pass is needed: separators are compared as ordinary
  // symbols, but a separator matching a separator terminates the scan.
  std::int32_t h = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t r = rank[i];
    if (r == 0) {
      h = 0;
      continue;
    }
    const auto j = static_cast<std::size_t>(sa[static_cast<std::size_t>(r - 1)]);
    auto k = static_cast<std::size_t>(h > 0 ? h - 1 : 0);
    while (i + k < n && j + k < n && text.at(i + k) == text.at(j + k) &&
           !text.is_separator(i + k)) {
      ++k;
    }
    lcp[static_cast<std::size_t>(r)] = static_cast<std::int32_t>(k);
    h = static_cast<std::int32_t>(k);
  }
  return lcp;
}

std::vector<std::int32_t> build_lcp_parallel(const ConcatText& text,
                                             const std::vector<std::int32_t>& sa,
                                             exec::Pool& pool) {
  const std::size_t n = text.size();
  if (pool.size() <= 1 || n < 2 * pool.size()) return build_lcp(text, sa);

  std::vector<std::int32_t> lcp(n, 0);
  const auto rank = invert_suffix_array(sa);
  // Each chunk runs Kasai with h restarted at 0. h only ever LOWERS the
  // comparison start (a proven lower bound carried from position i-1), so
  // losing it at a chunk boundary costs a longer scan, never a wrong value;
  // each lcp[rank[i]] slot is written by exactly one chunk.
  const std::size_t grain = (n + 4 * pool.size() - 1) / (4 * pool.size());
  pool.for_range(n, grain, [&](std::size_t lo, std::size_t hi) {
    std::int32_t h = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      const std::int32_t r = rank[i];
      if (r == 0) {
        h = 0;
        continue;
      }
      const auto j =
          static_cast<std::size_t>(sa[static_cast<std::size_t>(r - 1)]);
      auto k = static_cast<std::size_t>(h > 0 ? h - 1 : 0);
      while (i + k < n && j + k < n && text.at(i + k) == text.at(j + k) &&
             !text.is_separator(i + k)) {
        ++k;
      }
      lcp[static_cast<std::size_t>(r)] = static_cast<std::int32_t>(k);
      h = static_cast<std::int32_t>(k);
    }
  });
  return lcp;
}

}  // namespace pclust::suffix
