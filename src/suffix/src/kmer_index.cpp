#include "pclust/suffix/kmer_index.hpp"

#include <algorithm>
#include <stdexcept>

#include "pclust/seq/alphabet.hpp"

namespace pclust::suffix {

KmerIndex::KmerIndex(const seq::SequenceSet& set,
                     const std::vector<seq::SeqId>& ids, Params params)
    : params_(params) {
  if (params_.w < 2 || params_.w > 12) {
    throw std::invalid_argument("KmerIndex: w must be in [2, 12]");
  }

  std::vector<seq::SeqId> all;
  const std::vector<seq::SeqId>* use = &ids;
  if (ids.empty()) {
    all.resize(set.size());
    for (seq::SeqId i = 0; i < set.size(); ++i) all[i] = i;
    use = &all;
  }

  // Collect (packed word, sequence) pairs, then sort + unique to get per-word
  // distinct-sequence lists.
  std::vector<std::pair<std::uint64_t, seq::SeqId>> entries;
  const std::uint64_t mask =
      (params_.w >= 12) ? ~std::uint64_t{0}
                        : ((std::uint64_t{1} << (5 * params_.w)) - 1);
  for (seq::SeqId id : *use) {
    const auto residues = set.residues(id);
    if (residues.size() < params_.w) continue;
    std::uint64_t packed = 0;
    std::uint32_t valid = 0;  // consecutive non-X residues accumulated
    for (std::size_t i = 0; i < residues.size(); ++i) {
      const auto r = static_cast<std::uint8_t>(residues[i]);
      if (r >= seq::kRankX) {
        packed = 0;
        valid = 0;
        continue;
      }
      packed = ((packed << 5) | r) & mask;
      if (++valid >= params_.w) entries.emplace_back(packed, id);
    }
  }
  std::sort(entries.begin(), entries.end());
  entries.erase(std::unique(entries.begin(), entries.end()), entries.end());

  word_offsets_.push_back(0);
  std::size_t i = 0;
  while (i < entries.size()) {
    std::size_t j = i;
    while (j < entries.size() && entries[j].first == entries[i].first) ++j;
    const std::size_t span = j - i;
    const bool too_common = params_.max_sequences_per_word != 0 &&
                            span > params_.max_sequences_per_word;
    if (span >= 2 && !too_common) {
      words_.push_back(entries[i].first);
      for (std::size_t k = i; k < j; ++k) members_.push_back(entries[k].second);
      word_offsets_.push_back(static_cast<std::uint32_t>(members_.size()));
    } else if (too_common) {
      ++dropped_high_occ_;
    }
    i = j;
  }
}

std::vector<seq::SeqId> KmerIndex::sequences_of(std::size_t w_idx) const {
  return {members_.begin() + word_offsets_[w_idx],
          members_.begin() + word_offsets_[w_idx + 1]};
}

std::string KmerIndex::decode_word(std::size_t w_idx) const {
  std::string out(params_.w, '?');
  std::uint64_t packed = words_[w_idx];
  for (std::uint32_t i = 0; i < params_.w; ++i) {
    out[params_.w - 1 - i] =
        seq::rank_to_char(static_cast<std::uint8_t>(packed & 0x1F));
    packed >>= 5;
  }
  return out;
}

util::MemoryBreakdown KmerIndex::memory_usage() const {
  util::MemoryBreakdown b("kmer_index");
  b.add("words", util::vector_bytes(words_));
  b.add("word_offsets", util::vector_bytes(word_offsets_));
  b.add("members", util::vector_bytes(members_));
  return b;
}

}  // namespace pclust::suffix
