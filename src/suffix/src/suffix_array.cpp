#include "pclust/suffix/suffix_array.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <vector>

#include "pclust/exec/pool.hpp"
#include "pclust/seq/alphabet.hpp"
#include "pclust/suffix/concat_text.hpp"

namespace pclust::suffix {

namespace {

/// Core SA-IS over s[0..n), values in [0, K), with s[n-1] == 0 the unique
/// smallest sentinel. Writes the full suffix array (including the sentinel
/// suffix at SA[0]) into sa[0..n).
template <typename Sym>
void sais(const Sym* s, std::int32_t* sa, std::int32_t n, std::int32_t K) {
  assert(n > 0 && s[n - 1] == 0);
  if (n == 1) {
    sa[0] = 0;
    return;
  }

  std::vector<bool> is_s(static_cast<std::size_t>(n));
  is_s[static_cast<std::size_t>(n - 1)] = true;
  for (std::int32_t i = n - 2; i >= 0; --i) {
    is_s[static_cast<std::size_t>(i)] =
        s[i] < s[i + 1] ||
        (s[i] == s[i + 1] && is_s[static_cast<std::size_t>(i + 1)]);
  }
  const auto is_lms = [&](std::int32_t i) {
    return i > 0 && is_s[static_cast<std::size_t>(i)] &&
           !is_s[static_cast<std::size_t>(i - 1)];
  };

  std::vector<std::int32_t> bucket(static_cast<std::size_t>(K));
  const auto reset_buckets = [&](bool end) {
    std::fill(bucket.begin(), bucket.end(), 0);
    for (std::int32_t i = 0; i < n; ++i) {
      ++bucket[static_cast<std::size_t>(s[i])];
    }
    std::int32_t sum = 0;
    for (std::int32_t c = 0; c < K; ++c) {
      sum += bucket[static_cast<std::size_t>(c)];
      bucket[static_cast<std::size_t>(c)] =
          end ? sum : sum - bucket[static_cast<std::size_t>(c)];
    }
  };

  const auto induce_l = [&] {
    reset_buckets(/*end=*/false);
    for (std::int32_t i = 0; i < n; ++i) {
      const std::int32_t j = sa[i] - 1;
      if (sa[i] > 0 && !is_s[static_cast<std::size_t>(j)]) {
        sa[bucket[static_cast<std::size_t>(s[j])]++] = j;
      }
    }
  };
  const auto induce_s = [&] {
    reset_buckets(/*end=*/true);
    for (std::int32_t i = n - 1; i >= 0; --i) {
      const std::int32_t j = sa[i] - 1;
      if (sa[i] > 0 && is_s[static_cast<std::size_t>(j)]) {
        sa[--bucket[static_cast<std::size_t>(s[j])]] = j;
      }
    }
  };

  // Stage 1: place LMS suffixes at bucket ends, induce-sort everything.
  std::fill(sa, sa + n, -1);
  reset_buckets(/*end=*/true);
  for (std::int32_t i = 1; i < n; ++i) {
    if (is_lms(i)) sa[--bucket[static_cast<std::size_t>(s[i])]] = i;
  }
  induce_l();
  induce_s();

  // Compact the (now relatively sorted) LMS suffixes to the front.
  std::int32_t n1 = 0;
  for (std::int32_t i = 0; i < n; ++i) {
    if (is_lms(sa[i])) sa[n1++] = sa[i];
  }
  std::fill(sa + n1, sa + n, -1);

  // Name LMS substrings; equal substrings get equal names.
  std::int32_t names = 0;
  std::int32_t prev = -1;
  for (std::int32_t i = 0; i < n1; ++i) {
    const std::int32_t pos = sa[i];
    bool differ = prev < 0;
    if (!differ) {
      for (std::int32_t d = 0;; ++d) {
        if (pos + d >= n || prev + d >= n) {
          differ = true;
          break;
        }
        if (s[pos + d] != s[prev + d] ||
            is_s[static_cast<std::size_t>(pos + d)] !=
                is_s[static_cast<std::size_t>(prev + d)]) {
          differ = true;
          break;
        }
        if (d > 0 && (is_lms(pos + d) || is_lms(prev + d))) {
          differ = !(is_lms(pos + d) && is_lms(prev + d));
          break;
        }
      }
    }
    if (differ) {
      ++names;
      prev = pos;
    }
    sa[n1 + pos / 2] = names - 1;
  }
  for (std::int32_t i = n - 1, j = n - 1; i >= n1; --i) {
    if (sa[i] >= 0) sa[j--] = sa[i];
  }

  // Stage 2: sort the reduced problem.
  std::int32_t* sa1 = sa;
  std::int32_t* s1 = sa + n - n1;
  if (names < n1) {
    sais<std::int32_t>(s1, sa1, n1, names);
  } else {
    for (std::int32_t i = 0; i < n1; ++i) sa1[s1[i]] = i;
  }

  // Stage 3: map reduced ranks back to LMS text positions, induce final SA.
  for (std::int32_t i = 1, j = 0; i < n; ++i) {
    if (is_lms(i)) s1[j++] = i;  // s1 now lists LMS positions in text order
  }
  for (std::int32_t i = 0; i < n1; ++i) sa1[i] = s1[sa1[i]];
  std::fill(sa + n1, sa + n, -1);
  reset_buckets(/*end=*/true);
  for (std::int32_t i = n1 - 1; i >= 0; --i) {
    const std::int32_t p = sa[i];
    sa[i] = -1;
    sa[--bucket[static_cast<std::size_t>(s[p])]] = p;
  }
  induce_l();
  induce_s();
}

}  // namespace

std::vector<std::int32_t> build_suffix_array(std::string_view text,
                                             int alphabet) {
  const auto n = static_cast<std::int32_t>(text.size());
  if (text.size() >
      static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max() - 2)) {
    throw std::length_error("build_suffix_array: text too large for int32");
  }
  if (n == 0) return {};

  // Shift symbols by +1 and append the 0 sentinel.
  std::vector<std::int32_t> shifted(static_cast<std::size_t>(n) + 1);
  for (std::int32_t i = 0; i < n; ++i) {
    const auto sym = static_cast<std::uint8_t>(text[static_cast<std::size_t>(i)]);
    if (sym >= alphabet) {
      throw std::invalid_argument("build_suffix_array: symbol out of range");
    }
    shifted[static_cast<std::size_t>(i)] = sym + 1;
  }
  shifted[static_cast<std::size_t>(n)] = 0;

  std::vector<std::int32_t> sa(static_cast<std::size_t>(n) + 1);
  sais<std::int32_t>(shifted.data(), sa.data(), n + 1, alphabet + 1);
  // Drop the sentinel suffix (always SA[0]).
  sa.erase(sa.begin());
  return sa;
}

std::vector<std::int32_t> build_suffix_array_parallel(const ConcatText& text,
                                                      exec::Pool& pool) {
  const std::string& t = text.text();
  if (pool.size() <= 1 || t.size() < 2 * pool.size()) {
    return build_suffix_array(t, seq::kIndexAlphabetSize);
  }
  const auto n = static_cast<std::size_t>(t.size());

  // Suffix order over the whole text. string_view comparison is unsigned
  // bytewise with shorter-prefix-smaller, which matches SA-IS's implicit
  // smallest sentinel. Comparing against the GLOBAL text is essential:
  // suffixes that tie through their block (e.g. through equal separator
  // symbols) are ordered by text beyond it.
  const std::string_view sv(t);
  const auto suffix_less = [sv](std::int32_t x, std::int32_t y) {
    return sv.substr(static_cast<std::size_t>(x)) <
           sv.substr(static_cast<std::size_t>(y));
  };

  // Sort equal-size position blocks concurrently...
  const std::size_t block_count = pool.size();
  const std::size_t per_block = (n + block_count - 1) / block_count;
  std::vector<std::vector<std::int32_t>> runs(block_count);
  exec::parallel_for(pool, block_count, 1, [&](std::size_t b) {
    const std::size_t lo = b * per_block;
    const std::size_t hi = std::min(n, lo + per_block);
    auto& run = runs[b];
    run.resize(hi > lo ? hi - lo : 0);
    for (std::size_t i = lo; i < hi; ++i) {
      run[i - lo] = static_cast<std::int32_t>(i);
    }
    std::sort(run.begin(), run.end(), suffix_less);
  });

  // ...then merge pairwise (each round's merges run concurrently too).
  while (runs.size() > 1) {
    std::vector<std::vector<std::int32_t>> next((runs.size() + 1) / 2);
    exec::parallel_for(pool, next.size(), 1, [&](std::size_t k) {
      if (2 * k + 1 < runs.size()) {
        next[k].reserve(runs[2 * k].size() + runs[2 * k + 1].size());
        std::merge(runs[2 * k].begin(), runs[2 * k].end(),
                   runs[2 * k + 1].begin(), runs[2 * k + 1].end(),
                   std::back_inserter(next[k]), suffix_less);
      } else {
        next[k] = std::move(runs[2 * k]);
      }
    });
    runs = std::move(next);
  }
  return std::move(runs.front());
}

std::vector<std::int32_t> invert_suffix_array(
    const std::vector<std::int32_t>& sa) {
  std::vector<std::int32_t> rank(sa.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    rank[static_cast<std::size_t>(sa[i])] = static_cast<std::int32_t>(i);
  }
  return rank;
}

}  // namespace pclust::suffix
