#include "pclust/suffix/suffix_tree.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace pclust::suffix {

SuffixTree::SuffixTree(const ConcatText& text,
                       const std::vector<std::int32_t>& sa,
                       const std::vector<std::int32_t>& lcp)
    : text_(&text), sa_(&sa) {
  const auto n = static_cast<std::int32_t>(sa.size());
  if (n == 0) {
    nodes_.push_back(Node{0, 0, -1, kNoNode});
    root_ = 0;
    child_offsets_ = {0, 0};
    return;
  }

  // Stack-based LCP-interval enumeration. Entries carry the child nodes
  // discovered so far; when an entry closes, it becomes a node and is
  // adopted by the enclosing entry.
  struct Entry {
    std::int32_t depth;
    std::int32_t lb;
    std::vector<NodeId> children;
  };
  std::vector<Entry> stack;
  stack.push_back(Entry{0, 0, {}});

  std::vector<std::vector<NodeId>> children_of;  // parallel to nodes_

  const auto create_node = [&](Entry&& e, std::int32_t rb) -> NodeId {
    const auto id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(Node{e.depth, e.lb, rb, kNoNode});
    for (NodeId c : e.children) {
      nodes_[static_cast<std::size_t>(c)].parent = id;
    }
    children_of.push_back(std::move(e.children));
    return id;
  };

  for (std::int32_t i = 1; i <= n; ++i) {
    const std::int32_t cur_lcp = (i < n) ? lcp[static_cast<std::size_t>(i)] : 0;
    std::int32_t lb = i - 1;
    NodeId last_created = kNoNode;
    while (stack.back().depth > cur_lcp) {
      Entry e = std::move(stack.back());
      stack.pop_back();
      if (last_created != kNoNode) e.children.push_back(last_created);
      lb = e.lb;
      last_created = create_node(std::move(e), i - 1);
    }
    if (stack.back().depth == cur_lcp) {
      if (last_created != kNoNode) {
        stack.back().children.push_back(last_created);
      }
    } else {
      stack.push_back(Entry{cur_lcp, lb, {}});
      if (last_created != kNoNode) {
        stack.back().children.push_back(last_created);
      }
    }
  }

  assert(stack.size() == 1 && stack.back().depth == 0);
  root_ = create_node(std::move(stack.back()), n - 1);
  stack.clear();

  // Freeze children into CSR form (ascending lb per node).
  child_offsets_.assign(nodes_.size() + 1, 0);
  for (std::size_t v = 0; v < nodes_.size(); ++v) {
    child_offsets_[v + 1] =
        child_offsets_[v] + static_cast<std::int32_t>(children_of[v].size());
  }
  child_list_.resize(static_cast<std::size_t>(child_offsets_.back()));
  for (std::size_t v = 0; v < nodes_.size(); ++v) {
    auto& kids = children_of[v];
    std::sort(kids.begin(), kids.end(), [this](NodeId a, NodeId b) {
      return node(a).lb < node(b).lb;
    });
    std::copy(kids.begin(), kids.end(),
              child_list_.begin() +
                  static_cast<std::ptrdiff_t>(child_offsets_[v]));
  }

  // leaf_parent: deepest internal node whose range covers each SA index.
  // Nodes were created children-before-parents, so a forward pass that
  // writes only unset entries assigns the deepest cover first.
  leaf_parent_.assign(sa.size(), kNoNode);
  for (std::size_t v = 0; v < nodes_.size(); ++v) {
    const Node& nd = nodes_[v];
    for (std::int32_t j = nd.lb; j <= nd.rb; ++j) {
      if (leaf_parent_[static_cast<std::size_t>(j)] == kNoNode) {
        leaf_parent_[static_cast<std::size_t>(j)] = static_cast<NodeId>(v);
      }
    }
  }
}

std::vector<SuffixTree::NodeId> SuffixTree::children(NodeId id) const {
  const auto v = static_cast<std::size_t>(id);
  return {child_list_.begin() + static_cast<std::ptrdiff_t>(child_offsets_[v]),
          child_list_.begin() +
              static_cast<std::ptrdiff_t>(child_offsets_[v + 1])};
}

std::vector<SuffixTree::NodeId> SuffixTree::nodes_by_depth(
    std::int32_t min_depth) const {
  std::vector<NodeId> out;
  for (std::size_t v = 0; v < nodes_.size(); ++v) {
    if (nodes_[v].depth >= min_depth) out.push_back(static_cast<NodeId>(v));
  }
  std::sort(out.begin(), out.end(), [this](NodeId a, NodeId b) {
    if (node(a).depth != node(b).depth) return node(a).depth > node(b).depth;
    return node(a).lb < node(b).lb;
  });
  return out;
}

std::uint64_t SuffixTree::total_edge_chars() const {
  std::uint64_t total = 0;
  for (const Node& nd : nodes_) {
    if (nd.parent != kNoNode) {
      total += static_cast<std::uint64_t>(nd.depth - node(nd.parent).depth);
    }
  }
  // Leaf edges: each suffix's full remaining length beyond its parent node.
  for (std::size_t i = 0; i < sa_->size(); ++i) {
    const NodeId p = leaf_parent_[i];
    const auto run = text_->run_length(static_cast<std::size_t>(
        (*sa_)[i]));
    const auto parent_depth = node(p).depth;
    if (static_cast<std::int32_t>(run) > parent_depth) {
      total += static_cast<std::uint64_t>(
          static_cast<std::int32_t>(run) - parent_depth);
    }
  }
  return total;
}

util::MemoryBreakdown SuffixTree::memory_usage() const {
  util::MemoryBreakdown b("suffix_tree");
  b.add("nodes", util::vector_bytes(nodes_));
  b.add("child_offsets", util::vector_bytes(child_offsets_));
  b.add("child_list", util::vector_bytes(child_list_));
  b.add("leaf_parents", util::vector_bytes(leaf_parent_));
  return b;
}

}  // namespace pclust::suffix
