#include "pclust/suffix/maximal_match.hpp"

#include <algorithm>

#include "pclust/exec/pool.hpp"
#include "pclust/seq/alphabet.hpp"
#include "pclust/suffix/suffix_tree.hpp"
#include "pclust/util/metrics.hpp"

namespace pclust::suffix {

namespace {

/// Folds the stats of one enumeration into the process-wide registry on
/// every exit path (including early stops from the visitor).
struct StatsRecorder {
  const EnumerationStats& stats;
  ~StatsRecorder() {
    static util::Counter& visited =
        util::metrics().counter("suffix.nodes_visited");
    static util::Counter& skipped =
        util::metrics().counter("suffix.nodes_skipped_big");
    static util::Counter& pairs =
        util::metrics().counter("suffix.pairs_emitted");
    visited.add(stats.nodes_visited);
    skipped.add(stats.nodes_skipped_big);
    pairs.add(stats.pairs_emitted);
  }
};

struct Candidate {
  std::int32_t depth;
  std::int32_t lb;
  std::int32_t rb;
};

struct Leaf {
  seq::SeqId sequence;
  std::uint32_t offset;
  std::uint8_t left;
};

/// Bucket key of the suffix at SA position i: its first prefix_len symbols,
/// stopped early at a separator (short suffixes form their own buckets).
std::uint64_t bucket_key(const ConcatText& text,
                         const std::vector<std::int32_t>& sa, std::int32_t i,
                         std::uint32_t prefix_len) {
  std::uint64_t key = 0;
  const auto pos = static_cast<std::size_t>(sa[static_cast<std::size_t>(i)]);
  for (std::uint32_t d = 0; d < prefix_len; ++d) {
    const std::size_t p = pos + d;
    const std::uint8_t sym =
        (p < text.size()) ? text.at(p) : seq::kRankTerminator;
    key = key * (seq::kIndexAlphabetSize + 1) + sym + 1;
    if (sym >= seq::kRankSeparator) break;  // short suffix: stop the key
  }
  return key;
}

}  // namespace

MaximalMatchEnumerator::MaximalMatchEnumerator(
    const ConcatText& text, const std::vector<std::int32_t>& sa,
    const std::vector<std::int32_t>& lcp, MaximalMatchParams params)
    : text_(&text), sa_(&sa), lcp_(&lcp), params_(params) {}

EnumerationStats MaximalMatchEnumerator::enumerate(
    std::int32_t range_lo, std::int32_t range_hi,
    const std::function<bool(const MaximalMatch&)>& visit) const {
  EnumerationStats stats;
  const StatsRecorder recorder{stats};
  if (sa_->empty() || range_hi < range_lo) return stats;
  const auto& sa = *sa_;
  const auto& lcp = *lcp_;
  const auto min_len = static_cast<std::int32_t>(params_.min_length);

  // Phase A: collect LCP-interval nodes of depth >= ψ inside the range.
  std::vector<Candidate> candidates;
  {
    struct Entry {
      std::int32_t depth;
      std::int32_t lb;
    };
    std::vector<Entry> stack;
    stack.push_back(Entry{0, range_lo});
    for (std::int32_t i = range_lo + 1; i <= range_hi + 1; ++i) {
      const std::int32_t cur =
          (i <= range_hi) ? lcp[static_cast<std::size_t>(i)] : 0;
      std::int32_t lb = i - 1;
      while (stack.back().depth > cur) {
        const Entry e = stack.back();
        stack.pop_back();
        if (e.depth >= min_len) {
          candidates.push_back(Candidate{e.depth, e.lb, i - 1});
        }
        lb = e.lb;
      }
      if (stack.back().depth < cur) stack.push_back(Entry{cur, lb});
    }
  }

  // Phase B: deepest-first, regenerate child blocks and emit cross-block
  // left-maximal pairs.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.depth != b.depth) return a.depth > b.depth;
              return a.lb < b.lb;
            });

  std::vector<Leaf> prev;
  std::vector<Leaf> block;
  for (const Candidate& c : candidates) {
    ++stats.nodes_visited;
    const auto occurrences = static_cast<std::uint32_t>(c.rb - c.lb + 1);
    if (params_.max_node_occurrences != 0 &&
        occurrences > params_.max_node_occurrences) {
      ++stats.nodes_skipped_big;
      continue;
    }

    prev.clear();
    block.clear();
    const auto make_leaf = [&](std::int32_t k) {
      const auto pos = static_cast<std::size_t>(sa[static_cast<std::size_t>(k)]);
      return Leaf{text_->sequence_at(pos), text_->offset_at(pos),
                  text_->left_char(pos)};
    };
    const auto flush_block = [&]() -> bool {
      for (const Leaf& x : block) {
        for (const Leaf& y : prev) {
          if (x.sequence == y.sequence) continue;
          // Left-maximal: different left residues, or either occurrence at
          // its sequence start (left char is a separator).
          if (x.left == y.left && x.left < seq::kRankSeparator) continue;
          MaximalMatch m;
          if (x.sequence < y.sequence) {
            m = MaximalMatch{x.sequence, y.sequence, x.offset, y.offset,
                             static_cast<std::uint32_t>(c.depth)};
          } else {
            m = MaximalMatch{y.sequence, x.sequence, y.offset, x.offset,
                             static_cast<std::uint32_t>(c.depth)};
          }
          ++stats.pairs_emitted;
          if (!visit(m)) return false;
        }
      }
      prev.insert(prev.end(), block.begin(), block.end());
      block.clear();
      return true;
    };

    block.push_back(make_leaf(c.lb));
    for (std::int32_t k = c.lb + 1; k <= c.rb; ++k) {
      if (lcp[static_cast<std::size_t>(k)] == c.depth) {
        if (!flush_block()) return stats;  // child boundary
      }
      block.push_back(make_leaf(k));
    }
    if (!flush_block()) return stats;
  }
  return stats;
}

std::vector<MaximalMatch> MaximalMatchEnumerator::all() const {
  std::vector<MaximalMatch> out;
  if (sa_->empty()) return out;
  enumerate(0, static_cast<std::int32_t>(sa_->size()) - 1,
            [&out](const MaximalMatch& m) {
              out.push_back(m);
              return true;
            });
  return out;
}

EnumerationStats enumerate_from_tree(
    const SuffixTree& tree, const ConcatText& text,
    const std::vector<std::int32_t>& sa, const MaximalMatchParams& params,
    const std::function<bool(const MaximalMatch&)>& visit) {
  EnumerationStats stats;
  const StatsRecorder recorder{stats};
  const auto min_len = static_cast<std::int32_t>(params.min_length);

  std::vector<Leaf> prev;
  std::vector<Leaf> block;
  const auto make_leaf = [&](std::int32_t k) {
    const auto pos = static_cast<std::size_t>(sa[static_cast<std::size_t>(k)]);
    return Leaf{text.sequence_at(pos), text.offset_at(pos),
                text.left_char(pos)};
  };

  for (const SuffixTree::NodeId v : tree.nodes_by_depth(min_len)) {
    ++stats.nodes_visited;
    const auto& node = tree.node(v);
    const auto occurrences =
        static_cast<std::uint32_t>(node.rb - node.lb + 1);
    if (params.max_node_occurrences != 0 &&
        occurrences > params.max_node_occurrences) {
      ++stats.nodes_skipped_big;
      continue;
    }

    prev.clear();
    const auto flush_block = [&]() -> bool {
      for (const Leaf& x : block) {
        for (const Leaf& y : prev) {
          if (x.sequence == y.sequence) continue;
          if (x.left == y.left && x.left < seq::kRankSeparator) continue;
          MaximalMatch m;
          if (x.sequence < y.sequence) {
            m = MaximalMatch{x.sequence, y.sequence, x.offset, y.offset,
                             static_cast<std::uint32_t>(node.depth)};
          } else {
            m = MaximalMatch{y.sequence, x.sequence, y.offset, x.offset,
                             static_cast<std::uint32_t>(node.depth)};
          }
          ++stats.pairs_emitted;
          if (!visit(m)) return false;
        }
      }
      prev.insert(prev.end(), block.begin(), block.end());
      block.clear();
      return true;
    };

    // Blocks = child subtrees plus singleton leaves in the gaps between
    // them, in ascending SA order (matching the flat backend exactly).
    std::int32_t cursor = node.lb;
    for (const SuffixTree::NodeId child : tree.children(v)) {
      const auto& c = tree.node(child);
      for (; cursor < c.lb; ++cursor) {
        block.push_back(make_leaf(cursor));
        if (!flush_block()) return stats;
      }
      for (; cursor <= c.rb; ++cursor) block.push_back(make_leaf(cursor));
      if (!flush_block()) return stats;
    }
    for (; cursor <= node.rb; ++cursor) {
      block.push_back(make_leaf(cursor));
      if (!flush_block()) return stats;
    }
  }
  return stats;
}

std::vector<MaximalMatchEnumerator::Bucket>
MaximalMatchEnumerator::prefix_buckets(std::uint32_t prefix_len) const {
  std::vector<Bucket> out;
  const auto& sa = *sa_;
  const auto n = static_cast<std::int32_t>(sa.size());

  const auto key_of = [&](std::int32_t i) {
    return bucket_key(*text_, sa, i, prefix_len);
  };

  std::int32_t i = 0;
  while (i < n) {
    const auto pos = static_cast<std::size_t>(sa[static_cast<std::size_t>(i)]);
    if (text_->is_separator(pos)) {
      ++i;  // separator-led suffixes carry no matches
      continue;
    }
    const std::uint64_t key = key_of(i);
    Bucket b{i, i, 0};
    while (i < n) {
      const auto p = static_cast<std::size_t>(sa[static_cast<std::size_t>(i)]);
      if (text_->is_separator(p) || key_of(i) != key) break;
      b.rb = i;
      b.weight += text_->run_length(p);
      ++i;
    }
    out.push_back(b);
  }
  return out;
}

std::vector<MaximalMatchEnumerator::Bucket>
MaximalMatchEnumerator::prefix_buckets(std::uint32_t prefix_len,
                                       exec::Pool& pool) const {
  const auto& sa = *sa_;
  const auto n = static_cast<std::int32_t>(sa.size());
  if (pool.size() <= 1 || static_cast<std::size_t>(n) < 2 * pool.size()) {
    return prefix_buckets(prefix_len);
  }

  const auto key_of = [&](std::int32_t i) {
    return bucket_key(*text_, sa, i, prefix_len);
  };

  // Scan SA chunks independently; a bucket crossing a chunk boundary comes
  // out split into contiguous parts with the same key.
  const std::size_t chunk_count = 4 * pool.size();
  const std::size_t per_chunk =
      (static_cast<std::size_t>(n) + chunk_count - 1) / chunk_count;
  std::vector<std::vector<Bucket>> parts(chunk_count);
  exec::parallel_for(pool, chunk_count, 1, [&](std::size_t chunk) {
    const auto lo = static_cast<std::int32_t>(chunk * per_chunk);
    const auto hi = std::min(n, static_cast<std::int32_t>((chunk + 1) *
                                                          per_chunk));
    auto& out = parts[chunk];
    std::int32_t i = lo;
    while (i < hi) {
      const auto pos =
          static_cast<std::size_t>(sa[static_cast<std::size_t>(i)]);
      if (text_->is_separator(pos)) {
        ++i;  // separator-led suffixes carry no matches
        continue;
      }
      const std::uint64_t key = key_of(i);
      Bucket b{i, i, 0};
      while (i < hi) {
        const auto p = static_cast<std::size_t>(sa[static_cast<std::size_t>(i)]);
        if (text_->is_separator(p) || key_of(i) != key) break;
        b.rb = i;
        b.weight += text_->run_length(p);
        ++i;
      }
      out.push_back(b);
    }
  });

  // Stitch: merge a chunk-leading bucket into the previous one only when
  // the SA ranges are contiguous AND the keys match. The serial scan never
  // produces adjacent same-key buckets without a separator-led gap between
  // them, so this undoes exactly the chunk-boundary splits.
  std::vector<Bucket> out;
  for (const auto& part : parts) {
    for (const Bucket& b : part) {
      if (!out.empty() && out.back().rb + 1 == b.lb &&
          key_of(out.back().lb) == key_of(b.lb)) {
        out.back().rb = b.rb;
        out.back().weight += b.weight;
      } else {
        out.push_back(b);
      }
    }
  }
  return out;
}

}  // namespace pclust::suffix
