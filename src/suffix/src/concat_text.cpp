#include "pclust/suffix/concat_text.hpp"

#include <algorithm>
#include <numeric>

#include "pclust/seq/alphabet.hpp"

namespace pclust::suffix {

ConcatText::ConcatText(const seq::SequenceSet& set) {
  std::vector<seq::SeqId> ids(set.size());
  std::iota(ids.begin(), ids.end(), seq::SeqId{0});
  build(set, ids);
}

ConcatText::ConcatText(const seq::SequenceSet& set,
                       const std::vector<seq::SeqId>& ids) {
  build(set, ids);
}

void ConcatText::build(const seq::SequenceSet& set,
                       const std::vector<seq::SeqId>& ids) {
  std::size_t total = 0;
  for (seq::SeqId id : ids) total += set.length(id) + 1;
  text_.reserve(total);
  starts_.reserve(ids.size());
  original_ = ids;
  for (seq::SeqId id : ids) {
    starts_.push_back(text_.size());
    text_.append(set.residues(id));
    text_.push_back(static_cast<char>(seq::kRankSeparator));
  }
}

seq::SeqId ConcatText::sequence_at(std::size_t pos) const {
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), pos);
  const auto idx = static_cast<std::size_t>(
      std::distance(starts_.begin(), it) - 1);
  return original_[idx];
}

std::uint32_t ConcatText::offset_at(std::size_t pos) const {
  const auto it = std::upper_bound(starts_.begin(), starts_.end(), pos);
  const auto idx = static_cast<std::size_t>(
      std::distance(starts_.begin(), it) - 1);
  return static_cast<std::uint32_t>(pos - starts_[idx]);
}

std::uint32_t ConcatText::run_length(std::size_t pos) const {
  std::uint32_t len = 0;
  while (pos + len < text_.size() && !is_separator(pos + len)) ++len;
  return len;
}

std::uint8_t ConcatText::left_char(std::size_t pos) const {
  if (pos == 0) return seq::kRankSeparator;
  return at(pos - 1);  // a separator if pos starts a sequence
}

util::MemoryBreakdown ConcatText::memory_usage() const {
  util::MemoryBreakdown b("concat_text");
  b.add("text", util::string_bytes(text_));
  b.add("starts", util::vector_bytes(starts_));
  b.add("original_ids", util::vector_bytes(original_));
  return b;
}

}  // namespace pclust::suffix
