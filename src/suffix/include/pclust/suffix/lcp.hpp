// LCP array over the concatenated multi-sequence text.
//
// lcp[i] = length of the longest common prefix of the suffixes at sa[i-1]
// and sa[i] (lcp[0] = 0), TRUNCATED at the first separator: a match that
// would cross a sequence boundary is not a match between residues, so the
// effective LCP is min(raw Kasai LCP, distance to the owning sequence's
// separator). Because truncation fires only when both suffixes reach their
// separators at the same offset, the truncated value is the same whichever
// of the two suffixes is measured.
#pragma once

#include <cstdint>
#include <vector>

#include "pclust/suffix/concat_text.hpp"

namespace pclust::exec {
class Pool;
}

namespace pclust::suffix {

[[nodiscard]] std::vector<std::int32_t> build_lcp(
    const ConcatText& text, const std::vector<std::int32_t>& sa);

/// Parallel Kasai: text positions are chunked across the pool; each chunk
/// restarts the h counter at 0 (h is only a lower-bound optimization, so
/// every lcp[rank[i]] write is independently correct). Bit-identical to
/// build_lcp; pool size 1 falls back to the serial scan.
[[nodiscard]] std::vector<std::int32_t> build_lcp_parallel(
    const ConcatText& text, const std::vector<std::int32_t>& sa,
    exec::Pool& pool);

}  // namespace pclust::suffix
