// Generalized suffix tree over a ConcatText, materialized from the suffix
// array + separator-truncated LCP array.
//
// Internal nodes are exactly the LCP intervals (Abouelhoda et al. 2004);
// leaves are the suffix-array positions. The topology is identical to what
// McCreight/Ukkonen would build for the generalized input (with matches
// never crossing sequence boundaries), which is how the paper's GST [21] is
// used: as a string index for maximal-match detection.
#pragma once

#include <cstdint>
#include <vector>

#include "pclust/suffix/concat_text.hpp"

namespace pclust::suffix {

class SuffixTree {
 public:
  using NodeId = std::int32_t;
  static constexpr NodeId kNoNode = -1;

  struct Node {
    std::int32_t depth = 0;  // string depth (residues from the root)
    std::int32_t lb = 0;     // inclusive suffix-array range
    std::int32_t rb = 0;
    NodeId parent = kNoNode;
  };

  /// Build from a text, its suffix array, and its LCP array. All three must
  /// outlive the tree (sa/lcp are referenced, not copied).
  SuffixTree(const ConcatText& text, const std::vector<std::int32_t>& sa,
             const std::vector<std::int32_t>& lcp);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] NodeId root() const { return root_; }
  [[nodiscard]] const Node& node(NodeId id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }

  /// Child internal nodes of @p id (deterministic order: ascending lb).
  [[nodiscard]] std::vector<NodeId> children(NodeId id) const;

  /// Number of leaves (suffixes) under @p id.
  [[nodiscard]] std::int32_t leaf_count(NodeId id) const {
    const Node& n = node(id);
    return n.rb - n.lb + 1;
  }

  /// Suffix (text position) of the i-th leaf under @p id.
  [[nodiscard]] std::int32_t leaf_suffix(NodeId id, std::int32_t i) const {
    return (*sa_)[static_cast<std::size_t>(node(id).lb + i)];
  }

  /// Deepest internal node containing SA index @p sa_index as a leaf whose
  /// depth is >= 1, or the root.
  [[nodiscard]] NodeId leaf_parent(std::int32_t sa_index) const {
    return leaf_parent_[static_cast<std::size_t>(sa_index)];
  }

  /// Internal nodes with string depth >= min_depth, deepest first (ties by
  /// lb ascending) — the order promising pairs are generated in.
  [[nodiscard]] std::vector<NodeId> nodes_by_depth(
      std::int32_t min_depth) const;

  /// Total characters on root-to-node edges summed over all nodes — a proxy
  /// for construction work used by the mpsim cost model.
  [[nodiscard]] std::uint64_t total_edge_chars() const;

  /// Heap footprint: internal nodes, child CSR, and leaf-parent map — all
  /// O(text) for the paper's linear-space GST claim.
  [[nodiscard]] util::MemoryBreakdown memory_usage() const;

 private:
  const ConcatText* text_;
  const std::vector<std::int32_t>* sa_;
  std::vector<Node> nodes_;
  NodeId root_ = kNoNode;
  // CSR of internal-node children.
  std::vector<std::int32_t> child_offsets_;
  std::vector<NodeId> child_list_;
  std::vector<NodeId> leaf_parent_;
};

}  // namespace pclust::suffix
