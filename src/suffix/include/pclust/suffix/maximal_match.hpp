// Maximal-match pair generation — the paper's exact-match filtering
// heuristic (§IV-A/B).
//
// A "maximal match" between sequences s_a and s_b is an exact match that
// cannot be extended left or right (a mismatch or a sequence boundary on
// both flanks). Per Gusfield, the pair of occurrences is found at the
// suffix-tree node that is the LCA of the two suffixes: occurrences in
// different child subtrees (right-maximal) with different left characters
// (left-maximal, with sequence starts always passing).
//
// The generator emits pairs in NON-INCREASING match-length order — the
// on-demand schedule of [19] that lets the PaCE master merge clusters as
// early as possible — and supports restriction to a suffix-array range so
// mpsim workers can own disjoint prefix buckets of the tree.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "pclust/suffix/concat_text.hpp"
#include "pclust/suffix/lcp.hpp"
#include "pclust/suffix/suffix_array.hpp"

namespace pclust::suffix {

struct MaximalMatch {
  seq::SeqId a = 0;
  seq::SeqId b = 0;             // a != b; (a, b) normalized so a < b
  std::uint32_t a_pos = 0;      // match start offset within sequence a
  std::uint32_t b_pos = 0;
  std::uint32_t length = 0;

  /// Diagonal hint for banded alignment of (a, b).
  [[nodiscard]] std::int64_t diagonal() const {
    return static_cast<std::int64_t>(a_pos) - static_cast<std::int64_t>(b_pos);
  }

  friend bool operator==(const MaximalMatch&, const MaximalMatch&) = default;
};

struct MaximalMatchParams {
  /// Minimum match length ψ. The paper derives ψ from the error model
  /// (e.g. 98 % similarity over 100 residues implies a >= 33-residue exact
  /// match) and uses matches of length 10 for the 40 K experiment.
  std::uint32_t min_length = 10;
  /// Skip (and count) nodes whose occurrence list exceeds this bound —
  /// low-complexity guard, analogous to BLAST seed masking. 0 = unlimited.
  std::uint32_t max_node_occurrences = 50'000;
};

struct EnumerationStats {
  std::uint64_t nodes_visited = 0;
  std::uint64_t nodes_skipped_big = 0;
  std::uint64_t pairs_emitted = 0;
};

/// Enumerates maximal-match pairs over a pre-built SA+LCP. The text, sa and
/// lcp must outlive the enumerator.
class MaximalMatchEnumerator {
 public:
  MaximalMatchEnumerator(const ConcatText& text,
                         const std::vector<std::int32_t>& sa,
                         const std::vector<std::int32_t>& lcp,
                         MaximalMatchParams params = {});

  /// Visit matches in non-increasing length order, restricted to suffix-tree
  /// nodes fully inside SA range [range_lo, range_hi] (pass 0, sa.size()-1
  /// for everything). Return false from @p visit to stop early.
  EnumerationStats enumerate(
      std::int32_t range_lo, std::int32_t range_hi,
      const std::function<bool(const MaximalMatch&)>& visit) const;

  /// Convenience: all matches over the whole text.
  [[nodiscard]] std::vector<MaximalMatch> all() const;

  [[nodiscard]] const MaximalMatchParams& params() const { return params_; }

  /// Contiguous SA ranges grouping suffixes by their first
  /// min(prefix_len, run) residues, with separator-led suffixes excluded.
  /// Any suffix-tree node of depth >= prefix_len falls entirely inside one
  /// bucket, so buckets can be distributed to workers independently.
  /// Returns (lb, rb, total_suffix_chars) triples.
  struct Bucket {
    std::int32_t lb;
    std::int32_t rb;
    std::uint64_t weight;  // total remaining residues (GST-build cost proxy)
  };
  [[nodiscard]] std::vector<Bucket> prefix_buckets(
      std::uint32_t prefix_len) const;

  /// Parallel bucket scan: SA chunks are scanned concurrently, then buckets
  /// split by a chunk boundary are stitched back together (contiguous ranges
  /// with equal prefix keys). Identical output to the serial overload.
  [[nodiscard]] std::vector<Bucket> prefix_buckets(std::uint32_t prefix_len,
                                                   exec::Pool& pool) const;

 private:
  const ConcatText* text_;
  const std::vector<std::int32_t>* sa_;
  const std::vector<std::int32_t>* lcp_;
  MaximalMatchParams params_;
};

class SuffixTree;

/// Alternative backend: enumerate the same maximal-match pairs by walking a
/// materialized generalized suffix tree (children from the tree topology
/// instead of LCP re-scans). Produces the IDENTICAL pair sequence as
/// MaximalMatchEnumerator::enumerate over the whole text — property-tested;
/// compared in bench_ablation_index.
EnumerationStats enumerate_from_tree(
    const SuffixTree& tree, const ConcatText& text,
    const std::vector<std::int32_t>& sa, const MaximalMatchParams& params,
    const std::function<bool(const MaximalMatch&)>& visit);

}  // namespace pclust::suffix
