// Fixed-length exact-word (w-mer) index for the paper's domain-based
// bipartite reduction B_m (§III): V_m = all w-length strings occurring in at
// least two different input sequences, with an edge (e_i, s_j) whenever e_i
// is a substring of s_j.
//
// w defaults to 10 residues (paper: w ≈ 10). Words containing the ambiguity
// residue 'X' are skipped — they would connect unrelated sequences.
#pragma once

#include <cstdint>
#include <vector>

#include "pclust/seq/sequence_set.hpp"
#include "pclust/util/memsize.hpp"

namespace pclust::suffix {

class KmerIndex {
 public:
  struct Params {
    std::uint32_t w = 10;
    /// Drop words occurring in more than this many distinct sequences
    /// (low-complexity guard). 0 = unlimited.
    std::uint32_t max_sequences_per_word = 0;
  };

  /// Index the given sequences (or all of @p set if @p ids is empty).
  KmerIndex(const seq::SequenceSet& set, const std::vector<seq::SeqId>& ids,
            Params params);

  [[nodiscard]] const Params& params() const { return params_; }

  /// Number of distinct words kept (present in >= 2 distinct sequences and
  /// under the occurrence cap).
  [[nodiscard]] std::size_t word_count() const { return word_offsets_.size() - 1; }

  /// Distinct sequences containing word @p w_idx (sorted ascending).
  [[nodiscard]] std::vector<seq::SeqId> sequences_of(std::size_t w_idx) const;

  /// Packed value of word @p w_idx (5 bits per residue, w <= 12).
  [[nodiscard]] std::uint64_t packed_word(std::size_t w_idx) const {
    return words_[w_idx];
  }

  /// Decode a packed word back to ASCII (for reports).
  [[nodiscard]] std::string decode_word(std::size_t w_idx) const;

  [[nodiscard]] std::size_t dropped_high_occurrence() const {
    return dropped_high_occ_;
  }

  /// Heap footprint: packed words plus the CSR membership lists.
  [[nodiscard]] util::MemoryBreakdown memory_usage() const;

 private:
  Params params_;
  std::vector<std::uint64_t> words_;          // packed, sorted
  std::vector<std::uint32_t> word_offsets_;   // CSR into members_
  std::vector<seq::SeqId> members_;
  std::size_t dropped_high_occ_ = 0;
};

}  // namespace pclust::suffix
