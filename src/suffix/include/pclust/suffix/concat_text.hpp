// ConcatText: the concatenated rank-encoded text over which all suffix
// structures are built.
//
// Layout: seq_0 SEP seq_1 SEP ... seq_{n-1} SEP  (SEP = seq::kRankSeparator).
// A position's owning sequence is recovered by binary search over sequence
// start offsets; exact matches never cross a separator (the LCP array is
// truncated accordingly, see lcp.hpp).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "pclust/seq/alphabet.hpp"
#include "pclust/seq/sequence_set.hpp"
#include "pclust/util/memsize.hpp"

namespace pclust::suffix {

class ConcatText {
 public:
  /// Build over all sequences of @p set (which must outlive this object).
  explicit ConcatText(const seq::SequenceSet& set);

  /// Build over a subset of sequence ids. Positions map back to the
  /// ORIGINAL ids in @p set.
  ConcatText(const seq::SequenceSet& set, const std::vector<seq::SeqId>& ids);

  [[nodiscard]] const std::string& text() const { return text_; }
  [[nodiscard]] std::size_t size() const { return text_.size(); }
  [[nodiscard]] std::uint8_t at(std::size_t pos) const {
    return static_cast<std::uint8_t>(text_[pos]);
  }

  [[nodiscard]] std::size_t sequence_count() const { return starts_.size(); }

  /// Owning sequence (original SeqId) of global position @p pos; pos must
  /// not point at a separator.
  [[nodiscard]] seq::SeqId sequence_at(std::size_t pos) const;

  /// Offset of @p pos within its owning sequence.
  [[nodiscard]] std::uint32_t offset_at(std::size_t pos) const;

  /// Residues remaining in the owning sequence from @p pos (distance to the
  /// following separator). 0 if pos is itself a separator.
  [[nodiscard]] std::uint32_t run_length(std::size_t pos) const;

  /// The residue preceding @p pos within the same sequence, or
  /// seq::kRankSeparator if pos is the first residue of its sequence.
  /// Left-maximality of matches is tested against this.
  [[nodiscard]] std::uint8_t left_char(std::size_t pos) const;

  [[nodiscard]] bool is_separator(std::size_t pos) const {
    return at(pos) >= seq::kRankSeparator;
  }

  /// Global start position of the i-th sequence in the subset order.
  [[nodiscard]] std::size_t start_of(std::size_t i) const { return starts_[i]; }

  /// Heap footprint: concatenated residues plus the position maps.
  [[nodiscard]] util::MemoryBreakdown memory_usage() const;

 private:
  void build(const seq::SequenceSet& set, const std::vector<seq::SeqId>& ids);

  std::string text_;
  std::vector<std::size_t> starts_;   // global start of each subset sequence
  std::vector<seq::SeqId> original_;  // subset index -> original SeqId
};

}  // namespace pclust::suffix
