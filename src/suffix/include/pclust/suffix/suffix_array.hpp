// Suffix array construction via SA-IS (Nong, Zhang & Chan 2009): linear
// time, linear extra space, induced sorting.
//
// pclust's generalized suffix tree (suffix_tree.hpp) is materialized from
// the suffix array plus the separator-truncated LCP array — the LCP-interval
// tree of a suffix array is exactly the suffix tree topology (Abouelhoda,
// Kurtz & Ohlebusch 2004), and building it this way sidesteps the classic
// single-separator ambiguity of online constructions over concatenated
// multi-sequence text.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace pclust::exec {
class Pool;
}

namespace pclust::suffix {

class ConcatText;

/// Suffix array of @p text (values in [0, alphabet)). An implicit sentinel
/// smaller than every symbol is appended internally; the returned array has
/// exactly text.size() entries (the sentinel's suffix is dropped).
[[nodiscard]] std::vector<std::int32_t> build_suffix_array(
    std::string_view text, int alphabet);

/// Parallel construction over a concatenated multi-sequence text. Returns
/// EXACTLY build_suffix_array(text.text(), seq::kIndexAlphabetSize): text
/// blocks are suffix-sorted concurrently with a global-text comparator
/// (block-local SA-IS would mis-order suffixes whose tie extends past the
/// block), then merged. Pool size 1 falls back to serial SA-IS.
[[nodiscard]] std::vector<std::int32_t> build_suffix_array_parallel(
    const ConcatText& text, exec::Pool& pool);

/// Inverse permutation: rank_of[sa[i]] = i.
[[nodiscard]] std::vector<std::int32_t> invert_suffix_array(
    const std::vector<std::int32_t>& sa);

}  // namespace pclust::suffix
