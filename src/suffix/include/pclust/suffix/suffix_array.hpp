// Suffix array construction via SA-IS (Nong, Zhang & Chan 2009): linear
// time, linear extra space, induced sorting.
//
// pclust's generalized suffix tree (suffix_tree.hpp) is materialized from
// the suffix array plus the separator-truncated LCP array — the LCP-interval
// tree of a suffix array is exactly the suffix tree topology (Abouelhoda,
// Kurtz & Ohlebusch 2004), and building it this way sidesteps the classic
// single-separator ambiguity of online constructions over concatenated
// multi-sequence text.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace pclust::suffix {

/// Suffix array of @p text (values in [0, alphabet)). An implicit sentinel
/// smaller than every symbol is appended internally; the returned array has
/// exactly text.size() entries (the sentinel's suffix is dropped).
[[nodiscard]] std::vector<std::int32_t> build_suffix_array(
    std::string_view text, int alphabet);

/// Inverse permutation: rank_of[sa[i]] = i.
[[nodiscard]] std::vector<std::int32_t> invert_suffix_array(
    const std::vector<std::int32_t>& sa);

}  // namespace pclust::suffix
