#include "pclust/exec/pool.hpp"

#include <algorithm>

#include "pclust/util/metrics.hpp"

namespace pclust::exec {

Pool::Pool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  // A bogus huge request (e.g. a negative CLI value cast to unsigned) would
  // otherwise abort the process once thread creation starts failing.
  size_ = std::min(threads, 1024u);
  workers_.reserve(size_ - 1);
  for (unsigned t = 0; t + 1 < size_; ++t) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

Pool::~Pool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool Pool::run_one_chunk(std::unique_lock<std::mutex>& lock, Job* job) {
  if (!job) {
    for (Job* candidate : jobs_) {
      if (candidate->next < candidate->n) {
        job = candidate;
        break;
      }
    }
  }
  if (!job || job->next >= job->n) return false;

  const std::size_t lo = job->next;
  const std::size_t hi = std::min(job->n, lo + job->grain);
  job->next = hi;
  ++job->active;
  lock.unlock();

  std::exception_ptr error;
  try {
    (*job->body)(lo, hi);
  } catch (...) {
    error = std::current_exception();
  }

  lock.lock();
  --job->active;
  if (error) {
    if (!job->error) job->error = error;
    job->next = job->n;  // abandon the remaining chunks
  }
  if (job->next >= job->n && job->active == 0) done_cv_.notify_all();
  return true;
}

void Pool::worker_main() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [this] {
      if (stop_) return true;
      return std::any_of(jobs_.begin(), jobs_.end(),
                         [](const Job* j) { return j->next < j->n; });
    });
    if (stop_) return;
    run_one_chunk(lock, nullptr);
  }
}

void Pool::for_range(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;

  static util::Counter& jobs = util::metrics().counter("exec.parallel_jobs");
  jobs.add(1);

  if (size_ == 1 || n <= grain) {
    // Serial path: same chunking, caller's thread, no synchronization.
    for (std::size_t lo = 0; lo < n; lo += grain) {
      body(lo, std::min(n, lo + grain));
    }
    return;
  }

  Job job;
  job.n = n;
  job.grain = grain;
  job.body = &body;

  std::unique_lock<std::mutex> lock(mutex_);
  jobs_.push_back(&job);
  work_cv_.notify_all();

  // The caller drives its own job to completion (other lanes help).
  while (run_one_chunk(lock, &job)) {
  }
  done_cv_.wait(lock, [&job] { return job.next >= job.n && job.active == 0; });
  jobs_.erase(std::find(jobs_.begin(), jobs_.end(), &job));
  if (job.error) {
    lock.unlock();
    std::rethrow_exception(job.error);
  }
}

}  // namespace pclust::exec
