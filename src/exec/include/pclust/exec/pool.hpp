// Shared-memory execution layer: a fixed thread pool with dynamically
// chunked parallel loops.
//
// Design notes:
//  - One Pool is created per run (pipeline, engine driver, bench) and passed
//    down explicitly; nothing in pclust spawns hidden threads.
//  - for_range() hands out chunks of at most `grain` indices from a shared
//    cursor, so fast threads steal the tail of slow threads' work
//    ("work-stealing-ish" dynamic scheduling without per-thread deques).
//  - The CALLER participates in its own loop, so for_range() makes progress
//    even when every pool thread is busy with other jobs. This also makes
//    the pool safely shareable by mpsim's simulated ranks: concurrent
//    for_range() calls from different rank threads interleave chunk-wise.
//  - Determinism contract: chunk execution ORDER is unspecified, so bodies
//    must only write to disjoint, index-addressed slots. Reductions are then
//    folded serially in index order by the caller (see parallel_map), which
//    keeps every pooled result bit-identical to the threads=1 run.
//  - A Pool of size 1 never spawns threads and runs every loop inline, so
//    threads=1 is exactly the serial code path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pclust::exec {

class Pool {
 public:
  /// @p threads = 0 picks std::thread::hardware_concurrency(). The pool
  /// spawns threads-1 workers; the caller of for_range is the last lane.
  explicit Pool(unsigned threads = 0);
  ~Pool();

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  /// Number of execution lanes (pool workers + the calling thread), >= 1.
  [[nodiscard]] unsigned size() const { return size_; }

  /// Run body(lo, hi) over every chunk [lo, hi) of [0, n), chunks of at
  /// most @p grain indices (grain 0 is treated as 1). Blocks until all
  /// chunks finished; the first exception thrown by a body is rethrown
  /// here (remaining chunks of the loop are abandoned). Reentrant and
  /// thread-safe: concurrent calls share the worker threads.
  void for_range(std::size_t n, std::size_t grain,
                 const std::function<void(std::size_t, std::size_t)>& body);

 private:
  struct Job {
    std::size_t n = 0;
    std::size_t grain = 1;
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::size_t next = 0;    // first unclaimed index (guarded by pool mutex)
    std::size_t active = 0;  // chunks currently executing
    std::exception_ptr error;
  };

  /// Claim and run one chunk of @p job (which may be null: pick the oldest
  /// incomplete job). Returns false when no chunk was available. Must be
  /// called with @p lock held; releases it while the body runs.
  bool run_one_chunk(std::unique_lock<std::mutex>& lock, Job* job);
  void worker_main();

  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: new chunks available
  std::condition_variable done_cv_;  // callers: a job may have completed
  std::deque<Job*> jobs_;            // active jobs, oldest first
  std::vector<std::thread> workers_;
  unsigned size_ = 1;
  bool stop_ = false;
};

/// Per-index convenience: f(i) for every i in [0, n).
template <typename F>
void parallel_for(Pool& pool, std::size_t n, std::size_t grain, F&& f) {
  pool.for_range(n, grain, [&f](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) f(i);
  });
}

/// Deterministic map: out[i] = f(i). Slots are index-addressed, so the
/// result is independent of chunk scheduling; fold it serially in index
/// order for deterministic reductions.
template <typename T, typename F>
std::vector<T> parallel_map(Pool& pool, std::size_t n, std::size_t grain,
                            F&& f) {
  std::vector<T> out(n);
  pool.for_range(n, grain, [&f, &out](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) out[i] = f(i);
  });
  return out;
}

}  // namespace pclust::exec
