#include "pclust/pace/provenance.hpp"

#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "pclust/align/predicates.hpp"
#include "pclust/dsu/union_find.hpp"
#include "pclust/util/metrics.hpp"

namespace pclust::pace {

prov::Edge ccd_edge_from_verdict(const Verdict& v) {
  prov::Edge e;
  e.a = v.a;
  e.b = v.b;
  e.phase = prov::Phase::kCcd;
  e.rule = prov::Rule::kOverlap;
  e.score = v.score;
  e.matches = v.matches;
  e.columns = v.columns;
  e.a_span = v.a_span;
  e.b_span = v.b_span;
  return e;
}

std::vector<prov::Edge> derive_rr_provenance(const seq::SequenceSet& set,
                                             const RedundancyResult& rr,
                                             const PaceParams& params) {
  std::vector<prov::Edge> edges;
  edges.reserve(rr.removed_count());
  for (seq::SeqId id = 0; id < rr.removed.size(); ++id) {
    if (!rr.removed[id]) continue;
    const seq::SeqId container = rr.container[id];
    const align::PredicateOutcome out = align::test_containment(
        set.residues(id), set.residues(container), params.scheme(),
        params.containment);
    // The phase's (possibly banded) decision already stands; the canonical
    // full-DP alignment is recorded as evidence even in the rare case its
    // cutoff check disagrees with the banded filter's.
    prov::Edge e;
    e.a = id;
    e.b = container;
    e.phase = prov::Phase::kRr;
    e.rule = prov::Rule::kContainment;
    e.score = out.alignment.score;
    e.matches = out.alignment.matches;
    e.columns = out.alignment.columns;
    e.a_span = out.alignment.a_end - out.alignment.a_begin;
    e.b_span = out.alignment.b_end - out.alignment.b_begin;
    edges.push_back(e);
  }
  return edges;
}

std::vector<prov::Edge> derive_ccd_provenance(
    const seq::SequenceSet& set, const std::vector<seq::SeqId>& ids,
    const PaceParams& params,
    const std::vector<std::vector<seq::SeqId>>& components,
    exec::Pool* pool) {
  std::unordered_map<seq::SeqId, std::uint32_t> dense;
  dense.reserve(ids.size());
  for (std::uint32_t i = 0; i < ids.size(); ++i) dense[ids[i]] = i;

  // Final component label per dense id (singletons keep a unique label).
  std::vector<std::uint32_t> label(ids.size());
  for (std::uint32_t i = 0; i < label.size(); ++i) label[i] = i;
  for (std::uint32_t c = 0; c < components.size(); ++c) {
    for (const seq::SeqId member : components[c]) {
      const auto it = dense.find(member);
      if (it == dense.end()) {
        throw std::invalid_argument(
            "derive_ccd_provenance: component member is not in the id set");
      }
      label[it->second] = static_cast<std::uint32_t>(ids.size()) + c;
    }
  }

  std::vector<prov::Edge> edges;
  dsu::UnionFind uf(ids.size());
  std::unordered_set<std::uint64_t> seen;
  std::uint64_t realigned = 0;
  for (const PairTask& task : canonical_pairs(set, ids, params, pool)) {
    if (!seen.insert(task.pair_key()).second) continue;
    const std::uint32_t da = dense.at(task.a);
    const std::uint32_t db = dense.at(task.b);
    if (uf.same(da, db)) continue;
    // Provable reject: the final partition is the transitive closure of
    // accepted overlaps, so a pair straddling two final components was
    // necessarily rejected — skip it without paying for the alignment.
    if (label[da] != label[db]) continue;
    const align::PredicateOutcome out =
        params.band > 0
            ? align::test_overlap_banded(set.residues(task.a),
                                         set.residues(task.b),
                                         params.scheme(), task.diagonal(),
                                         params.band, params.overlap)
            : align::test_overlap(set.residues(task.a), set.residues(task.b),
                                  params.scheme(), params.overlap);
    ++realigned;
    if (!out.accepted) continue;
    uf.merge(da, db);
    Verdict v;
    v.a = task.a;
    v.b = task.b;
    v.code = 1;
    v.score = out.alignment.score;
    v.matches = out.alignment.matches;
    v.columns = out.alignment.columns;
    v.a_span = out.alignment.a_end - out.alignment.a_begin;
    v.b_span = out.alignment.b_end - out.alignment.b_begin;
    edges.push_back(ccd_edge_from_verdict(v));
  }
  util::metrics().counter("prov.ccd_replay_alignments").add(realigned);
  return edges;
}

}  // namespace pclust::pace
