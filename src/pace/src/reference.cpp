#include "pclust/pace/reference.hpp"

#include <algorithm>
#include <unordered_map>

#include "pclust/align/predicates.hpp"
#include "pclust/dsu/union_find.hpp"
#include "pclust/exec/pool.hpp"

namespace pclust::pace {

std::vector<std::uint8_t> remove_redundant_bruteforce(
    const seq::SequenceSet& set, const PaceParams& params,
    BruteForceStats* stats) {
  const auto& scheme = params.scheme();
  std::vector<std::uint8_t> removed(set.size(), 0);
  for (seq::SeqId a = 0; a < set.size(); ++a) {
    for (seq::SeqId b = a + 1; b < set.size(); ++b) {
      if (stats) ++stats->alignments;  // the all-vs-all baseline visits all
      if (removed[a] && removed[b]) continue;
      const auto res_a = set.residues(a);
      const auto res_b = set.residues(b);
      if (!removed[a] && !removed[b] &&
          static_cast<double>(res_a.size()) * params.containment.min_coverage <=
              static_cast<double>(res_b.size())) {
        const auto out =
            align::test_containment(res_a, res_b, scheme, params.containment);
        if (stats) stats->cells += out.alignment.cells;
        if (out.accepted) {
          removed[a] = 1;
          continue;
        }
      }
      if (!removed[a] && !removed[b] &&
          static_cast<double>(res_b.size()) * params.containment.min_coverage <=
              static_cast<double>(res_a.size())) {
        const auto out =
            align::test_containment(res_b, res_a, scheme, params.containment);
        if (stats) stats->cells += out.alignment.cells;
        if (out.accepted) removed[b] = 1;
      }
    }
  }
  return removed;
}

std::vector<std::vector<seq::SeqId>> detect_components_bruteforce(
    const seq::SequenceSet& set, const std::vector<seq::SeqId>& ids,
    const PaceParams& params, BruteForceStats* stats, exec::Pool* pool) {
  const auto& scheme = params.scheme();
  dsu::UnionFind uf(ids.size());
  if (pool && pool->size() > 1 && ids.size() > 2) {
    // Flatten the upper triangle and evaluate rows in parallel; merges and
    // stats fold serially in (i, j) order, matching the serial sweep.
    struct RowOutcome {
      std::vector<std::uint8_t> accepted;
      std::uint64_t cells = 0;
    };
    const std::size_t rows = ids.size() - 1;
    const auto outcomes = exec::parallel_map<RowOutcome>(
        *pool, rows, 1, [&](std::size_t i) {
          RowOutcome row;
          row.accepted.resize(ids.size() - i - 1);
          for (std::uint32_t j = static_cast<std::uint32_t>(i) + 1;
               j < ids.size(); ++j) {
            const auto out = align::test_overlap(set.residues(ids[i]),
                                                 set.residues(ids[j]), scheme,
                                                 params.overlap);
            row.cells += out.alignment.cells;
            row.accepted[j - i - 1] = out.accepted ? 1 : 0;
          }
          return row;
        });
    for (std::uint32_t i = 0; i < rows; ++i) {
      if (stats) {
        stats->alignments += ids.size() - i - 1;
        stats->cells += outcomes[i].cells;
      }
      for (std::uint32_t j = i + 1; j < ids.size(); ++j) {
        if (outcomes[i].accepted[j - i - 1]) uf.merge(i, j);
      }
    }
  } else {
    for (std::uint32_t i = 0; i < ids.size(); ++i) {
      for (std::uint32_t j = i + 1; j < ids.size(); ++j) {
        if (stats) ++stats->alignments;
        const auto out = align::test_overlap(set.residues(ids[i]),
                                             set.residues(ids[j]), scheme,
                                             params.overlap);
        if (stats) stats->cells += out.alignment.cells;
        if (out.accepted) uf.merge(i, j);
      }
    }
  }
  auto sets = uf.extract_sets();
  std::vector<std::vector<seq::SeqId>> out;
  out.reserve(sets.size());
  for (auto& s : sets) {
    std::vector<seq::SeqId> members;
    members.reserve(s.size());
    for (auto dense : s) members.push_back(ids[dense]);
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.size() != b.size()) return a.size() > b.size();
    return a.front() < b.front();
  });
  return out;
}

}  // namespace pclust::pace
