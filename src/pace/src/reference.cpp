#include "pclust/pace/reference.hpp"

#include <algorithm>
#include <unordered_map>

#include "pclust/align/predicates.hpp"
#include "pclust/dsu/union_find.hpp"

namespace pclust::pace {

std::vector<std::uint8_t> remove_redundant_bruteforce(
    const seq::SequenceSet& set, const PaceParams& params,
    BruteForceStats* stats) {
  const auto& scheme = params.scheme();
  std::vector<std::uint8_t> removed(set.size(), 0);
  for (seq::SeqId a = 0; a < set.size(); ++a) {
    for (seq::SeqId b = a + 1; b < set.size(); ++b) {
      if (stats) ++stats->alignments;  // the all-vs-all baseline visits all
      if (removed[a] && removed[b]) continue;
      const auto res_a = set.residues(a);
      const auto res_b = set.residues(b);
      if (!removed[a] && !removed[b] &&
          static_cast<double>(res_a.size()) * params.containment.min_coverage <=
              static_cast<double>(res_b.size())) {
        const auto out =
            align::test_containment(res_a, res_b, scheme, params.containment);
        if (stats) stats->cells += out.alignment.cells;
        if (out.accepted) {
          removed[a] = 1;
          continue;
        }
      }
      if (!removed[a] && !removed[b] &&
          static_cast<double>(res_b.size()) * params.containment.min_coverage <=
              static_cast<double>(res_a.size())) {
        const auto out =
            align::test_containment(res_b, res_a, scheme, params.containment);
        if (stats) stats->cells += out.alignment.cells;
        if (out.accepted) removed[b] = 1;
      }
    }
  }
  return removed;
}

std::vector<std::vector<seq::SeqId>> detect_components_bruteforce(
    const seq::SequenceSet& set, const std::vector<seq::SeqId>& ids,
    const PaceParams& params, BruteForceStats* stats) {
  const auto& scheme = params.scheme();
  dsu::UnionFind uf(ids.size());
  for (std::uint32_t i = 0; i < ids.size(); ++i) {
    for (std::uint32_t j = i + 1; j < ids.size(); ++j) {
      if (stats) ++stats->alignments;
      const auto out = align::test_overlap(set.residues(ids[i]),
                                           set.residues(ids[j]), scheme,
                                           params.overlap);
      if (stats) stats->cells += out.alignment.cells;
      if (out.accepted) uf.merge(i, j);
    }
  }
  auto sets = uf.extract_sets();
  std::vector<std::vector<seq::SeqId>> out;
  out.reserve(sets.size());
  for (auto& s : sets) {
    std::vector<seq::SeqId> members;
    members.reserve(s.size());
    for (auto dense : s) members.push_back(ids[dense]);
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.size() != b.size()) return a.size() > b.size();
    return a.front() < b.front();
  });
  return out;
}

}  // namespace pclust::pace
