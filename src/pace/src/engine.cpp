#include "pclust/pace/engine.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <stdexcept>
#include <unordered_set>

#include "pclust/exec/pool.hpp"
#include "pclust/suffix/lcp.hpp"
#include "pclust/suffix/suffix_array.hpp"
#include "pclust/util/metrics.hpp"
#include "pclust/util/trace.hpp"

namespace pclust::pace {

namespace {

/// Virtual-time trace instant on the current phase timeline (tid = rank).
void trace_event(const mpsim::Communicator& comm, std::string_view name,
                 std::string_view cat) {
  if (!util::trace::enabled()) return;
  util::trace::instant(util::trace::current_pid(), comm.rank(), name, cat,
                       comm.clock().now() * 1e6);
}

/// One phase's EngineCounters folded into the registry. These back the
/// report's alignment-work identity: promising == aligned + filtered +
/// duplicate, where `filtered` is the paper's skipped-by-cluster-filter
/// count.
void record_engine_counters(const EngineCounters& c) {
  auto& m = util::metrics();
  m.counter("pace.promising_pairs").add(c.promising_pairs);
  m.counter("pace.duplicate_pairs").add(c.duplicate_pairs);
  m.counter("pace.skipped_by_cluster_filter").add(c.filtered_pairs);
  m.counter("pace.alignments_attempted").add(c.aligned_pairs);
}

constexpr int kTagRound = 1;
constexpr int kTagWork = 2;

// Wire-size estimates for the virtual clock (bytes per element).
constexpr std::uint64_t kPairBytes = 20;
constexpr std::uint64_t kVerdictBytes = 9;
constexpr std::uint64_t kHeaderBytes = 25;  // seq + stream ids + flags

/// A generation stream a worker must (re)play after its original owner
/// died: the promising pairs of @p origin's bucket share, starting at pair
/// index @p from (the master's received watermark).
struct StreamAssign {
  int origin = -1;
  std::uint64_t from = 0;
};

struct RoundMsg {
  std::uint64_t seq = 0;  // per-worker submission number, 1-based
  int stream = -1;        // origin rank of `pairs` (-1: none this round)
  std::uint64_t start = 0;  // index of pairs.front() within that stream
  std::vector<PairTask> pairs;
  std::vector<Verdict> verdicts;  // answer the work chunk with seq ack_seq
  std::uint64_t ack_seq = 0;      // 0 = no chunk answered this round
  bool exhausted = false;         // all assigned streams fully submitted
};

struct WorkMsg {
  std::uint64_t seq = 0;  // per-worker order number, 1-based
  std::vector<PairTask> tasks;
  std::vector<StreamAssign> adopt;  // dead workers' streams to replay
  bool done = false;
};

/// Index structures shared (read-only) by all ranks.
struct SharedIndex {
  suffix::ConcatText text;
  std::vector<std::int32_t> sa;
  std::vector<std::int32_t> lcp;
  std::vector<suffix::MaximalMatchEnumerator::Bucket> buckets;
  std::vector<int> bucket_owner;  // worker rank (1..p-1) per bucket

  SharedIndex(const seq::SequenceSet& set, const std::vector<seq::SeqId>& ids,
              const PaceParams& params, int workers,
              exec::Pool* pool = nullptr)
      : text(set, ids), mp(match_params(params)), pool_(pool) {
    if (params.bucket_prefix > params.psi) {
      throw std::invalid_argument(
          "PaceParams: bucket_prefix must be <= psi (nodes may not span "
          "buckets)");
    }
    if (pool && pool->size() > 1) {
      sa = suffix::build_suffix_array_parallel(text, *pool);
      lcp = suffix::build_lcp_parallel(text, sa, *pool);
      suffix::MaximalMatchEnumerator enumerator(text, sa, lcp, mp);
      buckets = enumerator.prefix_buckets(params.bucket_prefix, *pool);
    } else {
      sa = suffix::build_suffix_array(text.text(), seq::kIndexAlphabetSize);
      lcp = suffix::build_lcp(text, sa);
      suffix::MaximalMatchEnumerator enumerator(text, sa, lcp, mp);
      buckets = enumerator.prefix_buckets(params.bucket_prefix);
    }

    // Longest-processing-time assignment of buckets to workers.
    bucket_owner.assign(buckets.size(), 1);
    if (workers > 1) {
      std::vector<std::size_t> order(buckets.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
        if (buckets[x].weight != buckets[y].weight) {
          return buckets[x].weight > buckets[y].weight;
        }
        return x < y;
      });
      std::vector<std::uint64_t> load(static_cast<std::size_t>(workers), 0);
      for (std::size_t i : order) {
        const auto w = static_cast<std::size_t>(
            std::min_element(load.begin(), load.end()) - load.begin());
        bucket_owner[i] = static_cast<int>(w) + 1;
        load[w] += buckets[i].weight;
      }
    }
  }

  static suffix::MaximalMatchParams match_params(const PaceParams& params) {
    suffix::MaximalMatchParams mp;
    mp.min_length = params.psi;
    mp.max_node_occurrences = params.max_node_occurrences;
    return mp;
  }

  /// All promising pairs owned by @p worker_rank, decreasing match length.
  /// A pure function of the shared index — any rank can regenerate any
  /// other rank's stream, which is what makes stream adoption possible.
  /// With a shared pool, owned buckets are enumerated concurrently and the
  /// per-bucket lists concatenated in bucket order, which reproduces the
  /// serial append order exactly (the stable sort then ties on it).
  [[nodiscard]] std::vector<PairTask> worker_pairs(int worker_rank) const {
    suffix::MaximalMatchEnumerator enumerator(text, sa, lcp, mp);
    std::vector<std::size_t> owned;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (bucket_owner[i] == worker_rank) owned.push_back(i);
    }

    std::vector<PairTask> out;
    if (pool_ && pool_->size() > 1 && owned.size() > 1) {
      const auto per_bucket = exec::parallel_map<std::vector<PairTask>>(
          *pool_, owned.size(), 1, [&](std::size_t k) {
            std::vector<PairTask> pairs;
            enumerator.enumerate(buckets[owned[k]].lb, buckets[owned[k]].rb,
                                 [&pairs](const suffix::MaximalMatch& m) {
                                   pairs.push_back(PairTask{m.a, m.b, m.a_pos,
                                                            m.b_pos, m.length});
                                   return true;
                                 });
            return pairs;
          });
      for (const auto& pairs : per_bucket) {
        out.insert(out.end(), pairs.begin(), pairs.end());
      }
    } else {
      for (const std::size_t i : owned) {
        enumerator.enumerate(buckets[i].lb, buckets[i].rb,
                             [&out](const suffix::MaximalMatch& m) {
                               out.push_back(PairTask{m.a, m.b, m.a_pos,
                                                      m.b_pos, m.length});
                               return true;
                             });
      }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const PairTask& x, const PairTask& y) {
                       return x.length > y.length;
                     });
    return out;
  }

  /// Total suffix characters owned by @p worker_rank (index-build cost).
  [[nodiscard]] std::uint64_t worker_chars(int worker_rank) const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (bucket_owner[i] == worker_rank) total += buckets[i].weight;
    }
    return total;
  }

  suffix::MaximalMatchParams mp;
  exec::Pool* pool_ = nullptr;
};

/// Evaluate one chunk of tasks, pooled when possible. Verdicts come back in
/// task order and cell charges are folded into @p comm serially (also in
/// task order), so both the results and the virtual clock are independent
/// of pool scheduling. Policies are invoked concurrently (see WorkerPolicy).
void evaluate_tasks(const std::vector<PairTask>& tasks, WorkerPolicy& policy,
                    mpsim::Communicator* comm, exec::Pool* pool,
                    std::vector<Verdict>& verdicts) {
  verdicts.reserve(verdicts.size() + tasks.size());
  if (pool && pool->size() > 1 && tasks.size() > 1) {
    std::vector<std::uint64_t> cells(tasks.size(), 0);
    auto batch = exec::parallel_map<Verdict>(
        *pool, tasks.size(), 1,
        [&](std::size_t k) { return policy.evaluate(tasks[k], &cells[k]); });
    for (std::size_t k = 0; k < tasks.size(); ++k) {
      verdicts.push_back(batch[k]);
      if (comm) {
        comm->charge_cells(cells[k]);
        comm->count("alignments_computed");
      }
    }
  } else {
    for (const PairTask& task : tasks) {
      std::uint64_t cells = 0;
      verdicts.push_back(policy.evaluate(task, &cells));
      if (comm) {
        comm->charge_cells(cells);
        comm->count("alignments_computed");
      }
    }
  }
}

void master_loop(mpsim::Communicator& comm, const PaceParams& params,
                 MasterPolicy& policy) {
  const int p = comm.size();

  struct WorkerState {
    bool alive = true;
    bool exhausted = false;
    std::uint64_t last_round_seq = 0;  // highest RoundMsg seq consumed
    std::uint64_t work_seq = 0;        // seq of the last WorkMsg sent
    std::uint64_t outstanding_seq = 0;  // unacked chunk's seq (0 = none)
    std::vector<PairTask> outstanding;  // its tasks, requeued on death
    std::vector<int> streams;           // generation streams assigned here
    std::vector<StreamAssign> adopt;    // to ship with the next WorkMsg
  };
  std::vector<WorkerState> ws(static_cast<std::size_t>(p));
  // received[origin]: pairs [0, received) of origin's stream have reached
  // the master; a post-crash replay starts here.
  std::vector<std::uint64_t> received(static_cast<std::size_t>(p), 0);
  for (int w = 1; w < p; ++w) ws[static_cast<std::size_t>(w)].streams = {w};
  int alive_workers = p - 1;

  std::unordered_set<std::uint64_t> seen;
  std::deque<PairTask> pending;
  EngineCounters c;

  // Self-healing: requeue the dead worker's unacked chunk ahead of the
  // FIFO and hand each of its generation streams to the least-loaded
  // survivor, which replays it from the received watermark. The seen-set
  // and idempotent verdict application swallow any replay overlap.
  const auto reassign = [&](int dead) {
    WorkerState& d = ws[static_cast<std::size_t>(dead)];
    comm.count("pairs_requeued", d.outstanding.size());
    util::metrics().counter("pace.pairs_requeued").add(d.outstanding.size());
    for (auto it = d.outstanding.rbegin(); it != d.outstanding.rend(); ++it) {
      pending.push_front(*it);
    }
    d.outstanding.clear();
    d.outstanding_seq = 0;
    for (const int origin : d.streams) {
      int target = -1;
      for (int w = 1; w < p; ++w) {
        WorkerState& cand = ws[static_cast<std::size_t>(w)];
        if (!cand.alive) continue;
        if (target < 0 ||
            cand.streams.size() <
                ws[static_cast<std::size_t>(target)].streams.size()) {
          target = w;
        }
      }
      if (target < 0) {
        throw std::runtime_error(
            "pace: all workers failed; cannot complete the phase");
      }
      WorkerState& t = ws[static_cast<std::size_t>(target)];
      t.streams.push_back(origin);
      t.adopt.push_back(StreamAssign{
          origin, received[static_cast<std::size_t>(origin)]});
      t.exhausted = false;  // new pairs are (potentially) coming
      comm.count("streams_adopted");
      util::metrics().counter("pace.streams_adopted").add(1);
      trace_event(comm, "stream_adopted", "heal");
    }
    d.streams.clear();
    d.exhausted = true;  // nothing more expected from it
  };

  const double timeout =
      params.heartbeat_timeout > 0 ? params.heartbeat_timeout : -1.0;

  bool done = false;
  while (!done) {
    // Receive and fold in this round's submissions from live workers.
    for (int w = 1; w < p; ++w) {
      WorkerState& state = ws[static_cast<std::size_t>(w)];
      if (!state.alive) continue;

      RoundMsg round;
      bool have_round = false;
      for (;;) {
        mpsim::Message msg;
        const mpsim::RecvStatus st =
            comm.recv_status(w, kTagRound, msg, timeout);
        if (st == mpsim::RecvStatus::kOk) {
          round = msg.take<RoundMsg>();
          // A duplicated delivery replays an old seq: skip it. The fresh
          // copy (or the rank-failed mark) is guaranteed to follow.
          if (round.seq <= state.last_round_seq) continue;
          state.last_round_seq = round.seq;
          have_round = true;
        } else {
          state.alive = false;
          --alive_workers;
          if (st == mpsim::RecvStatus::kTimeout) {
            // The rank may merely be hung; a final done message releases
            // it if it ever wakes, so the run can still terminate.
            WorkMsg bye;
            bye.seq = ++state.work_seq;
            bye.done = true;
            comm.send(w, kTagWork, std::any(std::move(bye)), kHeaderBytes);
            comm.count("workers_timed_out");
            util::metrics().counter("pace.workers_timed_out").add(1);
            trace_event(comm, "worker_timed_out", "heal");
          } else {
            comm.count("workers_failed");
            util::metrics().counter("pace.workers_failed").add(1);
            trace_event(comm, "worker_failed", "heal");
          }
          reassign(w);
        }
        break;
      }
      if (!have_round) continue;

      state.exhausted = round.exhausted;
      if (round.ack_seq != 0 && round.ack_seq == state.outstanding_seq) {
        state.outstanding.clear();
        state.outstanding_seq = 0;
      }
      for (const Verdict& v : round.verdicts) {
        comm.charge_finds(1);
        policy.apply(v);
      }
      if (round.stream >= 0) {
        std::uint64_t& mark = received[static_cast<std::size_t>(round.stream)];
        mark = std::max(mark, round.start + round.pairs.size());
      }
      for (const PairTask& task : round.pairs) {
        ++c.promising_pairs;
        comm.charge_finds(1);
        if (!seen.insert(task.pair_key()).second) {
          ++c.duplicate_pairs;
          continue;
        }
        if (!policy.needs_alignment(task)) {
          ++c.filtered_pairs;
          continue;
        }
        pending.push_back(task);
      }
    }

    if (alive_workers == 0) {
      throw std::runtime_error(
          "pace: all workers failed; cannot complete the phase");
    }

    static util::Gauge& depth =
        util::metrics().gauge("pace.master.queue_depth");
    depth.set(pending.size());

    done = pending.empty();
    for (int w = 1; done && w < p; ++w) {
      const WorkerState& state = ws[static_cast<std::size_t>(w)];
      if (!state.alive) continue;
      done = state.exhausted && state.outstanding_seq == 0 &&
             state.adopt.empty();
    }

    // Hand out the next chunks (empty + done on the final round).
    for (int w = 1; w < p; ++w) {
      WorkerState& state = ws[static_cast<std::size_t>(w)];
      if (!state.alive) continue;
      WorkMsg work;
      work.seq = ++state.work_seq;
      work.done = done;
      work.adopt = std::move(state.adopt);
      state.adopt.clear();
      if (!done && state.outstanding_seq == 0) {
        while (!pending.empty() && work.tasks.size() < params.batch_size) {
          work.tasks.push_back(pending.front());
          pending.pop_front();
        }
      }
      if (!work.tasks.empty()) {
        state.outstanding = work.tasks;
        state.outstanding_seq = work.seq;
        static util::SizeHistogram& batches =
            util::metrics().histogram("pace.work_batch_size");
        batches.add(work.tasks.size());
      }
      c.aligned_pairs += work.tasks.size();
      const std::uint64_t bytes =
          work.tasks.size() * kPairBytes + kHeaderBytes;
      comm.send(w, kTagWork, std::any(std::move(work)), bytes);
    }
  }

  comm.count("promising_pairs", c.promising_pairs);
  comm.count("duplicate_pairs", c.duplicate_pairs);
  comm.count("filtered_pairs", c.filtered_pairs);
  comm.count("aligned_pairs", c.aligned_pairs);
  record_engine_counters(c);
}

void worker_loop(mpsim::Communicator& comm, const SharedIndex& index,
                 const PaceParams& params, WorkerPolicy& policy,
                 exec::Pool* pool) {
  struct Stream {
    int origin;
    std::size_t next;
    std::vector<PairTask> pairs;
  };
  std::vector<Stream> streams;
  // "Build" a rank's share of the generalized suffix tree and enumerate
  // its pairs; adoption replays a dead rank's share from @p from, paying
  // the regeneration cost on THIS rank's clock.
  const auto add_stream = [&](int origin, std::uint64_t from) {
    const double t0 = comm.clock().now();
    comm.charge_index_chars(index.worker_chars(origin));
    Stream s{origin, static_cast<std::size_t>(from),
             index.worker_pairs(origin)};
    comm.charge_pairs(s.pairs.size());
    comm.count("worker_pairs_generated",
               s.pairs.size() - std::min<std::size_t>(s.next, s.pairs.size()));
    util::metrics().counter("pace.generation_streams").add(1);
    if (util::trace::enabled()) {
      const std::string name = origin == comm.rank()
                                   ? "generate"
                                   : "generate(adopted:" +
                                         std::to_string(origin) + ")";
      util::trace::complete(util::trace::current_pid(), comm.rank(), name,
                            "generation", t0 * 1e6,
                            (comm.clock().now() - t0) * 1e6);
    }
    streams.push_back(std::move(s));
  };
  add_stream(comm.rank(), 0);

  const std::size_t submit_cap =
      static_cast<std::size_t>(params.batch_size) *
      std::max<std::uint32_t>(1, params.generation_batches);

  std::uint64_t seq_out = 0;
  std::uint64_t last_work_seq = 0;
  std::uint64_t ack = 0;
  std::vector<Verdict> verdicts;
  while (true) {
    RoundMsg round;
    round.seq = ++seq_out;
    for (Stream& s : streams) {
      if (s.next >= s.pairs.size()) continue;
      const std::size_t take =
          std::min<std::size_t>(submit_cap, s.pairs.size() - s.next);
      round.stream = s.origin;
      round.start = s.next;
      round.pairs.assign(
          s.pairs.begin() + static_cast<std::ptrdiff_t>(s.next),
          s.pairs.begin() + static_cast<std::ptrdiff_t>(s.next + take));
      s.next += take;
      break;
    }
    round.exhausted =
        std::all_of(streams.begin(), streams.end(), [](const Stream& s) {
          return s.next >= s.pairs.size();
        });
    round.verdicts = std::move(verdicts);
    verdicts.clear();
    round.ack_seq = ack;
    ack = 0;
    const std::uint64_t bytes = round.pairs.size() * kPairBytes +
                                round.verdicts.size() * kVerdictBytes +
                                kHeaderBytes;
    comm.send(0, kTagRound, std::any(std::move(round)), bytes);

    WorkMsg work;
    do {  // skip duplicated deliveries (stale seq)
      work = comm.recv(0, kTagWork).take<WorkMsg>();
    } while (work.seq <= last_work_seq);
    last_work_seq = work.seq;
    for (const StreamAssign& a : work.adopt) add_stream(a.origin, a.from);
    if (work.done) break;
    if (!work.tasks.empty()) ack = work.seq;
    evaluate_tasks(work.tasks, policy, &comm, pool, verdicts);
  }
}

}  // namespace

mpsim::RunResult run_parallel(
    const seq::SequenceSet& set, const std::vector<seq::SeqId>& ids, int p,
    const mpsim::MachineModel& model, const PaceParams& params,
    MasterPolicy& master_policy,
    const std::function<std::unique_ptr<WorkerPolicy>()>& make_worker_policy,
    EngineCounters* counters, exec::Pool* pool, const mpsim::FaultPlan* plan) {
  if (p < 2) {
    throw std::invalid_argument(
        "pace::run_parallel needs p >= 2 (master + worker); use run_serial");
  }
  if (plan) {
    for (const auto& crash : plan->crashes) {
      if (crash.rank == 0) {
        throw std::invalid_argument(
            "pace::run_parallel: the master (rank 0) must not crash — only "
            "worker ranks 1..p-1 can appear in FaultPlan::crashes");
      }
    }
  }

  SharedIndex index(set, ids, params, p - 1, pool);

  const auto rank_fn = [&](mpsim::Communicator& comm) {
    if (comm.rank() == 0) {
      master_loop(comm, params, master_policy);
    } else {
      const auto policy = make_worker_policy();
      worker_loop(comm, index, params, *policy, pool);
    }
  };
  mpsim::RunResult result = plan ? mpsim::run(p, model, *plan, rank_fn)
                                 : mpsim::run(p, model, rank_fn);

  if (counters) {
    counters->promising_pairs = result.counter("promising_pairs");
    counters->duplicate_pairs = result.counter("duplicate_pairs");
    counters->filtered_pairs = result.counter("filtered_pairs");
    counters->aligned_pairs = result.counter("aligned_pairs");
  }
  return result;
}

EngineCounters run_serial(const seq::SequenceSet& set,
                          const std::vector<seq::SeqId>& ids,
                          const PaceParams& params,
                          MasterPolicy& master_policy,
                          WorkerPolicy& worker_policy, exec::Pool* pool,
                          const SerialHooks* hooks) {
  SharedIndex index(set, ids, params, /*workers=*/1, pool);
  const std::vector<PairTask> pairs = index.worker_pairs(1);

  const std::uint64_t start = hooks ? hooks->start_pair : 0;
  const std::uint64_t stride =
      hooks && hooks->checkpoint ? hooks->checkpoint_stride : 0;
  std::uint64_t last_ckpt = start;
  const auto maybe_checkpoint = [&](std::uint64_t next_pair) {
    if (stride == 0 || next_pair - last_ckpt < stride) return;
    hooks->checkpoint(next_pair);
    last_ckpt = next_pair;
  };

  EngineCounters c;
  std::unordered_set<std::uint64_t> seen;

  if (pool && pool->size() > 1) {
    // Batched mode: collect up to batch_size filter-surviving pairs, align
    // them on the pool, apply verdicts in task order. Like the round-based
    // engine, the filter sees state that lags the batch by construction;
    // the extra verdicts this admits are no-ops under apply (RR's
    // removed/dependents guards, CCD's idempotent merges), so the final
    // state matches the unbatched run bit for bit. Checkpoints land on
    // flush boundaries, where every inspected pair is fully resolved.
    std::vector<PairTask> batch;
    std::vector<Verdict> verdicts;
    const auto flush = [&] {
      verdicts.clear();
      evaluate_tasks(batch, worker_policy, nullptr, pool, verdicts);
      for (const Verdict& v : verdicts) master_policy.apply(v);
      batch.clear();
    };
    for (std::uint64_t i = 0; i < pairs.size(); ++i) {
      if (i < start) continue;  // already folded into the resumed state
      const PairTask& task = pairs[static_cast<std::size_t>(i)];
      ++c.promising_pairs;
      if (!seen.insert(task.pair_key()).second) {
        ++c.duplicate_pairs;
        continue;
      }
      if (!master_policy.needs_alignment(task)) {
        ++c.filtered_pairs;
        continue;
      }
      ++c.aligned_pairs;
      batch.push_back(task);
      if (batch.size() >= params.batch_size) {
        flush();
        maybe_checkpoint(i + 1);
      }
    }
    flush();
    record_engine_counters(c);
    return c;
  }

  for (std::uint64_t i = 0; i < pairs.size(); ++i) {
    if (i < start) continue;  // already folded into the resumed state
    const PairTask& task = pairs[static_cast<std::size_t>(i)];
    ++c.promising_pairs;
    if (!seen.insert(task.pair_key()).second) {
      ++c.duplicate_pairs;
      continue;
    }
    if (!master_policy.needs_alignment(task)) {
      ++c.filtered_pairs;
      continue;
    }
    ++c.aligned_pairs;
    std::uint64_t cells = 0;
    master_policy.apply(worker_policy.evaluate(task, &cells));
    maybe_checkpoint(i + 1);
  }
  record_engine_counters(c);
  return c;
}

}  // namespace pclust::pace
