#include "pclust/pace/engine.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <unordered_set>

#include "pclust/exec/pool.hpp"
#include "pclust/mpsim/masterworker.hpp"
#include "pclust/suffix/lcp.hpp"
#include "pclust/suffix/suffix_array.hpp"
#include "pclust/util/memgov.hpp"
#include "pclust/util/memsize.hpp"
#include "pclust/util/metrics.hpp"
#include "pclust/util/telemetry.hpp"
#include "pclust/util/trace.hpp"

namespace pclust::pace {

namespace {

/// One phase's EngineCounters folded into the registry. These back the
/// report's alignment-work identity: promising == aligned + filtered +
/// duplicate, where `filtered` is the paper's skipped-by-cluster-filter
/// count.
void record_engine_counters(const EngineCounters& c) {
  auto& m = util::metrics();
  m.counter("pace.promising_pairs").add(c.promising_pairs);
  m.counter("pace.duplicate_pairs").add(c.duplicate_pairs);
  m.counter("pace.skipped_by_cluster_filter").add(c.filtered_pairs);
  m.counter("pace.alignments_attempted").add(c.aligned_pairs);
}

// Wire-size estimates for the virtual clock (bytes per element). The
// verdict estimate stays at the {a, b, code} wire size even though
// Verdict carries optional provenance stats — those ride only when a
// ledger is requested, and virtual time must not depend on that choice.
constexpr std::uint64_t kPairBytes = 20;
constexpr std::uint64_t kVerdictBytes = 9;
constexpr std::uint64_t kHeaderBytes = 25;  // seq + stream ids + flags

/// The PaCE phases run on the shared resilient master–worker protocol
/// (mpsim/masterworker.hpp); these options keep the PR-2 wire sizes and
/// the "pace."-prefixed metric keys.
mpsim::MwOptions mw_options(const PaceParams& params) {
  mpsim::MwOptions opt;
  opt.phase = params.phase_label ? params.phase_label : "pace";
  opt.metrics_prefix = "pace";
  opt.masters = std::max(1, params.masters);
  opt.batch_size = params.batch_size;
  opt.generation_batches = params.generation_batches;
  opt.heartbeat_timeout = params.heartbeat_timeout;
  opt.heartbeat_retries = params.heartbeat_retries;
  opt.heartbeat_backoff = params.heartbeat_backoff;
  opt.heartbeat_max_timeout = params.heartbeat_max_timeout;
  opt.deadline_seconds = params.phase_deadline;
  opt.task_bytes = kPairBytes;
  opt.verdict_bytes = kVerdictBytes;
  opt.event_bytes = kVerdictBytes;  // forwarded union events ARE verdicts
  opt.header_bytes = kHeaderBytes;
  return opt;
}

/// Index structures shared (read-only) by all ranks.
struct SharedIndex {
  suffix::ConcatText text;
  std::vector<std::int32_t> sa;
  std::vector<std::int32_t> lcp;
  std::vector<suffix::MaximalMatchEnumerator::Bucket> buckets;
  std::vector<int> bucket_owner;  // owning worker rank per bucket

  /// @p first_worker is the lowest worker rank (1 flat, masters+1 in the
  /// hierarchical tree); the @p workers worker ranks are consecutive from
  /// there.
  SharedIndex(const seq::SequenceSet& set, const std::vector<seq::SeqId>& ids,
              const PaceParams& params, int workers,
              exec::Pool* pool = nullptr, int first_worker = 1)
      : text(set, ids), mp(match_params(params)), pool_(pool) {
    if (params.bucket_prefix > params.psi) {
      throw std::invalid_argument(
          "PaceParams: bucket_prefix must be <= psi (nodes may not span "
          "buckets)");
    }
    if (pool && pool->size() > 1) {
      sa = suffix::build_suffix_array_parallel(text, *pool);
      lcp = suffix::build_lcp_parallel(text, sa, *pool);
      suffix::MaximalMatchEnumerator enumerator(text, sa, lcp, mp);
      buckets = enumerator.prefix_buckets(params.bucket_prefix, *pool);
    } else {
      sa = suffix::build_suffix_array(text.text(), seq::kIndexAlphabetSize);
      lcp = suffix::build_lcp(text, sa);
      suffix::MaximalMatchEnumerator enumerator(text, sa, lcp, mp);
      buckets = enumerator.prefix_buckets(params.bucket_prefix);
    }

    // Longest-processing-time assignment of buckets to workers.
    bucket_owner.assign(buckets.size(), first_worker);
    if (workers > 1) {
      std::vector<std::size_t> order(buckets.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
        if (buckets[x].weight != buckets[y].weight) {
          return buckets[x].weight > buckets[y].weight;
        }
        return x < y;
      });
      std::vector<std::uint64_t> load(static_cast<std::size_t>(workers), 0);
      for (std::size_t i : order) {
        const auto w = static_cast<std::size_t>(
            std::min_element(load.begin(), load.end()) - load.begin());
        bucket_owner[i] = static_cast<int>(w) + first_worker;
        load[w] += buckets[i].weight;
      }
    }

    // Publish the index footprint under the phase prefix (rr/ccd): the GST
    // replacement (SA + LCP + buckets) must stay linear in the text.
    util::MemoryBreakdown b("suffix_index");
    b.add("concat_text", text.memory_usage());
    b.add("suffix_array", util::vector_bytes(sa));
    b.add("lcp", util::vector_bytes(lcp));
    b.add("buckets", util::vector_bytes(buckets));
    b.add("bucket_owners", util::vector_bytes(bucket_owner));
    util::record_memory(b, params.phase_label ? params.phase_label : "pace");
    // The index dominates the RR/CCD footprint; charging it is what puts
    // the governor under pressure (and shrinks evaluation grains) while
    // the phase runs. Released with the index by ~MemoryCharge.
    charge_.add("suffix_index", b.total());
  }

  static suffix::MaximalMatchParams match_params(const PaceParams& params) {
    suffix::MaximalMatchParams mp;
    mp.min_length = params.psi;
    mp.max_node_occurrences = params.max_node_occurrences;
    return mp;
  }

  /// All promising pairs owned by @p worker_rank, decreasing match length.
  /// A pure function of the shared index — any rank can regenerate any
  /// other rank's stream, which is what makes stream adoption possible.
  /// With a shared pool, owned buckets are enumerated concurrently and the
  /// per-bucket lists concatenated in bucket order, which reproduces the
  /// serial append order exactly (the stable sort then ties on it).
  [[nodiscard]] std::vector<PairTask> worker_pairs(int worker_rank) const {
    suffix::MaximalMatchEnumerator enumerator(text, sa, lcp, mp);
    std::vector<std::size_t> owned;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (bucket_owner[i] == worker_rank) owned.push_back(i);
    }

    std::vector<PairTask> out;
    if (pool_ && pool_->size() > 1 && owned.size() > 1) {
      const auto per_bucket = exec::parallel_map<std::vector<PairTask>>(
          *pool_, owned.size(), 1, [&](std::size_t k) {
            std::vector<PairTask> pairs;
            enumerator.enumerate(buckets[owned[k]].lb, buckets[owned[k]].rb,
                                 [&pairs](const suffix::MaximalMatch& m) {
                                   pairs.push_back(PairTask{m.a, m.b, m.a_pos,
                                                            m.b_pos, m.length});
                                   return true;
                                 });
            return pairs;
          });
      for (const auto& pairs : per_bucket) {
        out.insert(out.end(), pairs.begin(), pairs.end());
      }
    } else {
      for (const std::size_t i : owned) {
        enumerator.enumerate(buckets[i].lb, buckets[i].rb,
                             [&out](const suffix::MaximalMatch& m) {
                               out.push_back(PairTask{m.a, m.b, m.a_pos,
                                                      m.b_pos, m.length});
                               return true;
                             });
      }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const PairTask& x, const PairTask& y) {
                       return x.length > y.length;
                     });
    return out;
  }

  /// Total suffix characters owned by @p worker_rank (index-build cost).
  [[nodiscard]] std::uint64_t worker_chars(int worker_rank) const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (bucket_owner[i] == worker_rank) total += buckets[i].weight;
    }
    return total;
  }

  suffix::MaximalMatchParams mp;
  exec::Pool* pool_ = nullptr;
  util::MemoryCharge charge_;
};

/// Tasks handed to one evaluate_batch() call. Large enough that the batch
/// engine can sort the jobs (up to two alignments per task) into
/// length-uniform lane chunks — lane utilisation rises with pool size —
/// and small enough to load-balance across pool threads.
constexpr std::size_t kEvalGrain = 128;

/// Evaluate one chunk of tasks, pooled when possible. The policy sees
/// lane-width-friendly slices via evaluate_batch(); verdicts land in
/// index-addressed slots and cell charges are folded into @p comm serially
/// in task order, so both the results and the virtual clock are independent
/// of pool scheduling. Policies are invoked concurrently (see WorkerPolicy).
void evaluate_tasks(const std::vector<PairTask>& tasks, WorkerPolicy& policy,
                    mpsim::Communicator* comm, exec::Pool* pool,
                    std::vector<Verdict>& verdicts) {
  const std::size_t n = tasks.size();
  const std::size_t base = verdicts.size();
  verdicts.resize(base + n);
  std::vector<std::uint64_t> cells(n, 0);
  if (pool && pool->size() > 1 && n > 1) {
    // Grain only sizes the pooled slices; verdict slots are index-addressed,
    // so the governor shrinking it under memory pressure cannot change the
    // output — only the transient footprint of in-flight batch scratch.
    const std::size_t grain = util::governor().recommend_grain(kEvalGrain);
    pool->for_range(n, grain, [&](std::size_t lo, std::size_t hi) {
      policy.evaluate_batch(tasks.data() + lo, hi - lo,
                            verdicts.data() + base + lo, cells.data() + lo);
    });
  } else {
    policy.evaluate_batch(tasks.data(), n, verdicts.data() + base,
                          cells.data());
  }
  if (comm) {
    for (std::size_t k = 0; k < n; ++k) {
      comm->charge_cells(cells[k]);
      comm->count("alignments_computed");
    }
  }
}

/// The pace master on the shared protocol: the admit hook owns the
/// pair-duplicate seen-set and the policy's cluster filter; protocol stats
/// map one-to-one onto EngineCounters.
void master_loop(mpsim::Communicator& comm, const PaceParams& params,
                 MasterPolicy& policy) {
  std::unordered_set<std::uint64_t> seen;
  mpsim::MwMaster<PairTask, Verdict> hooks;
  hooks.admit = [&](const PairTask& task) {
    if (!seen.insert(task.pair_key()).second) {
      return mpsim::MwAdmit::kDuplicate;
    }
    if (!policy.needs_alignment(task)) return mpsim::MwAdmit::kFiltered;
    return mpsim::MwAdmit::kQueue;
  };
  hooks.apply = [&](const Verdict& v) { policy.apply(v); };

  const mpsim::MwMasterStats stats =
      mw_master_loop(comm, mw_options(params), hooks);

  EngineCounters c;
  c.promising_pairs = stats.submitted;
  c.duplicate_pairs = stats.duplicates;
  c.filtered_pairs = stats.filtered;
  c.aligned_pairs = stats.dispatched;
  comm.count("promising_pairs", c.promising_pairs);
  comm.count("duplicate_pairs", c.duplicate_pairs);
  comm.count("filtered_pairs", c.filtered_pairs);
  comm.count("aligned_pairs", c.aligned_pairs);
  record_engine_counters(c);
}

/// One pace sub-master (hierarchical mode): the full resilient master
/// engine over its worker shard, with the pair seen-set and the cluster
/// filter evaluated against the shard's LOCAL replica. Verdicts that
/// change the replica are forwarded to the root as union events; synced
/// events from other shards are absorbed into the replica so the filter
/// keeps pace with cross-shard merges. Each shard contributes its own
/// share of the engine counters (they sum across ranks in the RunResult).
void submaster_loop(mpsim::Communicator& comm, const PaceParams& params,
                    MasterPolicy& policy) {
  const std::unique_ptr<ShardPolicy> shard = policy.make_shard();
  std::unordered_set<std::uint64_t> seen;
  mpsim::MwShard<PairTask, Verdict> hooks;
  hooks.admit = [&](const PairTask& task) {
    if (!seen.insert(task.pair_key()).second) {
      return mpsim::MwAdmit::kDuplicate;
    }
    if (!shard->needs_alignment(task)) return mpsim::MwAdmit::kFiltered;
    return mpsim::MwAdmit::kQueue;
  };
  hooks.resolve = [&](const Verdict& v) { return shard->absorb(v); };
  hooks.learn = [&](const Verdict& v) { shard->absorb(v); };

  const mpsim::MwOptions opt = mw_options(params);
  const mpsim::MwTopology topo{comm.size(), opt.masters};
  const mpsim::MwMasterStats stats =
      mw_submaster_loop(comm, opt, topo, hooks);

  EngineCounters c;
  c.promising_pairs = stats.submitted;
  c.duplicate_pairs = stats.duplicates;
  c.filtered_pairs = stats.filtered;
  c.aligned_pairs = stats.dispatched;
  comm.count("promising_pairs", c.promising_pairs);
  comm.count("duplicate_pairs", c.duplicate_pairs);
  comm.count("filtered_pairs", c.filtered_pairs);
  comm.count("aligned_pairs", c.aligned_pairs);
  record_engine_counters(c);
}

/// The pace root (hierarchical mode): folds the forwarded union events
/// into the authoritative master policy and heals sub-master deaths. The
/// policy's apply is idempotent (CCD union-find merges), which the event
/// replay relies on.
void root_loop(mpsim::Communicator& comm, const PaceParams& params,
               MasterPolicy& policy) {
  mpsim::MwRoot<Verdict> hooks;
  hooks.apply = [&](const Verdict& v) { policy.apply(v); };
  const mpsim::MwOptions opt = mw_options(params);
  const mpsim::MwTopology topo{comm.size(), opt.masters};
  mw_root_loop(comm, opt, topo, hooks);
}

/// The pace worker on the shared protocol: generation replays a bucket
/// share (index-build chars + pair enumeration charged virtually), and
/// evaluation is the pooled alignment batch.
void worker_loop(mpsim::Communicator& comm, const SharedIndex& index,
                 const PaceParams& params, WorkerPolicy& policy,
                 exec::Pool* pool) {
  mpsim::MwWorker<PairTask, Verdict> hooks;
  hooks.generate = [&index](mpsim::Communicator& c, int origin) {
    c.charge_index_chars(index.worker_chars(origin));
    std::vector<PairTask> pairs = index.worker_pairs(origin);
    c.charge_pairs(pairs.size());
    return pairs;
  };
  hooks.evaluate = [&policy, pool](mpsim::Communicator& c,
                                   const std::vector<PairTask>& tasks,
                                   std::vector<Verdict>& verdicts) {
    evaluate_tasks(tasks, policy, &c, pool, verdicts);
  };
  mw_worker_loop(comm, mw_options(params), hooks);
}

}  // namespace

mpsim::RunResult run_parallel(
    const seq::SequenceSet& set, const std::vector<seq::SeqId>& ids, int p,
    const mpsim::MachineModel& model, const PaceParams& params,
    MasterPolicy& master_policy,
    const std::function<std::unique_ptr<WorkerPolicy>()>& make_worker_policy,
    EngineCounters* counters, exec::Pool* pool, const mpsim::FaultPlan* plan) {
  const int masters = std::max(1, params.masters);
  const mpsim::MwTopology topo{p, masters};
  if (p < 2) {
    throw std::invalid_argument(
        "pace::run_parallel needs p >= 2 (master + worker); use run_serial");
  }
  if (topo.hierarchical()) {
    if (p < masters + 2) {
      throw std::invalid_argument(
          "pace::run_parallel: p=" + std::to_string(p) +
          " is too small for masters=" + std::to_string(masters) +
          "; need p >= masters + 2 so at least one worker exists");
    }
    if (!master_policy.make_shard()) {
      throw std::invalid_argument(
          std::string("pace::run_parallel: this phase (") +
          (params.phase_label ? params.phase_label : "pace") +
          ") applies verdicts order-dependently and does not support "
          "hierarchical masters; use masters=1");
    }
  }
  // Reject unsurvivable plans up front (exit-code-2 class at the CLI):
  // crashing rank 0, every sub-master, or every worker.
  if (plan) plan->validate_protocol(p, masters);

  SharedIndex index(set, ids, params, topo.worker_count(), pool,
                    topo.first_worker());

  const auto rank_fn = [&](mpsim::Communicator& comm) {
    if (comm.rank() == 0) {
      if (topo.hierarchical()) {
        root_loop(comm, params, master_policy);
      } else {
        master_loop(comm, params, master_policy);
      }
    } else if (topo.is_submaster(comm.rank())) {
      submaster_loop(comm, params, master_policy);
    } else {
      const auto policy = make_worker_policy();
      worker_loop(comm, index, params, *policy, pool);
    }
  };
  mpsim::RunResult result = mpsim::run_phase(
      params.phase_label ? params.phase_label : "pace", p, model, plan,
      rank_fn, [topo](int r) { return std::string(topo.level_of(r)); });

  if (counters) {
    counters->promising_pairs = result.counter("promising_pairs");
    counters->duplicate_pairs = result.counter("duplicate_pairs");
    counters->filtered_pairs = result.counter("filtered_pairs");
    counters->aligned_pairs = result.counter("aligned_pairs");
  }
  return result;
}

std::vector<PairTask> canonical_pairs(const seq::SequenceSet& set,
                                      const std::vector<seq::SeqId>& ids,
                                      const PaceParams& params,
                                      exec::Pool* pool) {
  SharedIndex index(set, ids, params, /*workers=*/1, pool);
  return index.worker_pairs(1);
}

EngineCounters run_serial(const seq::SequenceSet& set,
                          const std::vector<seq::SeqId>& ids,
                          const PaceParams& params,
                          MasterPolicy& master_policy,
                          WorkerPolicy& worker_policy, exec::Pool* pool,
                          const SerialHooks* hooks) {
  SharedIndex index(set, ids, params, /*workers=*/1, pool);
  const std::vector<PairTask> pairs = index.worker_pairs(1);

  const std::uint64_t start = hooks ? hooks->start_pair : 0;
  const std::uint64_t stride =
      hooks && hooks->checkpoint ? hooks->checkpoint_stride : 0;
  std::uint64_t last_ckpt = start;
  const auto maybe_checkpoint = [&](std::uint64_t next_pair) {
    if (stride == 0 || next_pair - last_ckpt < stride) return;
    hooks->checkpoint(next_pair);
    last_ckpt = next_pair;
  };

  // Telemetry: serial progress is pairs INSPECTED over the full stream
  // (dup/filtered pairs advance it too), reported at batch granularity so
  // the per-pair cost stays one relaxed load. poll_deadline() runs on this
  // (the orchestrating) thread — the only place the watchdog may throw.
  if (pairs.size() > start) {
    util::telemetry::progress_enqueued(pairs.size() - start);
  }
  std::uint64_t reported = start;
  const auto report_progress = [&](std::uint64_t next_pair) {
    if (next_pair <= reported) return;
    util::telemetry::progress_done(next_pair - reported);
    reported = next_pair;
    util::telemetry::poll_deadline();
  };

  EngineCounters c;
  std::unordered_set<std::uint64_t> seen;

  if (pool && pool->size() > 1) {
    // Batched mode: collect up to batch_size filter-surviving pairs, align
    // them on the pool, apply verdicts in task order. Like the round-based
    // engine, the filter sees state that lags the batch by construction;
    // the extra verdicts this admits are no-ops under apply (RR's
    // removed/dependents guards, CCD's idempotent merges), so the final
    // state matches the unbatched run bit for bit. Checkpoints land on
    // flush boundaries, where every inspected pair is fully resolved.
    std::vector<PairTask> batch;
    std::vector<Verdict> verdicts;
    const auto flush = [&] {
      verdicts.clear();
      evaluate_tasks(batch, worker_policy, nullptr, pool, verdicts);
      for (const Verdict& v : verdicts) master_policy.apply(v);
      batch.clear();
    };
    for (std::uint64_t i = 0; i < pairs.size(); ++i) {
      if (i < start) continue;  // already folded into the resumed state
      if ((i & 1023u) == 0) report_progress(i);  // filtered streaks count
      const PairTask& task = pairs[static_cast<std::size_t>(i)];
      ++c.promising_pairs;
      if (!seen.insert(task.pair_key()).second) {
        ++c.duplicate_pairs;
        continue;
      }
      if (!master_policy.needs_alignment(task)) {
        ++c.filtered_pairs;
        continue;
      }
      ++c.aligned_pairs;
      batch.push_back(task);
      // Flush threshold, not grouping: verdicts apply in task order at any
      // batch size (PR6 guarantee), so the governor shrinking the batch
      // under memory pressure trades throughput for footprint only.
      if (batch.size() >= util::governor().recommend_batch(params.batch_size)) {
        flush();
        report_progress(i + 1);
        maybe_checkpoint(i + 1);
      }
    }
    flush();
    report_progress(pairs.size());
    record_engine_counters(c);
    return c;
  }

  for (std::uint64_t i = 0; i < pairs.size(); ++i) {
    if (i < start) continue;  // already folded into the resumed state
    if ((i & 1023u) == 0) report_progress(i);  // filtered streaks count
    const PairTask& task = pairs[static_cast<std::size_t>(i)];
    ++c.promising_pairs;
    if (!seen.insert(task.pair_key()).second) {
      ++c.duplicate_pairs;
      continue;
    }
    if (!master_policy.needs_alignment(task)) {
      ++c.filtered_pairs;
      continue;
    }
    ++c.aligned_pairs;
    std::uint64_t cells = 0;
    master_policy.apply(worker_policy.evaluate(task, &cells));
    if (((i + 1) & 255u) == 0) report_progress(i + 1);
    maybe_checkpoint(i + 1);
  }
  report_progress(pairs.size());
  record_engine_counters(c);
  return c;
}

}  // namespace pclust::pace
