#include "pclust/pace/engine.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <stdexcept>
#include <unordered_set>

#include "pclust/exec/pool.hpp"
#include "pclust/suffix/lcp.hpp"
#include "pclust/suffix/suffix_array.hpp"

namespace pclust::pace {

namespace {

constexpr int kTagRound = 1;
constexpr int kTagWork = 2;

// Wire-size estimates for the virtual clock (bytes per element).
constexpr std::uint64_t kPairBytes = 20;
constexpr std::uint64_t kVerdictBytes = 9;

struct RoundMsg {
  std::vector<PairTask> pairs;
  std::vector<Verdict> verdicts;
  bool exhausted = false;
};

struct WorkMsg {
  std::vector<PairTask> tasks;
  bool done = false;
};

/// Index structures shared (read-only) by all ranks.
struct SharedIndex {
  suffix::ConcatText text;
  std::vector<std::int32_t> sa;
  std::vector<std::int32_t> lcp;
  std::vector<suffix::MaximalMatchEnumerator::Bucket> buckets;
  std::vector<int> bucket_owner;  // worker rank (1..p-1) per bucket

  SharedIndex(const seq::SequenceSet& set, const std::vector<seq::SeqId>& ids,
              const PaceParams& params, int workers,
              exec::Pool* pool = nullptr)
      : text(set, ids), mp(match_params(params)), pool_(pool) {
    if (params.bucket_prefix > params.psi) {
      throw std::invalid_argument(
          "PaceParams: bucket_prefix must be <= psi (nodes may not span "
          "buckets)");
    }
    if (pool && pool->size() > 1) {
      sa = suffix::build_suffix_array_parallel(text, *pool);
      lcp = suffix::build_lcp_parallel(text, sa, *pool);
      suffix::MaximalMatchEnumerator enumerator(text, sa, lcp, mp);
      buckets = enumerator.prefix_buckets(params.bucket_prefix, *pool);
    } else {
      sa = suffix::build_suffix_array(text.text(), seq::kIndexAlphabetSize);
      lcp = suffix::build_lcp(text, sa);
      suffix::MaximalMatchEnumerator enumerator(text, sa, lcp, mp);
      buckets = enumerator.prefix_buckets(params.bucket_prefix);
    }

    // Longest-processing-time assignment of buckets to workers.
    bucket_owner.assign(buckets.size(), 1);
    if (workers > 1) {
      std::vector<std::size_t> order(buckets.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
        if (buckets[x].weight != buckets[y].weight) {
          return buckets[x].weight > buckets[y].weight;
        }
        return x < y;
      });
      std::vector<std::uint64_t> load(static_cast<std::size_t>(workers), 0);
      for (std::size_t i : order) {
        const auto w = static_cast<std::size_t>(
            std::min_element(load.begin(), load.end()) - load.begin());
        bucket_owner[i] = static_cast<int>(w) + 1;
        load[w] += buckets[i].weight;
      }
    }
  }

  static suffix::MaximalMatchParams match_params(const PaceParams& params) {
    suffix::MaximalMatchParams mp;
    mp.min_length = params.psi;
    mp.max_node_occurrences = params.max_node_occurrences;
    return mp;
  }

  /// All promising pairs owned by @p worker_rank, decreasing match length.
  /// With a shared pool, owned buckets are enumerated concurrently and the
  /// per-bucket lists concatenated in bucket order, which reproduces the
  /// serial append order exactly (the stable sort then ties on it).
  [[nodiscard]] std::vector<PairTask> worker_pairs(int worker_rank) const {
    suffix::MaximalMatchEnumerator enumerator(text, sa, lcp, mp);
    std::vector<std::size_t> owned;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (bucket_owner[i] == worker_rank) owned.push_back(i);
    }

    std::vector<PairTask> out;
    if (pool_ && pool_->size() > 1 && owned.size() > 1) {
      const auto per_bucket = exec::parallel_map<std::vector<PairTask>>(
          *pool_, owned.size(), 1, [&](std::size_t k) {
            std::vector<PairTask> pairs;
            enumerator.enumerate(buckets[owned[k]].lb, buckets[owned[k]].rb,
                                 [&pairs](const suffix::MaximalMatch& m) {
                                   pairs.push_back(PairTask{m.a, m.b, m.a_pos,
                                                            m.b_pos, m.length});
                                   return true;
                                 });
            return pairs;
          });
      for (const auto& pairs : per_bucket) {
        out.insert(out.end(), pairs.begin(), pairs.end());
      }
    } else {
      for (const std::size_t i : owned) {
        enumerator.enumerate(buckets[i].lb, buckets[i].rb,
                             [&out](const suffix::MaximalMatch& m) {
                               out.push_back(PairTask{m.a, m.b, m.a_pos,
                                                      m.b_pos, m.length});
                               return true;
                             });
      }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const PairTask& x, const PairTask& y) {
                       return x.length > y.length;
                     });
    return out;
  }

  /// Total suffix characters owned by @p worker_rank (index-build cost).
  [[nodiscard]] std::uint64_t worker_chars(int worker_rank) const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (bucket_owner[i] == worker_rank) total += buckets[i].weight;
    }
    return total;
  }

  suffix::MaximalMatchParams mp;
  exec::Pool* pool_ = nullptr;
};

/// Evaluate one chunk of tasks, pooled when possible. Verdicts come back in
/// task order and cell charges are folded into @p comm serially (also in
/// task order), so both the results and the virtual clock are independent
/// of pool scheduling. Policies are invoked concurrently (see WorkerPolicy).
void evaluate_tasks(const std::vector<PairTask>& tasks, WorkerPolicy& policy,
                    mpsim::Communicator* comm, exec::Pool* pool,
                    std::vector<Verdict>& verdicts) {
  verdicts.reserve(verdicts.size() + tasks.size());
  if (pool && pool->size() > 1 && tasks.size() > 1) {
    std::vector<std::uint64_t> cells(tasks.size(), 0);
    auto batch = exec::parallel_map<Verdict>(
        *pool, tasks.size(), 1,
        [&](std::size_t k) { return policy.evaluate(tasks[k], &cells[k]); });
    for (std::size_t k = 0; k < tasks.size(); ++k) {
      verdicts.push_back(batch[k]);
      if (comm) {
        comm->charge_cells(cells[k]);
        comm->count("alignments_computed");
      }
    }
  } else {
    for (const PairTask& task : tasks) {
      std::uint64_t cells = 0;
      verdicts.push_back(policy.evaluate(task, &cells));
      if (comm) {
        comm->charge_cells(cells);
        comm->count("alignments_computed");
      }
    }
  }
}

void master_loop(mpsim::Communicator& comm, const PaceParams& params,
                 MasterPolicy& policy) {
  const int workers = comm.size() - 1;
  std::unordered_set<std::uint64_t> seen;
  std::deque<PairTask> pending;
  std::vector<bool> exhausted(static_cast<std::size_t>(workers) + 1, false);
  std::uint64_t in_flight = 0;

  EngineCounters c;
  bool done = false;
  while (!done) {
    // Receive and fold in this round's submissions.
    for (int w = 1; w <= workers; ++w) {
      mpsim::Message msg = comm.recv(w, kTagRound);
      RoundMsg round = msg.take<RoundMsg>();
      exhausted[static_cast<std::size_t>(w)] = round.exhausted;
      in_flight -= round.verdicts.size();
      for (const Verdict& v : round.verdicts) {
        comm.charge_finds(1);
        policy.apply(v);
      }
      for (const PairTask& task : round.pairs) {
        ++c.promising_pairs;
        comm.charge_finds(1);
        if (!seen.insert(task.pair_key()).second) {
          ++c.duplicate_pairs;
          continue;
        }
        if (!policy.needs_alignment(task)) {
          ++c.filtered_pairs;
          continue;
        }
        pending.push_back(task);
      }
    }

    done = pending.empty() && in_flight == 0 &&
           std::all_of(exhausted.begin() + 1, exhausted.end(),
                       [](bool e) { return e; });

    // Hand out the next chunks (empty + done on the final round).
    for (int w = 1; w <= workers; ++w) {
      WorkMsg work;
      work.done = done;
      while (!done && !pending.empty() &&
             work.tasks.size() < params.batch_size) {
        work.tasks.push_back(pending.front());
        pending.pop_front();
      }
      in_flight += work.tasks.size();
      c.aligned_pairs += work.tasks.size();
      comm.send(w, kTagWork, std::any(std::move(work)),
                work.tasks.size() * kPairBytes + 1);
    }
  }

  comm.count("promising_pairs", c.promising_pairs);
  comm.count("duplicate_pairs", c.duplicate_pairs);
  comm.count("filtered_pairs", c.filtered_pairs);
  comm.count("aligned_pairs", c.aligned_pairs);
}

void worker_loop(mpsim::Communicator& comm, const SharedIndex& index,
                 const PaceParams& params, WorkerPolicy& policy,
                 exec::Pool* pool) {
  // "Build" this worker's share of the generalized suffix tree.
  comm.charge_index_chars(index.worker_chars(comm.rank()));
  const std::vector<PairTask> pairs = index.worker_pairs(comm.rank());
  comm.charge_pairs(pairs.size());
  comm.count("worker_pairs_generated", pairs.size());

  std::size_t next = 0;
  std::vector<Verdict> verdicts;
  const std::size_t submit_cap =
      static_cast<std::size_t>(params.batch_size) *
      std::max<std::uint32_t>(1, params.generation_batches);
  while (true) {
    RoundMsg round;
    const std::size_t take =
        std::min<std::size_t>(submit_cap, pairs.size() - next);
    round.pairs.assign(pairs.begin() + static_cast<std::ptrdiff_t>(next),
                       pairs.begin() + static_cast<std::ptrdiff_t>(next + take));
    next += take;
    round.exhausted = next == pairs.size();
    round.verdicts = std::move(verdicts);
    verdicts.clear();
    const std::uint64_t bytes =
        round.pairs.size() * kPairBytes +
        round.verdicts.size() * kVerdictBytes + 1;
    comm.send(0, kTagRound, std::any(std::move(round)), bytes);

    WorkMsg work = comm.recv(0, kTagWork).take<WorkMsg>();
    if (work.done) break;
    evaluate_tasks(work.tasks, policy, &comm, pool, verdicts);
  }
}

}  // namespace

mpsim::RunResult run_parallel(
    const seq::SequenceSet& set, const std::vector<seq::SeqId>& ids, int p,
    const mpsim::MachineModel& model, const PaceParams& params,
    MasterPolicy& master_policy,
    const std::function<std::unique_ptr<WorkerPolicy>()>& make_worker_policy,
    EngineCounters* counters, exec::Pool* pool) {
  if (p < 2) {
    throw std::invalid_argument(
        "pace::run_parallel needs p >= 2 (master + worker); use run_serial");
  }
  SharedIndex index(set, ids, params, p - 1, pool);

  mpsim::RunResult result =
      mpsim::run(p, model, [&](mpsim::Communicator& comm) {
        if (comm.rank() == 0) {
          master_loop(comm, params, master_policy);
        } else {
          const auto policy = make_worker_policy();
          worker_loop(comm, index, params, *policy, pool);
        }
      });

  if (counters) {
    counters->promising_pairs = result.counter("promising_pairs");
    counters->duplicate_pairs = result.counter("duplicate_pairs");
    counters->filtered_pairs = result.counter("filtered_pairs");
    counters->aligned_pairs = result.counter("aligned_pairs");
  }
  return result;
}

EngineCounters run_serial(const seq::SequenceSet& set,
                          const std::vector<seq::SeqId>& ids,
                          const PaceParams& params,
                          MasterPolicy& master_policy,
                          WorkerPolicy& worker_policy, exec::Pool* pool) {
  SharedIndex index(set, ids, params, /*workers=*/1, pool);
  const std::vector<PairTask> pairs = index.worker_pairs(1);

  EngineCounters c;
  std::unordered_set<std::uint64_t> seen;

  if (pool && pool->size() > 1) {
    // Batched mode: collect up to batch_size filter-surviving pairs, align
    // them on the pool, apply verdicts in task order. Like the round-based
    // engine, the filter sees state that lags the batch by construction;
    // the extra verdicts this admits are no-ops under apply (RR's
    // removed/dependents guards, CCD's idempotent merges), so the final
    // state matches the unbatched run bit for bit.
    std::vector<PairTask> batch;
    std::vector<Verdict> verdicts;
    const auto flush = [&] {
      verdicts.clear();
      evaluate_tasks(batch, worker_policy, nullptr, pool, verdicts);
      for (const Verdict& v : verdicts) master_policy.apply(v);
      batch.clear();
    };
    for (const PairTask& task : pairs) {
      ++c.promising_pairs;
      if (!seen.insert(task.pair_key()).second) {
        ++c.duplicate_pairs;
        continue;
      }
      if (!master_policy.needs_alignment(task)) {
        ++c.filtered_pairs;
        continue;
      }
      ++c.aligned_pairs;
      batch.push_back(task);
      if (batch.size() >= params.batch_size) flush();
    }
    flush();
    return c;
  }

  for (const PairTask& task : pairs) {
    ++c.promising_pairs;
    if (!seen.insert(task.pair_key()).second) {
      ++c.duplicate_pairs;
      continue;
    }
    if (!master_policy.needs_alignment(task)) {
      ++c.filtered_pairs;
      continue;
    }
    ++c.aligned_pairs;
    std::uint64_t cells = 0;
    master_policy.apply(worker_policy.evaluate(task, &cells));
  }
  return c;
}

}  // namespace pclust::pace
