#include "pclust/pace/redundancy.hpp"

#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "pclust/align/batch.hpp"
#include "pclust/align/predicates.hpp"
#include "pclust/util/metrics.hpp"

namespace pclust::pace {

namespace {

/// RR verdict codes.
constexpr std::uint8_t kNone = 0;
constexpr std::uint8_t kAInB = 1;
constexpr std::uint8_t kBInA = 2;
constexpr std::uint8_t kMutual = 3;

class RrMaster final : public MasterPolicy {
 public:
  explicit RrMaster(std::size_t n, RedundancyResult& result)
      : result_(result), dependents_(n, 0) {
    result_.removed.assign(n, 0);
    result_.container.assign(n, seq::kInvalidSeqId);
  }

  bool needs_alignment(const PairTask& task) override {
    return !result_.removed[task.a] && !result_.removed[task.b];
  }

  void apply(const Verdict& v) override {
    if (v.code != kNone) {
      util::metrics().counter("rr.containment_hits").add(1);
      if (v.code == kMutual) {
        util::metrics().counter("rr.containment_mutual").add(1);
      }
    }
    // Remove a sequence only when its container survives, and never remove
    // a sequence that is itself the recorded container of others — chains
    // like a ⊂ b ⊂ c would otherwise silently degrade the 95 % guarantee
    // (a is only ~90 % similar to c).
    const auto remove = [&](seq::SeqId victim, seq::SeqId keeper) {
      if (result_.removed[keeper] || result_.removed[victim]) return;
      if (dependents_[victim] > 0) return;  // victim anchors removed seqs
      result_.removed[victim] = 1;
      result_.container[victim] = keeper;
      ++dependents_[keeper];
      util::metrics().counter("rr.sequences_removed").add(1);
    };
    switch (v.code) {
      case kAInB: remove(v.a, v.b); break;
      case kBInA: remove(v.b, v.a); break;
      case kMutual:
        // Either direction is valid; prefer the one whose victim anchors
        // nothing (otherwise the dependents rule would veto the removal).
        if (dependents_[v.b] > 0 && dependents_[v.a] == 0) {
          remove(v.a, v.b);
        } else {
          remove(v.b, v.a);  // default: keep the smaller id
        }
        break;
      default: break;
    }
  }

 private:
  RedundancyResult& result_;
  std::vector<std::uint32_t> dependents_;  // removed sequences anchored here
};

class RrWorker final : public WorkerPolicy {
 public:
  RrWorker(const seq::SequenceSet& set, const PaceParams& params)
      : set_(set), params_(params) {}

  Verdict evaluate(const PairTask& task, std::uint64_t* cells) override {
    const auto res_a = set_.residues(task.a);
    const auto res_b = set_.residues(task.b);

    Verdict v{task.a, task.b, kNone};
    bool a_in_b = false, b_in_a = false;
    if (gate(res_a, res_b)) {
      a_in_b = test(res_a, res_b, task.diagonal(), cells);
    }
    if (gate(res_b, res_a)) {
      b_in_a = test(res_b, res_a, -task.diagonal(), cells);
    }
    v.code = code_of(a_in_b, b_in_a);
    return v;
  }

  /// Batched form: both containment directions of every admitted task are
  /// enqueued into one pair-batch call so the SIMD engine can pack them
  /// into lanes. Verdicts and per-task cell counts are bit-identical to
  /// per-pair evaluate(). The semiglobal containment variant has no batched
  /// kernel and keeps the scalar loop.
  void evaluate_batch(const PairTask* tasks, std::size_t count,
                      Verdict* verdicts, std::uint64_t* cells) override {
    if (params_.containment.semiglobal) {
      WorkerPolicy::evaluate_batch(tasks, count, verdicts, cells);
      return;
    }
    const std::int64_t band =
        params_.band > 0 ? static_cast<std::int64_t>(params_.band)
                         : std::int64_t{-1};
    std::vector<align::PairJob> jobs;
    std::vector<std::pair<std::size_t, bool>> owner;  // (task, is b-in-a)
    jobs.reserve(2 * count);
    owner.reserve(2 * count);
    for (std::size_t k = 0; k < count; ++k) {
      const auto res_a = set_.residues(tasks[k].a);
      const auto res_b = set_.residues(tasks[k].b);
      if (gate(res_a, res_b)) {
        jobs.push_back({res_a, res_b, tasks[k].diagonal(), band});
        owner.emplace_back(k, false);
      }
      if (gate(res_b, res_a)) {
        jobs.push_back({res_b, res_a, -tasks[k].diagonal(), band});
        owner.emplace_back(k, true);
      }
    }
    std::vector<align::AlignmentResult> results(jobs.size());
    align::align_score_batch(jobs.data(), jobs.size(), params_.scheme(),
                             results.data());

    std::vector<std::uint8_t> a_in_b(count, 0), b_in_a(count, 0);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const auto [k, flipped] = owner[i];
      const align::PredicateOutcome out = align::containment_outcome(
          results[i], jobs[i].a.size(), params_.containment);
      (flipped ? b_in_a : a_in_b)[k] = out.accepted ? 1 : 0;
      if (cells) cells[k] += out.alignment.cells;
    }
    for (std::size_t k = 0; k < count; ++k) {
      verdicts[k] =
          Verdict{tasks[k].a, tasks[k].b, code_of(a_in_b[k], b_in_a[k])};
    }
  }

 private:
  /// The inner sequence can only reach the coverage cutoff against the
  /// outer one if it is not much longer than it.
  bool gate(std::string_view inner, std::string_view outer) const {
    return static_cast<double>(inner.size()) *
               params_.containment.min_coverage <=
           static_cast<double>(outer.size());
  }

  static std::uint8_t code_of(bool a_in_b, bool b_in_a) {
    if (a_in_b && b_in_a) return kMutual;
    if (a_in_b) return kAInB;
    if (b_in_a) return kBInA;
    return kNone;
  }

  bool test(std::string_view inner, std::string_view outer,
            std::int64_t diagonal, std::uint64_t* cells) const {
    const align::PredicateOutcome out =
        params_.band > 0
            ? align::test_containment_banded(inner, outer, params_.scheme(),
                                             diagonal, params_.band,
                                             params_.containment)
            : align::test_containment(inner, outer, params_.scheme(),
                                      params_.containment);
    if (cells) *cells += out.alignment.cells;
    return out.accepted;
  }

  const seq::SequenceSet& set_;
  const PaceParams& params_;
};

std::vector<seq::SeqId> all_ids(const seq::SequenceSet& set) {
  std::vector<seq::SeqId> ids(set.size());
  std::iota(ids.begin(), ids.end(), seq::SeqId{0});
  return ids;
}

}  // namespace

std::vector<seq::SeqId> RedundancyResult::survivors() const {
  std::vector<seq::SeqId> out;
  out.reserve(removed.size());
  for (seq::SeqId id = 0; id < removed.size(); ++id) {
    if (!removed[id]) out.push_back(id);
  }
  return out;
}

std::size_t RedundancyResult::removed_count() const {
  std::size_t n = 0;
  for (auto r : removed) n += r;
  return n;
}

RedundancyResult remove_redundant(const seq::SequenceSet& set, int p,
                                  const mpsim::MachineModel& model,
                                  const PaceParams& params, exec::Pool* pool,
                                  const mpsim::FaultPlan* plan) {
  RedundancyResult result;
  RrMaster master(set.size(), result);
  result.run = run_parallel(
      set, all_ids(set), p, model, params, master,
      [&set, &params] { return std::make_unique<RrWorker>(set, params); },
      &result.counters, pool, plan);
  return result;
}

RedundancyResult remove_redundant_serial(const seq::SequenceSet& set,
                                         const PaceParams& params,
                                         exec::Pool* pool) {
  RedundancyResult result;
  RrMaster master(set.size(), result);
  RrWorker worker(set, params);
  result.counters =
      run_serial(set, all_ids(set), params, master, worker, pool);
  return result;
}

}  // namespace pclust::pace
