#include "pclust/pace/components.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <vector>

#include "pclust/align/batch.hpp"
#include "pclust/align/predicates.hpp"
#include "pclust/dsu/union_find.hpp"
#include "pclust/util/memsize.hpp"
#include "pclust/util/metrics.hpp"

namespace pclust::pace {

namespace {

class CcdMaster;

/// One sub-master's replica of the CCD state: its own union–find over the
/// same dense id universe, fed by the shard's verdicts plus the root's
/// synced events. Union–find merge is confluent AND idempotent, so shard
/// replicas may lag or replay events in any order and still converge to
/// (a refinement consistent with) the root's authoritative forest —
/// a replica only ever filters pairs its shard has PROVEN connected,
/// which keeps filtering sound while cross-shard merges are in flight.
class CcdShard final : public ShardPolicy {
 public:
  CcdShard(const std::unordered_map<seq::SeqId, std::uint32_t>& dense,
           std::size_t universe)
      : dense_(dense) {
    uf_.reset(universe);
  }

  bool needs_alignment(const PairTask& task) override {
    return !uf_.same(dense_.at(task.a), dense_.at(task.b));
  }

  bool absorb(const Verdict& v) override {
    return v.code == 1 && uf_.merge(dense_.at(v.a), dense_.at(v.b));
  }

 private:
  const std::unordered_map<seq::SeqId, std::uint32_t>& dense_;
  dsu::UnionFind uf_;
};

class CcdMaster final : public MasterPolicy {
 public:
  explicit CcdMaster(const std::vector<seq::SeqId>& ids) : ids_(ids) {
    dense_.reserve(ids.size());
    for (std::uint32_t i = 0; i < ids.size(); ++i) dense_[ids[i]] = i;
    uf_.reset(ids.size());
  }

  bool needs_alignment(const PairTask& task) override {
    return !uf_.same(dense_.at(task.a), dense_.at(task.b));
  }

  void apply(const Verdict& v) override {
    if (v.code == 1 && uf_.merge(dense_.at(v.a), dense_.at(v.b))) {
      util::metrics().counter("ccd.uf_merges").add(1);
      if (on_merge_) on_merge_(v);
    }
  }

  /// Merge-provenance recorder: fired exactly once per SURVIVING union—find
  /// merge, at the moment of decision, with the verdict that caused it.
  /// Sound for the serial driver (one authoritative state, in stream
  /// order); the parallel/hierarchical engines instead derive provenance
  /// by canonical replay (pace/provenance.hpp).
  void set_merge_recorder(std::function<void(const Verdict&)> recorder) {
    on_merge_ = std::move(recorder);
  }

  /// CCD supports hierarchical masters: apply is a union–find merge —
  /// confluent and idempotent — so shard replicas and root event replay
  /// are sound. Shards share the read-only dense_ map (the root's apply
  /// only mutates uf_, a different member, so concurrent shard reads of
  /// dense_ are race-free).
  std::unique_ptr<ShardPolicy> make_shard() override {
    return std::make_unique<CcdShard>(dense_, ids_.size());
  }

  /// Snapshot the union–find forest for checkpointing.
  [[nodiscard]] const std::vector<std::uint32_t>& parents() const {
    return uf_.parents();
  }

  /// Restore a parents() snapshot (resume). Throws std::invalid_argument
  /// if the snapshot does not match this run's id universe.
  void restore(const std::vector<std::uint32_t>& parents) {
    if (parents.size() != ids_.size()) {
      throw std::invalid_argument(
          "CCD resume: union–find snapshot size does not match the input "
          "id set");
    }
    uf_.restore(parents);
  }

  [[nodiscard]] std::vector<std::vector<seq::SeqId>> components() const {
    auto sets = uf_.extract_sets();
    std::vector<std::vector<seq::SeqId>> out;
    out.reserve(sets.size());
    for (auto& s : sets) {
      std::vector<seq::SeqId> members;
      members.reserve(s.size());
      for (auto dense : s) members.push_back(ids_[dense]);
      std::sort(members.begin(), members.end());
      out.push_back(std::move(members));
    }
    std::sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
      if (x.size() != y.size()) return x.size() > y.size();
      return x.front() < y.front();
    });
    return out;
  }

  /// Publish the master's union–find footprint under the phase prefix.
  void record_memory(const char* phase_label) const {
    util::record_memory(uf_.memory_usage(),
                        phase_label ? phase_label : "ccd");
  }

 private:
  const std::vector<seq::SeqId>& ids_;
  std::unordered_map<seq::SeqId, std::uint32_t> dense_;
  dsu::UnionFind uf_;
  std::function<void(const Verdict&)> on_merge_;
};

class CcdWorker final : public WorkerPolicy {
 public:
  CcdWorker(const seq::SequenceSet& set, const PaceParams& params)
      : set_(set), params_(params) {}

  Verdict evaluate(const PairTask& task, std::uint64_t* cells) override {
    const auto a = set_.residues(task.a);
    const auto b = set_.residues(task.b);
    const align::PredicateOutcome out =
        params_.band > 0
            ? align::test_overlap_banded(a, b, params_.scheme(),
                                         task.diagonal(), params_.band,
                                         params_.overlap)
            : align::test_overlap(a, b, params_.scheme(), params_.overlap);
    if (cells) *cells += out.alignment.cells;
    return make_verdict(task, out);
  }

  /// Batched form: one overlap alignment per task, packed into SIMD lanes
  /// by the pair-batch engine. Bit-identical to per-pair evaluate().
  void evaluate_batch(const PairTask* tasks, std::size_t count,
                      Verdict* verdicts, std::uint64_t* cells) override {
    const std::int64_t band =
        params_.band > 0 ? static_cast<std::int64_t>(params_.band)
                         : std::int64_t{-1};
    std::vector<align::PairJob> jobs;
    jobs.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
      jobs.push_back({set_.residues(tasks[k].a), set_.residues(tasks[k].b),
                      tasks[k].diagonal(), band});
    }
    std::vector<align::AlignmentResult> results(count);
    align::align_score_batch(jobs.data(), count, params_.scheme(),
                             results.data());
    for (std::size_t k = 0; k < count; ++k) {
      const align::PredicateOutcome out = align::overlap_outcome(
          results[k], jobs[k].a.size(), jobs[k].b.size(), params_.overlap);
      if (cells) cells[k] += out.alignment.cells;
      verdicts[k] = make_verdict(tasks[k], out);
    }
  }

 private:
  static Verdict make_verdict(const PairTask& task,
                              const align::PredicateOutcome& out) {
    Verdict v;
    v.a = task.a;
    v.b = task.b;
    v.code = static_cast<std::uint8_t>(out.accepted ? 1 : 0);
    v.score = out.alignment.score;
    v.matches = out.alignment.matches;
    v.columns = out.alignment.columns;
    v.a_span = out.alignment.a_end - out.alignment.a_begin;
    v.b_span = out.alignment.b_end - out.alignment.b_begin;
    return v;
  }

  const seq::SequenceSet& set_;
  const PaceParams& params_;
};

}  // namespace

std::size_t ComponentsResult::count_with_min_size(std::size_t min_size) const {
  std::size_t n = 0;
  for (const auto& c : components) n += c.size() >= min_size ? 1 : 0;
  return n;
}

std::size_t ComponentsResult::sequences_in_min_size(
    std::size_t min_size) const {
  std::size_t n = 0;
  for (const auto& c : components) {
    if (c.size() >= min_size) n += c.size();
  }
  return n;
}

ComponentsResult detect_components(const seq::SequenceSet& set,
                                   const std::vector<seq::SeqId>& ids, int p,
                                   const mpsim::MachineModel& model,
                                   const PaceParams& params, exec::Pool* pool,
                                   const mpsim::FaultPlan* plan) {
  ComponentsResult result;
  CcdMaster master(ids);
  result.run = run_parallel(
      set, ids, p, model, params, master,
      [&set, &params] { return std::make_unique<CcdWorker>(set, params); },
      &result.counters, pool, plan);
  master.record_memory(params.phase_label);
  result.components = master.components();
  return result;
}

ComponentsResult detect_components_serial(
    const seq::SequenceSet& set, const std::vector<seq::SeqId>& ids,
    const PaceParams& params, exec::Pool* pool, const CcdProgress* resume,
    std::uint64_t checkpoint_stride,
    const std::function<void(const CcdProgress&)>& on_checkpoint,
    const std::function<void(const Verdict&)>& on_merge) {
  ComponentsResult result;
  CcdMaster master(ids);
  CcdWorker worker(set, params);
  if (on_merge) master.set_merge_recorder(on_merge);

  SerialHooks hooks;
  if (resume) {
    master.restore(resume->parents);
    hooks.start_pair = resume->next_pair;
  }
  if (checkpoint_stride > 0 && on_checkpoint) {
    hooks.checkpoint_stride = checkpoint_stride;
    hooks.checkpoint = [&](std::uint64_t next_pair) {
      on_checkpoint(CcdProgress{master.parents(), next_pair});
    };
  }
  const bool use_hooks = resume || hooks.checkpoint;

  result.counters = run_serial(set, ids, params, master, worker, pool,
                               use_hooks ? &hooks : nullptr);
  master.record_memory(params.phase_label);
  result.components = master.components();
  return result;
}

}  // namespace pclust::pace
