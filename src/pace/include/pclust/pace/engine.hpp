// The PaCE master–worker engine (paper §IV-B), with self-healing.
//
// Rank 0 is the master; ranks 1..p-1 are workers. Each worker owns a set of
// prefix buckets of the (shared) suffix structure and generates promising
// pairs from them in decreasing maximal-match-length order. The protocol is
// round based and fully deterministic:
//
//   worker -> master (kTagRound): { seq, one stream chunk of new pairs
//                                   (<= cap) with its stream origin and
//                                   start index, verdicts acking the last
//                                   work chunk, exhausted flag }
//   master -> worker (kTagWork):  { seq, pairs to align (<= batch), streams
//                                   of dead workers to adopt, done flag }
//
// Each round the master visits live workers 1..p-1 in order; for each it
// applies the returned verdicts (policy), filters the submitted pairs
// (duplicate and policy filters — the transitive-closure check that removes
// >99.9 % of CCD pairs lives in the policy), queues survivors into a global
// FIFO, and replies with the next chunk of that FIFO. The run ends when
// every live worker is exhausted, the FIFO is empty, no chunk is
// outstanding, and no stream adoption is pending.
//
// Fault tolerance (see mpsim/fault_plan.hpp for the fault model):
//   - Sequence numbers make both directions at-least-once safe: duplicated
//     deliveries replay an old seq and are skipped.
//   - The master tracks, per worker, the unacked work chunk and the set of
//     generation streams assigned to it, plus a per-stream watermark of
//     pairs already received. When a worker is observed dead (recv_status
//     == kRankFailed, or silent past PaceParams::heartbeat_timeout), its
//     unacked chunk is requeued and its streams are adopted by the
//     least-loaded survivor, which regenerates them (worker_pairs is a pure
//     function of the shared index) and replays from the watermark. The
//     master's seen-set and the idempotent verdict application make any
//     replay overlap harmless, so the final master-policy state is
//     BIT-IDENTICAL to a fault-free run under any fault plan. Engine
//     counters and virtual times do legitimately differ under faults.
//   - The master itself must not crash (run_parallel rejects such plans);
//     if every worker dies the run aborts with a clear error.
//
// The same policy objects drive a serial (p = 1) path that produces the
// same final state, used as the test reference and by callers without a
// simulated machine. The serial path can checkpoint its progress and
// resume mid-stream (SerialHooks).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "pclust/mpsim/runtime.hpp"
#include "pclust/pace/params.hpp"
#include "pclust/seq/sequence_set.hpp"
#include "pclust/suffix/maximal_match.hpp"

namespace pclust::exec {
class Pool;
}

namespace pclust::pace {

/// One promising pair: a shared maximal match of length >= ψ.
struct PairTask {
  seq::SeqId a = 0;
  seq::SeqId b = 0;
  std::uint32_t a_pos = 0;
  std::uint32_t b_pos = 0;
  std::uint32_t length = 0;

  [[nodiscard]] std::int64_t diagonal() const {
    return static_cast<std::int64_t>(a_pos) - static_cast<std::int64_t>(b_pos);
  }
  [[nodiscard]] std::uint64_t pair_key() const {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
};

/// Worker-computed alignment outcome for one PairTask.
struct Verdict {
  seq::SeqId a = 0;
  seq::SeqId b = 0;
  /// Phase-specific code. CCD: 1 = overlap accepted. RR: 1 = a contained in
  /// b, 2 = b contained in a, 3 = mutually contained. 0 = rejected.
  std::uint8_t code = 0;
  // Alignment evidence behind the code, consumed by the merge-provenance
  // recorder. Deliberately EXCLUDED from the simulated wire-size estimate
  // (kVerdictBytes): provenance capture must not perturb virtual time, and
  // a real implementation would ship these fields only when the ledger is
  // requested.
  std::int32_t score = 0;
  std::uint32_t matches = 0;
  std::uint32_t columns = 0;
  std::uint32_t a_span = 0;
  std::uint32_t b_span = 0;
};

/// Sub-master-side policy (hierarchical mode): a local replica of the
/// master state owned by one sub-master shard. `needs_alignment` filters
/// against the replica; `absorb` folds a verdict into it and reports
/// whether the replica CHANGED — changed verdicts are the cross-shard
/// union events forwarded to the root, unchanged ones are locally final.
/// Replicas only ever merge state (confluent), so absorbing the same event
/// twice, or out of order across shards, converges to the same replica.
class ShardPolicy {
 public:
  virtual ~ShardPolicy() = default;
  virtual bool needs_alignment(const PairTask& task) = 0;
  /// Fold @p verdict into the replica; true iff the replica changed.
  virtual bool absorb(const Verdict& verdict) = 0;
};

/// Master-side policy: decides which pairs still need alignment and folds
/// verdicts into phase state. Called only from the master rank (or the
/// serial driver); needs no locking.
class MasterPolicy {
 public:
  virtual ~MasterPolicy() = default;
  /// True if the pair still needs an alignment (pair-duplicate filtering is
  /// done by the engine before this is consulted).
  virtual bool needs_alignment(const PairTask& task) = 0;
  virtual void apply(const Verdict& verdict) = 0;
  /// Build one sub-master shard replica (hierarchical mode; called once per
  /// sub-master rank). Policies that return nullptr — the default — are
  /// order-dependent and only support the flat single master
  /// (PaceParams::masters == 1); run_parallel rejects masters >= 2 for
  /// them. `apply` must then be confluent AND idempotent (the root replays
  /// event logs after sub-master deaths).
  virtual std::unique_ptr<ShardPolicy> make_shard() { return nullptr; }
};

/// Worker-side policy: computes the verdict for one pair. evaluate() may be
/// called CONCURRENTLY from pool threads on the same policy object, so
/// implementations must be stateless apart from read-only captures.
class WorkerPolicy {
 public:
  virtual ~WorkerPolicy() = default;
  /// Evaluate the pair; implementations accumulate the DP cells computed
  /// into @p cells (may be null). The engine folds the counts into the
  /// virtual clock serially, in task order, so pooled evaluation leaves the
  /// simulated timing deterministic.
  virtual Verdict evaluate(const PairTask& task, std::uint64_t* cells) = 0;

  /// Evaluate @p count independent pairs, writing verdicts[k] for tasks[k]
  /// and accumulating each pair's DP cells into cells[k] (cells may be
  /// null). Verdicts and per-pair cell counts must be bit-identical to
  /// count calls of evaluate() — the default does exactly that — but
  /// implementations may batch the underlying alignments into SIMD lanes
  /// (align_score_batch). Same concurrency contract as evaluate().
  virtual void evaluate_batch(const PairTask* tasks, std::size_t count,
                              Verdict* verdicts, std::uint64_t* cells) {
    for (std::size_t k = 0; k < count; ++k) {
      verdicts[k] = evaluate(tasks[k], cells ? cells + k : nullptr);
    }
  }
};

struct EngineCounters {
  std::uint64_t promising_pairs = 0;   // generated by workers (with dups)
  std::uint64_t duplicate_pairs = 0;   // dropped by the master's seen-set
  std::uint64_t filtered_pairs = 0;    // dropped by the policy filter
  std::uint64_t aligned_pairs = 0;     // dispatched for alignment
};

/// Run the engine on p >= 2 simulated ranks. @p make_worker_policy is
/// invoked once per worker rank (thread) so policies need no sharing.
/// The master policy is single-threaded by protocol. When @p pool is given
/// (and larger than 1), index construction and each rank's verdict batches
/// run on real pool threads — mpsim ranks SHARE the pool; results are
/// merged in task order so the outcome is identical to pool = nullptr.
/// With a @p plan the run is fault injected: planned worker crashes are
/// healed by the protocol (see file comment) and the final master-policy
/// state matches the fault-free run bit for bit. Throws
/// std::invalid_argument if the plan crashes rank 0 (the master), and
/// RankError (nested std::runtime_error) if every worker dies.
///
/// With PaceParams::masters >= 2 the protocol runs as a two-level master
/// tree (ranks 1..masters are failable sub-masters holding ShardPolicy
/// replicas; see mpsim/masterworker.hpp): the master policy must provide
/// make_shard(), plans may crash sub-masters (the root heals them by event
/// log replay + orphan re-homing), and the final master-policy state is
/// still bit-identical to the flat fault-free run.
mpsim::RunResult run_parallel(
    const seq::SequenceSet& set, const std::vector<seq::SeqId>& ids, int p,
    const mpsim::MachineModel& model, const PaceParams& params,
    MasterPolicy& master_policy,
    const std::function<std::unique_ptr<WorkerPolicy>()>& make_worker_policy,
    EngineCounters* counters = nullptr, exec::Pool* pool = nullptr,
    const mpsim::FaultPlan* plan = nullptr);

/// Mid-stream checkpoint hooks for run_serial. The pair stream is the
/// deterministic global order (decreasing match length), so a stream index
/// is a complete progress watermark: pairs [0, next_pair) have been fully
/// folded into the master policy when checkpoint(next_pair) fires.
struct SerialHooks {
  /// Resume: skip pairs [0, start_pair) — the caller restored master-policy
  /// state from a checkpoint taken at this watermark. The duplicate seen-set
  /// restarts empty; re-admitted duplicates re-align to identical verdicts
  /// whose application is a no-op, so the final state is unaffected (pair
  /// COUNTS cover the resumed segment only).
  std::uint64_t start_pair = 0;
  /// Call @p checkpoint roughly every this many pairs (0 = never). In
  /// pooled mode checkpoints land on batch-flush boundaries.
  std::uint64_t checkpoint_stride = 0;
  /// Invoked with the watermark; the callee snapshots master-policy state.
  std::function<void(std::uint64_t next_pair)> checkpoint;
};

/// Serial driver: identical pair stream (global decreasing match length),
/// identical filtering and verdict application. Returns engine counters.
/// With a pool (> 1 lane), verdicts are computed in batches of
/// params.batch_size on pool threads and applied in task order: the final
/// policy STATE is identical to the pure serial run (a batched pair whose
/// filter outcome would have changed mid-batch yields a verdict whose
/// application is a no-op), though filtered/aligned pair COUNTS may differ,
/// exactly as they do for the round-based parallel engine.
EngineCounters run_serial(const seq::SequenceSet& set,
                          const std::vector<seq::SeqId>& ids,
                          const PaceParams& params,
                          MasterPolicy& master_policy,
                          WorkerPolicy& worker_policy,
                          exec::Pool* pool = nullptr,
                          const SerialHooks* hooks = nullptr);

/// The canonical promising-pair stream over @p ids: exactly the pairs the
/// serial driver inspects, in its exact order (global decreasing match
/// length; ties keep the deterministic bucket-append order). A pure
/// function of (set, ids, params) — independent of thread count, master
/// topology, faults, and resume points — which is what lets the
/// merge-provenance replay (pace/provenance.hpp) reconstruct the serial
/// decision sequence after ANY run. A pool only parallelizes index
/// construction; the returned stream is bit-identical without one.
[[nodiscard]] std::vector<PairTask> canonical_pairs(
    const seq::SequenceSet& set, const std::vector<seq::SeqId>& ids,
    const PaceParams& params, exec::Pool* pool = nullptr);

}  // namespace pclust::pace
