// Phase 1: redundancy removal (paper §IV-A, Definition 1 / Problem 1).
//
// Sequences that are >= 95 % contained in another sequence are removed.
// Candidate pairs come from the ψ-length maximal-match filter; candidates
// are verified by optimal local alignment. A sequence is removed only if
// its container is itself still present at verdict-application time, so no
// information is lost through removal chains.
#pragma once

#include <cstdint>
#include <vector>

#include "pclust/mpsim/runtime.hpp"
#include "pclust/pace/engine.hpp"
#include "pclust/pace/params.hpp"
#include "pclust/seq/sequence_set.hpp"

namespace pclust::pace {

struct RedundancyResult {
  /// removed[id] == 1 iff sequence id was eliminated as redundant.
  std::vector<std::uint8_t> removed;
  /// For removed sequences: the id of the sequence that contains them.
  std::vector<seq::SeqId> container;
  /// Engine statistics (pair generation / filtering / alignment counts).
  EngineCounters counters;
  /// Simulated timing; rank_times empty for the serial driver.
  mpsim::RunResult run;

  [[nodiscard]] std::vector<seq::SeqId> survivors() const;
  [[nodiscard]] std::size_t removed_count() const;
};

/// Parallel (simulated, p >= 2) redundancy removal over all of @p set.
/// @p pool (optional) runs index construction and verdict batches on real
/// threads; the result is identical to pool = nullptr (see engine.hpp).
/// @p plan (optional) injects faults; worker crashes are healed by the
/// engine. NOTE: unlike CCD, the RR verdict application is order
/// dependent (removal chains), so the healed result is a VALID redundancy
/// removal but not necessarily bit-identical to the fault-free one.
RedundancyResult remove_redundant(const seq::SequenceSet& set, int p,
                                  const mpsim::MachineModel& model,
                                  const PaceParams& params = {},
                                  exec::Pool* pool = nullptr,
                                  const mpsim::FaultPlan* plan = nullptr);

/// Serial driver: same filter and verdict semantics, no simulation. With a
/// pool, verdicts are batched onto real threads; the final removed/container
/// state is identical to the pure serial run.
RedundancyResult remove_redundant_serial(const seq::SequenceSet& set,
                                         const PaceParams& params = {},
                                         exec::Pool* pool = nullptr);

}  // namespace pclust::pace
