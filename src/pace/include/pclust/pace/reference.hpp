// Brute-force all-versus-all reference implementations.
//
// These are the Ω(n²) baselines the paper's filtering is measured against
// (the "99 % work reduction" claim for the 40 K input). They also serve as
// ground truth in the property tests: the PaCE heuristics must produce the
// same connected components whenever ψ admits every true overlap.
#pragma once

#include <cstdint>
#include <vector>

#include "pclust/pace/params.hpp"
#include "pclust/seq/sequence_set.hpp"

namespace pclust::exec {
class Pool;
}

namespace pclust::pace {

struct BruteForceStats {
  std::uint64_t alignments = 0;  // n(n-1)/2
  std::uint64_t cells = 0;       // total DP cells evaluated
};

/// All-pairs Definition-1 sweep: removed[i] set when sequence i is
/// contained in a surviving sequence (pairs visited in ascending id order).
std::vector<std::uint8_t> remove_redundant_bruteforce(
    const seq::SequenceSet& set, const PaceParams& params = {},
    BruteForceStats* stats = nullptr);

/// All-pairs Definition-2 overlap graph, connected components via
/// union–find. Components descending by size, members ascending. The pair
/// tests are independent, so with a pool they are evaluated in parallel
/// batches and merged in pair order — output and stats are identical to the
/// serial sweep. (The Definition-1 sweep has a sequential dependence — the
/// removal state feeds the skip conditions — and stays serial.)
std::vector<std::vector<seq::SeqId>> detect_components_bruteforce(
    const seq::SequenceSet& set, const std::vector<seq::SeqId>& ids,
    const PaceParams& params = {}, BruteForceStats* stats = nullptr,
    exec::Pool* pool = nullptr);

}  // namespace pclust::pace
