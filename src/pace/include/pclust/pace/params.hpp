// Shared parameters of the PaCE-style phases (redundancy removal and
// connected-component detection).
#pragma once

#include <cstdint>

#include "pclust/align/predicates.hpp"
#include "pclust/align/scoring.hpp"

namespace pclust::pace {

struct PaceParams {
  /// Minimum maximal-match length ψ that makes a sequence pair "promising".
  /// The paper derives ψ from the similarity model (§IV-A) and reports
  /// 10-residue matches for the 40 K experiment.
  std::uint32_t psi = 10;

  /// Suffix prefix length used to partition the (conceptual) GST across
  /// workers; must be <= psi so no qualifying node spans two buckets.
  std::uint32_t bucket_prefix = 3;

  /// Pairs per worker->master submission and per master->worker work chunk.
  std::uint32_t batch_size = 256;

  /// Generation aggressiveness: how many batches a worker submits per
  /// protocol round. 1 reproduces the paper's behaviour; larger values
  /// implement its §V suggestion that "a more aggressive work generation
  /// scheme is required to compensate for work loss" when the master's
  /// filtering starves workers at high processor counts.
  std::uint32_t generation_batches = 1;

  /// Skip suffix-tree nodes with more occurrences than this
  /// (low-complexity guard; 0 = unlimited).
  std::uint32_t max_node_occurrences = 50'000;

  /// Master-side liveness backstop, WALL-clock seconds: a worker that stays
  /// silent this long is declared failed and its work is reassigned exactly
  /// as for a crash (it is also sent a final done message in case it is
  /// merely hung). 0 waits forever — the default, since in the simulator a
  /// slow-but-healthy thread is indistinguishable from a hung one.
  double heartbeat_timeout = 0.0;

  /// Extra timed-out receives — each with the timeout multiplied by
  /// heartbeat_backoff — before a silent worker is declared dead, so a
  /// transient stall does not trigger a (correct but wasteful) reassignment.
  std::uint32_t heartbeat_retries = 2;
  double heartbeat_backoff = 2.0;
  /// Ceiling on the backed-off per-retry timeout, wall seconds (0 = grow
  /// unbounded). With many retries an uncapped exponential ladder waits far
  /// past any useful point; the ceiling bounds each wait while keeping the
  /// retry count intact.
  double heartbeat_max_timeout = 0.0;

  /// Master ranks for the simulated protocol: 1 (default) is the paper's
  /// flat single master; >= 2 enables the two-level master tree (rank 0 the
  /// root, ranks 1..masters failable sub-masters owning union-find shards)
  /// that removes the single-master admit bottleneck. Requires
  /// p >= masters + 2. Only confluent phases (CCD, DSD) may run
  /// hierarchical; RR is order-dependent and always runs flat.
  int masters = 1;

  /// Whole-phase WALL-clock watchdog, seconds (0 = off): if the master loop
  /// runs longer than this, the phase aborts with an attributed RankError
  /// instead of hanging forever.
  double phase_deadline = 0.0;

  /// Phase label attached to fault events and RankError diagnostics
  /// (e.g. "rr", "ccd"); purely observational.
  const char* phase_label = "pace";

  /// Banded-alignment half width seeded on the maximal-match diagonal;
  /// 0 = full (exact) dynamic programming.
  std::uint32_t band = 0;

  /// Definition 1 cutoffs (similarity and contained-sequence coverage).
  align::ContainmentParams containment{};
  /// Definition 2 cutoffs (similarity and longer-sequence coverage).
  align::OverlapParams overlap{};

  /// Scoring scheme for verification alignments (defaults to BLOSUM62 when
  /// null).
  const align::ScoringScheme* scoring = nullptr;

  [[nodiscard]] const align::ScoringScheme& scheme() const {
    return scoring ? *scoring : align::blosum62();
  }
};

/// The paper's ψ derivation (§IV-A): if two sequences must align over
/// @p align_length residues at @p min_similarity, they can differ in at
/// most k = floor((1 - min_similarity) * align_length) positions, so by
/// pigeonhole at least one exact segment of length
/// floor(align_length / (k + 1)) exists. E.g. derive_psi(0.98, 100) == 33.
/// A necessary-but-not-sufficient filter length.
[[nodiscard]] constexpr std::uint32_t derive_psi(double min_similarity,
                                                 std::uint32_t align_length) {
  const auto errors = static_cast<std::uint32_t>(
      (1.0 - min_similarity) * align_length);
  return align_length / (errors + 1);
}

}  // namespace pclust::pace
