// Phase 2: connected-component detection (paper §IV-B, Definition 2 /
// Problem 2) — the PaCE clustering adapted to peptides.
//
// The master holds a union–find over the non-redundant sequences; workers
// stream promising pairs (decreasing maximal-match length) and compute
// overlap alignments on demand. Pairs whose endpoints already share a
// cluster are filtered without alignment — the transitive-closure merging
// that removes the overwhelming majority (> 99.9 % in the paper) of pairs,
// drastically cutting work but starving workers at high processor counts
// (the Table-II scaling loss).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "pclust/mpsim/runtime.hpp"
#include "pclust/pace/engine.hpp"
#include "pclust/pace/params.hpp"
#include "pclust/seq/sequence_set.hpp"

namespace pclust::pace {

struct ComponentsResult {
  /// Connected components over the input ids, descending size, each sorted
  /// ascending. Singletons included (filter by size at the call site).
  std::vector<std::vector<seq::SeqId>> components;
  EngineCounters counters;
  mpsim::RunResult run;

  [[nodiscard]] std::size_t count_with_min_size(std::size_t min_size) const;
  [[nodiscard]] std::size_t sequences_in_min_size(std::size_t min_size) const;
};

/// Parallel (simulated, p >= 2) component detection over @p ids.
/// @p pool (optional) runs index construction and verdict batches on real
/// threads; the result is identical to pool = nullptr (see engine.hpp).
/// @p plan (optional) injects faults; the engine heals worker crashes and
/// the component partition stays BIT-IDENTICAL to the fault-free run —
/// the partition is the transitive closure of accepted overlaps, which is
/// schedule and fault invariant as long as every pair reaches the master.
ComponentsResult detect_components(const seq::SequenceSet& set,
                                   const std::vector<seq::SeqId>& ids, int p,
                                   const mpsim::MachineModel& model,
                                   const PaceParams& params = {},
                                   exec::Pool* pool = nullptr,
                                   const mpsim::FaultPlan* plan = nullptr);

/// Mid-stream CCD progress: the master's union–find forest plus the pair
/// stream watermark. Pairs [0, next_pair) are folded into @p parents.
struct CcdProgress {
  std::vector<std::uint32_t> parents;
  std::uint64_t next_pair = 0;
};

/// Serial driver with identical semantics. With a pool, verdicts are
/// batched onto real threads; the final component partition is identical to
/// the pure serial run.
/// @p resume (optional) restores union–find state from a CcdProgress
/// snapshot and skips the already-folded prefix of the pair stream;
/// @p checkpoint_stride > 0 invokes @p on_checkpoint with a fresh snapshot
/// roughly every that many pairs. The resumed partition is bit-identical
/// to an uninterrupted run.
/// @p on_merge (optional) is the merge-provenance recorder: invoked exactly
/// once per SURVIVING union–find merge, with the accepting verdict, in the
/// order the master applied them. Only meaningful on a from-scratch run
/// (resume == nullptr): a resumed run replays a stream suffix, so its
/// recorder would miss merges folded before the checkpoint — callers use
/// the canonical replay (pace/provenance.hpp) there instead.
ComponentsResult detect_components_serial(
    const seq::SequenceSet& set, const std::vector<seq::SeqId>& ids,
    const PaceParams& params = {}, exec::Pool* pool = nullptr,
    const CcdProgress* resume = nullptr, std::uint64_t checkpoint_stride = 0,
    const std::function<void(const CcdProgress&)>& on_checkpoint = nullptr,
    const std::function<void(const Verdict&)>& on_merge = nullptr);

}  // namespace pclust::pace
