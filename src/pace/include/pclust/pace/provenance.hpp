// Canonical derivation of RR/CCD merge provenance (prov::Edge lists).
//
// The engines' merge DECISIONS are schedule dependent (which pair's
// alignment triggers a union depends on batching, rank interleaving,
// faults, and resume points), but the final PARTITION is invariant. The
// provenance ledger therefore records the canonical decision sequence:
// the one the serial driver produces when it walks the canonical pair
// stream (engine.hpp canonical_pairs) from scratch. Two capture paths
// produce that sequence:
//
//   * decision-time capture — the serial CCD driver's merge recorder
//     (components.hpp, detect_components_serial on_merge) emits the edge
//     at the moment uf_.merge succeeds; zero extra alignments. Valid only
//     for a from-scratch serial run.
//   * canonical replay (derive_ccd_provenance) — for parallel,
//     hierarchical, faulted, or resumed runs: walk the canonical pair
//     stream against a fresh union-find, skip duplicates and
//     already-connected pairs, skip (WITHOUT aligning) pairs whose
//     endpoints end in different final components (an accepted overlap
//     would have merged them — provably rejected), realign the rest
//     exactly like the CCD worker, and emit an edge per accepting merge.
//
// Replay equals capture by induction on the stream position: both walk
// the same pairs in the same order, and at every position the replay
// union-find equals the serial master's apply-time forest (batched/pooled
// runs admit extra lagging pairs, but their verdicts apply as no-op
// merges, which neither path records). See DESIGN.md §16.
//
// RR provenance is derived post hoc: the removal chain guard ("a sequence
// is removed only if its container is itself still present") makes
// removed -> container pointers a forest, and each removal is exactly one
// conceptual merge. The evidence alignment is recomputed with the FULL
// dynamic program (no band) so the recorded stats are canonical even when
// the phase cut corners with a banded filter.
#pragma once

#include <vector>

#include "pclust/pace/components.hpp"
#include "pclust/pace/engine.hpp"
#include "pclust/pace/params.hpp"
#include "pclust/pace/redundancy.hpp"
#include "pclust/prov/edge.hpp"
#include "pclust/seq/sequence_set.hpp"

namespace pclust::pace {

/// The evidence edge for an accepting CCD verdict (shared by the serial
/// merge recorder and the canonical replay, so both emit identical edges).
[[nodiscard]] prov::Edge ccd_edge_from_verdict(const Verdict& v);

/// Canonical RR evidence: one containment edge per removed sequence, in
/// ascending removed-id order, each scored by the full-DP containment
/// alignment of (removed, container). Pure function of (set, rr, params).
[[nodiscard]] std::vector<prov::Edge> derive_rr_provenance(
    const seq::SequenceSet& set, const RedundancyResult& rr,
    const PaceParams& params);

/// Canonical CCD evidence by replay (see file comment): exactly one edge
/// per surviving union-find merge, in canonical stream order. @p
/// components is the FINAL partition over @p ids (any order); it gates
/// the provable-reject fast path and is what makes the replay a pure
/// function of the final result rather than of the schedule. A pool
/// parallelizes index construction only — the edge list is bit-identical
/// without one.
[[nodiscard]] std::vector<prov::Edge> derive_ccd_provenance(
    const seq::SequenceSet& set, const std::vector<seq::SeqId>& ids,
    const PaceParams& params,
    const std::vector<std::vector<seq::SeqId>>& components,
    exec::Pool* pool = nullptr);

}  // namespace pclust::pace
