// Perf-regression gate: compare two benchmark artifacts — either two
// pclust run reports (BENCH_pipeline.json) or two kernel-rate documents
// (BENCH_kernels.json) — metric by metric against a relative tolerance.
//
// Directions are per metric: phase seconds, ns/cell, memory peaks, and
// attempted-work ratio regress UPWARD; pairs/sec regresses DOWNWARD. A
// candidate outside tolerance in the bad direction is a regression;
// improvements are reported but never fail the gate. Score-only kernels
// additionally carry an absolute gate: `speedup_vs_full` (and
// `speedup_vs_full_matrix`) must be >= 1.0 in the candidate — a score-only
// fast path slower than the full-traceback kernel it replaces is a bug
// regardless of what the baseline said.
#pragma once

#include <string>
#include <vector>

#include "pclust/util/json.hpp"

namespace pclust::pipeline {

struct PerfDiffOptions {
  /// Allowed relative slowdown before a metric counts as a regression
  /// (0.15 == +-15 %).
  double tolerance = 0.15;
  /// Phases/kernels faster than this many seconds in the BASELINE are
  /// compared but never fail the gate (timer noise dominates).
  double min_seconds = 0.05;
};

struct PerfFinding {
  std::string metric;       ///< e.g. "phase.rr.seconds"
  double baseline = 0.0;
  double candidate = 0.0;
  /// candidate/baseline for higher-is-worse metrics, baseline/candidate
  /// for lower-is-worse — so ratio > 1 always means "worse".
  double ratio = 0.0;
  bool regression = false;
  std::string note;         ///< set on regressions and absolute-gate failures
};

struct PerfDiffResult {
  std::vector<PerfFinding> findings;

  [[nodiscard]] bool has_regression() const {
    for (const PerfFinding& f : findings) {
      if (f.regression) return true;
    }
    return false;
  }
};

/// Diff two parsed artifacts of the SAME kind (both run reports or both
/// kernel documents; the kind is auto-detected). Throws
/// std::invalid_argument when the kinds differ or neither is recognized.
[[nodiscard]] PerfDiffResult perf_diff(const util::JsonValue& baseline,
                                       const util::JsonValue& candidate,
                                       const PerfDiffOptions& options = {});

/// Render the findings table `pclust perf-diff` prints.
[[nodiscard]] std::string render_perf_diff(const PerfDiffResult& result);

}  // namespace pclust::pipeline
