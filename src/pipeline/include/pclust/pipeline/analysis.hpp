// Load-imbalance and critical-path analysis over a run report's
// `rank_times` section — the paper's scaling narrative (near-linear
// speedup, CCD master as the bottleneck at high p) as machine-readable
// verdicts.
//
// Definitions (per simulated phase):
//   imbalance_factor     max busy / mean busy over WORKER ranks (>= 1.0;
//                        1.0 is a perfectly balanced phase). The master is
//                        excluded because its job is different by design;
//                        its saturation has its own diagnosis below.
//   critical_path        max over ranks of busy + comm — the longest chain
//                        of non-idle virtual time. makespan minus the
//                        critical path of the slowest rank is pure waiting.
//   parallel_efficiency  sum(busy) / (ranks * makespan) in [0, 1].
//   stragglers           top-k ranks by busy time, descending.
//   master saturation    rank 0 busy fraction >= saturation_busy while the
//                        mean worker idle fraction >= saturation_idle: the
//                        master is the serial bottleneck and extra workers
//                        would mostly wait (paper §V: CCD limits scaling).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pclust/util/json.hpp"

namespace pclust::pipeline {

/// One rank's virtual-time decomposition, as read from `rank_times`.
struct RankSample {
  double total = 0.0;
  double busy = 0.0;
  double comm = 0.0;
  double idle = 0.0;
  /// Hierarchy level from the report ("master", "root", "sub-master",
  /// "worker"); empty for reports predating the level field, in which
  /// case rank 0 is the master and everyone else a worker.
  std::string level;
};

struct AnalysisOptions {
  std::size_t top_k = 3;           ///< stragglers listed per phase
  double saturation_busy = 0.6;    ///< master busy fraction threshold
  double saturation_idle = 0.3;    ///< mean worker idle fraction threshold
};

struct PhaseAnalysis {
  std::string phase;
  int ranks = 0;
  /// Sub-master ranks in this phase (0 for a flat run). Sub-masters are
  /// excluded from the worker imbalance/idle aggregates — like the root,
  /// their job is coordination, and folding their idle-heavy profiles into
  /// the worker means would mask genuine worker imbalance.
  int submasters = 0;
  double submaster_busy_fraction = 0.0;  ///< mean over sub-master ranks
  double makespan = 0.0;
  double imbalance_factor = 0.0;
  double critical_path_seconds = 0.0;
  int critical_rank = -1;          ///< rank attaining the critical path
  double parallel_efficiency = 0.0;
  std::vector<int> stragglers;     ///< top-k by busy time, descending
  double master_busy_fraction = 0.0;
  double worker_idle_fraction = 0.0;
  bool master_saturated = false;
  std::string verdict;             ///< one-line human-readable diagnosis
};

/// Percentile summary of one metrics size-histogram, as read from the
/// report's `metrics.histograms` section (bucket-upper-bound resolution).
struct HistogramSummary {
  std::string name;
  std::uint64_t count = 0;
  double mean = 0.0;
  std::uint64_t p50 = 0;
  std::uint64_t p95 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t max = 0;
};

struct ReportAnalysis {
  std::vector<PhaseAnalysis> phases;  ///< only phases with >= 1 rank
  /// Non-empty metrics histograms, report order (e.g. family sizes,
  /// component sizes, protocol round-trip latencies).
  std::vector<HistogramSummary> histograms;

  /// Worst imbalance factor across analyzed phases (0 when none).
  [[nodiscard]] double max_imbalance() const;
  [[nodiscard]] bool any_master_saturated() const;
};

/// Analyze one phase from its per-rank samples (empty input -> zeroed
/// result with ranks == 0).
[[nodiscard]] PhaseAnalysis analyze_phase(const std::string& phase,
                                          const std::vector<RankSample>& ranks,
                                          const AnalysisOptions& options = {});

/// Analyze every non-empty phase of a parsed run report's `rank_times`
/// section. Throws util::JsonError if the section is absent or malformed.
[[nodiscard]] ReportAnalysis analyze_report(const util::JsonValue& report,
                                            const AnalysisOptions& options = {});

/// Render as the human-readable text `pclust analyze` prints.
[[nodiscard]] std::string render_analysis(const ReportAnalysis& analysis);

/// Render as a JSON document (for --json).
[[nodiscard]] std::string render_analysis_json(const ReportAnalysis& analysis);

}  // namespace pclust::pipeline
