// Simulated, self-healing BGG + DSD phase (paper §V: components are
// batched across cluster nodes; §VI suggests parallelizing Shingle).
//
// Each component graph is one task on the resilient master–worker protocol
// (mpsim/masterworker.hpp): workers virtually re-pay the bipartite-graph
// construction cost of the graphs they own when generating their task
// stream, then pay the Shingle hashing cost per evaluated graph. A worker
// death requeues its outstanding graphs and hands its generation stream to
// a survivor, so the phase completes under any fault plan that leaves the
// master and at least one worker alive.
//
// Family output is keyed by graph id (idempotent verdict slots) and
// assembled in ascending graph order, so it is BIT-IDENTICAL to the serial
// path regardless of rank count, healing, duplicated deliveries, or
// stragglers.
#pragma once

#include <vector>

#include "pclust/bigraph/builders.hpp"
#include "pclust/exec/pool.hpp"
#include "pclust/mpsim/fault_plan.hpp"
#include "pclust/mpsim/machine_model.hpp"
#include "pclust/mpsim/runtime.hpp"
#include "pclust/pace/params.hpp"
#include "pclust/shingle/shingle.hpp"

namespace pclust::pipeline {

struct DsdParallelResult {
  /// families_per_graph[g] == shingle::report_families(graphs[g], ...) —
  /// one slot per component graph, filled exactly once.
  std::vector<std::vector<std::vector<seq::SeqId>>> families_per_graph;
  /// Per-graph surviving Pass II merges (capture_merges only; endpoints
  /// already lifted to sequence ids). First-application-wins like the
  /// family slots, so replays and duplicated deliveries never duplicate
  /// provenance.
  std::vector<std::vector<shingle::ShingleMerge>> merges_per_graph;
  /// Per-graph Shingle tallies (always filled): the derivation-side merge
  /// identity is sum over graphs of s1_nodes - raw_components.
  std::vector<std::uint64_t> s1_nodes_per_graph;
  std::vector<std::uint64_t> raw_components_per_graph;
  mpsim::RunResult run;
};

/// Run BGG cost accounting + dense-subgraph detection for @p graphs on
/// @p p simulated ranks (rank 0 masters; ranks 1..p-1 own LPT-balanced
/// generation streams). @p engine supplies the resilience knobs
/// (heartbeat, retries, phase deadline). Throws std::invalid_argument when
/// @p plan crashes rank 0 (the master is the phase's single coordinator).
/// @p capture_merges additionally records each graph's surviving Pass II
/// merges (merge provenance); virtual time is unaffected.
[[nodiscard]] DsdParallelResult run_dsd_parallel(
    const std::vector<bigraph::ComponentGraph>& graphs,
    const shingle::ShingleParams& params, int p,
    const mpsim::MachineModel& model, const pace::PaceParams& engine,
    exec::Pool* pool, const mpsim::FaultPlan* plan,
    bool capture_merges = false);

}  // namespace pclust::pipeline
