// The end-to-end pclust pipeline (paper Figure 2):
//
//   input -> redundancy removal -> connected-component detection ->
//   bipartite graph generation -> dense subgraph detection -> families
//
// This is the library's top-level entry point. RR and CCD can run either
// serially or on a simulated distributed-memory machine (mpsim); BGG + DSD
// run per component, mirroring the paper's batching of components across
// cluster nodes (§V: components grouped into roughly equal batches).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pclust/bigraph/builders.hpp"
#include "pclust/mpsim/machine_model.hpp"
#include "pclust/mpsim/runtime.hpp"
#include "pclust/pace/components.hpp"
#include "pclust/pace/params.hpp"
#include "pclust/pace/redundancy.hpp"
#include "pclust/prov/ledger.hpp"
#include "pclust/seq/complexity.hpp"
#include "pclust/seq/sequence_set.hpp"
#include "pclust/shingle/shingle.hpp"

namespace pclust::pipeline {

struct PipelineConfig {
  /// ψ, cutoffs, scoring for RR and CCD.
  pace::PaceParams pace;
  /// Band for the RR containment alignments; 0 = full dynamic programming
  /// (the default: the 95 % similarity cutoff merits exactness, and RR is
  /// the phase the paper spends > 90 % of its time in). CCD and BGG use
  /// pace.band.
  std::uint32_t rr_band = 0;
  /// Which bipartite reduction drives dense-subgraph detection.
  bigraph::Reduction reduction = bigraph::Reduction::kDuplicate;
  bigraph::BmParams bm;
  /// Shingle parameters; min_size is also the dense-subgraph size cutoff.
  shingle::ShingleParams shingle;
  /// Components smaller than this skip the DSD stage (paper: 5).
  std::uint32_t min_component = 5;

  /// SEG-style low-complexity masking of the input before any phase
  /// (masked residues become 'X': they never seed exact matches and score
  /// -1 in alignments). Off by default — the synthetic workloads carry no
  /// low-complexity sequence; real metagenomic data does.
  bool mask_low_complexity = false;
  seq::ComplexityParams complexity;

  /// 0 = serial; >= 2 = simulated ranks for the RR and CCD phases.
  int processors = 0;
  mpsim::MachineModel model = mpsim::MachineModel::bluegene_l();

  /// REAL shared-memory threads (exec::Pool) used inside every phase:
  /// suffix-array/LCP/bucket construction, batched RR/CCD verdicts, and the
  /// Shingle passes. 1 = fully serial (the golden reference path);
  /// 0 = hardware_concurrency. Composes with `processors`: mpsim ranks
  /// share the one pool. All outputs are thread-count independent.
  unsigned threads = 1;

  /// Parallel Shingle stage (the paper's §VI future work, and the batched
  /// component distribution its experiments used on the Xeon cluster):
  /// 0/1 = serial DSD; >= 2 = components are LPT-batched across this many
  /// simulated Xeon-cluster ranks.
  int dsd_processors = 0;
  mpsim::MachineModel dsd_model = mpsim::MachineModel::xeon_cluster();

  /// Directory for phase-level checkpoints (created if missing); empty
  /// disables checkpointing. Files: rr.ckpt, ccd_partial.ckpt, ccd.ckpt,
  /// families.ckpt — versioned, CRC-checked (util/checkpoint.hpp), each
  /// carrying a fingerprint of the input and the result-relevant
  /// configuration.
  std::string checkpoint_dir;
  /// Resume from @p checkpoint_dir: completed phases load their checkpoint
  /// and are skipped; a partial CCD checkpoint re-enters the pair stream
  /// at its watermark (serial CCD only). Requires checkpoint_dir. Throws
  /// util::CheckpointError if a checkpoint's fingerprint does not match
  /// the current input/configuration. The resumed output is bit-identical
  /// to an uninterrupted run.
  bool resume = false;
  /// Pairs between mid-CCD partial checkpoints (serial CCD path only;
  /// 0 disables partials, leaving only whole-phase checkpoints).
  std::uint64_t ccd_checkpoint_stride = 100'000;

  /// Memory budget in bytes for the capacity ledger (util/memgov);
  /// 0 = unlimited. Under pressure the run degrades along
  /// output-invariant levers only (smaller evaluation grains/batches,
  /// streaming BGG, shingle-table spill), so the family output stays
  /// bit-identical to an unconstrained run; a run that exceeds twice the
  /// budget despite degradation exits structured at the next phase
  /// boundary (MemoryBudgetExceeded), resumable when checkpointing is on.
  /// Not part of the checkpoint fingerprint: like thread count, the
  /// budget never changes results.
  std::uint64_t mem_budget_bytes = 0;

  /// Capture merge provenance: every union–find merge that survives into
  /// the final partition is recorded as one evidence edge (sequence pair,
  /// phase, rule, alignment/shingle evidence) in PipelineResult::
  /// provenance. The ledger is a CANONICAL DERIVATION — a pure function of
  /// (input, final phase results, parameters) — so its bytes are identical
  /// across thread counts, master topologies, checkpoint resume, and any
  /// fault plan under which the family output itself is invariant (see
  /// pace/provenance.hpp and DESIGN.md §16). The serial CCD path captures
  /// at decision time for free; parallel/resumed runs derive by canonical
  /// replay. With checkpointing enabled, per-phase provenance sidecars
  /// (<phase>.prov.jsonl in checkpoint_dir) let `--resume` splice already-
  /// derived evidence instead of re-deriving it.
  bool provenance = false;

  /// Fault injection for the simulated RR and CCD phases (ignored when
  /// processors < 2). The engine self-heals worker crashes; see
  /// pace/engine.hpp for the guarantees per phase.
  const mpsim::FaultPlan* fault_plan = nullptr;
  /// Per-phase overrides: when set, the named phase uses this plan instead
  /// of `fault_plan`. Each simulated phase restarts its virtual clock at 0,
  /// so a shared plan's crash times hit every phase it is applied to —
  /// per-phase plans are how a single phase is targeted.
  const mpsim::FaultPlan* rr_fault_plan = nullptr;
  const mpsim::FaultPlan* ccd_fault_plan = nullptr;
  /// Fault injection for the simulated BGG+DSD phase (ignored when
  /// dsd_processors < 2). Unlike RR, the DSD phase's graph-keyed verdicts
  /// make its family output bit-identical under ANY plan that leaves the
  /// master alive (see pipeline/dsd.hpp). Not defaulted from `fault_plan`:
  /// the DSD machine/rank-count differ, so a shared plan rarely validates.
  const mpsim::FaultPlan* dsd_fault_plan = nullptr;
};

/// One reported dense subgraph with its quality measurements.
struct Family {
  std::vector<seq::SeqId> members;  // sorted
  double mean_degree = 0.0;  // within-subgraph, duplicate reduction only
  double density = 0.0;      // mean_degree / (|members| - 1)
};

struct PipelineResult {
  pace::RedundancyResult rr;
  pace::ComponentsResult ccd;
  std::vector<Family> families;  // descending size

  /// Simulated (parallel mode) or measured (serial mode) phase times, s.
  double rr_seconds = 0.0;
  double ccd_seconds = 0.0;
  double bgg_dsd_seconds = 0.0;
  /// Simulated DSD makespan when dsd_processors >= 2 (else 0).
  double dsd_simulated_seconds = 0.0;
  /// Full simulated-run record of the DSD phase (counters, crashed ranks,
  /// fault/healing events). Default-constructed when DSD ran serially.
  mpsim::RunResult dsd_run;

  // -- Table-I quantities ---------------------------------------------------
  std::size_t input_sequences = 0;
  std::size_t non_redundant_sequences = 0;
  std::size_t components_min_size = 0;   // #CC with >= min_component members
  std::size_t dense_subgraph_count = 0;  // #DS
  std::size_t sequences_in_subgraphs = 0;
  double mean_degree = 0.0;   // over all DS members
  double mean_density = 0.0;  // over all DS
  std::size_t largest_subgraph = 0;

  /// Phase provenance when checkpointing is enabled: one entry per phase,
  /// e.g. "rr:computed", "rr:resumed", "ccd:resumed-partial",
  /// "families:resumed", "rr:resumed-backup" (primary checkpoint damaged,
  /// rolled back to the last-good generation). Empty when checkpoint_dir
  /// is unset.
  std::vector<std::string> phase_log;
  /// Checkpoint-recovery events from this run (quarantined files,
  /// rollbacks to a backup generation). Empty when nothing was damaged.
  std::vector<std::string> recovery_log;

  /// Merge-provenance ledger (PipelineConfig::provenance): evidence edges
  /// in canonical derivation order plus per-phase/per-rule tallies and the
  /// expected union–find merge counts. Default-constructed (sequences ==
  /// 0, no edges) when capture was off.
  prov::Ledger provenance;

  [[nodiscard]] std::vector<std::vector<seq::SeqId>> family_clustering() const;
};

/// Run the full pipeline.
[[nodiscard]] PipelineResult run(const seq::SequenceSet& set,
                                 const PipelineConfig& config = {});

/// Render the Table-I row for a result ("TABLE I" in the paper).
[[nodiscard]] std::string table1_row(const PipelineResult& result);

}  // namespace pclust::pipeline
