// Structured run reports: one JSON document per pipeline run capturing
// phase times and provenance, the engine's alignment-work identity
// (candidate_pairs == attempted + skipped_by_cluster_filter per phase — the
// paper's ">99.9 % of pairs never aligned" claim made checkable), fault and
// healing activity, Table-I quantities, and a full metrics-registry
// snapshot.
//
// Schema (stable; validated by validate_report and `pclust report-check`):
//   { "schema": "pclust-run-report", "version": 1,
//     "command": str, "input": {...}, "config": {...},
//     "phases": [ {name, seconds, source, ...engine counters} ],
//     "alignment": {candidate_pairs, attempted, skipped_by_cluster_filter,
//                   duplicate_pairs, skip_ratio},
//     "faults": {...}, "resume": {...}, "table1": {...},
//     "metrics": {counters, gauges, histograms} }
#pragma once

#include <filesystem>
#include <string>

#include "pclust/pipeline/pipeline.hpp"

namespace pclust::util {
class JsonValue;
}

namespace pclust::pipeline {

/// Run context the library cannot know by itself.
struct ReportInfo {
  std::string command;  // CLI subcommand, e.g. "families"
  std::string input;    // input path (or description)
  /// Where the merge-provenance ledger was written (--provenance-out);
  /// empty when no ledger file was requested. The report's `provenance`
  /// section appears whenever capture ran, with or without a file.
  std::string provenance_path;
};

/// Render the report document for a finished run. Reads the process-wide
/// metrics registry — call after run() returns, before the next run resets
/// the registry.
[[nodiscard]] std::string render_report(const PipelineResult& result,
                                        const PipelineConfig& config,
                                        const ReportInfo& info);

/// Render and write to @p path. Throws std::runtime_error on I/O failure.
void write_report(const std::filesystem::path& path,
                  const PipelineResult& result, const PipelineConfig& config,
                  const ReportInfo& info);

/// Validate a parsed report against the schema above, including the
/// per-phase and total alignment-work identities. Returns true when valid;
/// otherwise false with a diagnostic in @p error (if given).
[[nodiscard]] bool validate_report(const util::JsonValue& report,
                                   std::string* error = nullptr);

}  // namespace pclust::pipeline
