#include "pclust/pipeline/report.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include <cmath>
#include <map>

#include "pclust/align/simd.hpp"
#include "pclust/mpsim/masterworker.hpp"
#include "pclust/util/io.hpp"
#include "pclust/util/json.hpp"
#include "pclust/util/memgov.hpp"
#include "pclust/util/memsize.hpp"
#include "pclust/util/metrics.hpp"
#include "pclust/util/telemetry.hpp"

namespace pclust::pipeline {

namespace {

struct PhaseWork {
  std::uint64_t promising = 0;
  std::uint64_t duplicate = 0;
  std::uint64_t filtered = 0;
  std::uint64_t aligned = 0;

  [[nodiscard]] std::uint64_t candidates() const {
    return promising - duplicate;
  }
  [[nodiscard]] double skip_ratio() const {
    return candidates() == 0 ? 0.0
                             : static_cast<double>(filtered) /
                                   static_cast<double>(candidates());
  }
};

PhaseWork work_of(const pace::EngineCounters& c) {
  return PhaseWork{c.promising_pairs, c.duplicate_pairs, c.filtered_pairs,
                   c.aligned_pairs};
}

/// Provenance of @p phase from the phase log ("computed" when checkpoints
/// were off and the log is empty).
std::string phase_source(const PipelineResult& result, const char* phase) {
  const std::string prefix = std::string(phase) + ":";
  for (const std::string& entry : result.phase_log) {
    if (entry.compare(0, prefix.size(), prefix) == 0) {
      return entry.substr(prefix.size());
    }
  }
  return "computed";
}

void emit_phase(util::JsonWriter& w, const char* name, double seconds,
                const std::string& source, const PhaseWork* work) {
  w.begin_object();
  w.key("name").value(name);
  w.key("seconds").value(seconds);
  w.key("source").value(source);
  if (work) {
    w.key("promising_pairs").value(work->promising);
    w.key("duplicate_pairs").value(work->duplicate);
    w.key("candidate_pairs").value(work->candidates());
    w.key("attempted").value(work->aligned);
    w.key("skipped_by_cluster_filter").value(work->filtered);
    w.key("skip_ratio").value(work->skip_ratio());
  }
  w.end_object();
}

void emit_crashed_ranks(util::JsonWriter& w, const PipelineResult& result) {
  w.begin_array();
  for (const int rank : result.rr.run.crashed_ranks) w.value(rank);
  for (const int rank : result.ccd.run.crashed_ranks) w.value(rank);
  for (const int rank : result.dsd_run.crashed_ranks) w.value(rank);
  w.end_array();
}

/// Every fault/healing event of the run, each attributed to its phase
/// (simulated phases prefix their own label; checkpoint recovery events
/// come from the pipeline's recovery log).
void emit_fault_events(util::JsonWriter& w, const PipelineResult& result) {
  w.begin_array();
  const auto emit_run = [&](const mpsim::RunResult& run) {
    const std::string prefix = run.phase + ": ";
    for (const std::string& event : run.fault_events) {
      // Protocol notes already carry the phase label; runtime-level events
      // (planned crashes) do not.
      const bool prefixed =
          !run.phase.empty() && event.compare(0, prefix.size(), prefix) == 0;
      w.value(run.phase.empty() || prefixed ? event : prefix + event);
    }
  };
  emit_run(result.rr.run);
  emit_run(result.ccd.run);
  emit_run(result.dsd_run);
  for (const std::string& event : result.recovery_log) {
    w.value("checkpoint: " + event);
  }
  w.end_array();
}

/// `memory` section: process RSS plus the per-phase / per-structure peaks
/// collected from `mem.*` gauges. Gauge keys are `mem.rss.<phase>` (RSS
/// sampled at a phase boundary) or `mem.<structure...>.<part>` where
/// `<part>` "total" is the whole structure; `<structure>` may itself carry
/// a phase prefix ("rr.suffix_index"). The high-water mark (`max`) is what
/// matters: structures are rebuilt per component, and the report wants the
/// peak instance.
void emit_memory(util::JsonWriter& w, const util::MetricsSnapshot& snapshot) {
  std::map<std::string, std::uint64_t> phases;
  std::map<std::string, std::uint64_t> totals;
  std::map<std::string, std::map<std::string, std::uint64_t>> parts;
  for (const auto& [name, g] : snapshot.gauges) {
    if (name.rfind("mem.rss.", 0) == 0) {
      phases[name.substr(8)] = g.max;
    } else if (name.rfind("mem.", 0) == 0) {
      const std::size_t dot = name.rfind('.');
      if (dot <= 4) continue;  // malformed key; skip rather than misfile
      const std::string structure = name.substr(4, dot - 4);
      const std::string part = name.substr(dot + 1);
      if (part == "total") {
        totals[structure] = g.max;
      } else {
        parts[structure][part] = g.max;
      }
    }
  }

  w.begin_object();
  w.key("rss_current_bytes").value(util::current_rss_bytes());
  w.key("rss_peak_bytes").value(util::peak_rss_bytes());
  w.key("phases").begin_object();
  for (const auto& [phase, bytes] : phases) w.key(phase).value(bytes);
  w.end_object();
  w.key("structures").begin_object();
  for (const auto& [structure, total] : totals) {
    w.key(structure).begin_object();
    w.key("peak_total_bytes").value(total);
    const auto it = parts.find(structure);
    if (it != parts.end()) {
      w.key("parts").begin_object();
      for (const auto& [part, bytes] : it->second) w.key(part).value(bytes);
      w.end_object();
    }
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

/// `rank_times` section: the simulated phases' per-rank virtual-time
/// decomposition (empty arrays for serial phases). busy + comm + idle ==
/// total per rank, which report-check asserts. Each entry names its
/// topology level ("master"/"worker" flat; "root"/"sub-master"/"worker"
/// hierarchical) so the analyzer can separate admit load from align load.
void emit_rank_times(util::JsonWriter& w, const PipelineResult& result,
                     const PipelineConfig& config) {
  w.begin_object();
  const auto emit_run = [&w](const char* key, const mpsim::RunResult& run,
                             int masters) {
    const mpsim::MwTopology topo{static_cast<int>(run.rank_times.size()),
                                 masters};
    w.key(key).begin_array();
    for (std::size_t r = 0; r < run.rank_times.size(); ++r) {
      const bool have = r < run.rank_breakdown.size();
      w.begin_object();
      w.key("rank").value(static_cast<std::uint64_t>(r));
      w.key("level").value(topo.level_of(static_cast<int>(r)));
      w.key("total").value(run.rank_times[r]);
      w.key("busy").value(have ? run.rank_breakdown[r].busy : 0.0);
      w.key("comm").value(have ? run.rank_breakdown[r].comm : 0.0);
      w.key("idle").value(have ? run.rank_breakdown[r].idle
                               : run.rank_times[r]);
      w.end_object();
    }
    w.end_array();
  };
  const int masters = std::max(1, config.pace.masters);
  emit_run("rr", result.rr.run, 1);  // RR is order-dependent: always flat
  emit_run("ccd", result.ccd.run, masters);
  emit_run("dsd", result.dsd_run, masters);
  w.end_object();
}

/// `hierarchy` section: the two-level master tree's shape and its
/// protocol/healing counters (all zero in flat runs, where the section
/// still appears so consumers need no presence checks).
void emit_hierarchy(util::JsonWriter& w, const PipelineConfig& config,
                    const util::MetricsSnapshot& snapshot) {
  const int masters = std::max(1, config.pace.masters);
  const auto both = [&](const char* key) {
    return snapshot.counter(std::string("pace.") + key) +
           snapshot.counter(std::string("dsd.") + key);
  };
  w.begin_object();
  w.key("masters").value(masters);
  w.key("hierarchical").value(masters >= 2);
  w.key("events_forwarded").value(both("events_forwarded"));
  w.key("events_applied").value(both("events_applied"));
  w.key("events_synced").value(both("events_synced"));
  w.key("submasters_failed").value(both("submasters_failed"));
  w.key("submasters_timed_out").value(both("submasters_timed_out"));
  w.key("workers_rehomed").value(both("workers_rehomed"));
  w.key("streams_rerouted").value(both("streams_rerouted"));
  w.key("streams_surrendered").value(both("streams_surrendered"));
  w.end_object();
}

// ---------------------------------------------------------------------------
// Validation helpers
// ---------------------------------------------------------------------------

bool fail(std::string* error, const std::string& what) {
  if (error) *error = what;
  return false;
}

bool check_identity(const util::JsonValue& obj, const std::string& where,
                    std::string* error) {
  const std::uint64_t candidates = obj.at("candidate_pairs").as_u64();
  const std::uint64_t attempted = obj.at("attempted").as_u64();
  const std::uint64_t skipped =
      obj.at("skipped_by_cluster_filter").as_u64();
  if (attempted + skipped != candidates) {
    return fail(error, where + ": attempted (" + std::to_string(attempted) +
                           ") + skipped_by_cluster_filter (" +
                           std::to_string(skipped) +
                           ") != candidate_pairs (" +
                           std::to_string(candidates) + ")");
  }
  const double ratio = obj.at("skip_ratio").as_number();
  if (ratio < 0.0 || ratio > 1.0) {
    return fail(error, where + ": skip_ratio out of [0, 1]");
  }
  return true;
}

}  // namespace

std::string render_report(const PipelineResult& result,
                          const PipelineConfig& config,
                          const ReportInfo& info) {
  const util::MetricsSnapshot snapshot = util::metrics().snapshot();
  const PhaseWork rr = work_of(result.rr.counters);
  const PhaseWork ccd = work_of(result.ccd.counters);
  const PhaseWork total{rr.promising + ccd.promising,
                        rr.duplicate + ccd.duplicate,
                        rr.filtered + ccd.filtered, rr.aligned + ccd.aligned};

  util::JsonWriter w;
  w.begin_object();
  w.key("schema").value("pclust-run-report");
  w.key("version").value(1);
  w.key("command").value(info.command);

  w.key("input").begin_object();
  w.key("path").value(info.input);
  w.key("sequences").value(static_cast<std::uint64_t>(
      result.input_sequences));
  w.end_object();

  w.key("config").begin_object();
  w.key("processors").value(config.processors);
  w.key("threads").value(config.threads);
  w.key("dsd_processors").value(config.dsd_processors);
  w.key("masters").value(std::max(1, config.pace.masters));
  w.key("psi").value(config.pace.psi);
  w.key("band").value(config.pace.band);
  w.key("rr_band").value(config.rr_band);
  w.key("min_component").value(config.min_component);
  w.key("checkpoint_dir").value(config.checkpoint_dir);
  w.key("resume").value(config.resume);
  w.key("simd").value(align::isa_name(align::current_isa()));
  const auto injects = [](const mpsim::FaultPlan* plan) {
    return plan != nullptr && !plan->empty();
  };
  w.key("faults_injected")
      .value(injects(config.fault_plan) || injects(config.rr_fault_plan) ||
             injects(config.ccd_fault_plan) || injects(config.dsd_fault_plan));
  w.end_object();

  w.key("phases").begin_array();
  emit_phase(w, "rr", result.rr_seconds, phase_source(result, "rr"), &rr);
  emit_phase(w, "ccd", result.ccd_seconds, phase_source(result, "ccd"),
             &ccd);
  emit_phase(w, "bgg+dsd", result.bgg_dsd_seconds,
             phase_source(result, "families"), nullptr);
  w.end_array();

  w.key("alignment").begin_object();
  w.key("promising_pairs").value(total.promising);
  w.key("duplicate_pairs").value(total.duplicate);
  w.key("candidate_pairs").value(total.candidates());
  w.key("attempted").value(total.aligned);
  w.key("skipped_by_cluster_filter").value(total.filtered);
  w.key("skip_ratio").value(total.skip_ratio());
  w.end_object();

  w.key("faults").begin_object();
  w.key("crashed_ranks");
  emit_crashed_ranks(w, result);
  const auto healing = [&](const char* key) {
    return snapshot.counter(std::string("pace.") + key) +
           snapshot.counter(std::string("dsd.") + key);
  };
  w.key("workers_failed").value(healing("workers_failed"));
  w.key("workers_timed_out").value(healing("workers_timed_out"));
  w.key("pairs_requeued").value(healing("pairs_requeued"));
  w.key("streams_adopted").value(healing("streams_adopted"));
  w.key("link_timeout_retries").value(healing("link_retries"));
  w.key("io_retries").value(snapshot.counter("io.retries"));
  w.key("checkpoints_quarantined")
      .value(snapshot.counter("checkpoint.quarantined"));
  w.key("checkpoint_rollbacks")
      .value(snapshot.counter("checkpoint.rollbacks"));
  w.key("events");
  emit_fault_events(w, result);
  w.end_object();

  w.key("resume").begin_object();
  w.key("requested").value(config.resume);
  w.key("phase_log").begin_array();
  for (const std::string& entry : result.phase_log) w.value(entry);
  w.end_array();
  w.end_object();

  w.key("table1").begin_object();
  w.key("input_sequences")
      .value(static_cast<std::uint64_t>(result.input_sequences));
  w.key("non_redundant_sequences")
      .value(static_cast<std::uint64_t>(result.non_redundant_sequences));
  w.key("components_min_size")
      .value(static_cast<std::uint64_t>(result.components_min_size));
  w.key("dense_subgraph_count")
      .value(static_cast<std::uint64_t>(result.dense_subgraph_count));
  w.key("sequences_in_subgraphs")
      .value(static_cast<std::uint64_t>(result.sequences_in_subgraphs));
  w.key("mean_degree").value(result.mean_degree);
  w.key("mean_density").value(result.mean_density);
  w.key("largest_subgraph")
      .value(static_cast<std::uint64_t>(result.largest_subgraph));
  w.end_object();

  w.key("timing").begin_object();
  w.key("rr_seconds").value(result.rr_seconds);
  w.key("ccd_seconds").value(result.ccd_seconds);
  w.key("bgg_dsd_seconds").value(result.bgg_dsd_seconds);
  w.key("dsd_simulated_seconds").value(result.dsd_simulated_seconds);
  w.end_object();

  // `telemetry` provenance: present only when a stream was active while
  // the report was rendered, so a report can say "this run also produced
  // telemetry at <path>" and how much of it.
  if (const util::telemetry::TelemetryStatus tele = util::telemetry::status();
      tele.enabled) {
    w.key("telemetry").begin_object();
    w.key("path").value(tele.path);
    w.key("interval").value(tele.interval);
    w.key("records").value(tele.records);
    w.key("samples").value(tele.samples);
    w.key("warnings").value(tele.warnings);
    w.key("stalls").value(tele.stalls);
    w.key("fatal").value(tele.fatal);
    w.end_object();
  }

  w.key("memory");
  emit_memory(w, snapshot);

  // `degradation`: what the memory governor gave up to stay inside
  // --mem-budget. Present only for budgeted runs; an empty events array
  // means the budget was never under pressure.
  if (util::governor().budgeted()) {
    w.key("degradation").begin_object();
    w.key("budget_bytes").value(util::governor().budget());
    w.key("high_water_bytes").value(util::governor().high_water());
    w.key("events").begin_array();
    for (const util::DegradationEvent& e : util::governor().degradation_log()) {
      w.begin_object();
      w.key("phase").value(e.phase);
      w.key("action").value(e.action);
      w.key("detail").value(e.detail);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }

  // `provenance`: the merge-provenance ledger's tallies (--provenance).
  // `complete` is the merge identity — every union-find merge that survived
  // into the final partition is covered by exactly one evidence edge —
  // and validate_report treats a false value as a validation failure.
  if (config.provenance) {
    const prov::LedgerCounts& c = result.provenance.counts;
    w.key("provenance").begin_object();
    if (!info.provenance_path.empty()) {
      w.key("path").value(info.provenance_path);
    }
    w.key("sequences").value(result.provenance.sequences);
    w.key("edges").begin_object()
        .key("rr").value(c.rr_edges)
        .key("ccd").value(c.ccd_edges)
        .key("dsd").value(c.dsd_edges)
        .key("total").value(c.total_edges())
        .end_object();
    w.key("rules").begin_object()
        .key("containment").value(c.rule_containment)
        .key("overlap").value(c.rule_overlap)
        .key("B_d").value(c.rule_bd)
        .key("B_m").value(c.rule_bm)
        .end_object();
    w.key("merges").begin_object()
        .key("rr").value(c.rr_merges)
        .key("ccd").value(c.ccd_merges)
        .key("dsd").value(c.dsd_merges)
        .end_object();
    w.key("complete").value(c.identity_holds());
    w.end_object();
  }

  w.key("hierarchy");
  emit_hierarchy(w, config, snapshot);

  w.key("rank_times");
  emit_rank_times(w, result, config);

  w.key("metrics");
  snapshot.to_json(w);
  w.end_object();
  return w.str();
}

void write_report(const std::filesystem::path& path,
                  const PipelineResult& result, const PipelineConfig& config,
                  const ReportInfo& info) {
  const std::string doc = render_report(result, config, info);
  // The operator asked for the report explicitly; losing it is fatal
  // (util::io::IoError, class "report") after the atomic-commit retries.
  util::io::io().commit_file(util::io::ArtifactClass::kReport, path,
                             doc + "\n");
}

bool validate_report(const util::JsonValue& report, std::string* error) {
  try {
    if (!report.is_object()) return fail(error, "report is not an object");
    if (report.at("schema").as_string() != "pclust-run-report") {
      return fail(error, "schema is not pclust-run-report");
    }
    if (report.at("version").as_u64() != 1) {
      return fail(error, "unsupported report version");
    }
    (void)report.at("command").as_string();
    (void)report.at("input").at("path").as_string();
    (void)report.at("config").at("processors").as_number();

    const util::JsonValue& phases = report.at("phases");
    if (!phases.is_array() || phases.array.empty()) {
      return fail(error, "phases must be a non-empty array");
    }
    for (const util::JsonValue& phase : phases.array) {
      const std::string& name = phase.at("name").as_string();
      if (phase.at("seconds").as_number() < 0.0) {
        return fail(error, "phase " + name + ": negative seconds");
      }
      const std::string& source = phase.at("source").as_string();
      if (source != "computed" && source != "resumed" &&
          source != "resumed-partial" && source != "resumed-backup") {
        return fail(error, "phase " + name + ": unknown source " + source);
      }
      if (phase.find("candidate_pairs") != nullptr &&
          !check_identity(phase, "phase " + name, error)) {
        return false;
      }
    }

    if (!check_identity(report.at("alignment"), "alignment", error)) {
      return false;
    }
    if (!report.at("faults").at("crashed_ranks").is_array()) {
      return fail(error, "faults.crashed_ranks must be an array");
    }
    if (const util::JsonValue* events = report.at("faults").find("events")) {
      if (!events->is_array()) {
        return fail(error, "faults.events must be an array");
      }
    }
    if (!report.at("resume").at("phase_log").is_array()) {
      return fail(error, "resume.phase_log must be an array");
    }
    (void)report.at("table1").at("input_sequences").as_u64();

    // `memory`: non-negative byte counts; a structure's parts, when
    // itemized, must cover its peak total (part maxima each dominate the
    // parts of the peak instance, so their sum can only over-count).
    const util::JsonValue& memory = report.at("memory");
    if (memory.at("rss_peak_bytes").as_number() < 0.0 ||
        memory.at("rss_current_bytes").as_number() < 0.0) {
      return fail(error, "memory: negative RSS");
    }
    if (!memory.at("phases").is_object()) {
      return fail(error, "memory.phases must be an object");
    }
    for (const auto& [phase, bytes] : memory.at("phases").object) {
      if (bytes.as_number() < 0.0) {
        return fail(error, "memory.phases." + phase + ": negative bytes");
      }
    }
    const util::JsonValue& structures = memory.at("structures");
    if (!structures.is_object()) {
      return fail(error, "memory.structures must be an object");
    }
    for (const auto& [name, st] : structures.object) {
      const double total = st.at("peak_total_bytes").as_number();
      if (total < 0.0) {
        return fail(error, "memory.structures." + name + ": negative total");
      }
      if (const util::JsonValue* pts = st.find("parts")) {
        if (!pts->is_object()) {
          return fail(error,
                      "memory.structures." + name + ".parts not an object");
        }
        double sum = 0.0;
        for (const auto& [part, bytes] : pts->object) {
          const double b = bytes.as_number();
          if (b < 0.0) {
            return fail(error, "memory.structures." + name + ".parts." +
                                   part + ": negative bytes");
          }
          sum += b;
        }
        if (sum + 0.5 < total) {
          return fail(error, "memory.structures." + name +
                                 ": parts sum below peak_total_bytes");
        }
      }
    }

    // `rank_times`: per-rank virtual-time decomposition. busy + comm +
    // idle must reproduce the rank's total (small relative epsilon for fp
    // accumulation order).
    const util::JsonValue& rank_times = report.at("rank_times");
    if (!rank_times.is_object()) {
      return fail(error, "rank_times must be an object");
    }
    for (const auto& [phase, ranks] : rank_times.object) {
      if (!ranks.is_array()) {
        return fail(error, "rank_times." + phase + " must be an array");
      }
      for (const util::JsonValue& entry : ranks.array) {
        const std::string where =
            "rank_times." + phase + "[rank " +
            std::to_string(entry.at("rank").as_u64()) + "]";
        if (const util::JsonValue* level = entry.find("level")) {
          const std::string& l = level->as_string();
          if (l != "master" && l != "root" && l != "sub-master" &&
              l != "worker") {
            return fail(error, where + ": unknown level " + l);
          }
        }
        const double total = entry.at("total").as_number();
        const double busy = entry.at("busy").as_number();
        const double comm = entry.at("comm").as_number();
        const double idle = entry.at("idle").as_number();
        if (total < 0.0 || busy < 0.0 || comm < 0.0 || idle < 0.0) {
          return fail(error, where + ": negative time");
        }
        const double eps = 1e-9 + 1e-6 * std::abs(total);
        if (std::abs(busy + comm + idle - total) > eps) {
          return fail(error,
                      where + ": busy + comm + idle != total virtual time");
        }
      }
    }

    // `hierarchy` (optional for pre-hierarchy reports): shape sanity and
    // non-negative protocol counters.
    if (const util::JsonValue* hierarchy = report.find("hierarchy")) {
      if (!hierarchy->is_object()) {
        return fail(error, "hierarchy must be an object");
      }
      const double masters = hierarchy->at("masters").as_number();
      if (masters < 1.0) {
        return fail(error, "hierarchy.masters must be >= 1");
      }
      for (const char* key :
           {"events_forwarded", "events_applied", "events_synced",
            "submasters_failed", "submasters_timed_out", "workers_rehomed",
            "streams_rerouted", "streams_surrendered"}) {
        if (const util::JsonValue* v = hierarchy->find(key)) {
          if (v->as_number() < 0.0) {
            return fail(error, std::string("hierarchy.") + key +
                                   ": negative count");
          }
        }
      }
    }

    // `telemetry` (optional — present when a stream was live): a readable
    // path string and non-negative stream counters.
    if (const util::JsonValue* tele = report.find("telemetry")) {
      if (!tele->is_object()) {
        return fail(error, "telemetry must be an object");
      }
      (void)tele->at("path").as_string();
      for (const char* key : {"records", "samples", "warnings", "stalls"}) {
        if (tele->at(key).as_number() < 0.0) {
          return fail(error, std::string("telemetry.") + key +
                                 ": negative count");
        }
      }
    }

    // `degradation` (optional — present for --mem-budget runs): a positive
    // budget and well-formed events. Each event must name one of the
    // governor's output-invariant levers and a real pipeline phase — an
    // unknown action in a report means either schema drift or a lever that
    // was never vetted for output invariance, both worth failing loudly.
    if (const util::JsonValue* degr = report.find("degradation")) {
      if (!degr->is_object()) {
        return fail(error, "degradation must be an object");
      }
      if (degr->at("budget_bytes").as_number() <= 0.0) {
        return fail(error, "degradation.budget_bytes must be positive");
      }
      if (degr->at("high_water_bytes").as_number() < 0.0) {
        return fail(error, "degradation.high_water_bytes: negative");
      }
      const util::JsonValue& events = degr->at("events");
      if (!events.is_array()) {
        return fail(error, "degradation.events must be an array");
      }
      for (const util::JsonValue& e : events.array) {
        const std::string& action = e.at("action").as_string();
        if (action != "shrink-grain" && action != "shrink-batch" &&
            action != "stream" && action != "spill") {
          return fail(error, "degradation.events: unknown action '" + action +
                                 "' (levers: shrink-grain, shrink-batch, "
                                 "stream, spill)");
        }
        const std::string& phase = e.at("phase").as_string();
        if (phase != "rr" && phase != "ccd" && phase != "bgg+dsd" &&
            phase != "dsd") {
          return fail(error, "degradation.events: unknown phase '" + phase +
                                 "' (expected rr, ccd, bgg+dsd, or dsd)");
        }
        (void)e.at("detail").as_string();
      }
    }

    // `provenance` (optional — present for --provenance runs): per-phase
    // edge/rule/merge tallies that must be internally consistent, and the
    // merge identity itself is ENFORCED: a ledger whose edges do not cover
    // the final partition's union-find merges one-for-one is evidence of a
    // capture bug, not a cosmetic mismatch.
    if (const util::JsonValue* prov_section = report.find("provenance")) {
      if (!prov_section->is_object()) {
        return fail(error, "provenance must be an object");
      }
      const util::JsonValue& edges = prov_section->at("edges");
      const util::JsonValue& rules = prov_section->at("rules");
      const util::JsonValue& merges = prov_section->at("merges");
      const std::uint64_t rr = edges.at("rr").as_u64();
      const std::uint64_t ccd = edges.at("ccd").as_u64();
      const std::uint64_t dsd = edges.at("dsd").as_u64();
      if (edges.at("total").as_u64() != rr + ccd + dsd) {
        return fail(error, "provenance.edges: total != rr + ccd + dsd");
      }
      const std::uint64_t rule_sum = rules.at("containment").as_u64() +
                                     rules.at("overlap").as_u64() +
                                     rules.at("B_d").as_u64() +
                                     rules.at("B_m").as_u64();
      if (rule_sum != rr + ccd + dsd) {
        return fail(error,
                    "provenance.rules: rule tallies do not sum to the edge "
                    "total");
      }
      const util::JsonValue& complete = prov_section->at("complete");
      if (complete.type != util::JsonValue::Type::kBool ||
          !complete.bool_value) {
        return fail(error,
                    "provenance.complete is not true: the evidence edges do "
                    "not cover the final partition's merges one-for-one");
      }
      if (rr != merges.at("rr").as_u64() || ccd != merges.at("ccd").as_u64() ||
          dsd != merges.at("dsd").as_u64()) {
        return fail(error,
                    "provenance: per-phase edge counts differ from the "
                    "expected union-find merge counts");
      }
    }

    const util::JsonValue& metrics = report.at("metrics");
    if (!metrics.at("counters").is_object() ||
        !metrics.at("gauges").is_object() ||
        !metrics.at("histograms").is_object()) {
      return fail(error, "metrics must hold counters/gauges/histograms");
    }
  } catch (const util::JsonError& e) {
    return fail(error, e.what());
  }
  if (error) error->clear();
  return true;
}

}  // namespace pclust::pipeline
