#include "pclust/pipeline/dsd.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "pclust/mpsim/masterworker.hpp"
#include "pclust/util/trace.hpp"

namespace pclust::pipeline {

namespace {

struct DsdTask {
  std::uint32_t graph = 0;
};

struct DsdVerdict {
  std::uint32_t graph = 0;
  std::vector<std::vector<seq::SeqId>> families;
  // Merge provenance: surviving Pass II merges (capture only) plus the
  // Shingle tallies behind the derivation-side merge identity. Carried on
  // the verdict so healing replays stay first-application-wins; the
  // simulated wire size (verdict_bytes) deliberately ignores them.
  std::vector<shingle::ShingleMerge> merges;
  std::uint64_t s1_nodes = 0;
  std::uint64_t raw_components = 0;
};

mpsim::MwOptions dsd_options(const pace::PaceParams& engine) {
  mpsim::MwOptions opt;
  opt.phase = "dsd";
  opt.metrics_prefix = "dsd";
  opt.masters = std::max(1, engine.masters);
  // One graph per chunk: components vary wildly in Shingle cost, so
  // demand-driven single-graph dispatch is the LPT analogue of the paper's
  // batched distribution.
  opt.batch_size = 1;
  opt.generation_batches = 1;
  opt.heartbeat_timeout = engine.heartbeat_timeout;
  opt.heartbeat_retries = engine.heartbeat_retries;
  opt.heartbeat_backoff = engine.heartbeat_backoff;
  opt.heartbeat_max_timeout = engine.heartbeat_max_timeout;
  opt.deadline_seconds = engine.phase_deadline;
  opt.task_bytes = 4;       // one graph id
  opt.verdict_bytes = 96;   // family descriptor estimate
  opt.event_bytes = 96;     // forwarded events carry the family lists
  return opt;
}

/// LPT over the WORKER ranks ([first_worker, p)) on the estimated Shingle
/// cost (~ edges x c1 hash-and-select operations); each worker's share is
/// its generation stream, kept in ascending graph order for determinism.
std::vector<std::vector<std::uint32_t>> assign_streams(
    const std::vector<bigraph::ComponentGraph>& graphs, int p,
    int first_worker) {
  std::vector<std::vector<std::uint32_t>> owned(static_cast<std::size_t>(p));
  std::vector<std::uint32_t> order(graphs.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t x, std::uint32_t y) {
              const auto ex = graphs[x].graph.edge_count();
              const auto ey = graphs[y].graph.edge_count();
              if (ex != ey) return ex > ey;
              return x < y;
            });
  std::vector<double> load(static_cast<std::size_t>(p), 0.0);
  for (const std::uint32_t g : order) {
    int target = first_worker;
    for (int w = first_worker + 1; w < p; ++w) {
      if (load[static_cast<std::size_t>(w)] <
          load[static_cast<std::size_t>(target)]) {
        target = w;
      }
    }
    owned[static_cast<std::size_t>(target)].push_back(g);
    load[static_cast<std::size_t>(target)] +=
        static_cast<double>(graphs[g].graph.edge_count());
  }
  for (auto& stream : owned) std::sort(stream.begin(), stream.end());
  return owned;
}

}  // namespace

DsdParallelResult run_dsd_parallel(
    const std::vector<bigraph::ComponentGraph>& graphs,
    const shingle::ShingleParams& params, int p,
    const mpsim::MachineModel& model, const pace::PaceParams& engine,
    exec::Pool* pool, const mpsim::FaultPlan* plan, bool capture_merges) {
  const mpsim::MwOptions opt = dsd_options(engine);
  const mpsim::MwTopology topo{p, opt.masters};
  if (p < 2) {
    throw std::invalid_argument("run_dsd_parallel: need >= 2 ranks");
  }
  if (topo.hierarchical() && p < topo.masters + 2) {
    throw std::invalid_argument(
        "run_dsd_parallel: p=" + std::to_string(p) +
        " is too small for masters=" + std::to_string(topo.masters) +
        "; need p >= masters + 2 so at least one worker exists");
  }
  // Reject unsurvivable plans up front (crashing rank 0, every sub-master,
  // or every worker) with the CLI's exit-code-2 error class.
  if (plan) plan->validate_protocol(p, topo.masters);

  const auto owned = assign_streams(graphs, p, topo.first_worker());

  DsdParallelResult out;
  out.families_per_graph.resize(graphs.size());
  out.merges_per_graph.resize(graphs.size());
  out.s1_nodes_per_graph.assign(graphs.size(), 0);
  out.raw_components_per_graph.assign(graphs.size(), 0);
  // Graph-keyed verdict slots on the authoritative rank (flat master or
  // hierarchical root): replays after healing (or duplicated deliveries)
  // re-fill a slot with the same deterministic value, so the first
  // application wins and ordering never matters.
  std::vector<char> seen(graphs.size(), 0);
  std::vector<char> applied(graphs.size(), 0);

  const auto worker_fn = [&](mpsim::Communicator& comm) {
    mpsim::MwWorker<DsdTask, DsdVerdict> worker;
    // Stream (re)generation virtually re-pays the bipartite-graph
    // construction of the origin's share — BGG is simulated work too,
    // so adopting a dead rank's components costs the adopter what the
    // dead rank had paid.
    worker.generate = [&](mpsim::Communicator& comm_, int origin) {
      std::vector<DsdTask> tasks;
      const auto& stream = owned[static_cast<std::size_t>(origin)];
      tasks.reserve(stream.size());
      for (const std::uint32_t g : stream) {
        comm_.charge_cells(graphs[g].alignment_cells);
        comm_.charge_pairs(graphs[g].candidate_pairs);
        tasks.push_back(DsdTask{g});
      }
      return tasks;
    };
    worker.evaluate = [&](mpsim::Communicator& comm_,
                          const std::vector<DsdTask>& tasks,
                          std::vector<DsdVerdict>& verdicts) {
      for (const DsdTask& t : tasks) {
        const std::uint32_t g = t.graph;
        const double t0 = comm_.clock().now();
        comm_.charge_hashes(graphs[g].graph.edge_count() * params.c1);
        DsdVerdict v;
        v.graph = g;
        shingle::DsdStats st;
        v.families = shingle::report_families(
            graphs[g], params, &st, pool,
            capture_merges ? &v.merges : nullptr);
        v.s1_nodes = st.first_level_shingles;
        v.raw_components = st.raw_components;
        comm_.count("components_processed");
        if (util::trace::enabled()) {
          util::trace::complete(
              util::trace::current_pid(), comm_.rank(),
              "shingle:component-" + std::to_string(g), "dsd", t0 * 1e6,
              (comm_.clock().now() - t0) * 1e6);
        }
        verdicts.push_back(std::move(v));
      }
    };
    mpsim::mw_worker_loop(comm, opt, worker);
  };

  out.run = mpsim::run_phase(
      opt.phase, p, model, plan,
      [&](mpsim::Communicator& comm) {
        if (comm.rank() == 0) {
          if (!topo.hierarchical()) {
            mpsim::MwMaster<DsdTask, DsdVerdict> master;
            master.admit = [&](const DsdTask& t) {
              if (seen[t.graph]) return mpsim::MwAdmit::kDuplicate;
              seen[t.graph] = 1;
              return mpsim::MwAdmit::kQueue;
            };
            master.apply = [&](const DsdVerdict& v) {
              if (applied[v.graph]) return;
              applied[v.graph] = 1;
              out.families_per_graph[v.graph] = v.families;
              out.merges_per_graph[v.graph] = v.merges;
              out.s1_nodes_per_graph[v.graph] = v.s1_nodes;
              out.raw_components_per_graph[v.graph] = v.raw_components;
            };
            mpsim::mw_master_loop(comm, opt, master);
            return;
          }
          mpsim::MwRoot<DsdVerdict> root;
          root.apply = [&](const DsdVerdict& v) {
            if (applied[v.graph]) return;  // event replay: first wins
            applied[v.graph] = 1;
            out.families_per_graph[v.graph] = v.families;
            out.merges_per_graph[v.graph] = v.merges;
            out.s1_nodes_per_graph[v.graph] = v.s1_nodes;
            out.raw_components_per_graph[v.graph] = v.raw_components;
          };
          mpsim::mw_root_loop(comm, opt, topo, root);
          return;
        }
        if (topo.is_submaster(comm.rank())) {
          // Shard replica: per-graph seen/resolved flags. Every first
          // verdict for a graph changes the replica and is forwarded to
          // the root; synced events from other shards mark graphs
          // resolved so post-reroute replays are filtered locally.
          std::vector<char> shard_seen(graphs.size(), 0);
          std::vector<char> shard_done(graphs.size(), 0);
          mpsim::MwShard<DsdTask, DsdVerdict> shard;
          shard.admit = [&shard_seen](const DsdTask& t) {
            if (shard_seen[t.graph]) return mpsim::MwAdmit::kDuplicate;
            shard_seen[t.graph] = 1;
            return mpsim::MwAdmit::kQueue;
          };
          shard.resolve = [&shard_done](const DsdVerdict& v) {
            if (shard_done[v.graph]) return false;
            shard_done[v.graph] = 1;
            return true;
          };
          shard.learn = [&shard_done](const DsdVerdict& v) {
            shard_done[v.graph] = 1;
          };
          mpsim::mw_submaster_loop(comm, opt, topo, shard);
          return;
        }
        worker_fn(comm);
      },
      [topo](int r) { return std::string(topo.level_of(r)); });
  return out;
}

}  // namespace pclust::pipeline
