#include "pclust/pipeline/perfdiff.hpp"

#include <cstdio>
#include <stdexcept>

namespace pclust::pipeline {

namespace {

enum class Direction { kHigherIsWorse, kLowerIsWorse };

struct DiffContext {
  const PerfDiffOptions& options;
  PerfDiffResult result;

  /// Compare one metric present in both documents. @p gated false means
  /// "report but never fail" (noise-dominated metrics).
  void compare(const std::string& metric, double base, double cand,
               Direction dir, bool gated = true) {
    PerfFinding f;
    f.metric = metric;
    f.baseline = base;
    f.candidate = cand;
    if (dir == Direction::kHigherIsWorse) {
      f.ratio = base > 0.0 ? cand / base : (cand > 0.0 ? 1e9 : 1.0);
    } else {
      f.ratio = cand > 0.0 ? base / cand : (base > 0.0 ? 1e9 : 1.0);
    }
    if (gated && f.ratio > 1.0 + options.tolerance) {
      f.regression = true;
      char buf[96];
      std::snprintf(buf, sizeof buf, "%.1f%% worse (tolerance %.0f%%)",
                    100.0 * (f.ratio - 1.0), 100.0 * options.tolerance);
      f.note = buf;
    }
    result.findings.push_back(std::move(f));
  }

  /// Absolute candidate-side gate: @p value must be >= @p floor.
  void require_at_least(const std::string& metric, double value,
                        double floor, const char* why) {
    PerfFinding f;
    f.metric = metric;
    f.baseline = floor;
    f.candidate = value;
    f.ratio = value > 0.0 ? floor / value : 1e9;
    if (value < floor) {
      f.regression = true;
      f.note = why;
    }
    result.findings.push_back(std::move(f));
  }
};

double num_or(const util::JsonValue& obj, const char* key, double fallback) {
  const util::JsonValue* v = obj.find(key);
  return v && v->is_number() ? v->as_number() : fallback;
}

const util::JsonValue* find_kernel(const util::JsonValue& doc,
                                   const std::string& name) {
  for (const util::JsonValue& k : doc.at("kernels").array) {
    const util::JsonValue* n = k.find("name");
    if (n && n->is_string() && n->as_string() == name) return &k;
  }
  return nullptr;
}

bool is_kernel_doc(const util::JsonValue& doc) {
  const util::JsonValue* kernels = doc.find("kernels");
  return kernels != nullptr && kernels->is_array();
}

bool is_run_report(const util::JsonValue& doc) {
  const util::JsonValue* schema = doc.find("schema");
  return schema != nullptr && schema->is_string() &&
         schema->as_string() == "pclust-run-report";
}

bool is_hierarchy_doc(const util::JsonValue& doc) {
  const util::JsonValue* schema = doc.find("schema");
  return schema != nullptr && schema->is_string() &&
         schema->as_string() == "pclust-hierarchy-bench";
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

void diff_kernels(const util::JsonValue& baseline,
                  const util::JsonValue& candidate, DiffContext& ctx) {
  for (const util::JsonValue& cand : candidate.at("kernels").array) {
    const std::string& name = cand.at("name").as_string();
    const std::string prefix = "kernel." + name + ".";

    // Absolute gates first: a score-only variant slower than the full
    // kernel is broken whatever the baseline recorded.
    if (ends_with(name, "_score_only")) {
      for (const char* key : {"speedup_vs_full", "speedup_vs_full_matrix",
                              "speedup_vs_banded_full"}) {
        if (const util::JsonValue* v = cand.find(key); v && v->is_number()) {
          ctx.require_at_least(
              prefix + key, v->as_number(), 1.0,
              "score-only fast path must beat the full-traceback kernel");
        }
      }
    }
    // Likewise a SIMD lane batch slower than feeding the scalar engine one
    // pair at a time: the batch path would then be pure overhead and the
    // dispatcher should have stayed scalar.
    if (name.rfind("batch_align_", 0) == 0 && !ends_with(name, "_scalar")) {
      if (const util::JsonValue* v = cand.find("speedup_vs_scalar_single");
          v && v->is_number()) {
        ctx.require_at_least(
            prefix + "speedup_vs_scalar_single", v->as_number(), 1.0,
            "batched SIMD lanes must beat the single-pair scalar engine");
      }
    }

    const util::JsonValue* base = find_kernel(baseline, name);
    if (!base) continue;  // new kernel: gates above still apply
    const bool gate_time =
        num_or(*base, "seconds",
               ctx.options.min_seconds) >= ctx.options.min_seconds;
    if (const util::JsonValue* v = cand.find("ns_per_cell");
        v && base->find("ns_per_cell")) {
      ctx.compare(prefix + "ns_per_cell", base->at("ns_per_cell").as_number(),
                  v->as_number(), Direction::kHigherIsWorse);
    }
    if (const util::JsonValue* v = cand.find("pairs_per_sec");
        v && base->find("pairs_per_sec")) {
      ctx.compare(prefix + "pairs_per_sec",
                  base->at("pairs_per_sec").as_number(), v->as_number(),
                  Direction::kLowerIsWorse);
    }
    if (const util::JsonValue* v = cand.find("seconds");
        v && base->find("seconds")) {
      ctx.compare(prefix + "seconds", base->at("seconds").as_number(),
                  v->as_number(), Direction::kHigherIsWorse, gate_time);
    }
  }
}

void diff_reports(const util::JsonValue& baseline,
                  const util::JsonValue& candidate, DiffContext& ctx) {
  // Phase wall times.
  for (const util::JsonValue& base_phase : baseline.at("phases").array) {
    const std::string& name = base_phase.at("name").as_string();
    const util::JsonValue* cand_phase = nullptr;
    for (const util::JsonValue& p : candidate.at("phases").array) {
      if (p.at("name").as_string() == name) {
        cand_phase = &p;
        break;
      }
    }
    if (!cand_phase) continue;
    const double base_s = base_phase.at("seconds").as_number();
    const double cand_s = cand_phase->at("seconds").as_number();
    // Sub-threshold phases are timer noise: report, never gate.
    ctx.compare("phase." + name + ".seconds", base_s, cand_s,
                Direction::kHigherIsWorse, base_s >= ctx.options.min_seconds);
  }

  // Alignment-work ratio: the cluster filter's effectiveness. Gate on the
  // fraction of candidate pairs actually aligned (1 - skip_ratio) growing,
  // which is the direction that destroys the paper's >99.9 % claim.
  const double base_work =
      1.0 - baseline.at("alignment").at("skip_ratio").as_number();
  const double cand_work =
      1.0 - candidate.at("alignment").at("skip_ratio").as_number();
  ctx.compare("alignment.attempted_work_ratio", base_work, cand_work,
              Direction::kHigherIsWorse);

  // Memory peaks (absent in pre-memory-section reports: skip silently).
  const util::JsonValue* base_mem = baseline.find("memory");
  const util::JsonValue* cand_mem = candidate.find("memory");
  if (base_mem && cand_mem) {
    const double base_rss = num_or(*base_mem, "rss_peak_bytes", 0.0);
    const double cand_rss = num_or(*cand_mem, "rss_peak_bytes", 0.0);
    if (base_rss > 0.0 && cand_rss > 0.0) {
      ctx.compare("memory.rss_peak_bytes", base_rss, cand_rss,
                  Direction::kHigherIsWorse);
    }
    const util::JsonValue* base_st = base_mem->find("structures");
    const util::JsonValue* cand_st = cand_mem->find("structures");
    if (base_st && cand_st && base_st->is_object() && cand_st->is_object()) {
      for (const auto& [name, st] : base_st->object) {
        const util::JsonValue* cand = cand_st->find(name);
        if (!cand) continue;
        ctx.compare("memory." + name + ".peak_total_bytes",
                    st.at("peak_total_bytes").as_number(),
                    cand->at("peak_total_bytes").as_number(),
                    Direction::kHigherIsWorse);
      }
    }
  }
}

const util::JsonValue* find_hierarchy_row(const util::JsonValue& doc, int p,
                                          int masters) {
  for (const util::JsonValue& row : doc.at("rows").array) {
    if (static_cast<int>(row.at("p").as_number()) == p &&
        static_cast<int>(row.at("masters").as_number()) == masters) {
      return &row;
    }
  }
  return nullptr;
}

void diff_hierarchy(const util::JsonValue& baseline,
                    const util::JsonValue& candidate, DiffContext& ctx) {
  // Hierarchy-bench rows carry VIRTUAL seconds — pure functions of workload
  // and machine model, bit-stable across hosts — so unlike wall-clock rows
  // every comparison here is meaningfully gated.
  for (const util::JsonValue& cand : candidate.at("rows").array) {
    const int p = static_cast<int>(cand.at("p").as_number());
    const int masters = static_cast<int>(cand.at("masters").as_number());
    char label[64];
    std::snprintf(label, sizeof label, "hierarchy.p%d.m%d.", p, masters);
    const std::string prefix = label;

    // Absolute gates: the master tree must never be slower than the flat
    // protocol it replaces, and a wide-enough tree must clear the
    // analyzer's master-saturation verdict (the whole point of the tier).
    if (masters > 1) {
      ctx.require_at_least(
          prefix + "speedup_vs_flat_floor",
          cand.at("speedup_vs_flat").as_number(), 1.0,
          "the sub-master tree must not run slower than the flat master");
    }
    if (masters >= 4) {
      ctx.require_at_least(
          prefix + "saturation_clear",
          cand.at("saturated").bool_value ? 0.0 : 1.0, 1.0,
          "masters >= 4 must clear the master-saturation verdict");
    }

    const util::JsonValue* base = find_hierarchy_row(baseline, p, masters);
    if (!base) continue;  // new configuration: absolute gates still apply
    ctx.compare(prefix + "ccd_virtual_seconds",
                base->at("ccd_virtual_seconds").as_number(),
                cand.at("ccd_virtual_seconds").as_number(),
                Direction::kHigherIsWorse);
    if (masters > 1) {
      ctx.compare(prefix + "speedup_vs_flat",
                  base->at("speedup_vs_flat").as_number(),
                  cand.at("speedup_vs_flat").as_number(),
                  Direction::kLowerIsWorse);
    }
  }
}

}  // namespace

PerfDiffResult perf_diff(const util::JsonValue& baseline,
                         const util::JsonValue& candidate,
                         const PerfDiffOptions& options) {
  DiffContext ctx{options, {}};
  if (is_run_report(baseline) && is_run_report(candidate)) {
    diff_reports(baseline, candidate, ctx);
  } else if (is_hierarchy_doc(baseline) && is_hierarchy_doc(candidate)) {
    diff_hierarchy(baseline, candidate, ctx);
  } else if (is_kernel_doc(baseline) && is_kernel_doc(candidate)) {
    diff_kernels(baseline, candidate, ctx);
  } else {
    throw std::invalid_argument(
        "perf-diff: baseline and candidate must both be run reports "
        "(pclust-run-report), both hierarchy benches "
        "(pclust-hierarchy-bench), or both kernel documents (kernels "
        "array)");
  }
  return ctx.result;
}

std::string render_perf_diff(const PerfDiffResult& result) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line, "%-44s %14s %14s %8s\n", "metric",
                "baseline", "candidate", "ratio");
  out += line;
  for (const PerfFinding& f : result.findings) {
    std::snprintf(line, sizeof line, "%-44s %14.6g %14.6g %7.2fx%s%s\n",
                  f.metric.c_str(), f.baseline, f.candidate, f.ratio,
                  f.regression ? "  REGRESSION: " : "",
                  f.regression ? f.note.c_str() : "");
    out += line;
  }
  std::size_t regressions = 0;
  for (const PerfFinding& f : result.findings) {
    if (f.regression) ++regressions;
  }
  out += result.has_regression()
             ? "perf-diff: " + std::to_string(regressions) + " of " +
                   std::to_string(result.findings.size()) +
                   " metrics regressed\n"
             : "perf-diff: " + std::to_string(result.findings.size()) +
                   " metrics within tolerance\n";
  return out;
}

}  // namespace pclust::pipeline
