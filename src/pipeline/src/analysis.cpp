#include "pclust/pipeline/analysis.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

namespace pclust::pipeline {

namespace {

std::string format_seconds(double s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", s);
  return buf;
}

std::string format_ratio(double r) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", r);
  return buf;
}

}  // namespace

double ReportAnalysis::max_imbalance() const {
  double worst = 0.0;
  for (const PhaseAnalysis& p : phases) {
    worst = std::max(worst, p.imbalance_factor);
  }
  return worst;
}

bool ReportAnalysis::any_master_saturated() const {
  return std::any_of(phases.begin(), phases.end(),
                     [](const PhaseAnalysis& p) { return p.master_saturated; });
}

PhaseAnalysis analyze_phase(const std::string& phase,
                            const std::vector<RankSample>& ranks,
                            const AnalysisOptions& options) {
  PhaseAnalysis out;
  out.phase = phase;
  out.ranks = static_cast<int>(ranks.size());
  if (ranks.empty()) return out;

  for (std::size_t r = 0; r < ranks.size(); ++r) {
    out.makespan = std::max(out.makespan, ranks[r].total);
    const double path = ranks[r].busy + ranks[r].comm;
    if (path > out.critical_path_seconds) {
      out.critical_path_seconds = path;
      out.critical_rank = static_cast<int>(r);
    }
  }

  // Rank classification. Reports carrying per-rank `level` labels
  // distinguish sub-masters from workers; unlabeled (older) reports fall
  // back to the flat convention — rank 0 is the master, everyone else a
  // worker (all ranks when p == 1).
  const bool labeled =
      std::any_of(ranks.begin(), ranks.end(),
                  [](const RankSample& s) { return !s.level.empty(); });
  const auto is_worker = [&](std::size_t r) {
    if (labeled) return ranks[r].level == "worker";
    return ranks.size() > 1 ? r >= 1 : true;
  };
  const auto is_submaster = [&](std::size_t r) {
    return labeled && ranks[r].level == "sub-master";
  };

  // Imbalance over worker ranks only: coordinators (master/root and
  // sub-masters) do a different job by design, so their profiles are kept
  // out of the worker aggregates.
  double busy_sum_workers = 0.0;
  double busy_max_workers = 0.0;
  double workers = 0.0;
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    if (!is_worker(r)) continue;
    workers += 1.0;
    busy_sum_workers += ranks[r].busy;
    busy_max_workers = std::max(busy_max_workers, ranks[r].busy);
  }
  const double busy_mean = workers > 0.0 ? busy_sum_workers / workers : 0.0;
  out.imbalance_factor = busy_mean > 0.0 ? busy_max_workers / busy_mean : 0.0;

  double submaster_busy_frac_sum = 0.0;
  for (std::size_t r = 0; r < ranks.size(); ++r) {
    if (!is_submaster(r)) continue;
    ++out.submasters;
    submaster_busy_frac_sum +=
        ranks[r].total > 0.0 ? ranks[r].busy / ranks[r].total : 0.0;
  }
  out.submaster_busy_fraction =
      out.submasters > 0
          ? submaster_busy_frac_sum / static_cast<double>(out.submasters)
          : 0.0;

  double busy_sum_all = 0.0;
  for (const RankSample& r : ranks) busy_sum_all += r.busy;
  out.parallel_efficiency =
      out.makespan > 0.0
          ? busy_sum_all /
                (static_cast<double>(ranks.size()) * out.makespan)
          : 0.0;

  std::vector<int> order(ranks.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&ranks](int a, int b) {
    const auto& ra = ranks[static_cast<std::size_t>(a)];
    const auto& rb = ranks[static_cast<std::size_t>(b)];
    if (ra.busy != rb.busy) return ra.busy > rb.busy;
    return a < b;
  });
  order.resize(std::min(order.size(), options.top_k));
  out.stragglers = std::move(order);

  out.master_busy_fraction =
      ranks[0].total > 0.0 ? ranks[0].busy / ranks[0].total : 0.0;
  if (ranks.size() > 1 && workers > 0.0) {
    double idle_frac_sum = 0.0;
    for (std::size_t r = 0; r < ranks.size(); ++r) {
      if (!is_worker(r)) continue;
      idle_frac_sum += ranks[r].total > 0.0 ? ranks[r].idle / ranks[r].total
                                            : 0.0;
    }
    out.worker_idle_fraction = idle_frac_sum / workers;
  }
  out.master_saturated =
      ranks.size() > 1 &&
      out.master_busy_fraction >= options.saturation_busy &&
      out.worker_idle_fraction >= options.saturation_idle;

  if (out.master_saturated) {
    out.verdict = "master-saturated: rank 0 is busy " +
                  format_ratio(100.0 * out.master_busy_fraction) +
                  "% of the phase while workers idle " +
                  format_ratio(100.0 * out.worker_idle_fraction) +
                  "% — the master serializes this phase; adding workers "
                  "will not help (the paper's CCD bottleneck)";
    if (out.submasters == 0) {
      out.verdict +=
          "; raise --masters to split admission across a sub-master tier";
    }
  } else if (out.imbalance_factor > 1.5) {
    out.verdict = "imbalanced: the busiest worker does " +
                  format_ratio(out.imbalance_factor) +
                  "x the mean work — revisit the task partition";
  } else {
    out.verdict = "balanced";
  }
  return out;
}

ReportAnalysis analyze_report(const util::JsonValue& report,
                              const AnalysisOptions& options) {
  ReportAnalysis out;
  const util::JsonValue& rank_times = report.at("rank_times");
  for (const auto& [phase, ranks] : rank_times.object) {
    if (!ranks.is_array() || ranks.array.empty()) continue;
    std::vector<RankSample> samples;
    samples.reserve(ranks.array.size());
    for (const util::JsonValue& entry : ranks.array) {
      RankSample s;
      s.total = entry.at("total").as_number();
      s.busy = entry.at("busy").as_number();
      s.comm = entry.at("comm").as_number();
      s.idle = entry.at("idle").as_number();
      if (const util::JsonValue* level = entry.find("level")) {
        s.level = level->as_string();
      }
      samples.push_back(s);
    }
    out.phases.push_back(analyze_phase(phase, samples, options));
  }

  // Size-distribution summaries from `metrics.histograms`. The section is
  // optional (reports from runs without metrics, or predating it).
  if (const util::JsonValue* metrics = report.find("metrics")) {
    if (const util::JsonValue* histograms = metrics->find("histograms")) {
      for (const auto& [name, h] : histograms->object) {
        if (!h.is_object()) continue;
        HistogramSummary s;
        s.name = name;
        const auto u64_of = [&h](const char* key) -> std::uint64_t {
          const util::JsonValue* v = h.find(key);
          return v && v->is_number() ? v->as_u64() : 0;
        };
        s.count = u64_of("count");
        if (s.count == 0) continue;
        if (const util::JsonValue* mean = h.find("mean")) {
          s.mean = mean->as_number();
        }
        s.p50 = u64_of("p50");
        s.p95 = u64_of("p95");
        s.p99 = u64_of("p99");
        s.max = u64_of("max");
        out.histograms.push_back(std::move(s));
      }
    }
  }
  return out;
}

namespace {

std::string render_histograms(const ReportAnalysis& analysis) {
  std::string out;
  if (analysis.histograms.empty()) return out;
  out += "size distributions (bucket-upper-bound percentiles)\n";
  for (const HistogramSummary& h : analysis.histograms) {
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "  %-28s n=%llu  mean=%.2f  p50=%llu  p95=%llu  p99=%llu"
                  "  max=%llu\n",
                  h.name.c_str(), static_cast<unsigned long long>(h.count),
                  h.mean, static_cast<unsigned long long>(h.p50),
                  static_cast<unsigned long long>(h.p95),
                  static_cast<unsigned long long>(h.p99),
                  static_cast<unsigned long long>(h.max));
    out += buf;
  }
  return out;
}

}  // namespace

std::string render_analysis(const ReportAnalysis& analysis) {
  std::string out;
  if (analysis.phases.empty()) {
    out = "no simulated phases in this report (serial run) — nothing to "
          "analyze\n";
    return out + render_histograms(analysis);
  }
  for (const PhaseAnalysis& p : analysis.phases) {
    out += "phase " + p.phase + " (" + std::to_string(p.ranks) + " ranks)\n";
    out += "  makespan:            " + format_seconds(p.makespan) + "s\n";
    out += "  critical path:       " + format_seconds(p.critical_path_seconds) +
           "s (rank " + std::to_string(p.critical_rank) + ")\n";
    out += "  imbalance factor:    " + format_ratio(p.imbalance_factor) +
           " (max/mean worker busy)\n";
    out += "  parallel efficiency: " + format_ratio(p.parallel_efficiency) +
           "\n";
    out += "  master busy / worker idle: " +
           format_ratio(p.master_busy_fraction) + " / " +
           format_ratio(p.worker_idle_fraction) + "\n";
    if (p.submasters > 0) {
      out += "  sub-masters:         " + std::to_string(p.submasters) +
             " (mean busy " + format_ratio(p.submaster_busy_fraction) +
             ")\n";
    }
    out += "  stragglers (by busy):";
    for (const int r : p.stragglers) out += " " + std::to_string(r);
    out += "\n";
    out += "  verdict:             " + p.verdict + "\n";
  }
  out += render_histograms(analysis);
  return out;
}

std::string render_analysis_json(const ReportAnalysis& analysis) {
  util::JsonWriter w;
  w.begin_object();
  w.key("schema").value("pclust-analysis");
  w.key("phases").begin_array();
  for (const PhaseAnalysis& p : analysis.phases) {
    w.begin_object();
    w.key("phase").value(p.phase);
    w.key("ranks").value(p.ranks);
    w.key("makespan").value(p.makespan);
    w.key("critical_path_seconds").value(p.critical_path_seconds);
    w.key("critical_rank").value(p.critical_rank);
    w.key("imbalance_factor").value(p.imbalance_factor);
    w.key("parallel_efficiency").value(p.parallel_efficiency);
    w.key("master_busy_fraction").value(p.master_busy_fraction);
    w.key("worker_idle_fraction").value(p.worker_idle_fraction);
    w.key("submasters").value(p.submasters);
    w.key("submaster_busy_fraction").value(p.submaster_busy_fraction);
    w.key("master_saturated").value(p.master_saturated);
    w.key("stragglers").begin_array();
    for (const int r : p.stragglers) w.value(r);
    w.end_array();
    w.key("verdict").value(p.verdict);
    w.end_object();
  }
  w.end_array();
  w.key("histograms").begin_array();
  for (const HistogramSummary& h : analysis.histograms) {
    w.begin_object();
    w.key("name").value(h.name);
    w.key("count").value(static_cast<double>(h.count));
    w.key("mean").value(h.mean);
    w.key("p50").value(static_cast<double>(h.p50));
    w.key("p95").value(static_cast<double>(h.p95));
    w.key("p99").value(static_cast<double>(h.p99));
    w.key("max").value(static_cast<double>(h.max));
    w.end_object();
  }
  w.end_array();
  w.key("max_imbalance").value(analysis.max_imbalance());
  w.key("any_master_saturated").value(analysis.any_master_saturated());
  w.end_object();
  return w.str();
}

}  // namespace pclust::pipeline
