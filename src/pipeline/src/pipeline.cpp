#include "pclust/pipeline/pipeline.hpp"

#include <algorithm>
#include <unordered_map>

#include "pclust/exec/pool.hpp"
#include "pclust/util/log.hpp"
#include "pclust/util/strings.hpp"
#include "pclust/util/timer.hpp"

namespace pclust::pipeline {

std::vector<std::vector<seq::SeqId>> PipelineResult::family_clustering()
    const {
  std::vector<std::vector<seq::SeqId>> out;
  out.reserve(families.size());
  for (const Family& f : families) out.push_back(f.members);
  return out;
}

PipelineResult run(const seq::SequenceSet& input,
                   const PipelineConfig& config) {
  PipelineResult result;
  result.input_sequences = input.size();
  const bool parallel = config.processors >= 2;

  // One pool for the whole run; every phase borrows it. threads == 1 never
  // spawns a thread and is the exact serial path.
  exec::Pool pool(config.threads);
  exec::Pool* pool_arg = pool.size() > 1 ? &pool : nullptr;
  if (pool.size() > 1) {
    PCLUST_INFO << "pipeline: execution pool with " << pool.size()
                << " threads";
  }

  // Optional SEG-style masking; all phases then see the masked residues.
  seq::SequenceSet masked;
  if (config.mask_low_complexity) {
    masked = seq::mask_low_complexity(input, config.complexity);
    PCLUST_INFO << "pipeline: masked "
                << seq::masked_fraction(input, config.complexity) * 100.0
                << "% of residues as low-complexity";
  }
  const seq::SequenceSet& set = config.mask_low_complexity ? masked : input;

  // ---- Phase 1: redundancy removal --------------------------------------
  {
    util::Timer timer;
    pace::PaceParams rr_params = config.pace;
    rr_params.band = config.rr_band;
    result.rr = parallel
                    ? pace::remove_redundant(set, config.processors,
                                             config.model, rr_params, pool_arg)
                    : pace::remove_redundant_serial(set, rr_params, pool_arg);
    result.rr_seconds =
        parallel ? result.rr.run.makespan : timer.elapsed_seconds();
  }
  const std::vector<seq::SeqId> survivors = result.rr.survivors();
  result.non_redundant_sequences = survivors.size();
  PCLUST_INFO << "pipeline: RR kept " << survivors.size() << " of "
              << set.size() << " (" << util::format_duration(result.rr_seconds)
              << ")";

  // ---- Phase 2: connected components -------------------------------------
  {
    util::Timer timer;
    result.ccd = parallel
                     ? pace::detect_components(set, survivors,
                                               config.processors, config.model,
                                               config.pace, pool_arg)
                     : pace::detect_components_serial(set, survivors,
                                                      config.pace, pool_arg);
    result.ccd_seconds =
        parallel ? result.ccd.run.makespan : timer.elapsed_seconds();
  }
  result.components_min_size =
      result.ccd.count_with_min_size(config.min_component);
  PCLUST_INFO << "pipeline: CCD found " << result.components_min_size
              << " components of size >= " << config.min_component << " ("
              << util::format_duration(result.ccd_seconds) << ")";

  // ---- Phase 3: bipartite graph generation --------------------------------
  util::Timer dsd_timer;
  std::vector<bigraph::ComponentGraph> graphs;
  for (const auto& component : result.ccd.components) {
    if (component.size() < config.min_component) continue;
    if (config.reduction == bigraph::Reduction::kDuplicate) {
      bigraph::BdParams bd;
      bd.pace = config.pace;
      graphs.push_back(bigraph::build_bd(set, component, bd));
    } else {
      graphs.push_back(bigraph::build_bm(set, component, config.bm));
    }
  }

  // ---- Phase 4: dense subgraph detection ----------------------------------
  struct RawFamily {
    std::size_t graph;
    std::vector<seq::SeqId> members;
  };
  std::vector<RawFamily> raw;

  if (config.dsd_processors >= 2 && !graphs.empty()) {
    // The paper's batched distribution: components are grouped into
    // roughly equal batches across cluster nodes (LPT on the estimated
    // shingle cost, ~ edges x c1 hash-and-select operations).
    const int p = config.dsd_processors;
    std::vector<int> owner(graphs.size(), 0);
    {
      std::vector<std::size_t> order(graphs.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
        return graphs[x].graph.edge_count() > graphs[y].graph.edge_count();
      });
      std::vector<double> load(static_cast<std::size_t>(p), 0.0);
      for (std::size_t g : order) {
        const auto rank = static_cast<std::size_t>(
            std::min_element(load.begin(), load.end()) - load.begin());
        owner[g] = static_cast<int>(rank);
        load[rank] += static_cast<double>(graphs[g].graph.edge_count());
      }
    }
    std::vector<std::vector<RawFamily>> per_rank(
        static_cast<std::size_t>(p));
    const auto run = mpsim::run(
        p, config.dsd_model, [&](mpsim::Communicator& comm) {
          auto& mine = per_rank[static_cast<std::size_t>(comm.rank())];
          for (std::size_t g = 0; g < graphs.size(); ++g) {
            if (owner[g] != comm.rank()) continue;
            comm.clock().advance(
                static_cast<double>(graphs[g].graph.edge_count()) *
                config.shingle.c1 * comm.model().hash_cost);
            for (auto& members : shingle::report_families(
                     graphs[g], config.shingle, nullptr, pool_arg)) {
              mine.push_back(RawFamily{g, std::move(members)});
            }
            comm.count("components_processed");
          }
        });
    result.dsd_simulated_seconds = run.makespan;
    for (auto& rank_families : per_rank) {
      for (auto& f : rank_families) raw.push_back(std::move(f));
    }
  } else {
    for (std::size_t g = 0; g < graphs.size(); ++g) {
      for (auto& members : shingle::report_families(graphs[g], config.shingle,
                                                    nullptr, pool_arg)) {
        raw.push_back(RawFamily{g, std::move(members)});
      }
    }
  }

  // Density report (duplicate reduction only: left index == right index).
  for (auto& entry : raw) {
    const bigraph::ComponentGraph& graph = graphs[entry.graph];
    Family family;
    family.members = std::move(entry.members);
    if (config.reduction == bigraph::Reduction::kDuplicate) {
      std::unordered_map<seq::SeqId, std::uint32_t> dense;
      dense.reserve(graph.members.size());
      for (std::uint32_t i = 0; i < graph.members.size(); ++i) {
        dense[graph.members[i]] = i;
      }
      std::vector<std::uint32_t> nodes;
      nodes.reserve(family.members.size());
      for (seq::SeqId id : family.members) nodes.push_back(dense.at(id));
      family.mean_degree = bigraph::mean_subgraph_degree(graph.graph, nodes);
      family.density = bigraph::subgraph_density(graph.graph, nodes);
    }
    result.families.push_back(std::move(family));
  }
  result.bgg_dsd_seconds = dsd_timer.elapsed_seconds();

  std::sort(result.families.begin(), result.families.end(),
            [](const Family& a, const Family& b) {
              if (a.members.size() != b.members.size()) {
                return a.members.size() > b.members.size();
              }
              return a.members.front() < b.members.front();
            });

  // ---- Table-I aggregates -------------------------------------------------
  result.dense_subgraph_count = result.families.size();
  double degree_weighted = 0.0;
  double density_sum = 0.0;
  for (const Family& f : result.families) {
    result.sequences_in_subgraphs += f.members.size();
    result.largest_subgraph =
        std::max(result.largest_subgraph, f.members.size());
    degree_weighted += f.mean_degree * static_cast<double>(f.members.size());
    density_sum += f.density;
  }
  if (result.sequences_in_subgraphs > 0) {
    result.mean_degree =
        degree_weighted / static_cast<double>(result.sequences_in_subgraphs);
  }
  if (!result.families.empty()) {
    result.mean_density =
        density_sum / static_cast<double>(result.families.size());
  }
  PCLUST_INFO << "pipeline: " << result.dense_subgraph_count
              << " dense subgraphs covering "
              << result.sequences_in_subgraphs << " sequences ("
              << util::format_duration(result.bgg_dsd_seconds) << ")";
  return result;
}

std::string table1_row(const PipelineResult& r) {
  return util::format(
      "%s | %s | %s | %s | %s | %.0f | %.0f%% | %s",
      util::with_commas(static_cast<long long>(r.input_sequences)).c_str(),
      util::with_commas(static_cast<long long>(r.non_redundant_sequences))
          .c_str(),
      util::with_commas(static_cast<long long>(r.components_min_size)).c_str(),
      util::with_commas(static_cast<long long>(r.dense_subgraph_count))
          .c_str(),
      util::with_commas(static_cast<long long>(r.sequences_in_subgraphs))
          .c_str(),
      r.mean_degree, r.mean_density * 100.0,
      util::with_commas(static_cast<long long>(r.largest_subgraph)).c_str());
}

}  // namespace pclust::pipeline
