#include "pclust/pipeline/pipeline.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <optional>
#include <unordered_map>

#include "pclust/exec/pool.hpp"
#include "pclust/mpsim/masterworker.hpp"
#include "pclust/pipeline/dsd.hpp"
#include "pclust/util/checkpoint.hpp"
#include "pclust/util/log.hpp"
#include "pclust/util/memgov.hpp"
#include "pclust/util/memsize.hpp"
#include "pclust/util/metrics.hpp"
#include "pclust/util/strings.hpp"
#include "pclust/util/telemetry.hpp"
#include "pclust/util/timer.hpp"
#include "pclust/util/trace.hpp"

namespace pclust::pipeline {

namespace {

// Checkpoint phase tags (util/checkpoint.hpp header field).
constexpr std::uint32_t kTagRr = 1;
constexpr std::uint32_t kTagCcdPartial = 2;
constexpr std::uint32_t kTagCcd = 3;
constexpr std::uint32_t kTagFamilies = 4;
// Payload V3 = fingerprint u64, phase duration f64 (seconds the phase cost
// when it was computed; running total for partial checkpoints), protocol
// master count u32 (provenance: how many masters the writing run used —
// informational only, results are bit-identical across master counts so it
// is deliberately NOT part of the fingerprint), then the phase data. V1
// lacked the duration, V2 the master count; older versions are treated as
// absent so the phase recomputes rather than resuming with unknown
// provenance.
constexpr std::uint32_t kPayloadV3 = 3;

/// Fingerprint of the input set plus every configuration field that can
/// change phase RESULTS (simulation/threading knobs are excluded — they
/// are output invariant by design). Stored in every checkpoint payload;
/// resume refuses a checkpoint whose fingerprint differs.
std::uint64_t fingerprint(const seq::SequenceSet& set,
                          const PipelineConfig& cfg) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over 64-bit words
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  const auto mix_f = [&](double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  };
  mix(set.size());
  for (seq::SeqId id = 0; id < set.size(); ++id) {
    const auto residues = set.residues(id);
    mix(residues.size());
    mix(util::crc32(residues.data(), residues.size()));
  }
  mix(cfg.pace.psi);
  mix(cfg.pace.bucket_prefix);
  mix(cfg.pace.max_node_occurrences);
  mix(cfg.pace.band);
  mix(cfg.rr_band);
  mix_f(cfg.pace.containment.min_similarity);
  mix_f(cfg.pace.containment.min_coverage);
  mix(cfg.pace.containment.semiglobal ? 1 : 0);
  mix_f(cfg.pace.overlap.min_similarity);
  mix_f(cfg.pace.overlap.min_long_coverage);
  mix(static_cast<std::uint64_t>(cfg.reduction));
  mix(cfg.bm.w);
  mix(cfg.bm.max_sequences_per_word);
  mix(cfg.shingle.s1);
  mix(cfg.shingle.c1);
  mix(cfg.shingle.s2);
  mix(cfg.shingle.c2);
  mix(cfg.shingle.seed);
  mix(cfg.shingle.min_size);
  mix_f(cfg.shingle.tau);
  mix(cfg.min_component);
  mix(cfg.mask_low_complexity ? 1 : 0);
  mix(cfg.complexity.window);
  mix_f(cfg.complexity.min_entropy);
  return h;
}

/// Per-run handle over the checkpoint directory; no-op when disabled.
class Checkpoints {
 public:
  Checkpoints(const PipelineConfig& cfg, std::uint64_t fp)
      : dir_(cfg.checkpoint_dir),
        resume_(cfg.resume),
        fp_(fp),
        masters_(static_cast<std::uint32_t>(std::max(1, cfg.pace.masters))) {
    if (!dir_.empty()) std::filesystem::create_directories(dir_);
  }

  [[nodiscard]] bool enabled() const { return !dir_.empty(); }
  [[nodiscard]] bool resuming() const { return enabled() && resume_; }
  [[nodiscard]] std::filesystem::path path(const char* name) const {
    return std::filesystem::path(dir_) / name;
  }

  /// Writes rotate the previous generation to "<name>.1" first, so a crash
  /// mid-write (or later corruption of the primary) still leaves a
  /// last-good file to roll back to.
  void write(const char* name, std::uint32_t tag,
             const util::CheckpointWriter& payload) const {
    if (enabled()) {
      write_checkpoint(path(name), tag, kPayloadV3, payload,
                       /*keep_previous=*/true);
    }
  }

  /// Open @p name for resume. Returns nullopt if resume is off or no usable
  /// generation exists — a damaged primary is quarantined to "<name>.bad"
  /// and the last-good backup tried in its place; only when both are gone
  /// does the phase recompute. Never throws for damaged files; throws
  /// CheckpointError on a fingerprint mismatch (an intact checkpoint from a
  /// different input/configuration — silently recomputing would mask
  /// operator error). On success @p seconds_out (if given) receives the
  /// stored phase duration and @p from_backup whether the backup
  /// generation was used.
  [[nodiscard]] std::optional<util::CheckpointReader> open(
      const char* name, std::uint32_t tag, double* seconds_out = nullptr,
      bool* from_backup = nullptr) {
    if (!resuming()) return std::nullopt;
    util::CheckpointRecovery rec =
        util::recover_checkpoint(path(name), tag, kPayloadV3);
    for (const std::string& event : rec.events) {
      PCLUST_WARN << "pipeline: " << name << ": " << event;
      recovery_log_.push_back(std::string(name) + ": " + event);
    }
    if (!rec.reader || rec.payload_version != kPayloadV3) return std::nullopt;
    if (rec.reader->u64() != fp_) {
      throw util::CheckpointError(
          "checkpoint fingerprint mismatch (input or configuration "
          "changed since the checkpoint was written): " +
          path(name).string());
    }
    const double seconds = rec.reader->f64();
    // Provenance: the master-tree width of the run that wrote this
    // checkpoint. Results are bit-identical across master counts, so a
    // mismatch with the current run is fine — surface it for operators.
    const std::uint32_t written_by = rec.reader->u32();
    if (written_by != masters_) {
      PCLUST_WARN << "pipeline: " << name << ": checkpoint written by a run "
                  << "with masters=" << written_by << " (this run uses "
                  << masters_ << "); results are bit-identical, resuming";
      recovery_log_.push_back(std::string(name) + ": provenance masters=" +
                              std::to_string(written_by));
    }
    if (seconds_out) *seconds_out = seconds;
    if (from_backup) *from_backup = rec.from_backup;
    return std::move(rec.reader);
  }

  [[nodiscard]] const std::vector<std::string>& recovery_log() const {
    return recovery_log_;
  }

  /// Payload prefix: fingerprint, the phase duration being recorded, and
  /// the writing run's protocol master count (provenance).
  [[nodiscard]] util::CheckpointWriter payload(double seconds) const {
    util::CheckpointWriter w;
    w.u64(fp_);
    w.f64(seconds);
    w.u32(masters_);
    return w;
  }

 private:
  std::string dir_;
  bool resume_;
  std::uint64_t fp_;
  std::uint32_t masters_ = 1;
  std::vector<std::string> recovery_log_;
};

/// Record the process RSS at a phase boundary as a `mem.rss.<phase>`
/// gauge; the run report's memory section reads the high-water marks. A
/// no-op (gauge stays 0) where /proc is unavailable.
void sample_phase_rss(const char* phase) {
  util::metrics()
      .gauge(std::string("mem.rss.") + phase)
      .set(util::current_rss_bytes());
}

/// Open a trace timeline for a simulated phase and label its rank lanes;
/// engine code then emits onto it via trace::current_pid(). No-op when
/// tracing is off. With masters >= 2 the lanes carry the hierarchy levels
/// (root / sub-master-N / worker-N) instead of the flat master/worker pair.
void trace_sim_phase(const char* name, int ranks, int masters = 1) {
  if (!util::trace::enabled()) return;
  const int pid = util::trace::begin_process(name);
  const mpsim::MwTopology topo{ranks, std::max(1, masters)};
  for (int r = 0; r < ranks; ++r) {
    std::string label{topo.level_of(r)};
    if (r != 0) label += "-" + std::to_string(r);
    util::trace::name_thread(pid, r, label);
  }
}

/// After a simulated phase: one virtual-time span per rank (its lifetime on
/// the simulated machine), then route later events back to the wall-clock
/// pipeline timeline.
void trace_sim_result(const mpsim::RunResult& run) {
  if (!util::trace::enabled()) return;
  const int pid = util::trace::current_pid();
  for (std::size_t r = 0; r < run.rank_times.size(); ++r) {
    const bool crashed =
        std::find(run.crashed_ranks.begin(), run.crashed_ranks.end(),
                  static_cast<int>(r)) != run.crashed_ranks.end();
    util::trace::complete(pid, static_cast<int>(r),
                          crashed ? "rank(crashed)" : "rank", "sim", 0.0,
                          run.rank_times[r] * 1e6);
  }
  util::trace::set_current_pid(0);
}

/// Table-I aggregates over result.families; the shared tail of the compute
/// and resume paths (families arrive sorted either way).
PipelineResult finalize(PipelineResult result) {
  result.dense_subgraph_count = result.families.size();
  double degree_weighted = 0.0;
  double density_sum = 0.0;
  static util::SizeHistogram& sizes =
      util::metrics().histogram("families.family_size");
  for (const Family& f : result.families) {
    sizes.add(f.members.size());
    result.sequences_in_subgraphs += f.members.size();
    result.largest_subgraph =
        std::max(result.largest_subgraph, f.members.size());
    degree_weighted += f.mean_degree * static_cast<double>(f.members.size());
    density_sum += f.density;
  }
  if (result.sequences_in_subgraphs > 0) {
    result.mean_degree =
        degree_weighted / static_cast<double>(result.sequences_in_subgraphs);
  }
  if (!result.families.empty()) {
    result.mean_density =
        density_sum / static_cast<double>(result.families.size());
  }
  PCLUST_INFO << "pipeline: " << result.dense_subgraph_count
              << " dense subgraphs covering "
              << result.sequences_in_subgraphs << " sequences ("
              << util::format_duration(result.bgg_dsd_seconds) << ")";
  return result;
}

}  // namespace

std::vector<std::vector<seq::SeqId>> PipelineResult::family_clustering()
    const {
  std::vector<std::vector<seq::SeqId>> out;
  out.reserve(families.size());
  for (const Family& f : families) out.push_back(f.members);
  return out;
}

PipelineResult run(const seq::SequenceSet& input,
                   const PipelineConfig& config) {
  PipelineResult result;
  result.input_sequences = input.size();
  const bool parallel = config.processors >= 2;

  // Install the memory budget (0 = unlimited) and reset the capacity
  // ledger; accounting runs either way so an unconstrained run's
  // high_water() can calibrate a later budgeted one.
  util::governor().configure(config.mem_budget_bytes);

  // One pool for the whole run; every phase borrows it. threads == 1 never
  // spawns a thread and is the exact serial path.
  exec::Pool pool(config.threads);
  exec::Pool* pool_arg = pool.size() > 1 ? &pool : nullptr;
  if (pool.size() > 1) {
    PCLUST_INFO << "pipeline: execution pool with " << pool.size()
                << " threads";
  }

  // Optional SEG-style masking; all phases then see the masked residues.
  seq::SequenceSet masked;
  if (config.mask_low_complexity) {
    masked = seq::mask_low_complexity(input, config.complexity);
    PCLUST_INFO << "pipeline: masked "
                << seq::masked_fraction(input, config.complexity) * 100.0
                << "% of residues as low-complexity";
  }
  const seq::SequenceSet& set = config.mask_low_complexity ? masked : input;

  Checkpoints ckpt(config, config.checkpoint_dir.empty()
                               ? 0
                               : fingerprint(set, config));
  const mpsim::FaultPlan* rr_plan =
      config.rr_fault_plan ? config.rr_fault_plan : config.fault_plan;
  const mpsim::FaultPlan* ccd_plan =
      config.ccd_fault_plan ? config.ccd_fault_plan : config.fault_plan;
  const auto log_phase = [&](const char* phase, const char* how) {
    if (!ckpt.enabled()) return;
    result.phase_log.push_back(std::string(phase) + ":" + how);
    PCLUST_INFO << "pipeline: phase " << phase << " " << how;
  };

  // ---- Phase 1: redundancy removal --------------------------------------
  util::governor().set_phase("rr");
  bool from_backup = false;
  if (auto reader =
          ckpt.open("rr.ckpt", kTagRr, &result.rr_seconds, &from_backup)) {
    result.rr.removed = reader->u8_vec();
    const std::vector<std::uint32_t> containers = reader->u32_vec();
    result.rr.container.assign(containers.begin(), containers.end());
    if (result.rr.removed.size() != set.size() ||
        result.rr.container.size() != set.size()) {
      throw util::CheckpointError(
          "rr.ckpt does not cover the current input set");
    }
    log_phase("rr", from_backup ? "resumed-backup" : "resumed");
  } else {
    const util::trace::WallSpan span("rr");
    if (parallel) trace_sim_phase("sim:rr", config.processors);
    // RR always runs flat (see below), so masters is 1 either way.
    util::telemetry::phase_begin("rr", parallel,
                                 parallel ? config.processors : 1, 1);
    util::Timer timer;
    pace::PaceParams rr_params = config.pace;
    rr_params.band = config.rr_band;
    rr_params.phase_label = "rr";
    // RR applies containment verdicts order-dependently (removed/container
    // bookkeeping is not confluent), so it always runs flat regardless of
    // the configured master count; only CCD and DSD go hierarchical.
    rr_params.masters = 1;
    result.rr = parallel
                    ? pace::remove_redundant(set, config.processors,
                                             config.model, rr_params, pool_arg,
                                             rr_plan)
                    : pace::remove_redundant_serial(set, rr_params, pool_arg);
    result.rr_seconds =
        parallel ? result.rr.run.makespan : timer.elapsed_seconds();
    util::telemetry::phase_end("rr", result.rr_seconds);
    if (parallel) trace_sim_result(result.rr.run);
    if (ckpt.enabled()) {
      util::CheckpointWriter payload = ckpt.payload(result.rr_seconds);
      payload.u8_vec(result.rr.removed);
      payload.u32_vec(std::vector<std::uint32_t>(result.rr.container.begin(),
                                                 result.rr.container.end()));
      ckpt.write("rr.ckpt", kTagRr, payload);
    }
    log_phase("rr", "computed");
  }
  sample_phase_rss("rr");
  // Past this point the rr checkpoint (if any) is flushed: a hopelessly
  // over-budget run exits structured and resumable here, not OOM-killed.
  util::governor().check_phase_boundary("rr", ckpt.enabled());
  util::telemetry::poll_deadline();
  const std::vector<seq::SeqId> survivors = result.rr.survivors();
  result.non_redundant_sequences = survivors.size();
  PCLUST_INFO << "pipeline: RR kept " << survivors.size() << " of "
              << set.size() << " (" << util::format_duration(result.rr_seconds)
              << ")";

  // ---- Phase 2: connected components -------------------------------------
  util::governor().set_phase("ccd");
  pace::PaceParams ccd_params = config.pace;
  ccd_params.phase_label = "ccd";
  if (auto reader =
          ckpt.open("ccd.ckpt", kTagCcd, &result.ccd_seconds, &from_backup)) {
    const std::uint64_t count = reader->u64();
    result.ccd.components.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::vector<std::uint32_t> members = reader->u32_vec();
      result.ccd.components.emplace_back(members.begin(), members.end());
    }
    log_phase("ccd", from_backup ? "resumed-backup" : "resumed");
  } else {
    const util::trace::WallSpan span("ccd");
    if (parallel) {
      trace_sim_phase("sim:ccd", config.processors,
                      std::max(1, ccd_params.masters));
    }
    util::telemetry::phase_begin("ccd", parallel,
                                 parallel ? config.processors : 1,
                                 parallel ? std::max(1, ccd_params.masters)
                                          : 1);
    util::Timer timer;
    // Mid-stream progress snapshots (serial path only: the pair stream
    // index is only a meaningful watermark there). `prior_seconds` carries
    // the time the interrupted run(s) already spent, so the recorded phase
    // duration spans every contributing run.
    pace::CcdProgress partial;
    bool have_partial = false;
    double prior_seconds = 0.0;
    if (!parallel) {
      if (auto part =
              ckpt.open("ccd_partial.ckpt", kTagCcdPartial, &prior_seconds)) {
        partial.parents = part->u32_vec();
        partial.next_pair = part->u64();
        have_partial = partial.parents.size() == survivors.size();
        if (!have_partial) prior_seconds = 0.0;
      }
    }
    const auto on_checkpoint = [&](const pace::CcdProgress& progress) {
      util::CheckpointWriter payload =
          ckpt.payload(prior_seconds + timer.elapsed_seconds());
      payload.u32_vec(progress.parents);
      payload.u64(progress.next_pair);
      ckpt.write("ccd_partial.ckpt", kTagCcdPartial, payload);
    };
    const std::uint64_t stride =
        ckpt.enabled() && !parallel ? config.ccd_checkpoint_stride : 0;
    result.ccd =
        parallel
            ? pace::detect_components(set, survivors, config.processors,
                                      config.model, ccd_params, pool_arg,
                                      ccd_plan)
            : pace::detect_components_serial(
                  set, survivors, ccd_params, pool_arg,
                  have_partial ? &partial : nullptr, stride,
                  stride > 0 ? on_checkpoint
                             : std::function<void(const pace::CcdProgress&)>());
    result.ccd_seconds = parallel ? result.ccd.run.makespan
                                  : prior_seconds + timer.elapsed_seconds();
    util::telemetry::phase_end("ccd", result.ccd_seconds);
    if (parallel) trace_sim_result(result.ccd.run);
    if (ckpt.enabled()) {
      util::CheckpointWriter payload = ckpt.payload(result.ccd_seconds);
      payload.u64(result.ccd.components.size());
      for (const auto& component : result.ccd.components) {
        payload.u32_vec(std::vector<std::uint32_t>(component.begin(),
                                                   component.end()));
      }
      ckpt.write("ccd.ckpt", kTagCcd, payload);
      std::error_code ec;
      std::filesystem::remove(ckpt.path("ccd_partial.ckpt"), ec);
      std::filesystem::remove(
          util::checkpoint_backup_path(ckpt.path("ccd_partial.ckpt")), ec);
    }
    log_phase("ccd", have_partial ? "resumed-partial" : "computed");
  }
  {
    static util::SizeHistogram& sizes =
        util::metrics().histogram("ccd.component_size");
    for (const auto& component : result.ccd.components) {
      sizes.add(component.size());
    }
  }
  sample_phase_rss("ccd");
  util::governor().check_phase_boundary("ccd", ckpt.enabled());
  util::telemetry::poll_deadline();
  result.components_min_size =
      result.ccd.count_with_min_size(config.min_component);
  PCLUST_INFO << "pipeline: CCD found " << result.components_min_size
              << " components of size >= " << config.min_component << " ("
              << util::format_duration(result.ccd_seconds) << ")";

  // ---- Phases 3 + 4: bipartite graphs + dense subgraphs -------------------
  if (auto reader = ckpt.open("families.ckpt", kTagFamilies,
                              &result.bgg_dsd_seconds, &from_backup)) {
    const std::uint64_t count = reader->u64();
    result.families.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      Family family;
      const std::vector<std::uint32_t> members = reader->u32_vec();
      family.members.assign(members.begin(), members.end());
      family.mean_degree = reader->f64();
      family.density = reader->f64();
      result.families.push_back(std::move(family));
    }
    log_phase("families", from_backup ? "resumed-backup" : "resumed");
    result.recovery_log = ckpt.recovery_log();
    return finalize(std::move(result));
  }

  // ---- Phase 3: bipartite graph generation --------------------------------
  const util::trace::WallSpan bgg_dsd_span("bgg+dsd");
  std::size_t qualifying = 0;
  for (const auto& component : result.ccd.components) {
    if (component.size() >= config.min_component) ++qualifying;
  }
  const bool dsd_parallel = config.dsd_processors >= 2 && qualifying > 0;
  int dsd_masters = 1;
  if (dsd_parallel) {
    // Mirrors the narrow-topology fallback below so the phase record names
    // the master count the protocol will actually run with.
    dsd_masters = std::max(1, config.pace.masters);
    if (dsd_masters > 1 && config.dsd_processors < dsd_masters + 2) {
      dsd_masters = 1;
    }
  }
  util::telemetry::phase_begin("bgg+dsd", dsd_parallel,
                               dsd_parallel ? config.dsd_processors : 1,
                               dsd_masters);
  util::Timer dsd_timer;
  util::governor().set_phase("bgg+dsd");

  const auto build_graph =
      [&](const std::vector<seq::SeqId>& component) -> bigraph::ComponentGraph {
    if (config.reduction == bigraph::Reduction::kDuplicate) {
      bigraph::BdParams bd;
      bd.pace = config.pace;
      return bigraph::build_bd(set, component, bd);
    }
    return bigraph::build_bm(set, component, config.bm);
  };
  const auto graph_bytes = [](const bigraph::ComponentGraph& g) {
    return g.graph.memory_usage().total() + util::vector_bytes(g.members) +
           util::vector_bytes(g.words);
  };
  // Density report (duplicate reduction only: left index == right index).
  // Folding a family needs only ITS component graph, which is what lets
  // the serial path below drop each graph as soon as it is processed.
  const auto fold_family = [&](const bigraph::ComponentGraph& graph,
                               std::vector<seq::SeqId> members) {
    Family family;
    family.members = std::move(members);
    if (config.reduction == bigraph::Reduction::kDuplicate) {
      std::unordered_map<seq::SeqId, std::uint32_t> dense;
      dense.reserve(graph.members.size());
      for (std::uint32_t i = 0; i < graph.members.size(); ++i) {
        dense[graph.members[i]] = i;
      }
      std::vector<std::uint32_t> nodes;
      nodes.reserve(family.members.size());
      for (seq::SeqId id : family.members) nodes.push_back(dense.at(id));
      family.mean_degree = bigraph::mean_subgraph_degree(graph.graph, nodes);
      family.density = bigraph::subgraph_density(graph.graph, nodes);
    }
    result.families.push_back(std::move(family));
  };

  // ---- Phase 4: dense subgraph detection ----------------------------------
  if (dsd_parallel) {
    // LPT distribution needs every graph's cost estimate up front, so the
    // protocol path always materializes; the memory charge still makes the
    // footprint visible to the governor and the budget-exceeded exit.
    std::vector<bigraph::ComponentGraph> graphs;
    util::MemoryCharge graphs_charge;
    for (const auto& component : result.ccd.components) {
      if (component.size() < config.min_component) continue;
      graphs.push_back(build_graph(component));
      graphs_charge.add("bgg.graphs", graph_bytes(graphs.back()));
    }
    // The paper's batched distribution (LPT on the estimated shingle cost,
    // ~ edges x c1 hash-and-select operations) on the resilient
    // master-worker protocol: a rank death mid-phase requeues its graphs
    // and replays its generation stream on a survivor, and the graph-keyed
    // verdict slots keep the family output bit-identical to the serial
    // path under any fault plan. See pipeline/dsd.hpp.
    // DSD may run on a different rank count than CCD; when it is too
    // narrow to host the configured master tree (needs >= masters + 2
    // ranks), fall back to the flat protocol for this stage only rather
    // than failing the whole run — results are bit-identical either way.
    pace::PaceParams dsd_engine = config.pace;
    if (dsd_engine.masters > 1 &&
        config.dsd_processors < dsd_engine.masters + 2) {
      PCLUST_WARN << "pipeline: dsd: " << config.dsd_processors
                  << " ranks cannot host masters=" << dsd_engine.masters
                  << " (need >= masters + 2); running the DSD stage flat";
      dsd_engine.masters = 1;
    }
    trace_sim_phase("sim:dsd", config.dsd_processors,
                    std::max(1, dsd_engine.masters));
    DsdParallelResult dsd = run_dsd_parallel(
        graphs, config.shingle, config.dsd_processors, config.dsd_model,
        dsd_engine, pool_arg, config.dsd_fault_plan);
    result.dsd_simulated_seconds = dsd.run.makespan;
    trace_sim_result(dsd.run);
    result.dsd_run = std::move(dsd.run);
    for (std::size_t g = 0; g < graphs.size(); ++g) {
      for (auto& members : dsd.families_per_graph[g]) {
        fold_family(graphs[g], std::move(members));
      }
    }
  } else {
    // Serial DSD: one progress unit per component graph, the same
    // granularity the protocol path reports via its verdict stream.
    // Graphs are built, processed, and folded strictly in component order,
    // so the family output is bit-identical whether every graph is
    // materialized first (fault-free default) or the governor switches to
    // streaming mid-build (each pending graph drained and dropped as soon
    // as pressure crosses the threshold).
    util::telemetry::progress_enqueued(qualifying);
    std::vector<bigraph::ComponentGraph> pending;
    util::MemoryCharge pending_charge;
    bool streaming = false;
    const auto drain = [&] {
      for (bigraph::ComponentGraph& graph : pending) {
        for (auto& members : shingle::report_families(graph, config.shingle,
                                                      nullptr, pool_arg)) {
          fold_family(graph, std::move(members));
        }
        util::telemetry::progress_done(1);
        util::telemetry::poll_deadline();
      }
      pending.clear();
      pending_charge.reset();
    };
    for (const auto& component : result.ccd.components) {
      if (component.size() < config.min_component) continue;
      pending.push_back(build_graph(component));
      pending_charge.add("bgg.graphs", graph_bytes(pending.back()));
      if (!streaming) streaming = util::governor().should_stream("bgg+dsd");
      if (streaming) drain();
    }
    drain();
  }
  result.bgg_dsd_seconds = dsd_timer.elapsed_seconds();
  util::telemetry::phase_end("bgg+dsd", result.bgg_dsd_seconds);
  sample_phase_rss("bgg+dsd");
  util::telemetry::poll_deadline();

  std::sort(result.families.begin(), result.families.end(),
            [](const Family& a, const Family& b) {
              if (a.members.size() != b.members.size()) {
                return a.members.size() > b.members.size();
              }
              return a.members.front() < b.members.front();
            });

  if (ckpt.enabled()) {
    util::CheckpointWriter payload = ckpt.payload(result.bgg_dsd_seconds);
    payload.u64(result.families.size());
    for (const Family& f : result.families) {
      payload.u32_vec(
          std::vector<std::uint32_t>(f.members.begin(), f.members.end()));
      payload.f64(f.mean_degree);
      payload.f64(f.density);
    }
    ckpt.write("families.ckpt", kTagFamilies, payload);
  }
  log_phase("families", "computed");
  result.recovery_log = ckpt.recovery_log();
  return finalize(std::move(result));
}

std::string table1_row(const PipelineResult& r) {
  return util::format(
      "%s | %s | %s | %s | %s | %.0f | %.0f%% | %s",
      util::with_commas(static_cast<long long>(r.input_sequences)).c_str(),
      util::with_commas(static_cast<long long>(r.non_redundant_sequences))
          .c_str(),
      util::with_commas(static_cast<long long>(r.components_min_size)).c_str(),
      util::with_commas(static_cast<long long>(r.dense_subgraph_count))
          .c_str(),
      util::with_commas(static_cast<long long>(r.sequences_in_subgraphs))
          .c_str(),
      r.mean_degree, r.mean_density * 100.0,
      util::with_commas(static_cast<long long>(r.largest_subgraph)).c_str());
}

}  // namespace pclust::pipeline
