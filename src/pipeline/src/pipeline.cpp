#include "pclust/pipeline/pipeline.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "pclust/exec/pool.hpp"
#include "pclust/mpsim/masterworker.hpp"
#include "pclust/pace/provenance.hpp"
#include "pclust/pipeline/dsd.hpp"
#include "pclust/util/checkpoint.hpp"
#include "pclust/util/io.hpp"
#include "pclust/util/json.hpp"
#include "pclust/util/log.hpp"
#include "pclust/util/memgov.hpp"
#include "pclust/util/memsize.hpp"
#include "pclust/util/metrics.hpp"
#include "pclust/util/strings.hpp"
#include "pclust/util/telemetry.hpp"
#include "pclust/util/timer.hpp"
#include "pclust/util/trace.hpp"

namespace pclust::pipeline {

namespace {

// Checkpoint phase tags (util/checkpoint.hpp header field).
constexpr std::uint32_t kTagRr = 1;
constexpr std::uint32_t kTagCcdPartial = 2;
constexpr std::uint32_t kTagCcd = 3;
constexpr std::uint32_t kTagFamilies = 4;
// Payload V3 = fingerprint u64, phase duration f64 (seconds the phase cost
// when it was computed; running total for partial checkpoints), protocol
// master count u32 (provenance: how many masters the writing run used —
// informational only, results are bit-identical across master counts so it
// is deliberately NOT part of the fingerprint), then the phase data. V1
// lacked the duration, V2 the master count; older versions are treated as
// absent so the phase recomputes rather than resuming with unknown
// provenance.
constexpr std::uint32_t kPayloadV3 = 3;

/// Fingerprint of the input set plus every configuration field that can
/// change phase RESULTS (simulation/threading knobs are excluded — they
/// are output invariant by design). Stored in every checkpoint payload;
/// resume refuses a checkpoint whose fingerprint differs.
std::uint64_t fingerprint(const seq::SequenceSet& set,
                          const PipelineConfig& cfg) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over 64-bit words
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  const auto mix_f = [&](double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  };
  mix(set.size());
  for (seq::SeqId id = 0; id < set.size(); ++id) {
    const auto residues = set.residues(id);
    mix(residues.size());
    mix(util::crc32(residues.data(), residues.size()));
  }
  mix(cfg.pace.psi);
  mix(cfg.pace.bucket_prefix);
  mix(cfg.pace.max_node_occurrences);
  mix(cfg.pace.band);
  mix(cfg.rr_band);
  mix_f(cfg.pace.containment.min_similarity);
  mix_f(cfg.pace.containment.min_coverage);
  mix(cfg.pace.containment.semiglobal ? 1 : 0);
  mix_f(cfg.pace.overlap.min_similarity);
  mix_f(cfg.pace.overlap.min_long_coverage);
  mix(static_cast<std::uint64_t>(cfg.reduction));
  mix(cfg.bm.w);
  mix(cfg.bm.max_sequences_per_word);
  mix(cfg.shingle.s1);
  mix(cfg.shingle.c1);
  mix(cfg.shingle.s2);
  mix(cfg.shingle.c2);
  mix(cfg.shingle.seed);
  mix(cfg.shingle.min_size);
  mix_f(cfg.shingle.tau);
  mix(cfg.min_component);
  mix(cfg.mask_low_complexity ? 1 : 0);
  mix(cfg.complexity.window);
  mix_f(cfg.complexity.min_entropy);
  return h;
}

/// Per-run handle over the checkpoint directory; no-op when disabled.
class Checkpoints {
 public:
  Checkpoints(const PipelineConfig& cfg, std::uint64_t fp)
      : dir_(cfg.checkpoint_dir),
        resume_(cfg.resume),
        fp_(fp),
        masters_(static_cast<std::uint32_t>(std::max(1, cfg.pace.masters))) {
    if (!dir_.empty()) std::filesystem::create_directories(dir_);
  }

  [[nodiscard]] bool enabled() const { return !dir_.empty(); }
  [[nodiscard]] bool resuming() const { return enabled() && resume_; }
  [[nodiscard]] std::filesystem::path path(const char* name) const {
    return std::filesystem::path(dir_) / name;
  }

  /// Writes rotate the previous generation to "<name>.1" first, so a crash
  /// mid-write (or later corruption of the primary) still leaves a
  /// last-good file to roll back to.
  void write(const char* name, std::uint32_t tag,
             const util::CheckpointWriter& payload) const {
    if (enabled()) {
      write_checkpoint(path(name), tag, kPayloadV3, payload,
                       /*keep_previous=*/true);
    }
  }

  /// Open @p name for resume. Returns nullopt if resume is off or no usable
  /// generation exists — a damaged primary is quarantined to "<name>.bad"
  /// and the last-good backup tried in its place; only when both are gone
  /// does the phase recompute. Never throws for damaged files; throws
  /// CheckpointError on a fingerprint mismatch (an intact checkpoint from a
  /// different input/configuration — silently recomputing would mask
  /// operator error). On success @p seconds_out (if given) receives the
  /// stored phase duration and @p from_backup whether the backup
  /// generation was used.
  [[nodiscard]] std::optional<util::CheckpointReader> open(
      const char* name, std::uint32_t tag, double* seconds_out = nullptr,
      bool* from_backup = nullptr) {
    if (!resuming()) return std::nullopt;
    util::CheckpointRecovery rec =
        util::recover_checkpoint(path(name), tag, kPayloadV3);
    for (const std::string& event : rec.events) {
      PCLUST_WARN << "pipeline: " << name << ": " << event;
      recovery_log_.push_back(std::string(name) + ": " + event);
    }
    if (!rec.reader || rec.payload_version != kPayloadV3) return std::nullopt;
    if (rec.reader->u64() != fp_) {
      throw util::CheckpointError(
          "checkpoint fingerprint mismatch (input or configuration "
          "changed since the checkpoint was written): " +
          path(name).string());
    }
    const double seconds = rec.reader->f64();
    // Provenance: the master-tree width of the run that wrote this
    // checkpoint. Results are bit-identical across master counts, so a
    // mismatch with the current run is fine — surface it for operators.
    const std::uint32_t written_by = rec.reader->u32();
    if (written_by != masters_) {
      PCLUST_WARN << "pipeline: " << name << ": checkpoint written by a run "
                  << "with masters=" << written_by << " (this run uses "
                  << masters_ << "); results are bit-identical, resuming";
      recovery_log_.push_back(std::string(name) + ": provenance masters=" +
                              std::to_string(written_by));
    }
    if (seconds_out) *seconds_out = seconds;
    if (from_backup) *from_backup = rec.from_backup;
    return std::move(rec.reader);
  }

  [[nodiscard]] const std::vector<std::string>& recovery_log() const {
    return recovery_log_;
  }

  /// Payload prefix: fingerprint, the phase duration being recorded, and
  /// the writing run's protocol master count (provenance).
  [[nodiscard]] util::CheckpointWriter payload(double seconds) const {
    util::CheckpointWriter w;
    w.u64(fp_);
    w.f64(seconds);
    w.u32(masters_);
    return w;
  }

 private:
  std::string dir_;
  bool resume_;
  std::uint64_t fp_;
  std::uint32_t masters_ = 1;
  std::vector<std::string> recovery_log_;
};

// ---- Merge-provenance sidecars ------------------------------------------
//
// With checkpointing enabled, every phase that contributed evidence edges
// also commits a `<phase>.prov.jsonl` sidecar next to its checkpoint:
//   line 1   {"schema":"pclust-provenance-sidecar","version":1,"phase":...,
//             "fingerprint":<hex>,"result":<hex>,"merges":N,"edges":M}
//   lines 2..M+1   prov::render_edge lines (the ledger's edge format)
// A sidecar is loaded ONLY when its phase was resumed from the matching
// checkpoint (same run fingerprint AND same phase-result hash) — a healed
// parallel RR can legitimately produce a different, equally valid removal
// set for the same fingerprint, and stale evidence must never splice onto
// it. Any mismatch or damage silently falls back to canonical re-derivation:
// sidecars are a resume optimization, never a source of truth.
constexpr std::string_view kSidecarSchema = "pclust-provenance-sidecar";
constexpr int kSidecarVersion = 1;

/// Hex rendering for the u64 hashes in sidecar meta lines (JSON numbers
/// are doubles — a full-range u64 would lose precision).
std::string hex_u64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

/// FNV-1a accumulator for phase-result hashes.
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  }
};

std::uint64_t rr_result_hash(const pace::RedundancyResult& rr) {
  Fnv f;
  f.mix(rr.removed.size());
  for (const std::uint8_t r : rr.removed) f.mix(r);
  for (const seq::SeqId c : rr.container) f.mix(c);
  return f.h;
}

std::uint64_t components_hash(
    const std::vector<std::vector<seq::SeqId>>& components) {
  Fnv f;
  f.mix(components.size());
  for (const auto& component : components) {
    f.mix(component.size());
    for (const seq::SeqId m : component) f.mix(m);
  }
  return f.h;
}

std::string render_sidecar(std::string_view phase, std::uint64_t fp,
                           std::uint64_t result_hash, std::uint64_t merges,
                           const std::vector<prov::Edge>& edges) {
  util::JsonWriter w;
  w.begin_object()
      .key("schema").value(kSidecarSchema)
      .key("version").value(kSidecarVersion)
      .key("phase").value(phase)
      .key("fingerprint").value(hex_u64(fp))
      .key("result").value(hex_u64(result_hash))
      .key("merges").value(merges)
      .key("edges").value(static_cast<std::uint64_t>(edges.size()))
      .end_object();
  std::string out = w.str();
  out += '\n';
  for (const prov::Edge& e : edges) {
    out += prov::render_edge(e);
    out += '\n';
  }
  return out;
}

/// Load a render_sidecar file. nullopt (never a throw) when the file is
/// missing, damaged, truncated, or bound to a different fingerprint or
/// phase result — the caller re-derives. On success @p merges_out (if
/// given) receives the stored expected-merge count.
std::optional<std::vector<prov::Edge>> load_sidecar(
    const std::filesystem::path& path, std::string_view phase,
    std::uint64_t fp, std::uint64_t result_hash,
    std::uint64_t* merges_out = nullptr) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  try {
    std::string line;
    if (!std::getline(in, line)) return std::nullopt;
    const util::JsonValue meta = util::parse_json(line);
    const util::JsonValue* schema = meta.find("schema");
    if (!schema || !schema->is_string() ||
        schema->as_string() != kSidecarSchema) {
      return std::nullopt;
    }
    if (static_cast<int>(meta.at("version").as_number()) != kSidecarVersion ||
        meta.at("phase").as_string() != phase ||
        meta.at("fingerprint").as_string() != hex_u64(fp) ||
        meta.at("result").as_string() != hex_u64(result_hash)) {
      return std::nullopt;
    }
    const std::uint64_t declared = meta.at("edges").as_u64();
    std::vector<prov::Edge> edges;
    edges.reserve(static_cast<std::size_t>(declared));
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      edges.push_back(prov::parse_edge(line));
    }
    if (edges.size() != declared) return std::nullopt;
    if (merges_out) *merges_out = meta.at("merges").as_u64();
    return edges;
  } catch (const std::exception& err) {
    PCLUST_WARN << "pipeline: damaged provenance sidecar " << path.string()
                << ": " << err.what() << " (re-deriving)";
    return std::nullopt;
  }
}

/// Commit a sidecar through the IoEnv. Failures warn and continue: the
/// requested audit artifact is the FINAL ledger (whose write is fatal,
/// see prov::write_ledger) — sidecars only make `--resume` cheaper.
void commit_sidecar(const std::filesystem::path& path,
                    const std::string& bytes) {
  try {
    util::io::io().commit_file(util::io::ArtifactClass::kProvenance, path,
                               bytes);
  } catch (const util::io::IoError& err) {
    PCLUST_WARN << "pipeline: provenance sidecar " << path.string()
                << " not written (" << err.what()
                << "); a resumed run will re-derive";
  }
}

/// Record the process RSS at a phase boundary as a `mem.rss.<phase>`
/// gauge; the run report's memory section reads the high-water marks. A
/// no-op (gauge stays 0) where /proc is unavailable.
void sample_phase_rss(const char* phase) {
  util::metrics()
      .gauge(std::string("mem.rss.") + phase)
      .set(util::current_rss_bytes());
}

/// Open a trace timeline for a simulated phase and label its rank lanes;
/// engine code then emits onto it via trace::current_pid(). No-op when
/// tracing is off. With masters >= 2 the lanes carry the hierarchy levels
/// (root / sub-master-N / worker-N) instead of the flat master/worker pair.
void trace_sim_phase(const char* name, int ranks, int masters = 1) {
  if (!util::trace::enabled()) return;
  const int pid = util::trace::begin_process(name);
  const mpsim::MwTopology topo{ranks, std::max(1, masters)};
  for (int r = 0; r < ranks; ++r) {
    std::string label{topo.level_of(r)};
    if (r != 0) label += "-" + std::to_string(r);
    util::trace::name_thread(pid, r, label);
  }
}

/// After a simulated phase: one virtual-time span per rank (its lifetime on
/// the simulated machine), then route later events back to the wall-clock
/// pipeline timeline.
void trace_sim_result(const mpsim::RunResult& run) {
  if (!util::trace::enabled()) return;
  const int pid = util::trace::current_pid();
  for (std::size_t r = 0; r < run.rank_times.size(); ++r) {
    const bool crashed =
        std::find(run.crashed_ranks.begin(), run.crashed_ranks.end(),
                  static_cast<int>(r)) != run.crashed_ranks.end();
    util::trace::complete(pid, static_cast<int>(r),
                          crashed ? "rank(crashed)" : "rank", "sim", 0.0,
                          run.rank_times[r] * 1e6);
  }
  util::trace::set_current_pid(0);
}

/// Table-I aggregates over result.families; the shared tail of the compute
/// and resume paths (families arrive sorted either way).
PipelineResult finalize(PipelineResult result) {
  result.dense_subgraph_count = result.families.size();
  double degree_weighted = 0.0;
  double density_sum = 0.0;
  static util::SizeHistogram& sizes =
      util::metrics().histogram("families.family_size");
  for (const Family& f : result.families) {
    sizes.add(f.members.size());
    result.sequences_in_subgraphs += f.members.size();
    result.largest_subgraph =
        std::max(result.largest_subgraph, f.members.size());
    degree_weighted += f.mean_degree * static_cast<double>(f.members.size());
    density_sum += f.density;
  }
  if (result.sequences_in_subgraphs > 0) {
    result.mean_degree =
        degree_weighted / static_cast<double>(result.sequences_in_subgraphs);
  }
  if (!result.families.empty()) {
    result.mean_density =
        density_sum / static_cast<double>(result.families.size());
  }
  PCLUST_INFO << "pipeline: " << result.dense_subgraph_count
              << " dense subgraphs covering "
              << result.sequences_in_subgraphs << " sequences ("
              << util::format_duration(result.bgg_dsd_seconds) << ")";
  return result;
}

}  // namespace

std::vector<std::vector<seq::SeqId>> PipelineResult::family_clustering()
    const {
  std::vector<std::vector<seq::SeqId>> out;
  out.reserve(families.size());
  for (const Family& f : families) out.push_back(f.members);
  return out;
}

PipelineResult run(const seq::SequenceSet& input,
                   const PipelineConfig& config) {
  PipelineResult result;
  result.input_sequences = input.size();
  const bool parallel = config.processors >= 2;

  // Install the memory budget (0 = unlimited) and reset the capacity
  // ledger; accounting runs either way so an unconstrained run's
  // high_water() can calibrate a later budgeted one.
  util::governor().configure(config.mem_budget_bytes);

  // One pool for the whole run; every phase borrows it. threads == 1 never
  // spawns a thread and is the exact serial path.
  exec::Pool pool(config.threads);
  exec::Pool* pool_arg = pool.size() > 1 ? &pool : nullptr;
  if (pool.size() > 1) {
    PCLUST_INFO << "pipeline: execution pool with " << pool.size()
                << " threads";
  }

  // Optional SEG-style masking; all phases then see the masked residues.
  seq::SequenceSet masked;
  if (config.mask_low_complexity) {
    masked = seq::mask_low_complexity(input, config.complexity);
    PCLUST_INFO << "pipeline: masked "
                << seq::masked_fraction(input, config.complexity) * 100.0
                << "% of residues as low-complexity";
  }
  const seq::SequenceSet& set = config.mask_low_complexity ? masked : input;

  const std::uint64_t fp =
      config.checkpoint_dir.empty() ? 0 : fingerprint(set, config);
  Checkpoints ckpt(config, fp);
  const mpsim::FaultPlan* rr_plan =
      config.rr_fault_plan ? config.rr_fault_plan : config.fault_plan;
  const mpsim::FaultPlan* ccd_plan =
      config.ccd_fault_plan ? config.ccd_fault_plan : config.fault_plan;
  const auto log_phase = [&](const char* phase, const char* how) {
    if (!ckpt.enabled()) return;
    result.phase_log.push_back(std::string(phase) + ":" + how);
    PCLUST_INFO << "pipeline: phase " << phase << " " << how;
  };

  // Merge-provenance capture state. Edges accumulate per phase and are
  // assembled into result.provenance at every function exit; the ledger is
  // a canonical derivation (see pace/provenance.hpp), so these vectors end
  // up bit-identical however each phase actually executed.
  const bool want_prov = config.provenance;
  std::vector<prov::Edge> rr_edges;
  std::vector<prov::Edge> ccd_edges;
  std::vector<prov::Edge> dsd_edges;
  std::uint64_t dsd_expected_merges = 0;
  const prov::Rule dsd_rule = config.reduction == bigraph::Reduction::kDuplicate
                                  ? prov::Rule::kBd
                                  : prov::Rule::kBm;
  const auto append_dsd_edges =
      [&](const std::vector<shingle::ShingleMerge>& merges) {
        for (const shingle::ShingleMerge& m : merges) {
          prov::Edge e;
          e.a = m.a;
          e.b = m.b;
          e.phase = prov::Phase::kDsd;
          e.rule = dsd_rule;
          e.score = static_cast<std::int32_t>(m.matches);
          e.matches = m.matches;
          e.columns = m.columns;
          dsd_edges.push_back(e);
        }
      };

  // ---- Phase 1: redundancy removal --------------------------------------
  util::governor().set_phase("rr");
  bool from_backup = false;
  bool rr_resumed = false;
  if (auto reader =
          ckpt.open("rr.ckpt", kTagRr, &result.rr_seconds, &from_backup)) {
    result.rr.removed = reader->u8_vec();
    const std::vector<std::uint32_t> containers = reader->u32_vec();
    result.rr.container.assign(containers.begin(), containers.end());
    if (result.rr.removed.size() != set.size() ||
        result.rr.container.size() != set.size()) {
      throw util::CheckpointError(
          "rr.ckpt does not cover the current input set");
    }
    log_phase("rr", from_backup ? "resumed-backup" : "resumed");
    rr_resumed = true;
  } else {
    const util::trace::WallSpan span("rr");
    if (parallel) trace_sim_phase("sim:rr", config.processors);
    // RR always runs flat (see below), so masters is 1 either way.
    util::telemetry::phase_begin("rr", parallel,
                                 parallel ? config.processors : 1, 1);
    util::Timer timer;
    pace::PaceParams rr_params = config.pace;
    rr_params.band = config.rr_band;
    rr_params.phase_label = "rr";
    // RR applies containment verdicts order-dependently (removed/container
    // bookkeeping is not confluent), so it always runs flat regardless of
    // the configured master count; only CCD and DSD go hierarchical.
    rr_params.masters = 1;
    result.rr = parallel
                    ? pace::remove_redundant(set, config.processors,
                                             config.model, rr_params, pool_arg,
                                             rr_plan)
                    : pace::remove_redundant_serial(set, rr_params, pool_arg);
    result.rr_seconds =
        parallel ? result.rr.run.makespan : timer.elapsed_seconds();
    util::telemetry::phase_end("rr", result.rr_seconds);
    if (parallel) trace_sim_result(result.rr.run);
    if (ckpt.enabled()) {
      util::CheckpointWriter payload = ckpt.payload(result.rr_seconds);
      payload.u8_vec(result.rr.removed);
      payload.u32_vec(std::vector<std::uint32_t>(result.rr.container.begin(),
                                                 result.rr.container.end()));
      ckpt.write("rr.ckpt", kTagRr, payload);
    }
    log_phase("rr", "computed");
  }
  if (want_prov) {
    // RR evidence: re-derived from the removal result (full-DP containment
    // stats, canonical ascending order — see pace/provenance.hpp). Resumed
    // phases splice the sidecar written by the run that computed them.
    const std::uint64_t rr_hash = rr_result_hash(result.rr);
    std::optional<std::vector<prov::Edge>> loaded;
    if (rr_resumed && ckpt.enabled()) {
      loaded = load_sidecar(ckpt.path("rr.prov.jsonl"), "rr", fp, rr_hash);
    }
    if (loaded) {
      rr_edges = std::move(*loaded);
    } else {
      rr_edges = pace::derive_rr_provenance(set, result.rr, config.pace);
      if (ckpt.enabled()) {
        commit_sidecar(ckpt.path("rr.prov.jsonl"),
                       render_sidecar("rr", fp, rr_hash,
                                      result.rr.removed_count(), rr_edges));
      }
    }
  }
  sample_phase_rss("rr");
  // Past this point the rr checkpoint (if any) is flushed: a hopelessly
  // over-budget run exits structured and resumable here, not OOM-killed.
  util::governor().check_phase_boundary("rr", ckpt.enabled());
  util::telemetry::poll_deadline();
  const std::vector<seq::SeqId> survivors = result.rr.survivors();
  result.non_redundant_sequences = survivors.size();
  PCLUST_INFO << "pipeline: RR kept " << survivors.size() << " of "
              << set.size() << " (" << util::format_duration(result.rr_seconds)
              << ")";

  // ---- Phase 2: connected components -------------------------------------
  util::governor().set_phase("ccd");
  pace::PaceParams ccd_params = config.pace;
  ccd_params.phase_label = "ccd";
  bool ccd_resumed = false;
  // True when the serial CCD path recorded its merges at decision time
  // (from-scratch runs only — a partial resume replays instead, because
  // the merges before the watermark happened in an earlier process).
  bool ccd_captured = false;
  if (auto reader =
          ckpt.open("ccd.ckpt", kTagCcd, &result.ccd_seconds, &from_backup)) {
    const std::uint64_t count = reader->u64();
    result.ccd.components.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::vector<std::uint32_t> members = reader->u32_vec();
      result.ccd.components.emplace_back(members.begin(), members.end());
    }
    log_phase("ccd", from_backup ? "resumed-backup" : "resumed");
    ccd_resumed = true;
  } else {
    const util::trace::WallSpan span("ccd");
    if (parallel) {
      trace_sim_phase("sim:ccd", config.processors,
                      std::max(1, ccd_params.masters));
    }
    util::telemetry::phase_begin("ccd", parallel,
                                 parallel ? config.processors : 1,
                                 parallel ? std::max(1, ccd_params.masters)
                                          : 1);
    util::Timer timer;
    // Mid-stream progress snapshots (serial path only: the pair stream
    // index is only a meaningful watermark there). `prior_seconds` carries
    // the time the interrupted run(s) already spent, so the recorded phase
    // duration spans every contributing run.
    pace::CcdProgress partial;
    bool have_partial = false;
    double prior_seconds = 0.0;
    if (!parallel) {
      if (auto part =
              ckpt.open("ccd_partial.ckpt", kTagCcdPartial, &prior_seconds)) {
        partial.parents = part->u32_vec();
        partial.next_pair = part->u64();
        have_partial = partial.parents.size() == survivors.size();
        if (!have_partial) prior_seconds = 0.0;
      }
    }
    const auto on_checkpoint = [&](const pace::CcdProgress& progress) {
      util::CheckpointWriter payload =
          ckpt.payload(prior_seconds + timer.elapsed_seconds());
      payload.u32_vec(progress.parents);
      payload.u64(progress.next_pair);
      ckpt.write("ccd_partial.ckpt", kTagCcdPartial, payload);
    };
    const std::uint64_t stride =
        ckpt.enabled() && !parallel ? config.ccd_checkpoint_stride : 0;
    // From-scratch serial CCD captures its evidence at the point of
    // decision for free (the recorder fires on every successful union-find
    // merge); the parallel and partially-resumed paths re-derive by
    // canonical replay below, provably yielding the same edges.
    ccd_captured = want_prov && !parallel && !have_partial;
    std::function<void(const pace::Verdict&)> on_merge;
    if (ccd_captured) {
      on_merge = [&](const pace::Verdict& v) {
        ccd_edges.push_back(pace::ccd_edge_from_verdict(v));
      };
    }
    result.ccd =
        parallel
            ? pace::detect_components(set, survivors, config.processors,
                                      config.model, ccd_params, pool_arg,
                                      ccd_plan)
            : pace::detect_components_serial(
                  set, survivors, ccd_params, pool_arg,
                  have_partial ? &partial : nullptr, stride,
                  stride > 0 ? on_checkpoint
                             : std::function<void(const pace::CcdProgress&)>(),
                  on_merge);
    result.ccd_seconds = parallel ? result.ccd.run.makespan
                                  : prior_seconds + timer.elapsed_seconds();
    util::telemetry::phase_end("ccd", result.ccd_seconds);
    if (parallel) trace_sim_result(result.ccd.run);
    if (ckpt.enabled()) {
      util::CheckpointWriter payload = ckpt.payload(result.ccd_seconds);
      payload.u64(result.ccd.components.size());
      for (const auto& component : result.ccd.components) {
        payload.u32_vec(std::vector<std::uint32_t>(component.begin(),
                                                   component.end()));
      }
      ckpt.write("ccd.ckpt", kTagCcd, payload);
      std::error_code ec;
      std::filesystem::remove(ckpt.path("ccd_partial.ckpt"), ec);
      std::filesystem::remove(
          util::checkpoint_backup_path(ckpt.path("ccd_partial.ckpt")), ec);
    }
    log_phase("ccd", have_partial ? "resumed-partial" : "computed");
  }
  if (want_prov) {
    const std::uint64_t ccd_hash = components_hash(result.ccd.components);
    std::optional<std::vector<prov::Edge>> loaded;
    if (ccd_resumed && ckpt.enabled()) {
      loaded = load_sidecar(ckpt.path("ccd.prov.jsonl"), "ccd", fp, ccd_hash);
    }
    if (loaded) {
      ccd_edges = std::move(*loaded);
    } else {
      if (!ccd_captured) {
        ccd_edges = pace::derive_ccd_provenance(
            set, survivors, ccd_params, result.ccd.components, pool_arg);
      }
      if (ckpt.enabled()) {
        commit_sidecar(
            ckpt.path("ccd.prov.jsonl"),
            render_sidecar("ccd", fp, ccd_hash,
                           survivors.size() - result.ccd.components.size(),
                           ccd_edges));
      }
    }
  }
  {
    static util::SizeHistogram& sizes =
        util::metrics().histogram("ccd.component_size");
    for (const auto& component : result.ccd.components) {
      sizes.add(component.size());
    }
  }
  sample_phase_rss("ccd");
  util::governor().check_phase_boundary("ccd", ckpt.enabled());
  util::telemetry::poll_deadline();
  result.components_min_size =
      result.ccd.count_with_min_size(config.min_component);
  PCLUST_INFO << "pipeline: CCD found " << result.components_min_size
              << " components of size >= " << config.min_component << " ("
              << util::format_duration(result.ccd_seconds) << ")";

  const auto build_graph =
      [&](const std::vector<seq::SeqId>& component) -> bigraph::ComponentGraph {
    if (config.reduction == bigraph::Reduction::kDuplicate) {
      bigraph::BdParams bd;
      bd.pace = config.pace;
      return bigraph::build_bd(set, component, bd);
    }
    return bigraph::build_bm(set, component, config.bm);
  };

  // Assemble the final ledger (phase order rr, ccd, dsd; counts from the
  // phase results, NOT from the edge lists — that is what makes the
  // summary's `complete` flag a real coverage check).
  const auto assemble_provenance = [&] {
    if (!want_prov) return;
    prov::Ledger& ledger = result.provenance;
    ledger.sequences = set.size();
    ledger.edges.reserve(rr_edges.size() + ccd_edges.size() +
                         dsd_edges.size());
    ledger.edges.insert(ledger.edges.end(), rr_edges.begin(), rr_edges.end());
    ledger.edges.insert(ledger.edges.end(), ccd_edges.begin(),
                        ccd_edges.end());
    ledger.edges.insert(ledger.edges.end(), dsd_edges.begin(),
                        dsd_edges.end());
    ledger.recount();
    ledger.counts.rr_merges = result.rr.removed_count();
    ledger.counts.ccd_merges =
        survivors.size() - result.ccd.components.size();
    ledger.counts.dsd_merges = dsd_expected_merges;
    if (!ledger.counts.identity_holds()) {
      PCLUST_WARN << "pipeline: provenance merge identity violated (edges "
                  << ledger.counts.total_edges() << ", expected merges "
                  << (ledger.counts.rr_merges + ledger.counts.ccd_merges +
                      ledger.counts.dsd_merges)
                  << ") — the ledger's summary records complete=false";
    }
  };

  // ---- Phases 3 + 4: bipartite graphs + dense subgraphs -------------------
  if (auto reader = ckpt.open("families.ckpt", kTagFamilies,
                              &result.bgg_dsd_seconds, &from_backup)) {
    const std::uint64_t count = reader->u64();
    result.families.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      Family family;
      const std::vector<std::uint32_t> members = reader->u32_vec();
      family.members.assign(members.begin(), members.end());
      family.mean_degree = reader->f64();
      family.density = reader->f64();
      result.families.push_back(std::move(family));
    }
    log_phase("families", from_backup ? "resumed-backup" : "resumed");
    if (want_prov) {
      // The DSD phase itself is skipped, so its evidence comes from the
      // sidecar (bound to the CCD partition it was derived from) or, when
      // that is missing, from re-running Shingle capture per qualifying
      // component — families are already final, so the re-run's family
      // output is discarded and only the merge evidence kept.
      const std::uint64_t ccd_hash = components_hash(result.ccd.components);
      std::optional<std::vector<prov::Edge>> loaded;
      if (ckpt.enabled()) {
        loaded = load_sidecar(ckpt.path("dsd.prov.jsonl"), "dsd", fp,
                              ccd_hash, &dsd_expected_merges);
      }
      if (loaded) {
        dsd_edges = std::move(*loaded);
      } else {
        std::uint64_t s1 = 0;
        std::uint64_t raw = 0;
        for (const auto& component : result.ccd.components) {
          if (component.size() < config.min_component) continue;
          const bigraph::ComponentGraph graph = build_graph(component);
          shingle::DsdStats stats;
          std::vector<shingle::ShingleMerge> merges;
          (void)shingle::report_families(graph, config.shingle, &stats,
                                         pool_arg, &merges);
          s1 += stats.first_level_shingles;
          raw += stats.raw_components;
          append_dsd_edges(merges);
        }
        dsd_expected_merges = s1 - raw;
        if (ckpt.enabled()) {
          commit_sidecar(ckpt.path("dsd.prov.jsonl"),
                         render_sidecar("dsd", fp, ccd_hash,
                                        dsd_expected_merges, dsd_edges));
        }
      }
      assemble_provenance();
    }
    result.recovery_log = ckpt.recovery_log();
    return finalize(std::move(result));
  }

  // ---- Phase 3: bipartite graph generation --------------------------------
  const util::trace::WallSpan bgg_dsd_span("bgg+dsd");
  std::size_t qualifying = 0;
  for (const auto& component : result.ccd.components) {
    if (component.size() >= config.min_component) ++qualifying;
  }
  const bool dsd_parallel = config.dsd_processors >= 2 && qualifying > 0;
  int dsd_masters = 1;
  if (dsd_parallel) {
    // Mirrors the narrow-topology fallback below so the phase record names
    // the master count the protocol will actually run with.
    dsd_masters = std::max(1, config.pace.masters);
    if (dsd_masters > 1 && config.dsd_processors < dsd_masters + 2) {
      dsd_masters = 1;
    }
  }
  util::telemetry::phase_begin("bgg+dsd", dsd_parallel,
                               dsd_parallel ? config.dsd_processors : 1,
                               dsd_masters);
  util::Timer dsd_timer;
  util::governor().set_phase("bgg+dsd");

  const auto graph_bytes = [](const bigraph::ComponentGraph& g) {
    return g.graph.memory_usage().total() + util::vector_bytes(g.members) +
           util::vector_bytes(g.words);
  };
  // Density report (duplicate reduction only: left index == right index).
  // Folding a family needs only ITS component graph, which is what lets
  // the serial path below drop each graph as soon as it is processed.
  const auto fold_family = [&](const bigraph::ComponentGraph& graph,
                               std::vector<seq::SeqId> members) {
    Family family;
    family.members = std::move(members);
    if (config.reduction == bigraph::Reduction::kDuplicate) {
      std::unordered_map<seq::SeqId, std::uint32_t> dense;
      dense.reserve(graph.members.size());
      for (std::uint32_t i = 0; i < graph.members.size(); ++i) {
        dense[graph.members[i]] = i;
      }
      std::vector<std::uint32_t> nodes;
      nodes.reserve(family.members.size());
      for (seq::SeqId id : family.members) nodes.push_back(dense.at(id));
      family.mean_degree = bigraph::mean_subgraph_degree(graph.graph, nodes);
      family.density = bigraph::subgraph_density(graph.graph, nodes);
    }
    result.families.push_back(std::move(family));
  };

  // ---- Phase 4: dense subgraph detection ----------------------------------
  std::uint64_t dsd_s1 = 0;
  std::uint64_t dsd_raw = 0;
  if (dsd_parallel) {
    // LPT distribution needs every graph's cost estimate up front, so the
    // protocol path always materializes; the memory charge still makes the
    // footprint visible to the governor and the budget-exceeded exit.
    std::vector<bigraph::ComponentGraph> graphs;
    util::MemoryCharge graphs_charge;
    for (const auto& component : result.ccd.components) {
      if (component.size() < config.min_component) continue;
      graphs.push_back(build_graph(component));
      graphs_charge.add("bgg.graphs", graph_bytes(graphs.back()));
    }
    // The paper's batched distribution (LPT on the estimated shingle cost,
    // ~ edges x c1 hash-and-select operations) on the resilient
    // master-worker protocol: a rank death mid-phase requeues its graphs
    // and replays its generation stream on a survivor, and the graph-keyed
    // verdict slots keep the family output bit-identical to the serial
    // path under any fault plan. See pipeline/dsd.hpp.
    // DSD may run on a different rank count than CCD; when it is too
    // narrow to host the configured master tree (needs >= masters + 2
    // ranks), fall back to the flat protocol for this stage only rather
    // than failing the whole run — results are bit-identical either way.
    pace::PaceParams dsd_engine = config.pace;
    if (dsd_engine.masters > 1 &&
        config.dsd_processors < dsd_engine.masters + 2) {
      PCLUST_WARN << "pipeline: dsd: " << config.dsd_processors
                  << " ranks cannot host masters=" << dsd_engine.masters
                  << " (need >= masters + 2); running the DSD stage flat";
      dsd_engine.masters = 1;
    }
    trace_sim_phase("sim:dsd", config.dsd_processors,
                    std::max(1, dsd_engine.masters));
    DsdParallelResult dsd = run_dsd_parallel(
        graphs, config.shingle, config.dsd_processors, config.dsd_model,
        dsd_engine, pool_arg, config.dsd_fault_plan, want_prov);
    result.dsd_simulated_seconds = dsd.run.makespan;
    trace_sim_result(dsd.run);
    result.dsd_run = std::move(dsd.run);
    for (std::size_t g = 0; g < graphs.size(); ++g) {
      for (auto& members : dsd.families_per_graph[g]) {
        fold_family(graphs[g], std::move(members));
      }
    }
    if (want_prov) {
      // Graph order == component order, so the concatenated evidence is
      // bit-identical to the serial drain's regardless of which rank
      // evaluated which graph.
      for (std::size_t g = 0; g < graphs.size(); ++g) {
        dsd_s1 += dsd.s1_nodes_per_graph[g];
        dsd_raw += dsd.raw_components_per_graph[g];
        append_dsd_edges(dsd.merges_per_graph[g]);
      }
    }
  } else {
    // Serial DSD: one progress unit per component graph, the same
    // granularity the protocol path reports via its verdict stream.
    // Graphs are built, processed, and folded strictly in component order,
    // so the family output is bit-identical whether every graph is
    // materialized first (fault-free default) or the governor switches to
    // streaming mid-build (each pending graph drained and dropped as soon
    // as pressure crosses the threshold).
    util::telemetry::progress_enqueued(qualifying);
    std::vector<bigraph::ComponentGraph> pending;
    util::MemoryCharge pending_charge;
    bool streaming = false;
    const auto drain = [&] {
      for (bigraph::ComponentGraph& graph : pending) {
        shingle::DsdStats stats;
        std::vector<shingle::ShingleMerge> merges;
        for (auto& members : shingle::report_families(
                 graph, config.shingle, want_prov ? &stats : nullptr,
                 pool_arg, want_prov ? &merges : nullptr)) {
          fold_family(graph, std::move(members));
        }
        if (want_prov) {
          dsd_s1 += stats.first_level_shingles;
          dsd_raw += stats.raw_components;
          append_dsd_edges(merges);
        }
        util::telemetry::progress_done(1);
        util::telemetry::poll_deadline();
      }
      pending.clear();
      pending_charge.reset();
    };
    for (const auto& component : result.ccd.components) {
      if (component.size() < config.min_component) continue;
      pending.push_back(build_graph(component));
      pending_charge.add("bgg.graphs", graph_bytes(pending.back()));
      if (!streaming) streaming = util::governor().should_stream("bgg+dsd");
      if (streaming) drain();
    }
    drain();
  }
  result.bgg_dsd_seconds = dsd_timer.elapsed_seconds();
  util::telemetry::phase_end("bgg+dsd", result.bgg_dsd_seconds);
  sample_phase_rss("bgg+dsd");
  util::telemetry::poll_deadline();
  if (want_prov) {
    dsd_expected_merges = dsd_s1 - dsd_raw;
    if (ckpt.enabled()) {
      commit_sidecar(ckpt.path("dsd.prov.jsonl"),
                     render_sidecar("dsd", fp,
                                    components_hash(result.ccd.components),
                                    dsd_expected_merges, dsd_edges));
    }
  }

  std::sort(result.families.begin(), result.families.end(),
            [](const Family& a, const Family& b) {
              if (a.members.size() != b.members.size()) {
                return a.members.size() > b.members.size();
              }
              return a.members.front() < b.members.front();
            });

  if (ckpt.enabled()) {
    util::CheckpointWriter payload = ckpt.payload(result.bgg_dsd_seconds);
    payload.u64(result.families.size());
    for (const Family& f : result.families) {
      payload.u32_vec(
          std::vector<std::uint32_t>(f.members.begin(), f.members.end()));
      payload.f64(f.mean_degree);
      payload.f64(f.density);
    }
    ckpt.write("families.ckpt", kTagFamilies, payload);
  }
  log_phase("families", "computed");
  assemble_provenance();
  result.recovery_log = ckpt.recovery_log();
  return finalize(std::move(result));
}

std::string table1_row(const PipelineResult& r) {
  return util::format(
      "%s | %s | %s | %s | %s | %.0f | %.0f%% | %s",
      util::with_commas(static_cast<long long>(r.input_sequences)).c_str(),
      util::with_commas(static_cast<long long>(r.non_redundant_sequences))
          .c_str(),
      util::with_commas(static_cast<long long>(r.components_min_size)).c_str(),
      util::with_commas(static_cast<long long>(r.dense_subgraph_count))
          .c_str(),
      util::with_commas(static_cast<long long>(r.sequences_in_subgraphs))
          .c_str(),
      r.mean_degree, r.mean_density * 100.0,
      util::with_commas(static_cast<long long>(r.largest_subgraph)).c_str());
}

}  // namespace pclust::pipeline
