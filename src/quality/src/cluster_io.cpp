#include "pclust/quality/cluster_io.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "pclust/util/io.hpp"
#include "pclust/util/strings.hpp"

namespace pclust::quality {

void write_clustering(std::ostream& out, const Clustering& clustering,
                      const seq::SequenceSet& set) {
  out << "# cluster\tsequence\n";
  for (std::size_t c = 0; c < clustering.size(); ++c) {
    for (seq::SeqId id : clustering[c]) {
      out << 'F' << c << '\t' << set.name(id) << '\n';
    }
  }
}

void write_clustering_file(const std::string& path,
                           const Clustering& clustering,
                           const seq::SequenceSet& set) {
  // The family table is the product of the whole run; it goes through the
  // IoEnv's atomic commit (tmp + fsync + rename) and a persistent failure
  // is fatal (util::io::IoError with class "families").
  std::ostringstream out;
  write_clustering(out, clustering, set);
  util::io::io().commit_file(util::io::ArtifactClass::kFamilies, path,
                             out.str());
}

Clustering read_clustering(std::istream& in, const seq::SequenceSet& set) {
  std::unordered_map<std::string, seq::SeqId> by_name;
  by_name.reserve(set.size());
  for (seq::SeqId id = 0; id < set.size(); ++id) {
    by_name.emplace(set.name(id), id);
  }

  std::map<std::string, std::vector<seq::SeqId>> groups;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view text = util::trim(line);
    if (text.empty() || text.front() == '#') continue;
    const auto tab = text.find('\t');
    if (tab == std::string_view::npos) {
      throw std::runtime_error(
          util::format("clustering line %zu: expected <label>\\t<name>",
                       line_no));
    }
    const std::string label(util::trim(text.substr(0, tab)));
    const std::string name(util::trim(text.substr(tab + 1)));
    const auto it = by_name.find(name);
    if (it == by_name.end()) {
      throw std::runtime_error(
          util::format("clustering line %zu: unknown sequence '%s'", line_no,
                       name.c_str()));
    }
    groups[label].push_back(it->second);
  }

  Clustering out;
  out.reserve(groups.size());
  for (auto& [label, members] : groups) {
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.size() != b.size()) return a.size() > b.size();
    return a.front() < b.front();
  });
  return out;
}

Clustering read_clustering_file(const std::string& path,
                                const seq::SequenceSet& set) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open clustering file: " + path);
  return read_clustering(in, set);
}

}  // namespace pclust::quality
