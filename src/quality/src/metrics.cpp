#include "pclust/quality/metrics.hpp"

#include <cmath>
#include <map>
#include <stdexcept>
#include <unordered_map>

namespace pclust::quality {

namespace {

constexpr std::uint64_t choose2(std::uint64_t n) {
  return n * (n - 1) / 2;
}

/// Map each id to its cluster label, rejecting duplicates.
std::unordered_map<seq::SeqId, std::uint32_t> label_map(
    const Clustering& clustering, const char* which) {
  std::unordered_map<seq::SeqId, std::uint32_t> labels;
  for (std::uint32_t c = 0; c < clustering.size(); ++c) {
    for (seq::SeqId id : clustering[c]) {
      if (!labels.emplace(id, c).second) {
        throw std::invalid_argument(
            std::string("compare_clusterings: sequence repeated in ") + which);
      }
    }
  }
  return labels;
}

}  // namespace

Metrics compare_clusterings(const Clustering& test,
                            const Clustering& benchmark) {
  const auto test_labels = label_map(test, "test");
  const auto bench_labels = label_map(benchmark, "benchmark");

  // Contingency counts restricted to the common sequences.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> joint;
  std::unordered_map<std::uint32_t, std::uint64_t> test_sizes;
  std::unordered_map<std::uint32_t, std::uint64_t> bench_sizes;
  std::uint64_t common = 0;
  for (const auto& [id, t] : test_labels) {
    const auto it = bench_labels.find(id);
    if (it == bench_labels.end()) continue;
    ++common;
    ++joint[{t, it->second}];
    ++test_sizes[t];
    ++bench_sizes[it->second];
  }

  Metrics m;
  m.common_sequences = common;
  std::uint64_t tp = 0;
  for (const auto& [cell, n] : joint) tp += choose2(n);
  std::uint64_t together_test = 0;
  for (const auto& [c, n] : test_sizes) together_test += choose2(n);
  std::uint64_t together_bench = 0;
  for (const auto& [c, n] : bench_sizes) together_bench += choose2(n);

  m.counts.tp = tp;
  m.counts.fp = together_test - tp;
  m.counts.fn = together_bench - tp;
  m.counts.tn = choose2(common) - tp - m.counts.fp - m.counts.fn;

  const auto& c = m.counts;
  const auto ratio = [](std::uint64_t num, std::uint64_t den) {
    return den == 0 ? 0.0
                    : static_cast<double>(num) / static_cast<double>(den);
  };
  m.precision = ratio(c.tp, c.tp + c.fp);
  m.sensitivity = ratio(c.tp, c.tp + c.fn);
  m.overlap_quality = ratio(c.tp, c.tp + c.fp + c.fn);
  const double denom = std::sqrt(static_cast<double>(c.tp + c.fp)) *
                       std::sqrt(static_cast<double>(c.tn + c.fn)) *
                       std::sqrt(static_cast<double>(c.tp + c.fn)) *
                       std::sqrt(static_cast<double>(c.tn + c.fp));
  m.correlation =
      denom == 0.0
          ? 0.0
          : (static_cast<double>(c.tp) * static_cast<double>(c.tn) -
             static_cast<double>(c.fp) * static_cast<double>(c.fn)) /
                denom;
  return m;
}

}  // namespace pclust::quality
