// Pair-counting clustering comparison (paper §V, equations 1-4).
//
// A sequence pair is a True Positive when clustered together in both the
// Test and Benchmark clusterings, a True Negative when separated in both,
// False Positive when together only in Test, False Negative when together
// only in Benchmark. As in the paper, the measures are computed over the
// sequences included in BOTH clusterings.
//
//   Precision  PR = TP / (TP + FP)
//   Sensitivity SE = TP / (TP + FN)
//   Overlap Quality OQ = TP / (TP + FP + FN)
//   Correlation Coefficient
//      CC = (TP·TN − FP·FN) / sqrt((TP+FP)(TN+FN)(TP+FN)(TN+FP))
#pragma once

#include <cstdint>
#include <vector>

#include "pclust/seq/sequence_set.hpp"

namespace pclust::quality {

/// A clustering: disjoint groups of sequence ids (ids may cover only part
/// of the input; uncovered ids are excluded from comparison).
using Clustering = std::vector<std::vector<seq::SeqId>>;

struct PairCounts {
  std::uint64_t tp = 0;
  std::uint64_t tn = 0;
  std::uint64_t fp = 0;
  std::uint64_t fn = 0;

  [[nodiscard]] std::uint64_t total() const { return tp + tn + fp + fn; }
};

struct Metrics {
  PairCounts counts;
  double precision = 0.0;
  double sensitivity = 0.0;
  double overlap_quality = 0.0;
  double correlation = 0.0;
  /// Number of sequences included in both clusterings.
  std::size_t common_sequences = 0;
};

/// Count pairs via the contingency table (no quadratic pair loop). Throws
/// std::invalid_argument if either clustering repeats a sequence id.
[[nodiscard]] Metrics compare_clusterings(const Clustering& test,
                                          const Clustering& benchmark);

}  // namespace pclust::quality
