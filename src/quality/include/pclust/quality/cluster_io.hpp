// Clustering serialization: the on-disk exchange format for family
// assignments (what the CAMERA portal's cluster membership dumps look
// like, reduced to essentials).
//
// Format: one line per sequence, "<cluster-label>\t<sequence-name>".
// Lines starting with '#' and blank lines are ignored. Cluster labels are
// arbitrary strings; sequence names must match SequenceSet names.
#pragma once

#include <iosfwd>
#include <string>

#include "pclust/quality/metrics.hpp"
#include "pclust/seq/sequence_set.hpp"

namespace pclust::quality {

/// Write a clustering; cluster c is labeled "F<c>" unless @p labels
/// provides custom names.
void write_clustering(std::ostream& out, const Clustering& clustering,
                      const seq::SequenceSet& set);

void write_clustering_file(const std::string& path,
                           const Clustering& clustering,
                           const seq::SequenceSet& set);

/// Read a clustering, mapping sequence names through @p set. Unknown names
/// throw std::runtime_error (mismatched inputs should not fail silently);
/// clusters come back sorted by descending size.
[[nodiscard]] Clustering read_clustering(std::istream& in,
                                         const seq::SequenceSet& set);

[[nodiscard]] Clustering read_clustering_file(const std::string& path,
                                              const seq::SequenceSet& set);

}  // namespace pclust::quality
