#include "pclust/synth/generator.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "pclust/seq/alphabet.hpp"
#include "pclust/util/log.hpp"
#include "pclust/util/rng.hpp"
#include "pclust/util/strings.hpp"

namespace pclust::synth {

namespace {

using util::Xoshiro256;

/// Cumulative background distribution for residue sampling.
const std::array<double, seq::kNumResidues>& cumulative_background() {
  static const auto kCum = [] {
    std::array<double, seq::kNumResidues> cum{};
    double acc = 0.0;
    const auto& freq = seq::background_frequencies();
    for (int i = 0; i < seq::kNumResidues; ++i) {
      acc += freq[static_cast<std::size_t>(i)];
      cum[static_cast<std::size_t>(i)] = acc;
    }
    cum[seq::kNumResidues - 1] = 1.0;  // guard against rounding
    return cum;
  }();
  return kCum;
}

std::uint8_t sample_residue(Xoshiro256& rng) {
  const double u = rng.uniform();
  const auto& cum = cumulative_background();
  const auto it = std::lower_bound(cum.begin(), cum.end(), u);
  return static_cast<std::uint8_t>(std::distance(cum.begin(), it));
}

std::string random_protein(Xoshiro256& rng, std::size_t length) {
  std::string out(length, '\0');
  for (auto& c : out) c = static_cast<char>(sample_residue(rng));
  return out;
}

/// Substitute a different residue (never the original, so the requested
/// divergence is realized exactly in expectation).
std::uint8_t substitute(Xoshiro256& rng, std::uint8_t original) {
  std::uint8_t r = original;
  while (r == original) r = sample_residue(rng);
  return r;
}

/// Point-mutate + indel-mutate a rank-encoded sequence.
std::string mutate(Xoshiro256& rng, std::string_view source, double divergence,
                   double indel_rate, double indel_continue) {
  std::string out;
  out.reserve(source.size() + 8);
  for (std::size_t i = 0; i < source.size(); ++i) {
    if (rng.chance(indel_rate)) {
      if (rng.chance(0.5)) {
        // Insertion (geometric length).
        do {
          out.push_back(static_cast<char>(sample_residue(rng)));
        } while (rng.chance(indel_continue));
      } else {
        // Deletion (geometric length): skip residues.
        while (i + 1 < source.size() && rng.chance(indel_continue)) ++i;
        continue;
      }
    }
    const auto orig = static_cast<std::uint8_t>(source[i]);
    out.push_back(static_cast<char>(
        rng.chance(divergence) ? substitute(rng, orig) : orig));
  }
  if (out.empty()) out.push_back(static_cast<char>(sample_residue(rng)));
  return out;
}

/// Zipf-skewed family sizes summing exactly to member_total, each at least
/// min_size. Sizes are returned in descending order.
std::vector<std::uint32_t> family_sizes(std::uint32_t member_total,
                                        std::uint32_t families, double skew,
                                        std::uint32_t min_size) {
  if (families == 0) throw std::invalid_argument("num_families must be > 0");
  if (member_total < families * min_size) {
    throw std::invalid_argument(util::format(
        "DatasetSpec infeasible: %u family members cannot fill %u families "
        "of minimum size %u",
        member_total, families, min_size));
  }
  std::vector<double> weights(families);
  double total_weight = 0.0;
  for (std::uint32_t i = 0; i < families; ++i) {
    weights[i] = std::pow(static_cast<double>(i + 1), -skew);
    total_weight += weights[i];
  }
  std::vector<std::uint32_t> sizes(families);
  std::uint32_t assigned = 0;
  for (std::uint32_t i = 0; i < families; ++i) {
    sizes[i] = std::max(
        min_size, static_cast<std::uint32_t>(
                      std::floor(static_cast<double>(member_total) *
                                 weights[i] / total_weight)));
    assigned += sizes[i];
  }
  // Fix the total: trim overshoot from the largest families (never below
  // min_size), then pour any remainder into the largest family.
  std::uint32_t idx = 0;
  while (assigned > member_total) {
    if (sizes[idx] > min_size) {
      --sizes[idx];
      --assigned;
    } else if (++idx >= families) {
      idx = 0;  // all at min: cannot happen given the feasibility check
    }
  }
  sizes[0] += member_total - assigned;
  std::sort(sizes.rbegin(), sizes.rend());
  return sizes;
}

struct Record {
  std::string name;
  std::string residues;  // rank-encoded
  std::int32_t family = -1;
  std::int32_t subfamily = -1;
  bool redundant = false;
  std::size_t parent = SIZE_MAX;  // pre-shuffle index of containing sequence
};

}  // namespace

std::vector<std::vector<seq::SeqId>> GroundTruth::benchmark_clusters(
    std::size_t min_size) const {
  std::int32_t max_family = -1;
  for (auto f : family) max_family = std::max(max_family, f);
  std::vector<std::vector<seq::SeqId>> clusters(
      static_cast<std::size_t>(max_family + 1));
  for (seq::SeqId id = 0; id < family.size(); ++id) {
    if (family[id] >= 0 && !redundant[id]) {
      clusters[static_cast<std::size_t>(family[id])].push_back(id);
    }
  }
  std::erase_if(clusters,
                [min_size](const auto& c) { return c.size() < min_size; });
  std::sort(clusters.begin(), clusters.end(),
            [](const auto& a, const auto& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a.front() < b.front();
            });
  return clusters;
}

std::size_t GroundTruth::noise_count() const {
  return static_cast<std::size_t>(
      std::count(family.begin(), family.end(), -1));
}

std::size_t GroundTruth::redundant_count() const {
  return static_cast<std::size_t>(
      std::count(redundant.begin(), redundant.end(), std::uint8_t{1}));
}

Dataset generate(const DatasetSpec& spec) {
  if (spec.num_sequences == 0) {
    throw std::invalid_argument("num_sequences must be > 0");
  }
  if (spec.redundant_fraction + spec.noise_fraction >= 1.0) {
    throw std::invalid_argument(
        "redundant_fraction + noise_fraction must be < 1");
  }
  if (spec.max_divergence < spec.min_divergence) {
    throw std::invalid_argument("max_divergence < min_divergence");
  }
  if (spec.redundant_error >= 0.05) {
    PCLUST_WARN << "redundant_error " << spec.redundant_error
                << " >= 5%: injected duplicates may evade the default "
                   "containment cutoff";
  }

  Xoshiro256 root(spec.seed);

  const auto redundant_n = static_cast<std::uint32_t>(
      std::llround(spec.redundant_fraction * spec.num_sequences));
  const auto noise_n = static_cast<std::uint32_t>(
      std::llround(spec.noise_fraction * spec.num_sequences));
  const std::uint32_t member_n = spec.num_sequences - redundant_n - noise_n;

  const auto sizes = family_sizes(member_n, spec.num_families, spec.zipf_skew,
                                  spec.min_family_size);

  std::vector<Record> records;
  records.reserve(spec.num_sequences);

  // Ancestors are longer than the target ORF length so that post-truncation
  // fragments average mean_length.
  const double truncation_mean = spec.truncation_max;  // both ends combined
  const double ancestor_mean =
      static_cast<double>(spec.mean_length) / (1.0 - truncation_mean);

  for (std::uint32_t f = 0; f < sizes.size(); ++f) {
    Xoshiro256 rng = root.fork(0x1000 + f);
    const double jitter = 1.0 + spec.length_jitter * (2.0 * rng.uniform() - 1.0);
    const auto ancestor_len = static_cast<std::size_t>(
        std::max(30.0, std::round(ancestor_mean * jitter)));
    const std::string ancestor = random_protein(rng, ancestor_len);

    // Subfamily sub-ancestors, each a diverged copy of the family ancestor.
    const std::uint32_t subs = std::max(1u, spec.subfamilies_per_family);
    std::vector<std::string> sub_ancestors;
    sub_ancestors.reserve(subs);
    for (std::uint32_t sub = 0; sub < subs; ++sub) {
      sub_ancestors.push_back(
          subs == 1 ? ancestor
                    : mutate(rng, ancestor, spec.subfamily_divergence,
                             spec.indel_rate, spec.indel_continue));
    }

    // Zipf-skewed subfamily assignment (subfamily i has weight 1/(i+1)),
    // so the dense-subgraph size distribution is right-skewed like the
    // paper's Figure 5.
    std::vector<double> sub_cdf(subs);
    {
      double acc = 0.0;
      for (std::uint32_t i = 0; i < subs; ++i) {
        acc += 1.0 / static_cast<double>(i + 1);
        sub_cdf[i] = acc;
      }
      for (auto& v : sub_cdf) v /= acc;
    }
    for (std::uint32_t m = 0; m < sizes[f]; ++m) {
      const double u = rng.uniform();
      const auto sub = static_cast<std::uint32_t>(
          std::lower_bound(sub_cdf.begin(), sub_cdf.end(), u) -
          sub_cdf.begin());
      const double divergence =
          spec.min_divergence +
          (spec.max_divergence - spec.min_divergence) * rng.uniform();
      std::string member = mutate(rng, sub_ancestors[sub], divergence,
                                  spec.indel_rate, spec.indel_continue);
      const auto cut = [&](double max_frac) {
        return static_cast<std::size_t>(
            std::floor(rng.uniform() * max_frac *
                       static_cast<double>(member.size())));
      };
      const std::size_t head = cut(spec.truncation_max);
      const std::size_t tail = cut(spec.truncation_max);
      std::string fragment =
          member.substr(head, member.size() - head - tail);
      if (fragment.size() < 10) fragment = std::move(member);
      records.push_back(
          Record{util::format("F%u_M%u", f, m), std::move(fragment),
                 static_cast<std::int32_t>(f),
                 static_cast<std::int32_t>(f * subs + sub), false, SIZE_MAX});
    }
  }

  // Contained duplicates of randomly chosen family members.
  {
    Xoshiro256 rng = root.fork(0x2000);
    const std::size_t member_count = records.size();
    for (std::uint32_t r = 0; r < redundant_n; ++r) {
      const auto src_idx =
          static_cast<std::size_t>(rng.below(member_count));
      const Record& src = records[src_idx];
      const double span_frac =
          spec.redundant_min_span +
          (1.0 - spec.redundant_min_span) * rng.uniform();
      auto span = static_cast<std::size_t>(
          std::max(10.0, std::floor(span_frac *
                                    static_cast<double>(src.residues.size()))));
      span = std::min(span, src.residues.size());
      const auto start = static_cast<std::size_t>(
          rng.below(src.residues.size() - span + 1));
      std::string dup = src.residues.substr(start, span);
      // Mutate only the interior (a substitution on the outermost residues
      // would be trimmed by the optimal local alignment, shrinking coverage
      // below Definition 1's 95 % for short duplicates), and cap the
      // realized error count at 4.5 % of the span so an unlucky binomial
      // draw cannot push identity below the 95 % containment cutoff.
      const auto max_errors = static_cast<std::size_t>(
          0.045 * static_cast<double>(dup.size()));
      std::size_t errors = 0;
      for (std::size_t k = 3; k + 3 < dup.size() && errors < max_errors;
           ++k) {
        if (rng.chance(spec.redundant_error)) {
          dup[k] = static_cast<char>(
              substitute(rng, static_cast<std::uint8_t>(dup[k])));
          ++errors;
        }
      }
      records.push_back(Record{util::format("R%u_of_%s", r, src.name.c_str()),
                               std::move(dup), src.family, src.subfamily,
                               true, src_idx});
    }
  }

  // Unrelated background singletons.
  {
    Xoshiro256 rng = root.fork(0x3000);
    for (std::uint32_t i = 0; i < noise_n; ++i) {
      const double jitter =
          1.0 + spec.length_jitter * (2.0 * rng.uniform() - 1.0);
      const auto len = static_cast<std::size_t>(std::max(
          20.0, std::round(static_cast<double>(spec.mean_length) * jitter)));
      records.push_back(Record{util::format("N%u", i),
                               random_protein(rng, len), -1, -1, false,
                               SIZE_MAX});
    }
  }

  // Emit, optionally shuffled. `position[old] = new id` remaps parents.
  std::vector<std::size_t> order(records.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (spec.shuffle) {
    Xoshiro256 rng = root.fork(0x4000);
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1],
                order[static_cast<std::size_t>(rng.below(i))]);
    }
  }
  std::vector<seq::SeqId> position(records.size());
  for (std::size_t new_id = 0; new_id < order.size(); ++new_id) {
    position[order[new_id]] = static_cast<seq::SeqId>(new_id);
  }

  Dataset out;
  out.spec = spec;
  out.sequences.reserve(records.size(), 0);
  out.truth.family.resize(records.size());
  out.truth.subfamily.resize(records.size());
  out.truth.redundant.resize(records.size());
  out.truth.contained_in.resize(records.size());
  for (std::size_t new_id = 0; new_id < order.size(); ++new_id) {
    Record& rec = records[order[new_id]];
    out.sequences.add_encoded(std::move(rec.name), std::move(rec.residues));
    out.truth.family[new_id] = rec.family;
    out.truth.subfamily[new_id] = rec.subfamily;
    out.truth.redundant[new_id] = rec.redundant ? 1 : 0;
    out.truth.contained_in[new_id] =
        rec.parent == SIZE_MAX ? seq::kInvalidSeqId : position[rec.parent];
  }

  PCLUST_INFO << "synth: " << out.sequences.size() << " sequences, "
              << sizes.size() << " families, " << redundant_n
              << " redundant, " << noise_n << " noise, mean length "
              << out.sequences.mean_length();
  return out;
}

}  // namespace pclust::synth
