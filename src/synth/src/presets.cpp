#include "pclust/synth/presets.hpp"

#include <algorithm>
#include <cmath>

namespace pclust::synth {

DatasetSpec paper_160k(double scale, std::uint64_t seed) {
  DatasetSpec spec;
  spec.seed = seed;
  spec.num_sequences = std::max<std::uint32_t>(
      200, static_cast<std::uint32_t>(std::llround(160'000.0 * scale)));
  spec.num_families = std::max<std::uint32_t>(
      2, static_cast<std::uint32_t>(std::llround(221.0 * std::sqrt(scale))));
  spec.zipf_skew = 1.0;
  spec.min_family_size = 5;
  spec.mean_length = 163;
  spec.min_divergence = 0.05;
  spec.max_divergence = 0.30;
  spec.subfamilies_per_family = 4;
  spec.subfamily_divergence = 0.21;
  spec.redundant_fraction = 0.13;
  spec.noise_fraction = 0.30;
  return spec;
}

DatasetSpec paper_22k(double scale, std::uint64_t seed) {
  DatasetSpec spec;
  spec.seed = seed;
  spec.num_sequences = std::max<std::uint32_t>(
      100, static_cast<std::uint32_t>(std::llround(22'186.0 * scale)));
  // A couple of giant clusters that CCD keeps connected but whose
  // subfamily structure the dense-subgraph stage fragments into many DS —
  // the paper saw one 21K-sequence component split into 134 dense
  // subgraphs.
  spec.num_families = 2;
  spec.zipf_skew = 0.5;
  spec.min_family_size = 5;
  spec.mean_length = 256;
  spec.min_divergence = 0.05;
  spec.max_divergence = 0.25;
  spec.subfamilies_per_family = std::max<std::uint32_t>(
      2, static_cast<std::uint32_t>(std::llround(67.0 * std::sqrt(scale))));
  spec.subfamily_divergence = 0.30;
  spec.redundant_fraction = 0.038;
  spec.noise_fraction = 0.0;
  return spec;
}

DatasetSpec tiny(std::uint64_t seed) {
  DatasetSpec spec;
  spec.seed = seed;
  spec.num_sequences = 300;
  spec.num_families = 6;
  spec.mean_length = 120;
  spec.redundant_fraction = 0.10;
  spec.noise_fraction = 0.20;
  return spec;
}

}  // namespace pclust::synth
