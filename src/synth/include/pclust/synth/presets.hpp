// Dataset presets matching the paper's two experimental inputs (§V, "Data
// Preparation"), scalable by a linear factor so the same statistics can be
// exercised at laptop scale.
#pragma once

#include "pclust/synth/generator.hpp"

namespace pclust::synth {

/// The 160,000-ORF CAMERA sample: 221 GOS clusters, mean length 163,
/// ~13 % redundancy (160 K -> 138.6 K), ~31 % of the non-redundant set
/// outside components of size >= 5. `scale` multiplies the sequence count;
/// the family count scales with sqrt(scale) so family sizes shrink too but
/// remain >= min_family_size.
[[nodiscard]] DatasetSpec paper_160k(double scale = 1.0,
                                     std::uint64_t seed = 42);

/// The 22,186-ORF single-GOS-cluster set: mean length 256, ~3.8 %
/// redundancy, essentially no noise (every sequence in one component).
/// Internally modelled as a handful of subfamilies with higher divergence so
/// that the Shingle stage fragments it into many dense subgraphs, as the
/// paper observed (1 component -> 134 dense subgraphs).
[[nodiscard]] DatasetSpec paper_22k(double scale = 1.0,
                                    std::uint64_t seed = 42);

/// A small smoke-test dataset for examples and quick runs.
[[nodiscard]] DatasetSpec tiny(std::uint64_t seed = 42);

}  // namespace pclust::synth
