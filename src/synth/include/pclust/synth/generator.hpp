// Synthetic metagenomic ORF workload generator.
//
// Substitutes for the CAMERA environmental sequence database used in the
// paper (160 K ORFs across 221 GOS clusters, and a 22.2 K single-cluster
// set). The generator controls exactly the statistics the pipeline's
// behaviour depends on:
//   - family count and a Zipf-skewed family size distribution (the paper's
//     Fig. 5 distribution is strongly right-skewed, with one giant family);
//   - member divergence from the family ancestor (drives the 30 %-identity
//     overlap graph and the density of the bipartite subgraphs);
//   - end truncation (fragment/ORF-calling noise, bounded so Definition 2's
//     80 %-of-the-longer-sequence coverage still holds within a family);
//   - injected contained duplicates at the paper's observed redundancy rate
//     (160 K -> 138.6 K after RR, i.e. ~13 %);
//   - unrelated background "noise" singletons (the 138 K - 95 K sequences
//     that end up outside components of size >= 5).
//
// Ground-truth family labels are retained so quality metrics (PR/SE/OQ/CC)
// can be computed against a known benchmark clustering.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pclust/seq/sequence_set.hpp"

namespace pclust::synth {

struct DatasetSpec {
  std::uint64_t seed = 42;

  /// Total number of sequences, including redundant copies and noise.
  std::uint32_t num_sequences = 10'000;
  std::uint32_t num_families = 20;

  /// Family size skew: family i (0-based, by descending size) receives
  /// weight 1/(i+1)^zipf_skew. 0 = uniform sizes.
  double zipf_skew = 1.0;
  /// No family is generated with fewer members than this.
  std::uint32_t min_family_size = 5;

  /// Target mean ORF length in residues (paper: 163 for the 160 K set,
  /// 256 for the 22 K set).
  std::uint32_t mean_length = 163;
  /// Ancestor lengths are uniform in mean_length * [1-jitter, 1+jitter].
  double length_jitter = 0.3;

  /// Per-residue substitution divergence of a member from its family
  /// ancestor, uniform in [min_divergence, max_divergence]. Two members at
  /// divergence d1, d2 share ~ (1-d1)(1-d2) identity, so the defaults keep
  /// within-family identity comfortably above the 30 % overlap cutoff while
  /// staying below the 95 % containment cutoff.
  double min_divergence = 0.05;
  double max_divergence = 0.30;
  /// Probability of opening an indel at each residue (geometric length,
  /// mean 1 / indel_continue).
  double indel_rate = 0.01;
  double indel_continue = 0.5;

  /// Within-family substructure: each family is split into this many
  /// subfamilies whose sub-ancestors diverge from the family ancestor by
  /// subfamily_divergence. Benchmark clusters stay FAMILY level, so
  /// subfamilies reproduce the paper's fragmentation effect: dense
  /// subgraphs recover subfamilies, keeping precision high while
  /// sensitivity drops (paper §V: one 22K GOS cluster -> 134 DS,
  /// PR = 95.75 % / SE = 56.89 % on the 160 K set). 1 = homogeneous
  /// families.
  std::uint32_t subfamilies_per_family = 1;
  double subfamily_divergence = 0.18;

  /// Each member is truncated at each end by a uniform fraction in
  /// [0, truncation_max] (shotgun/ORF-calling edge noise).
  double truncation_max = 0.10;

  /// Fraction of num_sequences emitted as contained duplicates of existing
  /// members (what redundancy removal must find and drop).
  double redundant_fraction = 0.13;
  /// Residue error rate applied to a contained duplicate (must stay below
  /// 1 - containment similarity cutoff, i.e. < 5 %).
  double redundant_error = 0.02;
  /// Contained duplicates cover a uniform fraction in
  /// [redundant_min_span, 1.0] of their source sequence.
  double redundant_min_span = 0.35;

  /// Fraction of num_sequences emitted as unrelated background singletons.
  double noise_fraction = 0.30;

  /// Shuffle the emitted order (true resembles a real database dump; tests
  /// may disable for readability).
  bool shuffle = true;
};

/// Per-sequence provenance, indexed by SeqId.
struct GroundTruth {
  /// Family index in [0, num_families), or -1 for background noise.
  std::vector<std::int32_t> family;
  /// Global subfamily index (family * subfamilies_per_family + sub), or -1
  /// for background noise.
  std::vector<std::int32_t> subfamily;
  /// True if the sequence was injected as a contained duplicate.
  std::vector<std::uint8_t> redundant;
  /// For redundant sequences, the SeqId of the sequence that contains it.
  std::vector<seq::SeqId> contained_in;

  /// Benchmark clustering: the non-noise, non-redundant members of each
  /// family, families with fewer than @p min_size such members omitted.
  [[nodiscard]] std::vector<std::vector<seq::SeqId>> benchmark_clusters(
      std::size_t min_size = 1) const;

  [[nodiscard]] std::size_t noise_count() const;
  [[nodiscard]] std::size_t redundant_count() const;
};

struct Dataset {
  seq::SequenceSet sequences;
  GroundTruth truth;
  DatasetSpec spec;
};

/// Generate a dataset. Deterministic in spec.seed (independent of platform).
[[nodiscard]] Dataset generate(const DatasetSpec& spec);

}  // namespace pclust::synth
