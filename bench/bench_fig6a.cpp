// Figure 6a — combined RR+CCD run-time as a function of processor count,
// one series per input size (paper: n = 10K..160K, p = 32..512 BG/L nodes;
// 160K at p=512 completed in 3h 20m).
//
// Shape targets: every series decreases with p; larger inputs sit higher;
// diminishing returns at high p.
#include <cstdio>

#include "common.hpp"
#include "pclust/util/strings.hpp"
#include "pclust/util/table.hpp"

int main() {
  using namespace pclust;
  using namespace pclust::bench;

  util::Table table({"series", "p=32", "p=64", "p=128", "p=512"});
  table.set_title("Figure 6a analog — RR+CCD run-time (simulated BG/L "
                  "seconds) vs processor count");
  for (int paper_k : kInputSizesK) {
    std::vector<std::string> row = {paper_n_label(paper_k)};
    for (int p : kProcessorCounts) {
      const auto t = run_rr_ccd(paper_k, p);
      row.push_back(util::format("%.1f", t.total()));
    }
    table.add_row(row);
    std::fprintf(stderr, "  [%s done]\n", paper_n_label(paper_k).c_str());
  }
  table.add_footnote("paper (160K, p=512): 3h 20m; shapes: monotone decrease "
                     "in p, larger n higher.");
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
